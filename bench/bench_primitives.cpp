// E8 - Substrate and primitive micro-benchmarks (google-benchmark).
//
// Wall-clock costs of the simulator and the Section 3.2 cluster primitives:
// engine round throughput, the O(1)-round primitives at various cluster
// sizes, RNG and knowledge-tracking overhead. These are simulator-
// implementation numbers (the paper's model has no wall clock); they bound
// how large an experiment the harness can run.
#include <benchmark/benchmark.h>

#include "cluster/driver.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace {

using namespace gossip;

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_below(1000003));
}
BENCHMARK(BM_RngUniformBelow);

void BM_EngineRoundAllPush(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  sim::Network net(o);
  sim::Engine eng(net);
  sim::RoundHooks hooks;
  hooks.initiate = [](std::uint32_t) -> std::optional<sim::Contact> {
    return sim::Contact::push_random(sim::Message::rumor());
  };
  hooks.on_push = [](std::uint32_t, const sim::Message&) {};
  for (auto _ : state) eng.run_round(hooks);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRoundAllPush)->Range(1 << 10, 1 << 18);

void BM_EngineRoundAllPull(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  sim::Network net(o);
  sim::Engine eng(net);
  sim::RoundHooks hooks;
  hooks.initiate = [](std::uint32_t) -> std::optional<sim::Contact> {
    return sim::Contact::pull_random();
  };
  hooks.respond = [](std::uint32_t) { return sim::Message::rumor(); };
  hooks.on_pull_reply = [](std::uint32_t, const sim::Message&) {};
  for (auto _ : state) eng.run_round(hooks);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRoundAllPull)->Range(1 << 10, 1 << 18);

// Static-dispatch twins of the two engine-round benchmarks: same workloads
// through the templated executor, for a direct dispatch-cost comparison in
// benchmark output.
void BM_EngineRoundAllPushStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  sim::Network net(o);
  sim::Engine eng(net);
  auto hooks = sim::make_hooks(
      [](std::uint32_t) -> std::optional<sim::Contact> {
        return sim::Contact::push_random(sim::Message::rumor());
      },
      sim::no_hook, [](std::uint32_t, const sim::Message&) {});
  for (auto _ : state) eng.run_round(hooks);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRoundAllPushStatic)->Range(1 << 10, 1 << 18);

void BM_EngineRoundAllPullStatic(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  sim::Network net(o);
  sim::Engine eng(net);
  auto hooks = sim::make_hooks(
      [](std::uint32_t) -> std::optional<sim::Contact> {
        return sim::Contact::pull_random();
      },
      [](std::uint32_t) { return sim::Message::rumor(); }, sim::no_hook,
      [](std::uint32_t, const sim::Message&) {});
  for (auto _ : state) eng.run_round(hooks);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineRoundAllPullStatic)->Range(1 << 10, 1 << 18);

/// Sets up one flat clustering of cluster size `s` covering all n nodes.
void stage_clusters(cluster::Driver& driver, std::uint32_t n, std::uint32_t s) {
  auto& cl = driver.clustering();
  for (std::uint32_t base = 0; base < n; base += s) {
    cl.make_leader(base);
    for (std::uint32_t i = base + 1; i < std::min(n, base + s); ++i) {
      cl.set_follow(i, driver.network().id_of(base));
    }
  }
}

void BM_PrimitiveActivate(benchmark::State& state) {
  const std::uint32_t n = 1 << 16;
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  sim::Network net(o);
  sim::Engine eng(net);
  cluster::Driver driver(eng);
  stage_clusters(driver, n, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) driver.activate(0.5);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrimitiveActivate)->Arg(16)->Arg(256)->Arg(4096);

void BM_PrimitiveComputeSizes(benchmark::State& state) {
  const std::uint32_t n = 1 << 16;
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  sim::Network net(o);
  sim::Engine eng(net);
  cluster::Driver driver(eng);
  stage_clusters(driver, n, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) driver.compute_sizes(false);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrimitiveComputeSizes)->Arg(16)->Arg(256)->Arg(4096);

void BM_PrimitiveResize(benchmark::State& state) {
  const std::uint32_t n = 1 << 16;
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  sim::Network net(o);
  sim::Engine eng(net);
  cluster::Driver driver(eng);
  const auto s = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    driver.clustering().reset();
    stage_clusters(driver, n, 4 * s);
    state.ResumeTiming();
    driver.resize(s, false);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrimitiveResize)->Arg(16)->Arg(256);

void BM_PrimitiveShare(benchmark::State& state) {
  const std::uint32_t n = 1 << 16;
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  sim::Network net(o);
  sim::Engine eng(net);
  cluster::Driver driver(eng);
  stage_clusters(driver, n, 256);
  std::vector<std::uint8_t> informed(n, 0);
  for (std::uint32_t v = 0; v < n; v += 256) informed[v] = 1;  // leaders know
  for (auto _ : state) {
    std::vector<std::uint8_t> copy = informed;
    driver.share_rumor(copy, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PrimitiveShare);

void BM_KnowledgeTrackingOverhead(benchmark::State& state) {
  const std::uint32_t n = 1 << 12;
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 1;
  o.track_knowledge = state.range(0) != 0;
  sim::Network net(o);
  sim::Engine eng(net);
  sim::RoundHooks hooks;
  hooks.initiate = [&net](std::uint32_t v) -> std::optional<sim::Contact> {
    return sim::Contact::push_random(sim::Message::single_id(net.id_of(v)));
  };
  hooks.on_push = [](std::uint32_t, const sim::Message&) {};
  for (auto _ : state) eng.run_round(hooks);
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(o.track_knowledge ? "tracking-on" : "tracking-off");
}
BENCHMARK(BM_KnowledgeTrackingOverhead)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
