// E9 - Churn tolerance (PR 6): mid-run joins and crashes as a round
// timeline, and the membership/suspicion service's estimate_n accuracy.
//
// Three sweeps, all on the scenario runner (every cell is a ScenarioSpec;
// --trial-threads=N parallelises seeds with bit-identical aggregates):
//   1. Membership estimate accuracy (headline): join_rate = crash_rate = r
//      Poisson churn; the service's estimate_n chases |alive| and the sweep
//      maps mean relative error and the fraction of nodes within 10% vs r.
//      Joiners start knowing nobody, crashed nodes linger for up to
//      suspicion_after rounds - the error floor IS the suspicion lag.
//   2. Broadcast under churn: PUSH-PULL and Cluster2 racing arrivals.
//      PUSH-PULL keeps retrying, so it stays near full coverage until the
//      arrival rate outruns the pull path; Cluster2 runs a fixed schedule
//      sized for the initial population, so joiners (and mid-run crash
//      damage) show up directly as uninformed nodes.
//   3. Byzantine poisoning: a fraction of responders answer pulls with
//      garbage ID lists. Payload corruption is detected and dropped, but
//      ID-list poisoning is NOT - ghosts enter the membership tables and
//      inflate estimate_n until suspicion ages them out.
//
// --join-rate / --crash-rate / --loss-prob overlay sweeps that do not pin
// those keys themselves; --out=FILE emits the shared JSON schema (the
// committed BENCH_churn.json at the repo root is this bench's record).
// --repeats=N re-runs every cell N times and asserts the report AND the
// collected telemetry (wall-clock fields excluded) come back bit-identical -
// a built-in determinism self-check. --timeseries=FILE collects per-round
// telemetry for every cell and writes one labelled JSONL stream.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "obs/export.hpp"
#include "runner/json_report.hpp"
#include "runner/registry.hpp"
#include "runner/trial_runner.hpp"

namespace {

/// Serialises the determinism-covered content of a result: the JSON report
/// plus (when collected) the time series without wall-clock fields and the
/// event log.
std::string deterministic_content(const gossip::runner::ScenarioResult& result) {
  std::ostringstream os;
  gossip::runner::write_scenario_json(os, result);
  if (!result.telemetry.empty()) {
    gossip::obs::ExportOptions opt;
    opt.timing = false;
    const auto views = result.telemetry_views();
    gossip::obs::write_timeseries_jsonl(os, views, opt);
    gossip::obs::write_events_jsonl(os, views, opt);
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  // Membership is O(capacity^2) memory (see membership/membership.hpp), so
  // this bench runs service-scale networks, not broadcast-scale ones.
  const std::uint32_t n = cfg.full ? (1u << 12) : (1u << 10);

  bench::print_header(
      "E9: churn-tolerant gossip and membership estimates",
      "joins/crashes as a deterministic round timeline: PUSH-PULL coverage "
      "degrades gracefully, fixed cluster schedules strand joiners, and the "
      "membership service tracks |alive| to within its suspicion lag");

  runner::TrialRunner trials(cfg.trial_threads);
  std::vector<runner::ScenarioResult> results;
  std::ofstream ts_out;
  if (!cfg.timeseries.empty()) {
    ts_out.open(cfg.timeseries);
    if (!ts_out) {
      std::cerr << "cannot write " << cfg.timeseries << "\n";
      return 1;
    }
  }
  const unsigned repeats = cfg.repeats == 0 ? 1 : cfg.repeats;
  const auto run_cell = [&](runner::ScenarioSpec spec) {
    // Arm telemetry collection when a time series was requested (the path
    // itself is unused - bench cells export through ts_out below).
    if (!cfg.timeseries.empty()) spec.timeseries = cfg.timeseries;
    auto result = trials.run(spec);
    for (unsigned rep = 1; rep < repeats; ++rep) {
      // Determinism self-check: a cell re-run must reproduce the report and
      // the telemetry (minus wall-clock fields) bit-for-bit.
      const auto again = trials.run(spec);
      if (deterministic_content(again) != deterministic_content(result)) {
        std::cerr << "DETERMINISM VIOLATION: cell '" << spec.name
                  << "' differed on repeat " << rep + 1 << "\n";
        std::exit(1);
      }
    }
    if (ts_out.is_open()) {
      obs::ExportOptions opt;
      opt.label = result.spec.name;
      obs::write_timeseries_jsonl(ts_out, result.telemetry_views(), opt);
    }
    if (!cfg.out.empty()) results.push_back(result);
    return result;
  };

  const double rates[] = {0.0, 0.1, 0.25, 0.5, 1.0};

  // --- Sweep 1: membership estimate accuracy vs churn rate (headline). ----
  {
    Table t("Membership estimate_n under Poisson churn (n0 = " + std::to_string(n) +
                ", joins = crashes = r, " + std::to_string(cfg.seeds) + " seeds)",
            {"r /round", "est rel err", "within 10%", "outside 10%", "rounds",
             "msg/node"});
    for (const double rate : rates) {
      runner::ScenarioSpec spec;
      spec.name = "membership/churn=" + format_double(rate, 2);
      spec.algorithm = "membership";
      spec.n = n;
      spec.trials = cfg.seeds;
      spec.seed = 900;
      cfg.apply_engine(spec);
      cfg.apply_faults(spec);
      spec.join_rate = rate;   // the sweep variable wins over the overlay
      spec.crash_rate = rate;
      const auto result = run_cell(std::move(spec));
      const auto& agg = result.aggregate;
      t.row()
          .add(rate, 2)
          .add(agg.estimate_error.mean(), 4)
          .add(agg.informed_fraction.mean(), 4)
          .add(agg.uninformed.mean(), 1)
          .add(agg.rounds.mean(), 1)
          .add(agg.payload_per_node.mean(), 2);
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: at r = 0 estimates settle within a few percent of |alive|\n"
               "(the residual is the sampling miss rate of the suspicion window).\n"
               "Under churn the error tracks the suspicion lag on top of that:\n"
               "crashed nodes over-count for ~suspicion_after rounds and joiners\n"
               "under-count until their first digest ride, so the error grows with\n"
               "r but stays bounded - the service never diverges.\n";

  // --- Sweep 2: broadcast racing churn (time-to-all-informed). ------------
  for (const char* algorithm : {"push_pull", "cluster2"}) {
    const auto& entry = runner::require_algorithm(algorithm);
    Table t(std::string(entry.display) + " racing churn (n0 = " + std::to_string(n) +
                ", joins = crashes = r, " + std::to_string(cfg.seeds) + " seeds)",
            {"r /round", "informed frac", "uninformed", "rounds", "msg/node"});
    for (const double rate : rates) {
      runner::ScenarioSpec spec;
      spec.name = std::string(entry.id) + "/churn=" + format_double(rate, 2);
      spec.algorithm = entry.id;
      spec.n = n;
      spec.trials = cfg.seeds;
      spec.seed = 910;
      cfg.apply_engine(spec);
      cfg.apply_faults(spec);
      spec.join_rate = rate;
      spec.crash_rate = rate;
      const auto result = run_cell(std::move(spec));
      const auto& agg = result.aggregate;
      t.row()
          .add(rate, 2)
          .add(agg.informed_fraction.mean(), 4)
          .add(agg.uninformed.mean(), 1)
          .add(agg.rounds.mean(), 1)
          .add(agg.payload_per_node.mean(), 2);
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: PUSH-PULL retries until everyone alive is informed, so its\n"
               "rounds column grows with r (each round's joiners must still be pulled\n"
               "in) while coverage stays near 1 until arrivals outrun the round cap.\n"
               "Cluster2's schedule is sized for the initial population: mid-run\n"
               "crashes can decapitate coordination clusters and late joiners are\n"
               "stranded, so coverage is bimodal per trial - the skeleton either\n"
               "survives (near-1) or collapses (mass stranding) - and the mean\n"
               "'uninformed' column degrades with r far faster than PUSH-PULL's.\n";

  // --- Sweep 3: byzantine ID-list poisoning of the membership tables. -----
  {
    Table t("Membership vs byzantine responders (n0 = " + std::to_string(n) + ", " +
                std::to_string(cfg.seeds) + " seeds)",
            {"byz frac", "est rel err", "within 10%", "rounds", "msg/node"});
    for (const double frac : {0.0, 0.05, 0.15, 0.3}) {
      runner::ScenarioSpec spec;
      spec.name = "membership/byz=" + format_double(frac, 2);
      spec.algorithm = "membership";
      spec.n = n;
      spec.trials = cfg.seeds;
      spec.seed = 920;
      cfg.apply_engine(spec);
      cfg.apply_faults(spec);
      spec.byzantine_fraction = frac;
      const auto result = run_cell(std::move(spec));
      const auto& agg = result.aggregate;
      t.row()
          .add(frac, 2)
          .add(agg.estimate_error.mean(), 4)
          .add(agg.informed_fraction.mean(), 4)
          .add(agg.rounds.mean(), 1)
          .add(agg.payload_per_node.mean(), 2);
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: poisoned ID lists are indistinguishable from honest digests,\n"
               "so every injection plants a ghost that inflates estimates for up to\n"
               "suspicion_after rounds. The error grows with the traitor fraction but\n"
               "the one-hop freshness rule keeps ghosts from re-relaying, so the\n"
               "inflation stays proportional instead of compounding.\n";

  if (!cfg.out.empty()) {
    std::ofstream f(cfg.out);
    if (!f) {
      std::cerr << "cannot write " << cfg.out << "\n";
      return 1;
    }
    runner::write_scenarios_json(f, "churn", results);
    std::cerr << "wrote " << cfg.out << "\n";
  }
  return 0;
}
