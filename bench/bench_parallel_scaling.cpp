// Parallel round-execution scaling: contacts/sec of the sharded phase-1
// executor (sim/parallel) across thread counts, against the serial engine on
// the same workload. This is the experiment behind the PR 2 acceptance
// criterion (>1.5x at 4 threads on a multi-core host, guarded - a
// single-core CI box shows ~1x and that is expected, not a failure).
//
// Workloads: (a) every node pushes the rumor to a uniform random node -
// phase 1 (initiate + draw + meter + encode) dominates and is what the
// shards parallelise; (b) push_pull with set_parallel_delivery(true) -
// phases 2-3 fan over the pool per receiver bucket (PR 5), measuring the
// delivery-phase scaling on top of the sharded phase 1. Knowledge tracking
// and Delta metering off, as in large experiment runs.
//
// The bench host may be noisy (see ROADMAP.md): every (threads, n)
// configuration is measured `reps` times and the MEDIAN contacts/sec is the
// headline number; min/max are reported alongside.
//
// Output: JSON on stdout (optionally --out=FILE):
//   ./bench_parallel_scaling --out=BENCH_parallel_scaling.json
// Options: --n=1e6, --rounds=R (default 10), --reps=K / --repeats=K (default 5),
//          --threads=1,2,4,8 (comma list), --quick (n=1e5, 3 reps).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/parallel/parallel_engine.hpp"

namespace {

using namespace gossip;
using Clock = std::chrono::steady_clock;

struct PushWorkload {
  std::optional<sim::Contact> initiate(std::uint32_t) const {
    return sim::Contact::push_random(sim::Message::rumor());
  }
  void on_push(std::uint32_t, const sim::Message&) const {}
};

// Delivery-phase scaling workload: half push, half pull, so phases 2-3
// carry real work for the receiver-bucketed pool execution
// (set_parallel_delivery) to spread. Hooks touch no shared state, as the
// parallel-delivery contract requires.
struct PushPullWorkload {
  std::optional<sim::Contact> initiate(std::uint32_t v) const {
    if ((v & 1) == 0) return sim::Contact::push_random(sim::Message::rumor());
    return sim::Contact::pull_random();
  }
  sim::Message respond(std::uint32_t) const { return sim::Message::rumor(); }
  void on_push(std::uint32_t, const sim::Message&) const {}
  void on_pull_reply(std::uint32_t, const sim::Message&) const {}
};

struct Result {
  std::uint64_t n = 0;
  std::string path;         // "serial" | "sharded"
  unsigned threads = 0;     // 0 for the serial engine
  std::uint64_t rounds = 0;
  std::uint64_t contacts_per_round = 0;
  double median_cps = 0, min_cps = 0, max_cps = 0;
};

template <class Workload, class MakeEngine>
Result measure(std::uint32_t n, unsigned threads, const char* path, unsigned rounds,
               unsigned reps, MakeEngine&& make_engine) {
  Result res;
  res.n = n;
  res.path = path;
  res.threads = threads;
  res.rounds = rounds;
  std::vector<double> cps;
  for (unsigned rep = 0; rep < reps; ++rep) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 42;
    sim::Network net(o);
    auto engine = make_engine(net);
    engine->metrics().set_track_involvement(false);
    Workload w;
    // Warm-up sizes every scratch buffer (and spins the pool up once).
    engine->run_round(w);
    engine->run_round(w);
    engine->metrics().reset();
    const auto start = Clock::now();
    for (unsigned r = 0; r < rounds; ++r) engine->run_round(w);
    const auto stop = Clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    const std::uint64_t contacts = engine->metrics().run().total.connections;
    res.contacts_per_round = contacts / rounds;
    cps.push_back(static_cast<double>(contacts) / seconds);
  }
  std::sort(cps.begin(), cps.end());
  res.median_cps = cps[cps.size() / 2];
  res.min_cps = cps.front();
  res.max_cps = cps.back();
  return res;
}

void emit_json(std::ostream& os, const std::vector<Result>& results,
               unsigned hardware_threads) {
  double serial_median = 0, one_thread_median = 0, serial_pp_median = 0;
  for (const Result& r : results) {
    if (r.path == "serial") serial_median = r.median_cps;
    if (r.path == "sharded" && r.threads == 1) one_thread_median = r.median_cps;
    if (r.path == "serial_push_pull") serial_pp_median = r.median_cps;
  }
  os << "{\n  \"bench\": \"parallel_scaling\",\n  \"unit\": \"contacts_per_sec\",\n"
     << "  \"workloads\": {\"serial|sharded\": \"push\", "
     << "\"serial_push_pull|parallel_delivery_push_pull\": \"push_pull, "
     << "pool-executed delivery phases (64 receiver buckets)\"},\n"
     << "  \"config\": \"knowledge tracking off, Delta metering off\",\n"
     << "  \"hardware_threads\": " << hardware_threads << ",\n"
     << "  \"note\": \"medians over repeated runs; speedups are meaningful only "
     << "when hardware_threads covers the thread count (single-core CI shows ~1x "
     << "by construction)\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    {\"n\": " << r.n << ", \"path\": \"" << r.path
       << "\", \"threads\": " << r.threads << ", \"rounds\": " << r.rounds
       << ", \"contacts_per_round\": " << r.contacts_per_round
       << ", \"median_contacts_per_sec\": " << static_cast<std::uint64_t>(r.median_cps)
       << ", \"min\": " << static_cast<std::uint64_t>(r.min_cps)
       << ", \"max\": " << static_cast<std::uint64_t>(r.max_cps);
    if (r.path == "sharded" && one_thread_median > 0) {
      os << ", \"speedup_vs_1_thread\": " << r.median_cps / one_thread_median;
    }
    if (r.path == "sharded" && serial_median > 0) {
      os << ", \"vs_serial_engine\": " << r.median_cps / serial_median;
    }
    if (r.path == "parallel_delivery_push_pull" && serial_pp_median > 0) {
      os << ", \"vs_serial_push_pull\": " << r.median_cps / serial_pp_median;
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

std::vector<unsigned> parse_threads(const std::string& spec) {
  std::vector<unsigned> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      const unsigned long v = std::stoul(item);
      if (v == 0 || v > 256) throw std::out_of_range(item);
      out.push_back(static_cast<unsigned>(v));
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad --threads entry: '%s' (want e.g. 1,2,4,8)\n",
                   item.c_str());
      std::exit(2);
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "--threads needs at least one value\n");
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t n = 1000000;
  unsigned rounds = 10;
  unsigned reps = 5;
  std::vector<unsigned> threads{1, 2, 4, 8};
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      try {
        const double v = std::stod(arg.substr(4));
        if (v < 2 || v > 4e9) throw std::out_of_range(arg);
        n = static_cast<std::uint32_t>(v);
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --n value: '%s'\n", arg.c_str() + 4);
        return 2;
      }
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = static_cast<unsigned>(std::strtoul(arg.c_str() + 9, nullptr, 10));
      if (rounds == 0) {
        std::fprintf(stderr, "bad --rounds value\n");
        return 2;
      }
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<unsigned>(std::strtoul(arg.c_str() + 7, nullptr, 10));
      if (reps == 0) {
        std::fprintf(stderr, "bad --reps value\n");
        return 2;
      }
    } else if (arg.rfind("--repeats=", 0) == 0) {
      // Synonym for --reps, matching bench_engine_throughput's flag.
      reps = static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 10));
      if (reps == 0) {
        std::fprintf(stderr, "bad --repeats value\n");
        return 2;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = parse_threads(arg.substr(10));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--quick") {
      n = 100000;
      reps = 3;
      rounds = 6;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  const unsigned hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  std::vector<Result> results;

  results.push_back(
      measure<PushWorkload>(n, 0, "serial", rounds, reps, [](sim::Network& net) {
        return std::make_unique<sim::Engine>(net);
      }));
  std::fprintf(stderr, "n=%-9u serial            %8.2f Mcontacts/s (median of %u)\n", n,
               results.back().median_cps / 1e6, reps);
  for (const unsigned t : threads) {
    results.push_back(
        measure<PushWorkload>(n, t, "sharded", rounds, reps, [t](sim::Network& net) {
          return std::make_unique<sim::parallel::ParallelEngine>(
              net, sim::parallel::ParallelOptions{.threads = t});
        }));
    std::fprintf(stderr, "n=%-9u sharded %2u thread%s %8.2f Mcontacts/s (median of %u)\n",
                 n, t, t == 1 ? " " : "s", results.back().median_cps / 1e6, reps);
  }

  // Delivery-phase scaling (PR 5): push_pull workload, phases 2-3 fanned
  // over the pool per receiver bucket (64 pinned so the partition exists at
  // every n; results are bit-identical to the serial sweep by contract).
  results.push_back(measure<PushPullWorkload>(n, 0, "serial_push_pull", rounds, reps,
                                              [](sim::Network& net) {
                                                return std::make_unique<sim::Engine>(net);
                                              }));
  std::fprintf(stderr, "n=%-9u serial push_pull  %8.2f Mcontacts/s (median of %u)\n", n,
               results.back().median_cps / 1e6, reps);
  for (const unsigned t : threads) {
    results.push_back(measure<PushPullWorkload>(
        n, t, "parallel_delivery_push_pull", rounds, reps, [t](sim::Network& net) {
          return std::make_unique<sim::parallel::ParallelEngine>(
              net, sim::parallel::ParallelOptions{.threads = t,
                                                  .delivery_buckets = 64,
                                                  .parallel_delivery = true});
        }));
    std::fprintf(stderr,
                 "n=%-9u par-dlvry %2u thread%s %8.2f Mcontacts/s (median of %u)\n", n, t,
                 t == 1 ? " " : "s", results.back().median_cps / 1e6, reps);
  }

  emit_json(std::cout, results, hardware_threads);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    emit_json(f, results, hardware_threads);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
