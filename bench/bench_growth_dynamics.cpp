// E7 - Phase dynamics (Lemmas 5, 6, 8, 10, 11, 12, 13): the internal growth
// behaviour each proof relies on, observed through the phase instrumentation:
//   * GrowInitialClusters: clustered mass doubles per iteration and stops at
//     Theta(n / log n) for Cluster2 (Lemmas 5, 10, 11);
//   * SquareClusters: cluster size jumps quadratically per iteration
//     (Lemmas 6, 12);
//   * BoundedClusterPush: mass doubles per iteration until the growth-stop
//     fires near Theta(n) (Lemma 13);
//   * UnclusteredNodesPull: the unclustered fraction x squares per round
//     (x -> O(x^2), Lemma 8).
#include <iostream>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/cluster1.hpp"
#include "core/cluster2.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const std::uint32_t n = cfg.full ? (1u << 20) : (1u << 18);

  bench::print_header("E7: phase dynamics inside Cluster1/Cluster2",
                      "Lemma 5/11: exponential recruiting; Lemma 6/12: size "
                      "squaring; Lemma 13: bounded push; Lemma 8: pull fraction "
                      "squaring");

  struct Row {
    std::string phase;
    std::uint64_t step;
    core::PhaseSnapshot snap;
  };
  std::vector<Row> rows;
  const auto observer = [&rows](const core::PhaseSnapshot& s) {
    rows.push_back(Row{std::string(s.phase), s.step, s});
  };

  sim::NetworkOptions o;
  o.n = n;
  o.seed = 7;
  sim::Network net(o);
  sim::Engine engine(net);
  core::Cluster2 algo(engine, core::Cluster2Options{}, cluster::DriverOptions{}, observer);
  const auto report = algo.run(0);
  std::cout << "\nCluster2, n = " << n << ": rounds = " << report.rounds
            << ", all informed = " << (report.all_informed ? "yes" : "NO") << "\n";

  Table grow("GrowInitialClusters trajectory (mass ~doubles, stops near n/log n = " +
                 format_double(static_cast<double>(n) / log2d(n), 0) + ")",
             {"iter", "clusters", "clustered nodes", "growth x", "max size"});
  Table square("SquareClusters trajectory (sizes jump ~quadratically)",
               {"iter", "schedule s", "clusters", "min size", "max size"});
  Table bounded("BoundedClusterPush trajectory (mass ~doubles until stop near n)",
                {"iter", "clustered nodes", "growth x", "fraction of n"});
  Table pull("UnclusteredNodesPull trajectory (unclustered fraction squares)",
             {"round", "unclustered", "fraction x", "x_prev^2 * c"});

  double prev_mass = 0, prev_bp = 0, prev_x = 1.0;
  for (const auto& r : rows) {
    const auto& c = r.snap.clustering;
    if (r.phase == "grow") {
      const auto mass = static_cast<double>(c.clustered_nodes);
      grow.row()
          .add(r.step)
          .add(c.clusters)
          .add(c.clustered_nodes)
          .add(prev_mass > 0 ? mass / prev_mass : 0.0, 2)
          .add(c.max_size);
      prev_mass = mass;
    } else if (r.phase == "square") {
      square.row()
          .add(r.step)
          .add(r.snap.schedule_s)
          .add(c.clusters)
          .add(c.min_size)
          .add(c.max_size);
    } else if (r.phase == "bounded_push") {
      const auto mass = static_cast<double>(c.clustered_nodes);
      bounded.row()
          .add(r.step)
          .add(c.clustered_nodes)
          .add(prev_bp > 0 ? mass / prev_bp : 0.0, 2)
          .add(mass / n, 3);
      prev_bp = mass;
    } else if (r.phase == "pull") {
      const double x = static_cast<double>(c.unclustered_nodes) / n;
      pull.row()
          .add(r.step)
          .add(c.unclustered_nodes)
          .add(x, 6)
          .add(prev_x * prev_x, 6);
      prev_x = x;
    }
  }
  grow.print(std::cout);
  square.print(std::cout);
  bounded.print(std::cout);
  pull.print(std::cout);

  // Cluster1 square-phase contrast: squaring with all of the network
  // clustered (Lemma 6), where s -> Theta(s^2) without the /log n factor.
  rows.clear();
  sim::NetworkOptions o1;
  o1.n = n;
  o1.seed = 7;
  sim::Network net1(o1);
  sim::Engine engine1(net1);
  core::Cluster1 algo1(engine1, core::Cluster1Options{}, cluster::DriverOptions{}, observer);
  (void)algo1.run(0);
  Table square1("Cluster1 SquareClusters (s <- Theta(s^2), Lemma 6)",
                {"iter", "schedule s", "clusters", "min size", "max size"});
  for (const auto& r : rows) {
    if (r.phase != "square") continue;
    const auto& c = r.snap.clustering;
    square1.row()
        .add(r.step)
        .add(r.snap.schedule_s)
        .add(c.clusters)
        .add(c.min_size)
        .add(c.max_size);
  }
  square1.print(std::cout);

  std::cout << "\nReading: the growth-x columns sit near 2.0 until each phase's\n"
               "stopping rule fires; the square tables show the doubly-exponential\n"
               "schedule; the pull table's x column tracks x_prev^2 (Lemma 8).\n";
  return 0;
}
