// E2 - Message complexity (Theorem 2's O(1) messages per node vs. Theorem
// 1's O(sqrt(log n)) and the baselines' growing curves).
//
// Reports both metering conventions (see sim/metrics.hpp): payload messages
// (content-carrying transmissions, the [10] convention behind the paper's
// O(1) claim) and connections (every initiated contact). The reproducible
// shape: Cluster2 flat in n; RRS ~ log log n; Avin-Elsasser ~ sqrt(log n);
// PUSH ~ log n.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/math.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const auto sizes = cfg.size_sweep();
  const auto algorithms = bench::standard_algorithms(1024, cfg.threads, cfg.shard_size, cfg.delivery_buckets);

  bench::print_header(
      "E2: messages per node",
      "Cluster2: O(1)/node [Thm 2] - beats both lower bounds of [10]; "
      "Cluster1: unoptimized; Avin-Elsasser: O(sqrt(log n)) [Thm 1]; "
      "RRS: O(log log n) [10]; PUSH: Theta(log n) [12]");

  std::vector<std::string> headers{"n"};
  for (const auto& a : algorithms) headers.push_back(a.name);

  Table payload("payload messages per node (mean over " + std::to_string(cfg.seeds) +
                    " seeds)",
                headers);
  Table conns("connections per node (every initiated contact)", headers);
  std::vector<std::vector<double>> payload_means(algorithms.size());

  for (const std::uint32_t n : sizes) {
    payload.row().add(std::uint64_t{n});
    conns.row().add(std::uint64_t{n});
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      const auto agg = bench::sweep(algorithms[i], n, cfg.seeds);
      payload_means[i].push_back(agg.payload_per_node.mean());
      payload.add(agg.payload_per_node.mean(), 2);
      conns.add(agg.connections_per_node.mean(), 2);
    }
  }
  payload.print(std::cout);
  conns.print(std::cout);

  Table shape("payload growth ratio msgs(n)/msgs(" + std::to_string(sizes.front()) + ")",
              headers);
  for (std::size_t row = 0; row < sizes.size(); ++row) {
    shape.row().add(std::uint64_t{sizes[row]});
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      shape.add(payload_means[i][row] / payload_means[i][0], 2);
    }
  }
  shape.print(std::cout);

  std::cout << "\nReading: Cluster2's and C3+CPP's payload column must stay flat\n"
               "(ratio ~1.0) while PUSH grows with log n (ratio ~2 over this range)\n"
               "and RRS/AvinElsasser sit in between, per their bounds.\n";
  return 0;
}
