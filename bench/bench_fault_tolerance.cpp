// E6 - Fault tolerance (Theorem 19): with F obliviously chosen node
// failures, the algorithms keep their round/message bounds and inform all
// but o(F) surviving nodes.
//
// Sweeps the failure fraction and the adversary strategy; the reproducible
// shape is the "uninformed survivors / F" column collapsing toward 0 (o(F))
// while rounds and messages stay at their failure-free values.
//
// Runs on the scenario runner: every (algorithm, F/n, adversary) cell is a
// ScenarioSpec with the fault model as data, executed by TrialRunner
// (--trial-threads=N parallelises the seed sweep with bit-identical
// aggregates; --out=FILE emits the shared JSON report schema).
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "runner/json_report.hpp"
#include "runner/registry.hpp"
#include "runner/trial_runner.hpp"
#include "sim/fault.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const std::uint32_t n = cfg.full ? (1u << 18) : (1u << 16);

  bench::print_header(
      "E6: oblivious node failures",
      "Theorem 19: F oblivious failures -> all but o(F) survivors informed; "
      "round-, message- and bit-complexity preserved");

  runner::TrialRunner trials(cfg.trial_threads);
  std::vector<runner::ScenarioResult> results;
  for (const char* algorithm : {"cluster1", "cluster2", "cluster3_push_pull"}) {
    const auto& entry = runner::require_algorithm(algorithm);
    Table t(std::string(entry.display) + " under failures (n = " + std::to_string(n) +
                ", " + std::to_string(cfg.seeds) + " seeds)",
            {"F/n", "adversary", "uninformed (mean)", "uninformed/F", "informed frac",
             "rounds", "msg/node"});
    for (const double frac : {0.0, 0.01, 0.05, 0.1, 0.2, 0.3}) {
      for (const auto strategy :
           {sim::FaultStrategy::kRandomSubset, sim::FaultStrategy::kSmallestIds}) {
        if (frac == 0.0 && strategy != sim::FaultStrategy::kRandomSubset) continue;
        runner::ScenarioSpec spec;
        spec.name = std::string(entry.id) + "/F=" + format_double(frac, 2) + "/" +
                    sim::to_string(strategy);
        spec.algorithm = entry.id;
        spec.n = n;
        spec.trials = cfg.seeds;
        spec.seed = 500;
        spec.engine_threads = cfg.threads;
        spec.fault_fraction = frac;
        spec.fault_strategy = strategy;
        auto result = trials.run(spec);
        const auto& agg = result.aggregate;
        const auto f = spec.fault_count();
        t.row()
            .add(frac, 2)
            .add(sim::to_string(strategy))
            .add(agg.uninformed.mean(), 1)
            .add(f ? agg.uninformed.mean() / static_cast<double>(f) : 0.0, 4)
            .add(agg.informed_fraction.mean(), 4)
            .add(agg.rounds.mean(), 1)
            .add(agg.payload_per_node.mean(), 2);
        if (!cfg.out.empty()) results.push_back(std::move(result));
      }
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: 'uninformed/F' staying near 0 across failure fractions\n"
               "and adversaries is Theorem 19's all-but-o(F) guarantee; the rounds\n"
               "column is unchanged from F=0 (the schedule is deterministic) and\n"
               "msg/node stays at its failure-free level.\n";

  if (!cfg.out.empty()) {
    std::ofstream f(cfg.out);
    if (!f) {
      std::cerr << "cannot write " << cfg.out << "\n";
      return 1;
    }
    runner::write_scenarios_json(f, "fault_tolerance", results);
    std::cerr << "wrote " << cfg.out << "\n";
  }
  return 0;
}
