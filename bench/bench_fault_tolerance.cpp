// E6 - Fault tolerance (Theorem 19): with F obliviously chosen node
// failures, the algorithms keep their round/message bounds and inform all
// but o(F) surviving nodes.
//
// Sweeps the failure fraction and the adversary strategy; the reproducible
// shape is the "uninformed survivors / F" column collapsing toward 0 (o(F))
// while rounds and messages stay at their failure-free values.
#include <iostream>

#include "bench_util.hpp"
#include "sim/fault.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const std::uint32_t n = cfg.full ? (1u << 18) : (1u << 16);

  bench::print_header(
      "E6: oblivious node failures",
      "Theorem 19: F oblivious failures -> all but o(F) survivors informed; "
      "round-, message- and bit-complexity preserved");

  const auto algorithms = bench::standard_algorithms();
  for (const auto& algo : algorithms) {
    if (algo.name != "Cluster1" && algo.name != "Cluster2" && algo.name != "C3+CPP") {
      continue;
    }
    Table t(algo.name + " under failures (n = " + std::to_string(n) + ", " +
                std::to_string(cfg.seeds) + " seeds)",
            {"F/n", "adversary", "uninformed (mean)", "uninformed/F", "informed frac",
             "rounds", "msg/node"});
    for (const double frac : {0.0, 0.01, 0.05, 0.1, 0.2, 0.3}) {
      for (const auto strategy :
           {sim::FaultStrategy::kRandomSubset, sim::FaultStrategy::kSmallestIds}) {
        if (frac == 0.0 && strategy != sim::FaultStrategy::kRandomSubset) continue;
        const auto f = static_cast<std::uint32_t>(frac * n);
        RunningStat uninformed, rounds, msgs, informed_frac;
        for (unsigned seed = 1; seed <= cfg.seeds; ++seed) {
          sim::NetworkOptions o;
          o.n = n;
          o.seed = 500 + seed;
          sim::Network net(o);
          Rng adversary(mix64(seed * 31337ULL));  // oblivious: independent stream
          for (std::uint32_t v : sim::choose_failures(net, f, strategy, adversary)) {
            net.fail(v);
          }
          std::uint32_t source = 0;
          while (!net.alive(source)) ++source;
          const auto rep = algo.run(net, source);
          uninformed.add(static_cast<double>(rep.uninformed()));
          informed_frac.add(rep.informed_fraction());
          rounds.add(static_cast<double>(rep.rounds));
          msgs.add(rep.payload_messages_per_node());
        }
        t.row()
            .add(frac, 2)
            .add(sim::to_string(strategy))
            .add(uninformed.mean(), 1)
            .add(f ? uninformed.mean() / static_cast<double>(f) : 0.0, 4)
            .add(informed_frac.mean(), 4)
            .add(rounds.mean(), 1)
            .add(msgs.mean(), 2);
      }
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: 'uninformed/F' staying near 0 across failure fractions\n"
               "and adversaries is Theorem 19's all-but-o(F) guarantee; the rounds\n"
               "column is unchanged from F=0 (the schedule is deterministic) and\n"
               "msg/node stays at its failure-free level.\n";
  return 0;
}
