// E6 - Fault tolerance (Theorem 19 and beyond): node crashes and lossy
// channels via the pluggable sim::FaultModel timeline.
//
// Three sweeps:
//   1. Static crashes (Theorem 19): F oblivious pre-run failures - the
//      reproducible shape is "uninformed survivors / F" collapsing toward 0
//      (all but o(F) informed) while rounds and messages stay at their
//      failure-free values.
//   2. Lossy channels (Doerr-Fouz style): every contact's payload dropped
//      independently with probability p - rumor spreading stays fast, rounds
//      grow roughly like 1/(1-p).
//   3. Scheduled mid-run crashes: the SAME 20% crash set fired at the start
//      of round t. PUSH-PULL recovers (later crash -> closer to the pre-run
//      row); the cluster algorithm funnels the rumor through its merged
//      coordination skeleton, which a mid-run crash can decapitate - the
//      sweep maps where Theorem 19's pre-run guarantee stops applying.
//
// Runs on the scenario runner: every cell is a ScenarioSpec with the fault
// model as data (fault_fraction/fault_strategy/crash_round/loss_prob),
// executed by TrialRunner (--trial-threads=N parallelises the seed sweep
// with bit-identical aggregates; --out=FILE emits the shared JSON report
// schema). --loss-prob / --crash-round / --join-rate / --crash-rate
// additionally overlay the static sweep (1), so e.g. `--loss-prob=0.2`
// reruns Theorem 19 on lossy channels and `--join-rate=0.5` reruns it while
// fresh nodes keep arriving (the dedicated churn sweeps live in bench_churn).
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "runner/json_report.hpp"
#include "runner/registry.hpp"
#include "runner/trial_runner.hpp"
#include "sim/fault.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const std::uint32_t n = cfg.full ? (1u << 18) : (1u << 16);

  bench::print_header(
      "E6: node failures and lossy channels",
      "Theorem 19: F oblivious failures -> all but o(F) survivors informed; "
      "round-, message- and bit-complexity preserved. Lossy channels and "
      "mid-run crashes degrade gracefully (FaultModel timeline)");

  runner::TrialRunner trials(cfg.trial_threads);
  std::vector<runner::ScenarioResult> results;
  const auto run_cell = [&](runner::ScenarioSpec spec) {
    auto result = trials.run(spec);
    if (!cfg.out.empty()) results.push_back(result);
    return result;
  };

  // --- Sweep 1: static (pre-run) crashes, the Theorem 19 experiment. ------
  for (const char* algorithm : {"cluster1", "cluster2", "cluster3_push_pull"}) {
    const auto& entry = runner::require_algorithm(algorithm);
    Table t(std::string(entry.display) + " under failures (n = " + std::to_string(n) +
                ", " + std::to_string(cfg.seeds) + " seeds)",
            {"F/n", "adversary", "uninformed (mean)", "uninformed/F", "informed frac",
             "rounds", "msg/node"});
    for (const double frac : {0.0, 0.01, 0.05, 0.1, 0.2, 0.3}) {
      for (const auto strategy :
           {sim::FaultStrategy::kRandomSubset, sim::FaultStrategy::kSmallestIds}) {
        if (frac == 0.0 && strategy != sim::FaultStrategy::kRandomSubset) continue;
        runner::ScenarioSpec spec;
        spec.name = std::string(entry.id) + "/F=" + format_double(frac, 2) + "/" +
                    sim::to_string(strategy);
        spec.algorithm = entry.id;
        spec.n = n;
        spec.trials = cfg.seeds;
        spec.seed = 500;
        cfg.apply_engine(spec);
        spec.fault_fraction = frac;
        spec.fault_strategy = strategy;
        // Overlay flags: --loss-prob / --crash-round rerun this sweep under
        // loss or with the crash deferred mid-run (apply_faults skips the
        // crash retiming on the F = 0 row, which has no set to defer).
        cfg.apply_faults(spec);
        const auto result = run_cell(std::move(spec));
        const auto& agg = result.aggregate;
        const auto f = result.spec.fault_count();
        t.row()
            .add(frac, 2)
            .add(sim::to_string(strategy))
            .add(agg.uninformed.mean(), 1)
            .add(f ? agg.uninformed.mean() / static_cast<double>(f) : 0.0, 4)
            .add(agg.informed_fraction.mean(), 4)
            .add(agg.rounds.mean(), 1)
            .add(agg.payload_per_node.mean(), 2);
      }
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: 'uninformed/F' staying near 0 across failure fractions\n"
               "and adversaries is Theorem 19's all-but-o(F) guarantee; the rounds\n"
               "column is unchanged from F=0 (the schedule is deterministic) and\n"
               "msg/node stays at its failure-free level.\n";

  // --- Sweep 2: lossy channels (per-contact payload drop). ----------------
  for (const char* algorithm : {"cluster2", "push_pull"}) {
    const auto& entry = runner::require_algorithm(algorithm);
    Table t(std::string(entry.display) + " on lossy channels (n = " +
                std::to_string(n) + ", " + std::to_string(cfg.seeds) + " seeds)",
            {"loss p", "informed frac", "uninformed", "rounds", "msg/node",
             "bits/node"});
    for (const double p : {0.0, 0.05, 0.15, 0.3, 0.5}) {
      runner::ScenarioSpec spec;
      spec.name = std::string(entry.id) + "/loss=" + format_double(p, 2);
      spec.algorithm = entry.id;
      spec.n = n;
      spec.trials = cfg.seeds;
      spec.seed = 600;
      cfg.apply_engine(spec);
      spec.loss_prob = p;
      const auto result = run_cell(std::move(spec));
      const auto& agg = result.aggregate;
      t.row()
          .add(p, 2)
          .add(agg.informed_fraction.mean(), 4)
          .add(agg.uninformed.mean(), 1)
          .add(agg.rounds.mean(), 1)
          .add(agg.payload_per_node.mean(), 2)
          .add(agg.bits_per_node.mean(), 1);
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: rumor spreading survives independent transmission failures\n"
               "(Doerr-Fouz): PUSH-PULL's rounds grow like ~1/(1-p) while coverage\n"
               "stays complete; the cluster algorithm runs a fixed schedule, so loss\n"
               "shows up as uninformed stragglers instead of extra rounds.\n";

  // --- Sweep 3: scheduled mid-run crashes (kill 20% at round t). ----------
  for (const char* algorithm : {"cluster2", "push_pull"}) {
    const auto& entry = runner::require_algorithm(algorithm);
    Table t(std::string(entry.display) + ": 20% random crash at round t (n = " +
                std::to_string(n) + ", " + std::to_string(cfg.seeds) + " seeds)",
            {"crash round", "survivors", "informed frac", "uninformed", "rounds"});
    for (const std::int64_t t_crash : {std::int64_t{0}, std::int64_t{2}, std::int64_t{4},
                                       std::int64_t{8}, std::int64_t{16},
                                       runner::ScenarioSpec::kCrashPreRun}) {
      runner::ScenarioSpec spec;
      spec.name = std::string(entry.id) + "/crash@" +
                  (t_crash == runner::ScenarioSpec::kCrashPreRun
                       ? std::string("pre-run")
                       : std::to_string(t_crash));
      spec.algorithm = entry.id;
      spec.n = n;
      spec.trials = cfg.seeds;
      spec.seed = 700;
      cfg.apply_engine(spec);
      spec.fault_fraction = 0.2;
      spec.fault_strategy = sim::FaultStrategy::kRandomSubset;
      spec.crash_round = t_crash;
      const auto result = run_cell(std::move(spec));
      const auto& agg = result.aggregate;
      t.row()
          .add(t_crash == runner::ScenarioSpec::kCrashPreRun ? "pre-run"
                                                             : std::to_string(t_crash))
          .add(static_cast<std::uint64_t>(n) - result.spec.fault_count())
          .add(agg.informed_fraction.mean(), 4)
          .add(agg.uninformed.mean(), 1)
          .add(agg.rounds.mean(), 1);
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: PUSH-PULL retries until every survivor is informed, so a\n"
               "mid-run crash costs a few rounds but coverage returns to 1 - the\n"
               "later the crash, the closer to the pre-run (Theorem 19) row. The\n"
               "cluster algorithm is the opposite: it funnels the rumor through the\n"
               "final merged-cluster share, so a crash woven into the coordination\n"
               "skeleton (any round past the first) can strand almost everyone -\n"
               "Theorem 19's obliviousness covers PRE-RUN crashes only, and this\n"
               "sweep shows exactly where that boundary bites.\n";

  // --- Sweep 4: the recovery supervisor vs. the brittle baseline. ---------
  // Every adversity above that strands a cluster algorithm, rerun twice:
  // brittle (recovery = false, the PR 4/6 failure mode) and supervised
  // (recovery = true: suspicion-driven re-election, watchdogged repair,
  // push-pull fallback). Seed 502 keeps the source out of the smallest-20%
  // crash set on every trial, so supervised recovery is never information-
  // theoretically impossible - the acceptance bar is informed_fraction
  // min = 1.0 on EVERY supervised decapitation / partition trial. The n is
  // deliberately small: the sweep is a completion/overhead contract (tracked
  // in BENCH_recovery.json), not a throughput measurement.
  const std::uint32_t n_rec = cfg.full ? 1024 : 512;
  std::vector<runner::ScenarioResult> recovery_results;
  struct Adversity {
    const char* key;
    std::int64_t crash_round;       // with the 20% smallest-ID crash set
    std::int64_t partition_round;   // -1 = no partition window
    std::int64_t heal_round;
    const char* loss_schedule;
  };
  const Adversity kAdversities[] = {
      // Smallest-ID crash wave at round 4: beheads the merge leaders.
      {"decap", 4, -1, -1, ""},
      // The same decapitation under a 2-way partition for rounds [6, 40).
      {"partition", 4, 6, 40, ""},
      // 90% payload loss for rounds [2, 30): breaks the relay chains.
      {"loss_burst", runner::ScenarioSpec::kCrashPreRun, -1, -1,
       "burst:0.9:2:30"},
  };
  Table rec_table("Recovery supervisor vs. brittle baseline (n = " +
                      std::to_string(n_rec) + ", " + std::to_string(cfg.seeds) +
                      " seeds, retry budget 3)",
                  {"adversity", "algorithm", "mode", "informed min",
                   "informed mean", "rounds", "bits/node"});
  for (const Adversity& adv : kAdversities) {
    for (const char* algorithm : {"cluster1", "cluster2", "cluster3_push_pull"}) {
      // The loss burst row tracks cluster2 only: the burst that breaks its
      // relay chains is survivable by construction for the other two shapes.
      if (adv.loss_schedule[0] != '\0' && std::string(algorithm) != "cluster2")
        continue;
      for (const bool supervised : {false, true}) {
        runner::ScenarioSpec spec;
        spec.name = std::string(algorithm) + "/" + adv.key + "/" +
                    (supervised ? "supervised" : "brittle");
        spec.algorithm = algorithm;
        spec.n = n_rec;
        spec.trials = cfg.seeds;
        spec.seed = 502;
        cfg.apply_engine(spec);
        if (std::string(algorithm) == "cluster3_push_pull") spec.delta = 64;
        if (adv.crash_round != runner::ScenarioSpec::kCrashPreRun) {
          spec.fault_fraction = 0.2;
          spec.fault_strategy = sim::FaultStrategy::kSmallestIds;
          spec.crash_round = adv.crash_round;
        }
        spec.partition_round = adv.partition_round;
        spec.heal_round = adv.heal_round;
        spec.loss_schedule = adv.loss_schedule;
        spec.recovery = supervised;
        auto result = trials.run(spec);
        const auto& agg = result.aggregate;
        rec_table.row()
            .add(adv.key)
            .add(algorithm)
            .add(supervised ? "supervised" : "brittle")
            .add(agg.informed_fraction.min(), 4)
            .add(agg.informed_fraction.mean(), 4)
            .add(agg.rounds.mean(), 1)
            .add(agg.bits_per_node.mean(), 1);
        recovery_results.push_back(std::move(result));
      }
    }
  }
  rec_table.print(std::cout);

  std::cout << "\nReading: every 'supervised' decapitation/partition row holds\n"
               "informed min = 1.0 - the supervisor re-elects beheaded merge\n"
               "leaders, retries repair under its watchdog, and falls back to\n"
               "plain PUSH-PULL when the budget runs out - where the matching\n"
               "'brittle' row strands all but the source's neighborhood. The\n"
               "price is the rounds/bits overhead in the adjacent columns.\n";

  if (!cfg.out.empty()) {
    std::ofstream f(cfg.out);
    if (!f) {
      std::cerr << "cannot write " << cfg.out << "\n";
      return 1;
    }
    runner::write_scenarios_json(f, "fault_tolerance", results);
    std::cerr << "wrote " << cfg.out << "\n";
  }
  if (!cfg.recovery_out.empty()) {
    std::ofstream f(cfg.recovery_out);
    if (!f) {
      std::cerr << "cannot write " << cfg.recovery_out << "\n";
      return 1;
    }
    runner::write_scenarios_json(f, "recovery", recovery_results);
    std::cerr << "wrote " << cfg.recovery_out << "\n";
  }
  return 0;
}
