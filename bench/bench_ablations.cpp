// E9 (extension) - Ablations of the design choices DESIGN.md calls out.
//
// Each ablation switches off or re-tunes one mechanism and measures what the
// paper's analysis says it buys:
//   A1  MergeAllClusters repetitions: the paper proves 2 suffice
//       asymptotically; at simulable n the split-brain rate vs. repetitions
//       shows why this implementation defaults to 5 O(1)-round repetitions.
//   A2  BoundedClusterPush growth-stop threshold: stopping early starves the
//       final PULL phase (more pull traffic); stopping late wastes pushes -
//       the 1.1 factor from Algorithm 2 sits at the measured sweet spot.
//   A3  Grow-phase mass (the seeds x threshold = n/log n calibration of
//       Lemma 11): more mass buys nothing in rounds but pays linearly in
//       messages - the reason Cluster2 grows only Theta(n/log n) nodes.
//   A4  Settle rounds after simultaneous merges: zero settle rounds leave
//       follow-chains that break the final ClusterShare.
#include <iostream>

#include "bench_util.hpp"
#include "core/cluster2.hpp"
#include "sim/engine.hpp"

namespace {

using namespace gossip;

core::BroadcastReport run_c2(std::uint32_t n, std::uint64_t seed,
                             const core::Cluster2Options& opts) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  sim::Network net(o);
  sim::Engine engine(net);
  core::Cluster2 algo(engine, opts);
  return algo.run(0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const std::uint32_t n = cfg.full ? (1u << 18) : (1u << 16);
  const unsigned seeds = std::max(4u, cfg.seeds);

  bench::print_header("E9 (extension): ablations of Cluster2's design choices",
                      "each row disables/re-tunes one mechanism the analysis relies on");

  // --- A1: MergeAllClusters repetitions -----------------------------------
  Table a1("A1: MergeAllClusters repetitions vs split-brain rate (n = " +
               std::to_string(n) + ")",
           {"reps", "failed runs", "informed frac (min)", "rounds"});
  for (const unsigned reps : {1u, 2u, 3u, 5u}) {
    core::Cluster2Options opts;
    opts.merge_all_reps = reps;
    unsigned failures = 0;
    double min_frac = 1.0;
    std::uint64_t rounds = 0;
    for (unsigned seed = 1; seed <= seeds; ++seed) {
      const auto r = run_c2(n, 3000 + seed, opts);
      failures += r.all_informed ? 0 : 1;
      min_frac = std::min(min_frac, r.informed_fraction());
      rounds = r.rounds;
    }
    a1.row()
        .add(reps)
        .add(std::to_string(failures) + "/" + std::to_string(seeds))
        .add(min_frac, 4)
        .add(rounds);
  }
  a1.print(std::cout);

  // --- A2: BoundedClusterPush stop factor ---------------------------------
  Table a2("A2: BoundedClusterPush growth-stop (paper: 1.1) vs message split",
           {"stop factor", "msg/node total", "bounded_push msgs/node", "pull conns/node",
            "complete"});
  for (const double stop : {1.02, 1.1, 1.3, 1.6}) {
    core::Cluster2Options opts;
    opts.bounded_push_stop = stop;
    RunningStat total, bp, pull;
    bool complete = true;
    for (unsigned seed = 1; seed <= seeds; ++seed) {
      const auto r = run_c2(n, 4000 + seed, opts);
      complete &= r.all_informed;
      total.add(r.payload_messages_per_node());
      for (const auto& ph : r.phases) {
        if (ph.name == "bounded_push") {
          bp.add(static_cast<double>(ph.payload_messages) / n);
        }
        if (ph.name == "pull") {
          pull.add(static_cast<double>(ph.connections) / n);
        }
      }
    }
    a2.row()
        .add(stop, 2)
        .add(total.mean(), 2)
        .add(bp.mean(), 2)
        .add(pull.mean(), 3)
        .add(complete ? "yes" : "NO");
  }
  a2.print(std::cout);

  // --- A3: grow-phase clustered mass --------------------------------------
  Table a3("A3: grow-phase mass calibration (Lemma 11: mass = n/log n) vs cost",
           {"mass factor", "msg/node", "rounds", "complete"});
  for (const double mass : {0.25, 1.0, 4.0, 16.0}) {
    core::Cluster2Options opts;
    opts.mass_factor = mass;
    RunningStat msgs, rounds;
    bool complete = true;
    for (unsigned seed = 1; seed <= seeds; ++seed) {
      const auto r = run_c2(n, 5000 + seed, opts);
      complete &= r.all_informed;
      msgs.add(r.payload_messages_per_node());
      rounds.add(static_cast<double>(r.rounds));
    }
    a3.row().add(mass, 2).add(msgs.mean(), 2).add(rounds.mean(), 1).add(
        complete ? "yes" : "NO");
  }
  a3.print(std::cout);

  // --- A4: settle rounds ----------------------------------------------------
  Table a4("A4: settle (path-compression) rounds after simultaneous merges",
           {"settle rounds", "failed runs", "informed frac (min)"});
  for (const unsigned settle : {0u, 1u, 2u}) {
    core::Cluster2Options opts;
    opts.settle_rounds = settle;
    unsigned failures = 0;
    double min_frac = 1.0;
    for (unsigned seed = 1; seed <= seeds; ++seed) {
      const auto r = run_c2(n, 6000 + seed, opts);
      failures += r.all_informed ? 0 : 1;
      min_frac = std::min(min_frac, r.informed_fraction());
    }
    a4.row()
        .add(settle)
        .add(std::to_string(failures) + "/" + std::to_string(seeds))
        .add(min_frac, 4);
  }
  a4.print(std::cout);

  std::cout << "\nReading: A1 motivates the 5-repetition default (the paper's 2 are\n"
               "asymptotic); A2 shows the 1.1 stop balancing push cost against pull\n"
               "cost; A3 shows message cost scaling with the clustered mass while\n"
               "rounds stay flat - the Lemma 11 calibration is what makes Cluster2\n"
               "message-optimal; A4 shows the settle rounds earning their keep.\n";
  return 0;
}
