// E4 - The Omega(log log n) lower bound (Theorem 3, Lemma 14).
//
// For each (n, seed): pre-sample the round-t random contacts G_1..G_T,
// form K' = union G_i, and find the smallest T with diam(K') <= 2^T - the
// Lemma 14 necessary condition for ANY algorithm (unbounded messages,
// non-oblivious, unbounded fan-out) to broadcast in T rounds. Theorem 3
// says this minimum exceeds 0.99 log log n w.h.p.; the table tracks the
// empirical minimum against that curve, plus the max-degree/diameter
// statistics the proof uses. Also shown: the upper-bound side - Cluster1's
// measured rounds sit a constant factor above the same curve.
#include <iostream>

#include "analysis/knowledge_graph.hpp"
#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  auto cfg = bench::Config::parse(argc, argv);
  if (cfg.full) cfg.max_exp = 22;  // pure BFS: larger sizes are affordable

  bench::print_header(
      "E4: information-theoretic round floor",
      "Theorem 3: any algorithm needs >= 0.99 log log n rounds w.h.p. "
      "(via Lemma 14: K_T subset (G_1 u ... u G_T)^(2^T))");

  Table t("empirical minimum feasible rounds  (min T with diam(union G_i) <= 2^T)",
          {"n", "0.99*loglog n", "min T (mean)", "min T (min..max)", "diam(K') at T",
           "max deg at T"});
  for (unsigned e = 8; e <= cfg.max_exp; e += 2) {
    const std::uint32_t n = 1u << e;
    RunningStat min_t, diam, deg;
    for (unsigned seed = 1; seed <= cfg.seeds; ++seed) {
      const unsigned t_min = analysis::min_feasible_rounds(n, seed);
      min_t.add(static_cast<double>(t_min));
      Rng rng(mix64(seed * 7919ULL + n));
      const auto res = analysis::check_feasibility(n, t_min, rng);
      if (res.connected) {
        diam.add(static_cast<double>(res.diameter_upper));
        deg.add(static_cast<double>(res.max_degree));
      }
    }
    t.row()
        .add(std::uint64_t{n})
        .add(0.99 * loglog2d(n), 2)
        .add(min_t.mean(), 2)
        .add(format_double(min_t.min(), 0) + ".." + format_double(min_t.max(), 0))
        .add(diam.mean(), 1)
        .add(deg.mean(), 1);
  }
  t.print(std::cout);

  // Feasibility profile at one size: how sharply the threshold appears.
  const std::uint32_t n_profile = 1u << 16;
  Table prof("feasibility profile at n = 2^16 (per T: connected? diam <= 2^T ?)",
             {"T", "2^T", "connected", "diam(K') [lo..hi]", "feasible"});
  for (unsigned T = 1; T <= 6; ++T) {
    Rng rng(mix64(0xfeedULL + T));
    const auto res = analysis::check_feasibility(n_profile, T, rng);
    prof.row()
        .add(T)
        .add(std::uint64_t{1} << T)
        .add(res.connected ? "yes" : "no")
        .add(res.connected ? format_double(res.diameter_lower, 0) + ".." +
                                 format_double(res.diameter_upper, 0)
                           : "-")
        .add(res.feasible ? "yes" : "no");
  }
  prof.print(std::cout);

  // Upper-bound side: Cluster1's measured rounds against the same curve.
  Table ub("matching upper bound: Cluster1 rounds / loglog n (constant => Thm 9 tight)",
           {"n", "Cluster1 rounds", "rounds / loglog n"});
  const auto c1 = bench::standard_algorithms(1024, cfg.threads, cfg.shard_size, cfg.delivery_buckets)[0];
  for (unsigned e = 10; e <= cfg.max_exp && e <= 20; e += 2) {
    const std::uint32_t n = 1u << e;
    const auto agg = bench::sweep(c1, n, std::min(cfg.seeds, 3u));
    ub.row().add(std::uint64_t{n}).add(agg.rounds.mean(), 1).add(
        agg.rounds.mean() / loglog2d(n), 2);
  }
  ub.print(std::cout);

  std::cout << "\nReading: the measured minimum T tracks 0.99*loglog n within ~1\n"
               "round across the full range, confirming Theorem 3's floor; the\n"
               "Cluster1 ratio column stays near a constant, confirming the\n"
               "matching O(log log n) upper bound (optimality).\n";
  return 0;
}
