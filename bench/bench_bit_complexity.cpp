// E3 - Bit complexity (Theorem 2: O(nb) total bits).
//
// Sweeps the rumor size b at fixed n and the network size n at fixed b.
// The reproducible shapes: (1) Cluster2's bits/node divided by b converges
// to a constant ~1 as b grows (the rumor dominates; ID traffic is O(log n)
// per node); (2) at fixed b, bits/node stays flat in n for Cluster2 while
// Avin-Elsasser picks up its n log^{3/2} n address traffic and PUSH its
// n log n rumor retransmissions.
#include <iostream>

#include "bench_util.hpp"
#include "common/math.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const auto algorithms = bench::standard_algorithms(1024, cfg.threads, cfg.shard_size, cfg.delivery_buckets);

  bench::print_header(
      "E3: total bit complexity",
      "Cluster2: O(nb) bits [Thm 2]; Avin-Elsasser: O(n log^1.5 n + nb log log n) "
      "[Thm 1]; PUSH-PULL: Theta(nb log n / ...) rumor copies");

  // --- sweep b at fixed n -------------------------------------------------
  const std::uint32_t n_fixed = cfg.full ? (1u << 18) : (1u << 16);
  std::vector<std::string> headers{"b (bits)"};
  for (const auto& a : algorithms) headers.push_back(a.name);
  Table per_b("bits per node / b   (n = " + std::to_string(n_fixed) +
                  "; -> constant means O(nb) total)",
              headers);
  for (const std::uint32_t b : {64u, 256u, 1024u, 4096u}) {
    per_b.row().add(std::uint64_t{b});
    for (const auto& algo : algorithms) {
      const auto agg = bench::sweep(algo, n_fixed, cfg.seeds, b);
      per_b.add(agg.bits_per_node.mean() / static_cast<double>(b), 2);
    }
  }
  per_b.print(std::cout);

  // --- sweep n at fixed b -------------------------------------------------
  std::vector<std::string> n_headers{"n"};
  for (const auto& a : algorithms) n_headers.push_back(a.name);
  Table per_n("bits per node   (b = 256; flat column => O(n) total bits)", n_headers);
  for (const std::uint32_t n : cfg.size_sweep()) {
    per_n.row().add(std::uint64_t{n});
    for (const auto& algo : algorithms) {
      const auto agg = bench::sweep(algo, n, cfg.seeds, 256);
      per_n.add(agg.bits_per_node.mean(), 0);
    }
  }
  per_n.print(std::cout);

  std::cout << "\nReading: every node must receive the b-bit rumor once, so bits/\n"
               "node/b >= 1 everywhere; Cluster2 staying at a small constant\n"
               "multiple of b across both sweeps is Theorem 2's O(nb). PUSH's\n"
               "column grows ~log n (every informed node retransmits the rumor\n"
               "each round); Avin-Elsasser carries extra Theta(sqrt(log n)) ID\n"
               "messages per node.\n";
  return 0;
}
