// E1 - Round complexity (Theorems 2 and 9 vs. Theorem 1 [Avin-Elsasser] vs.
// the classical baselines [10, 12]).
//
// Reproduces the paper's headline separation as measured growth curves:
// Cluster1/Cluster2/Cluster3+CPP rounds grow like log log n, Avin-Elsasser
// like sqrt(log n), and the uniform baselines like log n. Absolute round
// counts carry the algorithms' constant factors (each cluster primitive is
// 1-3 rounds), so the reproducible quantity is the *shape*: the normalized
// growth ratio across a 2^10..2^20 size range, printed against the three
// model curves. Also includes the Name-Dropper O(log^2 n) reference on its
// own (discovery) task.
//
// Runs on the scenario runner: each (algorithm, n) cell is a ScenarioSpec
// executed by TrialRunner, so --trial-threads=N parallelises the seed sweep
// (bit-identical aggregates for every N) and --out=FILE emits the shared
// JSON report schema (runner/json_report.hpp).
#include <cmath>
#include <fstream>
#include <iostream>

#include "baselines/name_dropper.hpp"
#include "bench_util.hpp"
#include "common/math.hpp"
#include "runner/json_report.hpp"
#include "runner/registry.hpp"
#include "runner/trial_runner.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const auto sizes = cfg.size_sweep();
  const auto& algorithms = runner::algorithms();  // registry comparison order
  runner::TrialRunner trials(cfg.trial_threads);

  bench::print_header(
      "E1: round complexity to inform all nodes",
      "Cluster1/2: O(log log n) [Thm 2, 9]; Avin-Elsasser: O(sqrt(log n)) "
      "[Thm 1]; PUSH/PULL/PUSH-PULL/RRS: Theta(log n) [10, 12]");

  std::vector<std::string> headers{"n", "loglog n", "sqrt(log n)", "log n"};
  for (const auto& a : algorithms) headers.push_back(a.display);
  Table rounds_table("mean rounds to completion (" + std::to_string(cfg.seeds) + " seeds)",
                     headers);
  std::vector<std::vector<double>> mean_rounds(algorithms.size());
  std::vector<runner::ScenarioResult> results;

  for (const std::uint32_t n : sizes) {
    rounds_table.row()
        .add(std::uint64_t{n})
        .add(loglog2d(n), 2)
        .add(std::sqrt(log2d(n)), 2)
        .add(log2d(n), 1);
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      runner::ScenarioSpec spec;
      spec.name = std::string(algorithms[i].id) + "/n=" + std::to_string(n);
      spec.algorithm = algorithms[i].id;
      spec.n = n;
      spec.trials = cfg.seeds;
      spec.seed = 1000;
      cfg.apply_engine(spec);
      cfg.apply_faults(spec);  // e.g. --loss-prob=0.2: the sweep under loss
      auto result = trials.run(spec);
      const auto& agg = result.aggregate;
      mean_rounds[i].push_back(agg.rounds.mean());
      rounds_table.add(agg.rounds.mean(), 1);
      if (agg.failures) {
        std::cerr << "WARNING: " << algorithms[i].display << " n=" << n << " failed "
                  << agg.failures << "/" << agg.runs << " runs\n";
      }
      if (!cfg.out.empty()) results.push_back(std::move(result));
    }
  }
  rounds_table.print(std::cout);

  // Growth-shape table: rounds(n) / rounds(n_min) against the model curves.
  const double n0 = static_cast<double>(sizes.front());
  Table shape("growth ratio rounds(n)/rounds(" + std::to_string(sizes.front()) +
                  ") vs model curves - who grows like what",
              headers);
  for (std::size_t row = 0; row < sizes.size(); ++row) {
    const double n = static_cast<double>(sizes[row]);
    shape.row()
        .add(std::uint64_t{sizes[row]})
        .add(loglog2d(static_cast<std::uint64_t>(n)) / loglog2d(static_cast<std::uint64_t>(n0)), 2)
        .add(std::sqrt(log2d(static_cast<std::uint64_t>(n)) / log2d(static_cast<std::uint64_t>(n0))), 2)
        .add(log2d(static_cast<std::uint64_t>(n)) / log2d(static_cast<std::uint64_t>(n0)), 2);
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      shape.add(mean_rounds[i][row] / mean_rounds[i][0], 2);
    }
  }
  shape.print(std::cout);

  std::cout << "\nReading: the Cluster* columns must track the loglog column, the\n"
               "AvinElsasser column the sqrt(log) column, and PUSH/PULL/RRS the log\n"
               "column. Crossover in absolute rounds sits beyond laptop n (the\n"
               "cluster primitives cost ~10-20x loglog n rounds in constants, vs\n"
               "~1.5x log n for PUSH-PULL); see EXPERIMENTS.md.\n";

  // Name-Dropper side table (discovery task, direct-addressing lineage).
  Table nd("Name-Dropper [9]: rounds to full discovery vs O(log^2 n) bound",
           {"n", "start", "rounds", "log^2 n"});
  for (std::uint32_t n : {256u, 512u, 1024u, 2048u}) {
    for (const auto start : {baselines::NameDropperStart::kRing,
                             baselines::NameDropperStart::kRandomTree}) {
      RunningStat rs;
      for (unsigned seed = 1; seed <= cfg.seeds; ++seed) {
        baselines::NameDropperOptions o;
        o.start = start;
        const auto rep = baselines::run_name_dropper(n, seed, o);
        if (rep.complete) rs.add(static_cast<double>(rep.rounds));
      }
      nd.row()
          .add(std::uint64_t{n})
          .add(start == baselines::NameDropperStart::kRing ? "ring" : "tree")
          .add(rs.mean(), 1)
          .add(std::uint64_t{ceil_log2(n)} * ceil_log2(n));
    }
  }
  nd.print(std::cout);

  if (!cfg.out.empty()) {
    std::ofstream f(cfg.out);
    if (!f) {
      std::cerr << "cannot write " << cfg.out << "\n";
      return 1;
    }
    runner::write_scenarios_json(f, "round_complexity", results);
    std::cerr << "wrote " << cfg.out << "\n";
  }
  return 0;
}
