// E5 - The Delta-bounded communication trade-off (Section 7: Theorem 4,
// Theorem 18, Lemma 16, Lemma 17).
//
// For a sweep of Delta: build the Delta-clustering with Cluster3 (measuring
// rounds, messages and the realized per-round maximum involvement), then
// broadcast with ClusterPushPull (measured in isolation). Reproduced shapes:
//   * construction rounds stay O(log log n), construction messages O(n),
//     and max involvement <= Delta at every Delta (Theorem 18);
//   * broadcast rounds track log n / log Delta down to the Omega(log log n)
//     floor (Lemmas 16 + 17, Theorem 3);
//   * the unbounded-Delta algorithms (Cluster1/2) show involvement ~n,
//     while uniform gossip sits at the balls-in-bins maximum - the Section 7
//     motivation.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "core/cluster3.hpp"
#include "core/cluster_push_pull.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const auto cfg = bench::Config::parse(argc, argv);
  const std::uint32_t n = cfg.full ? (1u << 18) : (1u << 16);

  bench::print_header(
      "E5: trade-off between per-node communication bound Delta and rounds",
      "Thm 18: Delta-clustering in O(log log n) rounds, O(n) msgs, load <= Delta; "
      "Lemma 17: broadcast in O(log n/log Delta) rounds; Lemma 16: that is optimal");

  Table t("Cluster3(Delta) + ClusterPushPull at n = " + std::to_string(n) +
              " (mean over " + std::to_string(cfg.seeds) + " seeds)",
          {"Delta", "D=Delta/C''", "build rounds", "build msg/node", "max load",
           "load<=Delta", "spread rounds", "spread msg/node", "log n/log D",
           "floor loglog n"});

  for (const std::uint64_t delta : {64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
    RunningStat build_rounds, build_msgs, load, spread_rounds, spread_msgs;
    std::uint64_t d_realized = 0;
    bool bounded = true;
    for (unsigned seed = 1; seed <= cfg.seeds; ++seed) {
      sim::NetworkOptions o;
      o.n = n;
      o.seed = 100 + seed;
      sim::Network net(o);
      sim::Engine engine(net);
      core::Cluster3 builder(engine, delta);
      const auto build = builder.run();
      d_realized = builder.cluster_target();
      build_rounds.add(static_cast<double>(build.rounds));
      build_msgs.add(build.payload_messages_per_node());
      core::ClusterPushPull spread(builder.driver());
      const auto sp = spread.run(seed % n, d_realized, /*reset_metrics=*/true);
      spread_rounds.add(static_cast<double>(sp.rounds));
      spread_msgs.add(sp.payload_messages_per_node());
      const std::uint32_t max_load = std::max(build.max_delta(), sp.max_delta());
      load.add(static_cast<double>(max_load));
      bounded &= max_load <= delta;
      if (!sp.all_informed) {
        std::cerr << "WARNING: spread incomplete at Delta=" << delta << " seed=" << seed
                  << "\n";
      }
    }
    t.row()
        .add(std::uint64_t{delta})
        .add(std::uint64_t{d_realized})
        .add(build_rounds.mean(), 1)
        .add(build_msgs.mean(), 2)
        .add(load.max(), 0)
        .add(bounded ? "yes" : "NO")
        .add(spread_rounds.mean(), 1)
        .add(spread_msgs.mean(), 2)
        .add(log2d(n) / std::log2(std::max<double>(2.0, static_cast<double>(d_realized))), 2)
        .add(loglog2d(n), 2);
  }
  t.print(std::cout);

  // Contrast: involvement of the unbounded algorithms (Section 7's point).
  Table contrast("max per-round involvement of the unbounded-Delta algorithms",
                 {"algorithm", "max involvement", "n"});
  for (const auto& algo : bench::standard_algorithms(1024, cfg.threads, cfg.shard_size, cfg.delivery_buckets)) {
    if (algo.name != "Cluster1" && algo.name != "Cluster2" && algo.name != "PUSH-PULL") {
      continue;
    }
    const auto agg = bench::sweep(algo, n, 2);
    contrast.row().add(algo.name).add(agg.max_delta.max(), 0).add(std::uint64_t{n});
  }
  contrast.print(std::cout);

  std::cout << "\nReading: 'max load' stays below Delta at every point while the\n"
               "spread rounds fall as ~log n/log Delta (down to the loglog floor),\n"
               "tracing the Section 7 trade-off curve. Cluster1/Cluster2 show\n"
               "involvement ~n (their leaders talk to everyone), uniform PUSH-PULL\n"
               "~log n/loglog n - exactly the regimes the paper discusses.\n";
  return 0;
}
