// Shared harness for the experiment benchmarks (E1-E8 in DESIGN.md).
//
// Every bench binary accepts:
//   --full        larger sizes / more seeds (longer runs)
//   --seeds=N     override the seed count
//   --max-exp=K   cap network sizes at 2^K
// and prints self-describing tables (common/table.hpp) with a paper-vs-
// measured note, so bench_output.txt reads as the experiment record.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "baselines/avin_elsasser.hpp"
#include "baselines/rrs.hpp"
#include "baselines/uniform.hpp"
#include "common/table.hpp"
#include "core/broadcast.hpp"
#include "sim/engine.hpp"

namespace gossip::bench {

struct Config {
  bool full = false;
  unsigned seeds = 5;
  unsigned max_exp = 18;  ///< largest network is 2^max_exp (20 with --full)

  static Config parse(int argc, char** argv) {
    Config c;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--full") {
        c.full = true;
        c.max_exp = 20;
        c.seeds = 5;
      } else if (arg.rfind("--seeds=", 0) == 0) {
        c.seeds = static_cast<unsigned>(std::stoul(arg.substr(8)));
      } else if (arg.rfind("--max-exp=", 0) == 0) {
        c.max_exp = static_cast<unsigned>(std::stoul(arg.substr(10)));
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      }
    }
    return c;
  }

  /// Standard size sweep: powers of four from 2^10 up to 2^max_exp.
  [[nodiscard]] std::vector<std::uint32_t> size_sweep(unsigned min_exp = 10) const {
    std::vector<std::uint32_t> sizes;
    for (unsigned e = min_exp; e <= max_exp; e += 2) sizes.push_back(1u << e);
    return sizes;
  }
};

/// A named broadcast algorithm runnable on a fresh network.
struct NamedAlgorithm {
  std::string name;
  std::function<core::BroadcastReport(sim::Network&, std::uint32_t source)> run;
};

/// The standard comparison set: the paper's algorithms plus every baseline.
inline std::vector<NamedAlgorithm> standard_algorithms(std::uint64_t delta = 1024) {
  return {
      {"Cluster1",
       [](sim::Network& net, std::uint32_t source) {
         core::BroadcastOptions o;
         o.algorithm = core::Algorithm::kCluster1;
         o.source = source;
         return core::broadcast(net, o);
       }},
      {"Cluster2",
       [](sim::Network& net, std::uint32_t source) {
         core::BroadcastOptions o;
         o.algorithm = core::Algorithm::kCluster2;
         o.source = source;
         return core::broadcast(net, o);
       }},
      {"C3+CPP",
       [delta](sim::Network& net, std::uint32_t source) {
         core::BroadcastOptions o;
         o.algorithm = core::Algorithm::kCluster3PushPull;
         o.delta = delta;
         o.source = source;
         return core::broadcast(net, o);
       }},
      {"AvinElsasser",
       [](sim::Network& net, std::uint32_t source) {
         sim::Engine engine(net);
         baselines::AvinElsasser algo(engine);
         return algo.run(source);
       }},
      {"RRS[10]",
       [](sim::Network& net, std::uint32_t source) {
         return baselines::run_rrs(net, source, {});
       }},
      {"PUSH-PULL",
       [](sim::Network& net, std::uint32_t source) {
         return baselines::run_push_pull(net, source, {});
       }},
      {"PUSH",
       [](sim::Network& net, std::uint32_t source) {
         return baselines::run_push(net, source, {});
       }},
      {"PULL",
       [](sim::Network& net, std::uint32_t source) {
         return baselines::run_pull(net, source, {});
       }},
  };
}

/// Runs `algo` across seeds on n-node networks and aggregates the reports.
inline analysis::ReportAggregate sweep(const NamedAlgorithm& algo, std::uint32_t n,
                                       unsigned seeds, std::uint32_t rumor_bits = 256) {
  analysis::ReportAggregate agg;
  for (unsigned seed = 1; seed <= seeds; ++seed) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 1000 + seed;
    o.rumor_bits = rumor_bits;
    sim::Network net(o);
    agg.add(algo.run(net, seed % n));
  }
  return agg;
}

inline void print_header(const char* experiment, const char* claim) {
  std::cout << "\n############################################################\n"
            << "# " << experiment << "\n"
            << "# paper claim: " << claim << "\n"
            << "############################################################\n";
}

}  // namespace gossip::bench
