// Shared harness for the experiment benchmarks (E1-E8 in DESIGN.md).
//
// Every bench binary accepts:
//   --full             larger sizes / more seeds (longer runs)
//   --seeds=N          override the seed count
//   --max-exp=K        cap network sizes at 2^K
//   --threads=N        per-run sharded phase-1 engine execution (plumbed to
//                      DriverOptions.threads / UniformOptions.threads; 0 =
//                      serial, the default - see sim/engine.hpp)
//   --shard-size=N     initiators per phase-1 shard when --threads >= 1
//                      (0 = default width; re-keys the shard draw streams)
//   --delivery-buckets=N  receiver buckets for the engine's delivery phases
//                      (0 = auto by network size, 1 = flat; results are
//                      bit-identical for every value - this is a pure
//                      locality knob for sweeps)
//   --trial-threads=N  cross-trial workers for TrialRunner-based benches
//                      (aggregates are bit-identical for every value)
// The wall-clock benches (bench_engine_throughput, bench_parallel_scaling;
// they carry their own flag sets) additionally take --repeats=N and report
// the MEDIAN repeat per configuration (bench::median_sample below, or the
// interleaved round-robin variant in bench_engine_throughput), cutting
// single-core noise on the bench host.
//   --loss-prob=P      TrialRunner-based benches: per-contact payload loss
//                      probability in [0, 1) (sim/fault.hpp LossyChannel)
//   --crash-round=R    TrialRunner-based benches: defer the crash set to the
//                      start of engine round R (ScheduledCrash) instead of
//                      the legacy pre-run crash
//   --join-rate=R      TrialRunner-based benches: Poisson mean joins per
//                      round (sim/fault.hpp ChurnSchedule; capacity is
//                      pre-reserved per ScenarioSpec::max_nodes)
//   --crash-rate=R     TrialRunner-based benches: Poisson mean mid-run
//                      crashes per round (composes with --join-rate)
//   --out=FILE         TrialRunner-based benches: write a JSON report
// and prints self-describing tables (common/table.hpp) with a paper-vs-
// measured note, so bench_output.txt reads as the experiment record.
// Unknown flags are an error (usage + exit 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "baselines/avin_elsasser.hpp"
#include "baselines/rrs.hpp"
#include "baselines/uniform.hpp"
#include "common/table.hpp"
#include "core/broadcast.hpp"
#include "runner/registry.hpp"
#include "runner/scenario.hpp"
#include "sim/engine.hpp"

namespace gossip::bench {

struct Config {
  bool full = false;
  unsigned seeds = 5;
  unsigned max_exp = 18;  ///< largest network is 2^max_exp (20 with --full)
  unsigned threads = 0;   ///< sharded phase-1 engine threads (0 = serial)
  unsigned shard_size = 0;        ///< initiators per shard (0 = default width)
  unsigned delivery_buckets = 0;  ///< delivery receiver buckets (0 = auto)
  unsigned trial_threads = 1;  ///< TrialRunner workers (migrated benches)
  double loss_prob = 0.0; ///< per-contact payload loss (TrialRunner benches)
  double join_rate = 0.0;  ///< Poisson joins per round (TrialRunner benches)
  double crash_rate = 0.0; ///< Poisson mid-run crashes per round
  /// Crash timing for the fault keys (kCrashPreRun = legacy pre-run crash).
  std::int64_t crash_round = runner::ScenarioSpec::kCrashPreRun;
  /// Recovery/partition overlay (TrialRunner benches): --recovery arms the
  /// supervisor on every cell whose algorithm has one (cluster1 / cluster2 /
  /// cluster3_push_pull - other algorithms keep running brittle, matching
  /// ScenarioSpec::validate()); the partition keys split the alive set for
  /// rounds [partition_round, heal_round) like the .scn keys of the same name.
  bool recovery = false;
  unsigned retry_budget = 0;       ///< 0 = the RecoveryOptions default (3)
  std::int64_t partition_round = -1;
  std::int64_t heal_round = -1;
  unsigned partition_parts = 0;    ///< 0 = default 2
  std::string out;        ///< JSON report path (migrated benches; "" = none)
  /// bench_fault_tolerance only: JSON path for the recovery sweep (the
  /// committed BENCH_recovery.json tracking file; "" = none).
  std::string recovery_out;
  /// TrialRunner-based benches: re-run every cell N times asserting
  /// bit-identical aggregates (a determinism self-check; the wall-clock
  /// benches keep their own median-of-N --repeats semantics).
  unsigned repeats = 1;
  /// TrialRunner-based benches: collect per-round telemetry and write one
  /// JSONL time series covering every cell ("" = off; see src/obs/).
  std::string timeseries;

  /// `message` explains what went wrong ("unknown argument: ..." or the
  /// parse error for a recognized flag's bad value).
  [[noreturn]] static void usage_and_exit(const std::string& message) {
    std::fprintf(stderr,
                 "%s\n"
                 "usage: bench_* [--full] [--seeds=N] [--max-exp=K] [--threads=N]\n"
                 "               [--shard-size=N] [--delivery-buckets=N]\n"
                 "               [--trial-threads=N] [--loss-prob=P] [--crash-round=R]\n"
                 "               [--join-rate=R] [--crash-rate=R] [--recovery]\n"
                 "               [--retry-budget=N] [--partition-round=R]\n"
                 "               [--heal-round=R] [--partition-parts=K] [--out=FILE]\n"
                 "               [--recovery-out=FILE] [--repeats=N] [--timeseries=FILE]\n"
                 "(--trial-threads, the fault/recovery overlays, --out, --repeats\n"
                 " and --timeseries only act on TrialRunner-based benches;\n"
                 " --recovery-out only on bench_fault_tolerance; see the flag\n"
                 " list at the top of bench_util.hpp)\n",
                 message.c_str());
    std::exit(2);
  }

  static Config parse(int argc, char** argv) {
    Config c;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto uint_flag = [&](const char* prefix, unsigned& into) {
        const std::size_t len = std::strlen(prefix);
        if (arg.rfind(prefix, 0) != 0) return false;
        // Shared strict parsing with the scenario runner, so "--seeds=1e2"
        // and "--seeds=-1" behave identically in gossip_run and bench_*.
        try {
          into = static_cast<unsigned>(runner::parse_count(
              prefix, arg.substr(len), 0, std::numeric_limits<unsigned>::max()));
        } catch (const std::exception& e) {
          usage_and_exit(e.what());  // "bad value for '--seeds=': ..."
        }
        return true;
      };
      if (arg == "--full") {
        c.full = true;
        c.max_exp = 20;
        c.seeds = 5;
      } else if (arg.rfind("--out=", 0) == 0) {
        c.out = arg.substr(6);
      } else if (arg.rfind("--timeseries=", 0) == 0) {
        c.timeseries = arg.substr(13);
      } else if (arg.rfind("--loss-prob=", 0) == 0) {
        try {
          c.loss_prob = runner::parse_fraction("--loss-prob=", arg.substr(12));
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (arg.rfind("--join-rate=", 0) == 0) {
        try {
          runner::ScenarioSpec probe;  // reuse the scenario parser + bounds
          probe.apply("join_rate", arg.substr(12));
          c.join_rate = probe.join_rate;
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (arg.rfind("--crash-rate=", 0) == 0) {
        try {
          runner::ScenarioSpec probe;
          probe.apply("crash_rate", arg.substr(13));
          c.crash_rate = probe.crash_rate;
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (arg.rfind("--crash-round=", 0) == 0) {
        try {
          c.crash_round = static_cast<std::int64_t>(
              runner::parse_count("--crash-round=", arg.substr(14), 0, 1u << 30));
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (arg == "--recovery") {
        c.recovery = true;
      } else if (arg.rfind("--recovery-out=", 0) == 0) {
        c.recovery_out = arg.substr(15);
      } else if (arg.rfind("--retry-budget=", 0) == 0) {
        try {
          runner::ScenarioSpec probe;  // shared bounds with the .scn key
          probe.apply("retry_budget", arg.substr(15));
          c.retry_budget = probe.retry_budget;
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (arg.rfind("--partition-round=", 0) == 0) {
        try {
          runner::ScenarioSpec probe;
          probe.apply("partition_round", arg.substr(18));
          c.partition_round = probe.partition_round;
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (arg.rfind("--heal-round=", 0) == 0) {
        try {
          runner::ScenarioSpec probe;
          probe.apply("heal_round", arg.substr(13));
          c.heal_round = probe.heal_round;
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (arg.rfind("--partition-parts=", 0) == 0) {
        try {
          runner::ScenarioSpec probe;
          probe.apply("partition_parts", arg.substr(18));
          c.partition_parts = probe.partition_parts;
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (arg.rfind("--delivery-buckets=", 0) == 0) {
        try {
          c.delivery_buckets = static_cast<unsigned>(runner::parse_count(
              "--delivery-buckets=", arg.substr(19), 0, sim::kMaxDeliveryBuckets));
        } catch (const std::exception& e) {
          usage_and_exit(e.what());  // names the valid range [0, 4096]
        }
      } else if (arg.rfind("--shard-size=", 0) == 0) {
        try {
          c.shard_size = static_cast<unsigned>(
              runner::parse_count("--shard-size=", arg.substr(13), 0, 1u << 20));
        } catch (const std::exception& e) {
          usage_and_exit(e.what());
        }
      } else if (uint_flag("--seeds=", c.seeds) || uint_flag("--max-exp=", c.max_exp) ||
                 uint_flag("--threads=", c.threads) ||
                 uint_flag("--trial-threads=", c.trial_threads) ||
                 uint_flag("--repeats=", c.repeats)) {
        // handled
      } else {
        usage_and_exit("unknown argument: " + arg);
      }
    }
    return c;
  }

  /// Standard size sweep: powers of four from 2^10 up to 2^max_exp.
  [[nodiscard]] std::vector<std::uint32_t> size_sweep(unsigned min_exp = 10) const {
    std::vector<std::uint32_t> sizes;
    for (unsigned e = min_exp; e <= max_exp; e += 2) sizes.push_back(1u << e);
    return sizes;
  }

  /// Copies the fault flags onto a TrialRunner spec, so any migrated bench
  /// can be rerun under loss / mid-run crashes (e.g. --loss-prob=0.2 on the
  /// round-complexity sweep). --crash-round only retimes an existing crash
  /// set: on a spec without one (fault_count() == 0) it is skipped, since
  /// deferring an empty crash would just be a spec error.
  void apply_faults(runner::ScenarioSpec& spec) const {
    spec.loss_prob = loss_prob;
    if (spec.fault_count() > 0) spec.crash_round = crash_round;
    spec.join_rate = join_rate;
    spec.crash_rate = crash_rate;
    spec.partition_round = partition_round;
    spec.heal_round = heal_round;
    spec.partition_parts = partition_parts;
    // --recovery only arms cells with a supervisor; baselines in the same
    // sweep keep running brittle (validate() rejects the key elsewhere).
    const bool supervised = spec.algorithm == "cluster1" ||
                            spec.algorithm == "cluster2" ||
                            spec.algorithm == "cluster3_push_pull";
    spec.recovery = recovery && supervised;
    if (spec.recovery) spec.retry_budget = retry_budget;
  }

  /// Copies the engine-execution flags (--threads / --shard-size /
  /// --delivery-buckets) onto a TrialRunner spec, so every migrated bench
  /// exposes the same locality/parallelism sweep surface.
  void apply_engine(runner::ScenarioSpec& spec) const {
    spec.engine_threads = threads;
    spec.shard_size = shard_size;
    spec.delivery_buckets = delivery_buckets;
  }
};

/// Median-of-N harness for wall-clock measurements (the --repeats flag of
/// bench_engine_throughput / bench_parallel_scaling): runs `measure`
/// `repeats` times and returns the sample whose key(sample) double is the
/// median. Returning the whole sample lets a bench report the median run's
/// secondary readings (per-phase seconds, contact counts) consistently with
/// its headline. Single-core bench hosts are noisy (+-2x at small n); the
/// median of a few repeats is stable enough to track release-over-release
/// deltas.
template <class Measure, class Key>
[[nodiscard]] auto median_sample(unsigned repeats, Measure&& measure, Key&& key) {
  using Sample = decltype(measure());
  std::vector<Sample> samples;
  samples.reserve(repeats);
  for (unsigned r = 0; r < repeats; ++r) samples.push_back(measure());
  std::sort(samples.begin(), samples.end(),
            [&](const Sample& a, const Sample& b) { return key(a) < key(b); });
  return samples[samples.size() / 2];
}

/// A named broadcast algorithm runnable on a fresh network.
struct NamedAlgorithm {
  std::string name;
  std::function<core::BroadcastReport(sim::Network&, std::uint32_t source)> run;
};

/// The standard comparison set: the paper's algorithms plus every baseline,
/// in the runner registry's canonical order and under its display names -
/// a thin adapter over runner::algorithms() so the set exists in ONE place.
/// `threads` >= 1 opts every run's engine into sharded phase-1 execution
/// (DriverOptions.threads / UniformOptions.threads; changes same-seed
/// trajectories once, see sim/engine.hpp). `shard_size` pins the shard
/// width; `delivery_buckets` pins the delivery decomposition (trajectory-
/// invariant).
inline std::vector<NamedAlgorithm> standard_algorithms(std::uint64_t delta = 1024,
                                                       unsigned threads = 0,
                                                       unsigned shard_size = 0,
                                                       unsigned delivery_buckets = 0) {
  runner::ScenarioSpec spec;
  spec.delta = delta;
  spec.engine_threads = threads;
  spec.shard_size = shard_size;
  spec.delivery_buckets = delivery_buckets;
  std::vector<NamedAlgorithm> out;
  for (const runner::AlgorithmEntry& entry : runner::algorithms()) {
    out.push_back({entry.display,
                   [spec, run = &entry.run](sim::Network& net, std::uint32_t source) {
                     return (*run)(net, source, spec, /*fault=*/nullptr,
                                   /*telemetry=*/nullptr);
                   }});
  }
  return out;
}

/// Runs `algo` across seeds on n-node networks and aggregates the reports.
inline analysis::ReportAggregate sweep(const NamedAlgorithm& algo, std::uint32_t n,
                                       unsigned seeds, std::uint32_t rumor_bits = 256) {
  analysis::ReportAggregate agg;
  for (unsigned seed = 1; seed <= seeds; ++seed) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 1000 + seed;
    o.rumor_bits = rumor_bits;
    sim::Network net(o);
    agg.add(algo.run(net, seed % n));
  }
  return agg;
}

inline void print_header(const char* experiment, const char* claim) {
  std::cout << "\n############################################################\n"
            << "# " << experiment << "\n"
            << "# paper claim: " << claim << "\n"
            << "############################################################\n";
}

}  // namespace gossip::bench
