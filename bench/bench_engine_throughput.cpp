// Engine dispatch-path throughput: static-dispatch hooks vs. the legacy
// std::function RoundHooks adapter, measured in the same binary on the same
// workloads. This is the simulator-scaling experiment behind the hot-path
// overhaul: the paper's O(log n)-round / O(n)-message separations only show
// at multi-million n, so rounds-per-second is what bounds reachable n.
//
// Workloads (knowledge tracking off, as in large experiment runs):
//   push       - every node pushes the rumor to a uniform random node
//   push_pull  - half the nodes push, half pull (exercises the O(m)
//                responder grouping path)
//   exchange   - every node exchanges (push + oblivious response)
//
// Output: machine-readable JSON on stdout (optionally --out=FILE), one
// record per (n, workload, path) with MEDIAN-of-repeats contacts/sec and a
// per-phase wall-clock breakdown (phase 1 initiate/draw/queue, phase 2 push
// delivery, phase 3 pull resolution - the receiver-bucketed delivery work
// lives in phases 2-3), plus the static/legacy speedup per (n, workload)
// and the telemetry recorder's overhead (the "static_recorder" path runs
// the static workload with an obs::Telemetry attached).
// This seeds the BENCH_*.json tracking files:
//   ./bench_engine_throughput --out=BENCH_engine_throughput.json
// Options: --rounds=R (default 12), --sizes=1e5,1e6,4e6 (comma list),
//          --repeats=K (default 3; median-of-K per configuration),
//          --delivery-buckets=N (0 = engine auto, 1 = the flat PR 4 sweep),
//          --workloads=push,push_pull,exchange (comma subset, any order),
//          --quick (100k only, for CI smoke).
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

#include <algorithm>
#include <numeric>

#include "bench_util.hpp"
#include "common/rss.hpp"

namespace {

using namespace gossip;
using Clock = std::chrono::steady_clock;

// The seed's std::function round executor, preserved verbatim as the
// comparison baseline: one virtual-dispatch hook call per node per round,
// one Lemire draw per contact (no batching), a full-Message pending-push
// queue, per-round std::sort pull grouping, and unconditional Delta
// metering. This is "the std::function path" the hot-path overhaul replaced;
// keeping it in the bench binary makes the win measurable release over
// release.
class ReferenceEngine {
 public:
  explicit ReferenceEngine(sim::Network& net) : net_(net), metrics_(net.n(), false) {
    all_nodes_.resize(net.n());
    std::iota(all_nodes_.begin(), all_nodes_.end(), 0u);
  }

  [[nodiscard]] sim::MetricsCollector& metrics() noexcept { return metrics_; }
  // Phase-time accounting delegates to the shared obs::RoundRecorder, the
  // same accumulator the real engine's telemetry uses - so the reset/
  // accumulate semantics of the two engines cannot drift apart.
  [[nodiscard]] const sim::Engine::PhaseTimes& phase_times() const noexcept {
    return recorder_.phase_times();
  }
  void reset_phase_times() noexcept { recorder_.reset_phase_times(); }

  std::uint32_t random_other(std::uint32_t self) {
    const std::uint32_t n = net_.n();
    std::uint32_t t = static_cast<std::uint32_t>(net_.rng().uniform_below(n - 1));
    if (t >= self) ++t;
    return t;
  }

  void run_round(const sim::RoundHooks& hooks) {
    const auto t_begin = Clock::now();
    metrics_.begin_round();
    pushes_.clear();
    pulls_.clear();

    for (const std::uint32_t node : all_nodes_) {
      if (!net_.alive(node)) continue;
      std::optional<sim::Contact> contact = hooks.initiate(node);
      if (!contact) continue;
      metrics_.record_initiator();
      const std::uint32_t target =
          contact->to_random ? random_other(node) : net_.index_of(contact->target);
      if (contact->kind == sim::ContactKind::kPush ||
          contact->kind == sim::ContactKind::kExchange) {
        const sim::Message& msg = contact->payload;
        metrics_.record_push(node, target, msg.bits(net_.costs()), !msg.is_empty());
        if (net_.alive(target)) {
          if (contact->kind == sim::ContactKind::kExchange) {
            pulls_.push_back(PendingPull{node, target});
          }
          pushes_.push_back(PendingPush{target, node, std::move(contact->payload)});
        }
      } else {
        metrics_.record_pull_request(node, target);
        if (net_.alive(target)) pulls_.push_back(PendingPull{node, target});
      }
    }

    const auto t_phase1 = Clock::now();

    if (hooks.on_push) {
      for (const PendingPush& p : pushes_) hooks.on_push(p.to, p.msg);
    }

    const auto t_phase2 = Clock::now();

    if (!pulls_.empty()) {
      std::sort(pulls_.begin(), pulls_.end(),
                [](const PendingPull& a, const PendingPull& b) {
                  return a.responder < b.responder;
                });
      std::size_t i = 0;
      while (i < pulls_.size()) {
        const std::uint32_t responder = pulls_[i].responder;
        const sim::Message response =
            hooks.respond ? hooks.respond(responder) : sim::Message::empty();
        const std::uint64_t bits = response.bits(net_.costs());
        const bool has_payload = !response.is_empty();
        for (; i < pulls_.size() && pulls_[i].responder == responder; ++i) {
          metrics_.record_pull_response(bits, has_payload);
          if (hooks.on_pull_reply) hooks.on_pull_reply(pulls_[i].from, response);
        }
      }
    }

    const auto ns = [](Clock::time_point a, Clock::time_point b) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
    };
    recorder_.on_round_end(round_++, metrics_.current_round(), net_.n(),
                           net_.alive_count(), /*loss_drops=*/0,
                           /*corrupt_responses=*/0, ns(t_begin, t_phase1),
                           ns(t_phase1, t_phase2), ns(t_phase2, Clock::now()));
    metrics_.end_round();
  }

 private:
  struct PendingPush {
    std::uint32_t to;
    std::uint32_t from;
    sim::Message msg;
  };
  struct PendingPull {
    std::uint32_t from;
    std::uint32_t responder;
  };

  sim::Network& net_;
  sim::MetricsCollector metrics_;
  obs::RoundRecorder recorder_;
  std::uint64_t round_ = 0;
  std::vector<PendingPush> pushes_;
  std::vector<PendingPull> pulls_;
  std::vector<std::uint32_t> all_nodes_;
};

struct Result {
  std::uint64_t n;
  std::string workload;
  std::string path;  // "static" | "legacy_adapter" | "reference_stdfunction"
  std::uint64_t rounds;
  std::uint64_t contacts;
  unsigned repeats;
  double seconds;  ///< median-of-repeats wall clock for `rounds` rounds
  sim::Engine::PhaseTimes phases;  ///< phase breakdown of the median repeat
  /// Path-vs-path speedups, filled on the "static" row only: median of the
  /// PER-REPEAT ratios (the interleaved round-robin pairs each static repeat
  /// with a time-adjacent repeat of every other path, so ambient host drift
  /// cancels inside each pair instead of skewing a ratio of two medians).
  double vs_reference = 0.0;
  double vs_adapter = 0.0;
  double recorder_overhead = 0.0;
  [[nodiscard]] double contacts_per_sec() const { return contacts / seconds; }
};

// The three workloads as static-dispatch hook structs. The legacy runs wrap
// the same logic in RoundHooks std::functions, so the only difference
// between the two measurements is the dispatch mechanism.
struct PushWorkload {
  std::optional<sim::Contact> initiate(std::uint32_t) const {
    return sim::Contact::push_random(sim::Message::rumor());
  }
  void on_push(std::uint32_t, const sim::Message&) const {}
};

struct PushPullWorkload {
  std::optional<sim::Contact> initiate(std::uint32_t v) const {
    if ((v & 1) == 0) return sim::Contact::push_random(sim::Message::rumor());
    return sim::Contact::pull_random();
  }
  sim::Message respond(std::uint32_t) const { return sim::Message::rumor(); }
  void on_push(std::uint32_t, const sim::Message&) const {}
  void on_pull_reply(std::uint32_t, const sim::Message&) const {}
};

struct ExchangeWorkload {
  std::optional<sim::Contact> initiate(std::uint32_t) const {
    return sim::Contact::exchange_random(sim::Message::rumor());
  }
  sim::Message respond(std::uint32_t) const { return sim::Message::rumor(); }
  void on_push(std::uint32_t, const sim::Message&) const {}
  void on_pull_reply(std::uint32_t, const sim::Message&) const {}
};

sim::RoundHooks legacy_hooks(const std::string& workload) {
  sim::RoundHooks h;
  if (workload == "push") {
    h.initiate = [](std::uint32_t) -> std::optional<sim::Contact> {
      return sim::Contact::push_random(sim::Message::rumor());
    };
    h.on_push = [](std::uint32_t, const sim::Message&) {};
  } else if (workload == "push_pull") {
    h.initiate = [](std::uint32_t v) -> std::optional<sim::Contact> {
      if ((v & 1) == 0) return sim::Contact::push_random(sim::Message::rumor());
      return sim::Contact::pull_random();
    };
    h.respond = [](std::uint32_t) { return sim::Message::rumor(); };
    h.on_push = [](std::uint32_t, const sim::Message&) {};
    h.on_pull_reply = [](std::uint32_t, const sim::Message&) {};
  } else {
    h.initiate = [](std::uint32_t) -> std::optional<sim::Contact> {
      return sim::Contact::exchange_random(sim::Message::rumor());
    };
    h.respond = [](std::uint32_t) { return sim::Message::rumor(); };
    h.on_push = [](std::uint32_t, const sim::Message&) {};
    h.on_pull_reply = [](std::uint32_t, const sim::Message&) {};
  }
  return h;
}

struct Sample {
  double seconds = 0;
  std::uint64_t contacts = 0;
  sim::Engine::PhaseTimes phases;
};

/// One measured repeat of any engine: one untimed warm-up round (sizes the
/// scratch buffers), then `rounds` timed rounds.
template <class EngineT, class RunRound>
Sample one_repeat(EngineT& engine, unsigned rounds, RunRound&& run_round) {
  run_round();
  engine.metrics().reset();
  engine.reset_phase_times();
  const auto start = Clock::now();
  for (unsigned r = 0; r < rounds; ++r) run_round();
  const auto stop = Clock::now();
  Sample s;
  s.seconds = std::chrono::duration<double>(stop - start).count();
  s.contacts = engine.metrics().run().total.connections;
  s.phases = engine.phase_times();
  return s;
}

template <class Hooks>
std::vector<Result> bench_size(std::uint32_t n, const std::string& workload, Hooks hooks,
                               unsigned rounds, unsigned repeats, bool delta_metering,
                               unsigned delivery_buckets) {
  // Fresh same-seed networks per path: identical workloads, so the
  // contacts/sec ratio isolates the executor implementations.
  const auto make_net = [n] {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 42;
    return sim::Network(o);
  };
  const sim::RoundHooks hooks_legacy = legacy_hooks(workload);

  // New executor, hooks resolved at compile time.
  const auto run_static = [&] {
    sim::Network net = make_net();
    sim::Engine engine(net);
    engine.set_delivery_buckets(delivery_buckets);
    engine.set_phase_timing(true);
    engine.metrics().set_track_involvement(delta_metering);
    return one_repeat(engine, rounds, [&] { engine.run_round(hooks); });
  };
  // Static path with an obs::Telemetry attached AND the provenance tracer
  // armed: the delta vs "static" is the full observability cost (phase
  // clocks + one RoundRecord + event round bookkeeping + first-inform
  // tracing) - reported as recorder_overhead in the JSON, gated <= 1.05x
  // by tools/bench_check.py.
  const auto run_recorder = [&] {
    sim::Network net = make_net();
    sim::Engine engine(net);
    obs::Telemetry telemetry;
    telemetry.rounds.reserve(rounds + 2);
    telemetry.provenance.arm(net.capacity());
    engine.set_telemetry(&telemetry);
    engine.set_delivery_buckets(delivery_buckets);
    engine.set_phase_timing(true);
    engine.metrics().set_track_involvement(delta_metering);
    return one_repeat(engine, rounds, [&] { engine.run_round(hooks); });
  };
  // New executor behind the RoundHooks std::function adapter.
  const auto run_adapter = [&] {
    sim::Network net = make_net();
    sim::Engine engine(net);
    engine.set_delivery_buckets(delivery_buckets);
    engine.set_phase_timing(true);
    engine.metrics().set_track_involvement(delta_metering);
    return one_repeat(engine, rounds, [&] { engine.run_round(hooks_legacy); });
  };
  // The seed's std::function executor (always meters Delta; it had no
  // opt-out).
  const auto run_reference = [&] {
    sim::Network net = make_net();
    ReferenceEngine engine(net);
    return one_repeat(engine, rounds, [&] { engine.run_round(hooks_legacy); });
  };

  // Median-of-repeats, INTERLEAVED: one repeat of every path per outer
  // iteration instead of all repeats of one path back to back. Shared bench
  // hosts stall in multi-second phases; a round-robin spreads such a phase
  // over all four paths instead of poisoning one path's whole block, which
  // is what the vs_* / recorder_overhead RATIOS the tracking file gates on
  // actually need. Each repeat still builds a fresh same-seed network +
  // engine, so every repeat counts the same contacts.
  // Within each iteration the legs of a gated pair run back to back, and the
  // order FLIPS on odd iterations: periodic host antagonists whose period is
  // comparable to the iteration time would otherwise alias into a systematic
  // bias against whichever leg always runs second.
  std::array<std::vector<Sample>, 4> samples;
  for (auto& s : samples) s.reserve(repeats);
  for (unsigned r = 0; r < repeats; ++r) {
    if ((r & 1) == 0) {
      samples[0].push_back(run_static());
      samples[1].push_back(run_recorder());
      samples[2].push_back(run_adapter());
      samples[3].push_back(run_reference());
    } else {
      samples[1].push_back(run_recorder());
      samples[0].push_back(run_static());
      samples[3].push_back(run_reference());
      samples[2].push_back(run_adapter());
    }
  }
  // Speedups as the median of per-repeat ratios over the paired (same
  // round-robin iteration, equal contacts) samples - computed BEFORE the
  // per-path sort below breaks the pairing.
  const auto ratio_median = [&](std::size_t slow, std::size_t fast) {
    std::vector<double> rs;
    rs.reserve(repeats);
    for (unsigned r = 0; r < repeats; ++r) {
      rs.push_back(samples[slow][r].seconds / samples[fast][r].seconds);
    }
    std::sort(rs.begin(), rs.end());
    return rs[rs.size() / 2];
  };
  const double vs_recorder = ratio_median(1, 0);
  const double vs_adapter = ratio_median(2, 0);
  const double vs_reference = ratio_median(3, 0);

  static constexpr const char* kPaths[4] = {"static", "static_recorder",
                                            "legacy_adapter", "reference_stdfunction"};
  std::vector<Result> out;
  for (std::size_t p = 0; p < 4; ++p) {
    std::sort(samples[p].begin(), samples[p].end(),
              [](const Sample& a, const Sample& b) { return a.seconds < b.seconds; });
    const Sample& median = samples[p][samples[p].size() / 2];
    Result res;
    res.n = n;
    res.workload = workload;
    res.path = kPaths[p];
    res.rounds = rounds;
    res.repeats = repeats;
    res.contacts = median.contacts;
    res.seconds = median.seconds;
    res.phases = median.phases;
    if (p == 0) {
      res.recorder_overhead = vs_recorder;
      res.vs_adapter = vs_adapter;
      res.vs_reference = vs_reference;
    }
    out.push_back(res);
  }
  return out;
}

void emit_json(std::ostream& os, const std::vector<Result>& results, bool delta_metering,
               unsigned repeats, unsigned delivery_buckets) {
  os << "{\n  \"bench\": \"engine_throughput\",\n  \"unit\": \"contacts_per_sec\",\n"
     << "  \"knowledge_tracking\": false,\n"
     << "  \"delta_metering_static_legacy\": " << (delta_metering ? "true" : "false")
     << ",\n"
     << "  \"repeats\": " << repeats << ",\n"
     << "  \"delivery_buckets\": " << delivery_buckets << ",\n"
     << "  \"peak_rss_bytes\": " << peak_rss_bytes() << ",\n"
     << "  \"note\": \"seconds/contacts_per_sec are the MEDIAN repeat; "
     << "phase*_seconds break that repeat down (1 = initiate+draw+queue, "
     << "2 = push delivery, 3 = pull resolution); delivery_buckets 0 = "
     << "auto-bucketed receiver-local delivery (sim/engine.hpp); "
     << "vs_*/recorder_overhead are medians of per-iteration PAIRED ratios "
     << "(paths interleaved round-robin, pair order alternating per "
     << "iteration), so ambient host noise cancels within each pair\",\n"
     << "  \"paths\": {\"static\": \"templated executor, compile-time hooks\", "
     << "\"static_recorder\": \"static path with obs::Telemetry attached "
     << "(per-round RoundRecord + phase clocks + armed provenance tracer)\", "
     << "\"legacy_adapter\": \"RoundHooks std::functions over the new executor\", "
     << "\"reference_stdfunction\": \"the seed engine: std::function dispatch, "
     << "per-contact draws, sort-based pull grouping, unconditional Delta metering\"},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    {\"n\": " << r.n << ", \"workload\": \"" << r.workload << "\", \"path\": \""
       << r.path << "\", \"rounds\": " << r.rounds << ", \"contacts\": " << r.contacts
       << ", \"seconds\": " << r.seconds << ", \"contacts_per_sec\": "
       << static_cast<std::uint64_t>(r.contacts_per_sec())
       << ", \"phase1_seconds\": " << r.phases.phase1_seconds
       << ", \"phase2_seconds\": " << r.phases.phase2_seconds
       << ", \"phase3_seconds\": " << r.phases.phase3_seconds << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"speedup_static_over_stdfunction_path\": [\n";
  bool first = true;
  for (std::size_t i = 0; i + 3 < results.size(); i += 4) {
    const Result& s = results[i];
    if (!first) os << ",\n";
    first = false;
    // recorder_overhead: detached static wall clock vs telemetry-attached
    // static wall clock (1.0 = free; 1.02 = 2% slower with the recorder +
    // provenance tracer on). All three are medians of PER-REPEAT paired
    // ratios (see bench_size), not ratios of two medians.
    os << "    {\"n\": " << s.n << ", \"workload\": \"" << s.workload
       << "\", \"vs_reference\": " << s.vs_reference
       << ", \"vs_adapter\": " << s.vs_adapter
       << ", \"recorder_overhead\": " << s.recorder_overhead << "}";
  }
  os << "\n  ]\n}\n";
}

std::vector<std::uint32_t> parse_sizes(const std::string& spec) {
  std::vector<std::uint32_t> sizes;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      const double v = std::stod(item);
      if (v < 2 || v > 4e9) throw std::out_of_range(item);
      sizes.push_back(static_cast<std::uint32_t>(v));
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad --sizes entry: '%s' (want e.g. 1e5,1e6,4e6)\n",
                   item.c_str());
      std::exit(2);
    }
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "--sizes needs at least one network size\n");
    std::exit(2);
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned rounds = 12;
  unsigned repeats = 3;
  unsigned delivery_buckets = 0;  // 0 = engine auto
  std::vector<std::uint32_t> sizes{100000, 1000000, 4000000};
  std::vector<std::string> workloads{"push", "push_pull", "exchange"};
  std::string out_path;
  bool delta_metering = false;
  const auto parse_uint = [](const std::string& arg, std::size_t prefix_len,
                             unsigned long min, unsigned long max,
                             const char* what) -> unsigned {
    char* end = nullptr;
    const unsigned long v = std::strtoul(arg.c_str() + prefix_len, &end, 10);
    if (end == arg.c_str() + prefix_len || *end != '\0' || v < min || v > max) {
      std::fprintf(stderr, "bad %s value: '%s' (want an integer in [%lu, %lu])\n", what,
                   arg.c_str() + prefix_len, min, max);
      std::exit(2);
    }
    return static_cast<unsigned>(v);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rounds=", 0) == 0) {
      rounds = parse_uint(arg, 9, 1, 1u << 20, "--rounds");
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = parse_uint(arg, 10, 1, 1000, "--repeats");
    } else if (arg.rfind("--delivery-buckets=", 0) == 0) {
      delivery_buckets =
          parse_uint(arg, 19, 0, sim::kMaxDeliveryBuckets, "--delivery-buckets");
    } else if (arg.rfind("--sizes=", 0) == 0) {
      sizes = parse_sizes(arg.substr(8));
    } else if (arg.rfind("--workloads=", 0) == 0) {
      // Comma list drawn from push,push_pull,exchange (subset, any order).
      workloads.clear();
      std::string list = arg.substr(12);
      for (std::size_t pos = 0; pos <= list.size();) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        const std::string w = list.substr(pos, comma - pos);
        if (w != "push" && w != "push_pull" && w != "exchange") {
          std::fprintf(stderr, "bad --workloads entry: '%s'\n", w.c_str());
          return 2;
        }
        workloads.push_back(w);
        pos = comma + 1;
      }
      if (workloads.empty()) {
        std::fprintf(stderr, "--workloads needs at least one workload\n");
        return 2;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--delta") {
      delta_metering = true;  // meter Delta on static/legacy paths too
    } else if (arg == "--quick") {
      sizes = {100000};
      rounds = 6;
      repeats = 1;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  {
    // Process warm-up (frequency ramp, allocator, page faults) so the first
    // measured configuration is not penalised.
    sim::NetworkOptions o;
    o.n = 1 << 16;
    o.seed = 1;
    sim::Network net(o);
    sim::Engine engine(net);
    PushWorkload w;
    for (int r = 0; r < 20; ++r) engine.run_round(w);
  }

  std::vector<Result> results;
  for (const std::uint32_t n : sizes) {
    for (const std::string& workload : workloads) {
      std::vector<Result> triple;
      const std::string& w = workload;
      if (w == "push") {
        triple = bench_size(n, w, PushWorkload{}, rounds, repeats, delta_metering,
                            delivery_buckets);
      } else if (w == "push_pull") {
        triple = bench_size(n, w, PushPullWorkload{}, rounds, repeats, delta_metering,
                            delivery_buckets);
      } else {
        triple = bench_size(n, w, ExchangeWorkload{}, rounds, repeats, delta_metering,
                            delivery_buckets);
      }
      for (Result& r : triple) {
        std::fprintf(stderr,
                     "n=%-9llu %-10s %-22s %8.2f Mcontacts/s (p1 %.3fs p2 %.3fs p3 %.3fs)\n",
                     static_cast<unsigned long long>(r.n), r.workload.c_str(),
                     r.path.c_str(), r.contacts_per_sec() / 1e6,
                     r.phases.phase1_seconds, r.phases.phase2_seconds,
                     r.phases.phase3_seconds);
        results.push_back(std::move(r));
      }
    }
  }

  emit_json(std::cout, results, delta_metering, repeats, delivery_buckets);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    emit_json(f, results, delta_metering, repeats, delivery_buckets);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
