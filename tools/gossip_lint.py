#!/usr/bin/env python3
"""Determinism-contract linter for the gossip reproduction.

The repo's core claim is bit-identical trajectories across TrialRunner
workers x engine threads x delivery buckets (README "Determinism
contracts"). Most violations of that claim are not crashes - they are a
stray wall-clock read, a hash-ordered iteration, or a float reduction
whose result depends on merge order. This linter walks every C++ file
under src/ with a small C++ tokenizer (comments are kept as tokens: the
`// GOSSIP_HOT` annotations and `// gossip-lint: allow(...)` suppressions
live there) and enforces four rule classes:

  raw-random       std::mt19937 / random_device / rand() outside the
                   repo's counter-based RNG (common/rng.*). Every draw
                   must come from a seeded, forkable stream.
  wall-clock       <chrono> clock ::now() reads outside obs/ (telemetry
                   may timestamp; simulation logic may not). Clock
                   aliases (`using Clock = std::chrono::steady_clock`)
                   are tracked per file.
  unordered-decl   unordered_map/unordered_set anywhere in the
                   order-sensitive layers (cluster/, core/, runner/,
                   obs/, analysis/, membership/) - these layers feed
                   reports and merges, where hash order leaks straight
                   into output.
  unordered-iter   iteration (range-for, .begin()) over a variable
                   declared with an unordered container, anywhere in
                   src/. Membership-only probes are fine; traversal
                   order is not.
  float-accum      float/double tokens inside merge*/accumulate*
                   function bodies or RoundStats members. Cross-shard
                   and cross-bucket merges must stay integral so the
                   reduction order cannot change the result.
  hot-throw        `throw` inside a `// GOSSIP_HOT` region.
  hot-new          `new` inside a hot region.
  hot-std-function std::function inside a hot region (type-erased call
                   + allocation on the per-contact path).
  hot-push-back    push_back/emplace_back inside a hot region with no
                   visible `<recv>.reserve(` in the file - amortized
                   growth spikes are real latency on the hot path.
                   Justified spill paths carry an inline allow.

Suppressions: `// gossip-lint: allow(<rule>[, <rule>...]) <reason>` on
the finding's line or up to 3 lines above it. Long-lived, justified
findings live in tools/lint_baseline.txt instead - the baseline is
machine-checked both ways (new findings fail; stale entries fail), so it
can only be changed deliberately via --update-baseline.

Exit codes: 0 clean (scan matches baseline exactly), 1 findings or a
stale baseline, 2 usage errors. Stdlib only; no libclang.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from collections import Counter
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------


class Tok(NamedTuple):
    kind: str  # 'id' | 'num' | 'string' | 'char' | 'punct' | 'comment'
    val: str
    line: int


_RAW_OPEN = re.compile(r'R"([^()\\\s]{0,16})\(')


def tokenize(text: str) -> List[Tok]:
    toks: List[Tok] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            toks.append(Tok("comment", text[i:j], line))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            toks.append(Tok("comment", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            m = _RAW_OPEN.match(text, i)
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, m.end())
                j = n if j == -1 else j + len(close)
                toks.append(Tok("string", text[i:j], line))
                line += text.count("\n", i, j)
                i = j
                continue
        if c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            toks.append(Tok("string" if c == '"' else "char", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'"):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        toks.append(Tok("punct", c, line))
        i += 1
    return toks


# --------------------------------------------------------------------------
# Findings and suppression
# --------------------------------------------------------------------------


class Finding(NamedTuple):
    rule: str
    path: str
    line: int
    message: str


ALL_RULES = (
    "raw-random",
    "wall-clock",
    "unordered-decl",
    "unordered-iter",
    "float-accum",
    "hot-throw",
    "hot-new",
    "hot-std-function",
    "hot-push-back",
)

_ALLOW_RE = re.compile(r"gossip-lint:\s*allow\(([a-z\-,\s]+)\)")
_ALLOW_WINDOW = 3  # lines above a finding an allow comment may sit on

# Layers whose outputs are order-sensitive end to end (reports, merges,
# JSON): unordered containers are banned at declaration there.
ORDER_SENSITIVE_DIRS = {"cluster", "core", "runner", "obs", "analysis", "membership"}

UNORDERED_TYPES = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
}
CHRONO_CLOCKS = {"steady_clock", "system_clock", "high_resolution_clock"}
RANDOM_IDS = {
    "mt19937",
    "mt19937_64",
    "minstd_rand",
    "minstd_rand0",
    "default_random_engine",
    "random_device",
    "ranlux24",
    "ranlux48",
    "knuth_b",
}


def allow_lines(toks: Sequence[Tok]) -> Dict[int, Set[str]]:
    allows: Dict[int, Set[str]] = {}
    for t in toks:
        if t.kind != "comment":
            continue
        m = _ALLOW_RE.search(t.val)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows.setdefault(t.line, set()).update(rules)
    return allows


def suppressed(f: Finding, allows: Dict[int, Set[str]]) -> bool:
    for line in range(f.line - _ALLOW_WINDOW, f.line + 1):
        if f.rule in allows.get(line, set()):
            return True
    return False


# --------------------------------------------------------------------------
# Token helpers
# --------------------------------------------------------------------------


def match_brace(code: Sequence[Tok], open_idx: int) -> int:
    """Index of the '}' matching code[open_idx] == '{' (len(code) if EOF)."""
    depth = 0
    for i in range(open_idx, len(code)):
        v = code[i].val
        if code[i].kind == "punct":
            if v == "{":
                depth += 1
            elif v == "}":
                depth -= 1
                if depth == 0:
                    return i
    return len(code)


def match_paren(code: Sequence[Tok], open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(code)):
        v = code[i].val
        if code[i].kind == "punct":
            if v == "(":
                depth += 1
            elif v == ")":
                depth -= 1
                if depth == 0:
                    return i
    return len(code)


def match_angle(code: Sequence[Tok], open_idx: int) -> int:
    """Heuristic template-argument matcher for code[open_idx] == '<'."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i].kind != "punct":
            continue
        v = code[i].val
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return i
        elif v == ";":  # gave up: it was a comparison, not a template
            return open_idx
    return open_idx


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


def clock_aliases(code: Sequence[Tok]) -> Set[str]:
    """Names bound via `using X = ...steady_clock...;` (and the clocks)."""
    names = set(CHRONO_CLOCKS)
    i = 0
    while i < len(code) - 3:
        if code[i].val == "using" and code[i + 1].kind == "id" and code[i + 2].val == "=":
            j = i + 3
            rhs: Set[str] = set()
            while j < len(code) and code[j].val != ";":
                if code[j].kind == "id":
                    rhs.add(code[j].val)
                j += 1
            if rhs & CHRONO_CLOCKS:
                names.add(code[i + 1].val)
            i = j
        i += 1
    return names


def rule_random_and_clock(relpath: str, code: Sequence[Tok]) -> List[Finding]:
    out: List[Finding] = []
    top = relpath.split("/", 1)[0]
    exempt_random = relpath.startswith("common/rng.") or top == "obs"
    exempt_clock = top == "obs"
    clocks = clock_aliases(code)
    for i, t in enumerate(code):
        if t.kind != "id":
            continue
        if not exempt_random:
            if t.val in RANDOM_IDS:
                out.append(Finding("raw-random", relpath, t.line,
                                   f"'{t.val}' bypasses the seeded counter-based "
                                   "RNG (common/rng.hpp); draws must be "
                                   "replayable from (seed, round, shard)"))
            elif t.val in ("rand", "srand") and i + 1 < len(code) \
                    and code[i + 1].val == "(" \
                    and (i == 0 or code[i - 1].val not in (".", ">", ":")):
                out.append(Finding("raw-random", relpath, t.line,
                                   f"'{t.val}()' is unseeded global state"))
        if not exempt_clock:
            if (t.val == "now" and i >= 3
                    and code[i - 1].val == ":" and code[i - 2].val == ":"
                    and code[i - 3].val in clocks
                    and i + 1 < len(code) and code[i + 1].val == "("):
                out.append(Finding("wall-clock", relpath, t.line,
                                   f"'{code[i - 3].val}::now()' reads the wall "
                                   "clock; simulation logic must be a pure "
                                   "function of (seed, config)"))
    return out


def unordered_decl_names(code: Sequence[Tok]) -> List[Tuple[str, int]]:
    """(name, line) of variables/members declared with an unordered type."""
    names: List[Tuple[str, int]] = []
    i = 0
    while i < len(code):
        if code[i].kind == "id" and code[i].val in UNORDERED_TYPES:
            j = i + 1
            if j < len(code) and code[j].val == "<":
                close = match_angle(code, j)
                if close > j:
                    k = close + 1
                    while k < len(code) and code[k].val in ("&", "*", "const"):
                        k += 1
                    if k < len(code) and code[k].kind == "id":
                        names.append((code[k].val, code[k].line))
        i += 1
    return names


def rule_unordered(relpath: str, code: Sequence[Tok]) -> List[Finding]:
    out: List[Finding] = []
    top = relpath.split("/", 1)[0]
    if top in ORDER_SENSITIVE_DIRS:
        for t in code:
            if t.kind == "id" and t.val in UNORDERED_TYPES:
                out.append(Finding("unordered-decl", relpath, t.line,
                                   f"'{t.val}' in an order-sensitive layer "
                                   f"(src/{top}/); hash order leaks into "
                                   "merges and reports - use a sorted or "
                                   "capacity-indexed container"))
    names = {n for n, _ in unordered_decl_names(code)}
    if not names:
        return out
    for i, t in enumerate(code):
        if t.kind == "id" and t.val == "for" and i + 1 < len(code) \
                and code[i + 1].val == "(":
            close = match_paren(code, i + 1)
            depth = 0
            for j in range(i + 1, close):
                v = code[j].val
                if code[j].kind == "punct":
                    if v == "(":
                        depth += 1
                    elif v == ")":
                        depth -= 1
                    elif v == ":" and depth == 1 \
                            and code[j - 1].val != ":" and code[j + 1].val != ":":
                        for k in range(j + 1, close):
                            if code[k].kind == "id" and code[k].val in names:
                                out.append(Finding(
                                    "unordered-iter", relpath, code[k].line,
                                    f"range-for over unordered container "
                                    f"'{code[k].val}': traversal order is the "
                                    "hash function, not the data"))
                                break
                        break
        if t.kind == "id" and t.val in ("begin", "cbegin", "rbegin") \
                and i >= 2 and code[i - 1].val == "." \
                and code[i - 2].kind == "id" and code[i - 2].val in names:
            out.append(Finding("unordered-iter", relpath, t.line,
                               f"'{code[i - 2].val}.{t.val}()' walks an "
                               "unordered container in hash order"))
    return out


_MERGE_NAME = re.compile(r"^(merge|accumulate)")


def rule_float_accum(relpath: str, code: Sequence[Tok]) -> List[Finding]:
    out: List[Finding] = []
    i = 0
    while i < len(code):
        t = code[i]
        # merge*/accumulate* function DEFINITIONS (call sites end in ';').
        if t.kind == "id" and _MERGE_NAME.match(t.val) and i + 1 < len(code) \
                and code[i + 1].val == "(":
            close = match_paren(code, i + 1)
            k = close + 1
            hops = 0
            while k < len(code) and hops < 12 and code[k].val not in ("{", ";", "="):
                k += 1
                hops += 1
            if k < len(code) and code[k].val == "{":
                end = match_brace(code, k)
                for j in range(k, end):
                    if code[j].kind == "id" and code[j].val in ("float", "double"):
                        out.append(Finding(
                            "float-accum", relpath, code[j].line,
                            f"'{code[j].val}' inside '{t.val}': cross-shard/"
                            "bucket merges must accumulate in integers so the "
                            "reduction order cannot change the result"))
                i = end
        # RoundStats members stay integral - its deltas are merged.
        if t.kind == "id" and t.val == "RoundStats" and i >= 1 \
                and code[i - 1].val in ("struct", "class") and i + 1 < len(code):
            k = i + 1
            while k < len(code) and code[k].val not in ("{", ";"):
                k += 1
            if k < len(code) and code[k].val == "{":
                end = match_brace(code, k)
                for j in range(k, end):
                    if code[j].kind == "id" and code[j].val in ("float", "double"):
                        out.append(Finding(
                            "float-accum", relpath, code[j].line,
                            "float member in RoundStats: per-shard deltas of "
                            "this struct are merged, so members must be "
                            "order-insensitive (integral) counters"))
                i = end
        i += 1
    return out


def _has_reserve(code: Sequence[Tok], receiver: Optional[str]) -> bool:
    if receiver is None:
        return False
    for i in range(len(code) - 2):
        if code[i].kind == "id" and code[i].val == receiver \
                and code[i + 1].val in (".",) and code[i + 2].val == "reserve":
            return True
        if code[i].kind == "id" and code[i].val == receiver \
                and code[i + 1].val == "-" and i + 3 < len(code) \
                and code[i + 2].val == ">" and code[i + 3].val == "reserve":
            return True
    return False


def rule_hot_regions(relpath: str, toks: Sequence[Tok],
                     code: Sequence[Tok]) -> List[Finding]:
    out: List[Finding] = []
    # Map each GOSSIP_HOT comment to the first code token after it.
    code_pos = 0
    hot_starts: List[int] = []
    for t in toks:
        if t.kind == "comment" and "GOSSIP_HOT" in t.val:
            while code_pos < len(code) and (code[code_pos].line < t.line
                                            or code[code_pos].line == t.line):
                # same-line code before the comment is already behind us;
                # a trailing `// GOSSIP_HOT` annotates what FOLLOWS.
                if code[code_pos].line > t.line:
                    break
                code_pos += 1
            hot_starts.append(code_pos)
        elif t.kind != "comment":
            pass
    seen: Set[Tuple[str, int, str]] = set()
    for start in hot_starts:
        open_idx = start
        while open_idx < len(code) and code[open_idx].val != "{":
            open_idx += 1
        if open_idx >= len(code):
            continue
        end = match_brace(code, open_idx)
        for j in range(open_idx + 1, end):
            t = code[j]
            if t.kind != "id":
                continue
            f: Optional[Finding] = None
            if t.val == "throw":
                f = Finding("hot-throw", relpath, t.line,
                            "'throw' in a GOSSIP_HOT region (use GOSSIP_DCHECK "
                            "for audit-only contracts; unwinding machinery has "
                            "no place on the per-contact path)")
            elif t.val == "new":
                f = Finding("hot-new", relpath, t.line,
                            "'new' in a GOSSIP_HOT region: allocation on the "
                            "per-contact path")
            elif t.val == "function" and j >= 2 and code[j - 1].val == ":" \
                    and code[j - 2].val == ":" and j >= 3 and code[j - 3].val == "std":
                f = Finding("hot-std-function", relpath, t.line,
                            "std::function in a GOSSIP_HOT region: type-erased "
                            "dispatch and possible allocation per call")
            elif t.val in ("push_back", "emplace_back"):
                receiver = None
                if j >= 2 and code[j - 1].val == "." and code[j - 2].kind == "id":
                    receiver = code[j - 2].val
                if not _has_reserve(code, receiver):
                    who = f"'{receiver}.{t.val}'" if receiver else f"'{t.val}'"
                    f = Finding("hot-push-back", relpath, t.line,
                                f"{who} in a GOSSIP_HOT region with no visible "
                                "reserve() for the receiver; growth "
                                "reallocation is a latency spike on the hot "
                                "path (annotate a justified spill with "
                                "gossip-lint: allow(hot-push-back))")
            if f is not None:
                key = (f.rule, f.line, f.message)
                if key not in seen:
                    seen.add(key)
                    out.append(f)
    return out


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def scan_source(relpath: str, text: str) -> List[Finding]:
    toks = tokenize(text)
    code = [t for t in toks if t.kind != "comment"]
    allows = allow_lines(toks)
    findings: List[Finding] = []
    findings += rule_random_and_clock(relpath, code)
    findings += rule_unordered(relpath, code)
    findings += rule_float_accum(relpath, code)
    findings += rule_hot_regions(relpath, toks, code)
    return sorted((f for f in findings if not suppressed(f, allows)),
                  key=lambda f: (f.path, f.line, f.rule))


def scan_tree(src_root: str) -> List[Finding]:
    findings: List[Finding] = []
    for dirpath, _dirs, files in sorted(os.walk(src_root)):
        for name in sorted(files):
            if not name.endswith((".hpp", ".cpp", ".h", ".cc")):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, src_root).replace(os.sep, "/")
            with open(full, "r", encoding="utf-8", errors="replace") as fh:
                findings += scan_source(rel, fh.read())
    return findings


def load_baseline(path: str) -> Counter:
    counts: Counter = Counter()
    if not os.path.exists(path):
        return counts
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise SystemExit(f"error: malformed baseline line: {line!r}")
            counts[(parts[0], parts[1])] = int(parts[2])
    return counts


def write_baseline(path: str, counts: Counter) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# gossip_lint suppression baseline - machine checked.\n")
        fh.write("# Regenerate with: python3 tools/gossip_lint.py --update-baseline\n")
        fh.write("# rule\tpath (relative to src/)\tcount\n")
        for (rule, path_), count in sorted(counts.items()):
            fh.write(f"{rule}\t{path_}\t{count}\n")


def check_against_baseline(findings: List[Finding], baseline: Counter) -> Tuple[List[Finding], List[str]]:
    """(non-baselined findings, stale-baseline complaints)."""
    found = Counter((f.rule, f.path) for f in findings)
    fresh: List[Finding] = []
    budget = dict(baseline)
    for f in findings:
        key = (f.rule, f.path)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            fresh.append(f)
    stale = [f"stale baseline entry: {rule}\t{path} "
             f"(baseline {baseline[(rule, path)]}, found {found.get((rule, path), 0)})"
             for (rule, path) in sorted(baseline)
             if found.get((rule, path), 0) < baseline[(rule, path)]]
    return fresh, stale


# --------------------------------------------------------------------------
# Selftest: every rule class must fire on a seeded violation and stay
# quiet on the clean / suppressed variant.
# --------------------------------------------------------------------------

_SELFTEST_CASES: List[Tuple[str, str, str, List[str]]] = [
    ("raw-random fires", "core/x.cpp",
     "#include <random>\nvoid f() { std::mt19937 gen(42); }\n",
     ["raw-random"]),
    ("raw-random exempt in common/rng", "common/rng.cpp",
     "#include <random>\nvoid f() { std::random_device rd; }\n",
     []),
    ("rand() fires", "sim/x.cpp",
     "#include <cstdlib>\nint f() { return rand(); }\n",
     ["raw-random"]),
    ("wall-clock via alias fires", "sim/x.cpp",
     "#include <chrono>\nusing Clock = std::chrono::steady_clock;\n"
     "auto f() { return Clock::now(); }\n",
     ["wall-clock"]),
    ("wall-clock direct fires", "runner/x.cpp",
     "#include <chrono>\nauto f() { return std::chrono::steady_clock::now(); }\n",
     ["wall-clock"]),
    ("wall-clock exempt in obs/", "obs/x.cpp",
     "#include <chrono>\nauto f() { return std::chrono::steady_clock::now(); }\n",
     []),
    ("unordered-decl fires in cluster/", "cluster/x.cpp",
     "#include <unordered_map>\nstd::unordered_map<int, int> m;\n",
     ["unordered-decl", "unordered-decl"]),
    ("unordered decl alone OK in sim/", "sim/x.cpp",
     "#include <unordered_set>\nstd::unordered_set<int> s;\n"
     "bool f(int v) { return s.count(v) != 0; }\n",
     []),
    ("unordered-iter range-for fires", "sim/x.cpp",
     "#include <unordered_map>\nstd::unordered_map<int, int> m;\n"
     "int f() { int t = 0; for (const auto& kv : m) t += kv.second; return t; }\n",
     ["unordered-iter"]),
    ("unordered-iter begin() fires", "sim/x.cpp",
     "#include <unordered_map>\nstd::unordered_map<int, int> m;\n"
     "auto f() { return m.begin(); }\n",
     ["unordered-iter"]),
    ("float-accum in merge body fires", "sim/x.cpp",
     "struct S { long v; };\nvoid merge_delta(const S& s) { double acc = 0; (void)s; (void)acc; }\n",
     ["float-accum"]),
    ("double ratio helper is fine", "sim/x.cpp",
     "struct R { long a = 0, b = 0;\n"
     "  double ratio() const { return b == 0 ? 0.0 : double(a) / double(b); }\n};\n",
     []),
    ("RoundStats float member fires", "sim/x.cpp",
     "struct RoundStats { double mean = 0.0; };\n",
     ["float-accum"]),
    ("hot throw fires", "sim/x.cpp",
     "// GOSSIP_HOT\nvoid f(bool b) { if (b) throw 1; }\n",
     ["hot-throw"]),
    ("hot new fires", "sim/x.cpp",
     "// GOSSIP_HOT\nint* f() { return new int(3); }\n",
     ["hot-new"]),
    ("hot std::function fires", "sim/x.cpp",
     "#include <functional>\n// GOSSIP_HOT\n"
     "void f() { std::function<void()> g = [] {}; g(); }\n",
     ["hot-std-function"]),
    ("hot push_back without reserve fires", "sim/x.cpp",
     "#include <vector>\nstd::vector<int> v;\n"
     "// GOSSIP_HOT\nvoid f(int x) { v.push_back(x); }\n",
     ["hot-push-back"]),
    ("hot push_back with reserve is fine", "sim/x.cpp",
     "#include <vector>\nstd::vector<int> v;\n"
     "void setup(int n) { v.reserve(n); }\n"
     "// GOSSIP_HOT\nvoid f(int x) { v.push_back(x); }\n",
     []),
    ("hot push_back with allow is fine", "sim/x.cpp",
     "#include <vector>\nstd::vector<int> v;\n"
     "// GOSSIP_HOT\nvoid f(int x) {\n"
     "  // gossip-lint: allow(hot-push-back) rare spill path\n"
     "  v.push_back(x);\n}\n",
     []),
    ("hot region ends at its brace", "sim/x.cpp",
     "// GOSSIP_HOT\nvoid f() { }\n"
     "void g(bool b) { if (b) throw 1; }\n",
     []),
    ("suppression comment works", "core/x.cpp",
     "#include <random>\n"
     "// gossip-lint: allow(raw-random) seeded torture-test fixture\n"
     "std::mt19937 gen(42);\n",
     []),
    ("rules ignore comments and strings", "core/x.cpp",
     "// std::mt19937 in prose, for (auto x : m) too\n"
     "const char* s = \"std::unordered_map<int,int> rand() throw\";\n",
     []),
]


def selftest() -> int:
    failed = 0
    for name, relpath, source, expected in _SELFTEST_CASES:
        got = sorted(f.rule for f in scan_source(relpath, source))
        want = sorted(expected)
        if got == want:
            print(f"  PASS  {name}")
        else:
            failed += 1
            print(f"  FAIL  {name}: expected {want}, got {got}")
    total = len(_SELFTEST_CASES)
    print(f"selftest: {total - failed}/{total} cases passed")
    return 1 if failed else 0


# --------------------------------------------------------------------------
# Main
# --------------------------------------------------------------------------


def main(argv: Sequence[str]) -> int:
    repo_default = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(
        description="Determinism-contract linter for src/ (see module docstring).")
    ap.add_argument("--root", default=repo_default,
                    help="repository root (default: the checkout containing this script)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: <root>/tools/lint_baseline.txt)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from the current scan and exit 0")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report every finding, ignoring the baseline")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write findings as JSON (CI artifact)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the embedded rule self-tests and exit")
    args = ap.parse_args(argv)

    if args.selftest:
        return selftest()

    src_root = os.path.join(args.root, "src")
    if not os.path.isdir(src_root):
        print(f"error: no src/ under {args.root}", file=sys.stderr)
        return 2
    baseline_path = args.baseline or os.path.join(args.root, "tools", "lint_baseline.txt")

    findings = scan_tree(src_root)
    counts = Counter((f.rule, f.path) for f in findings)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"findings": [f._asdict() for f in findings],
                       "counts": {f"{r}\t{p}": c for (r, p), c in sorted(counts.items())}},
                      fh, indent=2)
            fh.write("\n")

    if args.update_baseline:
        write_baseline(baseline_path, counts)
        print(f"baseline updated: {baseline_path} "
              f"({sum(counts.values())} finding(s) across {len(counts)} key(s))")
        return 0

    baseline = Counter() if args.no_baseline else load_baseline(baseline_path)
    fresh, stale = check_against_baseline(findings, baseline)

    for f in fresh:
        print(f"src/{f.path}:{f.line}: [{f.rule}] {f.message}")
    for s in stale:
        print(s)
    baselined = sum(counts.values()) - len(fresh)
    if fresh or stale:
        print(f"gossip_lint: {len(fresh)} new finding(s), {len(stale)} stale "
              f"baseline entr(ies), {baselined} baselined - FAIL")
        if stale:
            print("  (baseline out of date: rerun with --update-baseline and "
                  "review the diff)")
        return 1
    print(f"gossip_lint: clean ({baselined} baselined finding(s), "
          f"{len(baseline)} baseline key(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
