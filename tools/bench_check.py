#!/usr/bin/env python3
"""Perf-regression gate over the committed BENCH_*.json tracking files.

Compares a fresh bench_engine_throughput run against the committed baseline
and exits 1 on a regression or on schema drift:

    ./build/bench_engine_throughput --sizes=100000 --out=fresh.json
    python3 tools/bench_check.py BENCH_engine_throughput.json fresh.json \
        --max-ratio=5.0 --recorder-overhead-max=1.15

Matching: "results" rows pair up on (n, workload, path); the speedup rows
pair up on (n, workload). Baseline rows with no fresh counterpart are
skipped with a note (CI runs a reduced --sizes sweep); a fresh row whose
baseline counterpart LACKS a checked field, or a matched fresh row missing
one, is schema drift and fails hard regardless of tolerance.

Scenario-schema files (write_scenarios_json: a top-level "scenarios" array,
e.g. BENCH_recovery.json / BENCH_churn.json) are detected automatically and
checked with scenario rules instead: rows pair up on scenario.name, the
informed_fraction mean is a floor, rounds/bits_per_node means are ceilings,
and - the completion contract - a baseline row with informed_fraction
min = 1.0 (every supervised recovery cell) must KEEP min = 1.0 exactly,
ratio tolerance notwithstanding:

    ./build/bench_fault_tolerance --seeds=2 --recovery-out=fresh_recovery.json
    python3 tools/bench_check.py BENCH_recovery.json fresh_recovery.json

Checks (all ratio-based, so one --max-ratio spans fast and slow machines):
  contacts_per_sec   fresh may not drop below baseline / max-ratio
  vs_reference,      same (the static path must stay ahead of the
  vs_adapter         std::function paths by at least baseline / max-ratio)
  recorder_overhead  fresh may not exceed baseline * max-ratio, and never
                     the absolute --recorder-overhead-max cap. The design
                     envelope is 1.05x, which the paper's protocols meet at
                     the median; the default cap is 1.15 because the tracked
                     sweep also includes the synthetic all-push blast (whose
                     per-contact probe floor is ~1.09x) and run-to-run
                     scatter on a shared host is about +/-0.05 (README
                     "Spread provenance").
  peak_rss_bytes     fresh may not exceed baseline * --rss-ratio (top-level;
                     skipped when either side lacks it, e.g. an old baseline)
Values below --min-abs (absolute) are skipped as noise.
"""
import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_*.json")
    ap.add_argument("fresh", help="freshly produced bench JSON")
    ap.add_argument("--max-ratio", type=float, default=1.5,
                    help="allowed throughput degradation factor (default 1.5)")
    ap.add_argument("--recorder-overhead-max", type=float, default=1.15,
                    help="absolute cap on recorder_overhead (default 1.15: "
                         "the 1.05 design envelope plus the synthetic "
                         "all-push probe floor and shared-host scatter)")
    ap.add_argument("--rss-ratio", type=float, default=2.0,
                    help="allowed peak-RSS growth factor (default 2.0)")
    ap.add_argument("--min-abs", type=float, default=1e-9,
                    help="skip comparisons where baseline < this value")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    failures = []
    notes = []

    for key in ("bench", "unit"):
        if base.get(key) != fresh.get(key):
            failures.append(f"schema drift: top-level '{key}' differs "
                            f"({base.get(key)!r} vs {fresh.get(key)!r})")

    def index(doc, rows_key, id_fields):
        out = {}
        for row in doc.get(rows_key, []):
            out[tuple(row.get(f) for f in id_fields)] = row
        return out

    def check_rows(rows_key, id_fields, checks):
        base_rows = index(base, rows_key, id_fields)
        fresh_rows = index(fresh, rows_key, id_fields)
        if not base_rows:
            failures.append(f"schema drift: baseline has no '{rows_key}' rows")
            return
        if not fresh_rows:
            failures.append(f"schema drift: fresh run has no '{rows_key}' rows")
            return
        for ident, b in sorted(base_rows.items(), key=repr):
            f = fresh_rows.get(ident)
            if f is None:
                notes.append(f"{rows_key}{ident}: not in fresh run, skipped")
                continue
            for field, kind in checks:
                bv, fv = b.get(field), f.get(field)
                if bv is None or fv is None:
                    failures.append(
                        f"schema drift: {rows_key}{ident} field '{field}' "
                        f"missing ({'baseline' if bv is None else 'fresh'})")
                    continue
                if bv < args.min_abs:
                    continue
                if kind == "floor" and fv < bv / args.max_ratio:
                    failures.append(
                        f"regression: {rows_key}{ident} {field} "
                        f"{fv:.4g} < {bv:.4g} / {args.max_ratio}")
                elif kind == "ceil" and fv > bv * args.max_ratio:
                    failures.append(
                        f"regression: {rows_key}{ident} {field} "
                        f"{fv:.4g} > {bv:.4g} * {args.max_ratio}")
                if field == "recorder_overhead" and \
                        fv > args.recorder_overhead_max:
                    failures.append(
                        f"regression: {rows_key}{ident} recorder_overhead "
                        f"{fv:.4g} > cap {args.recorder_overhead_max}")

    def check_scenarios():
        base_rows = {r["scenario"]["name"]: r for r in base.get("scenarios", [])}
        fresh_rows = {r["scenario"]["name"]: r for r in fresh.get("scenarios", [])}
        if not base_rows:
            failures.append("schema drift: baseline has no 'scenarios' rows")
            return
        if not fresh_rows:
            failures.append("schema drift: fresh run has no 'scenarios' rows")
            return
        checks = [("informed_fraction", "mean", "floor"),
                  ("rounds", "mean", "ceil"),
                  ("bits_per_node", "mean", "ceil")]
        for name, b in sorted(base_rows.items()):
            f = fresh_rows.get(name)
            if f is None:
                notes.append(f"scenarios[{name}]: not in fresh run, skipped")
                continue
            for metric, stat, kind in checks:
                bv = b.get("metrics", {}).get(metric, {}).get(stat)
                fv = f.get("metrics", {}).get(metric, {}).get(stat)
                if bv is None or fv is None:
                    failures.append(
                        f"schema drift: scenarios[{name}] '{metric}.{stat}' "
                        f"missing ({'baseline' if bv is None else 'fresh'})")
                    continue
                if bv < args.min_abs:
                    continue
                # A brittle showcase row's informed fraction is adversarial
                # by design (near zero, seed-count sensitive) - only floors
                # that certify real coverage are worth holding.
                if metric == "informed_fraction" and bv < 0.9:
                    notes.append(f"scenarios[{name}]: informed_fraction.mean "
                                 f"{bv:.4g} < 0.9 baseline, floor skipped")
                    continue
                if kind == "floor" and fv < bv / args.max_ratio:
                    failures.append(
                        f"regression: scenarios[{name}] {metric}.{stat} "
                        f"{fv:.4g} < {bv:.4g} / {args.max_ratio}")
                elif kind == "ceil" and fv > bv * args.max_ratio:
                    failures.append(
                        f"regression: scenarios[{name}] {metric}.{stat} "
                        f"{fv:.4g} > {bv:.4g} * {args.max_ratio}")
            # The completion contract is exact, not ratio-tolerant: a cell
            # the baseline certifies as "every trial fully informed" (the
            # supervised recovery rows) may never strand a node again.
            b_min = b.get("metrics", {}).get("informed_fraction", {}).get("min")
            f_min = f.get("metrics", {}).get("informed_fraction", {}).get("min")
            if b_min == 1.0 and f_min is not None and f_min < 1.0:
                failures.append(
                    f"regression: scenarios[{name}] completion contract broken: "
                    f"informed_fraction.min {f_min:.4g} < 1.0")

    if "scenarios" in base or "scenarios" in fresh:
        check_scenarios()
    else:
        check_rows("results", ("n", "workload", "path"),
                   [("contacts_per_sec", "floor")])
        check_rows("speedup_static_over_stdfunction_path", ("n", "workload"),
                   [("vs_reference", "floor"), ("vs_adapter", "floor"),
                    ("recorder_overhead", "ceil")])

    b_rss, f_rss = base.get("peak_rss_bytes"), fresh.get("peak_rss_bytes")
    if b_rss and f_rss:
        if f_rss > b_rss * args.rss_ratio:
            failures.append(f"regression: peak_rss_bytes {f_rss} > "
                            f"{b_rss} * {args.rss_ratio}")
    elif b_rss or f_rss:
        notes.append("peak_rss_bytes present on one side only, skipped")

    for n in notes:
        print(f"bench_check: note: {n}")
    for f in failures:
        print(f"bench_check: FAIL: {f}", file=sys.stderr)
    if failures:
        return 1
    print(f"bench_check: OK ({args.baseline} vs {args.fresh})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
