// gossip_run - the declarative scenario-runner CLI.
//
// One entry point for every algorithm in the registry (paper cores +
// baselines), driven by a scenario file and/or CLI flags:
//
//   gossip_run --list
//   gossip_run --algorithm=cluster2 --n=4096 --trials=10 --threads=4
//   gossip_run --scenario=scenarios/smoke.scn --threads=4 --out=report.json
//
// Flags override the scenario file. The JSON report goes to stdout (and
// --out=FILE); a human summary table goes to stderr. The report is
// bit-identical for every --threads value - CI diffs --threads=1 against
// --threads=4 to enforce it (see runner/trial_runner.hpp).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/export.hpp"
#include "runner/json_report.hpp"
#include "runner/registry.hpp"
#include "runner/scenario.hpp"
#include "runner/trial_runner.hpp"

namespace {

using namespace gossip;

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: gossip_run [--scenario=FILE] [--KEY=VALUE ...] [--out=FILE]\n"
               "                  [--list] [--quiet] [--help]\n\n"
               "  --scenario=FILE  load a 'key = value' scenario file (# comments)\n"
               "  --KEY=VALUE      set/override a scenario key. Keys:\n");
  for (const std::string& k : runner::ScenarioSpec::keys()) {
    std::fprintf(to, "                     %s\n", k.c_str());
  }
  std::fprintf(to,
               "  --out=FILE       also write the JSON report to FILE\n"
               "  --timeseries=FILE  write a per-round JSONL time series\n"
               "  --events=FILE    write a structured event JSONL log\n"
               "  --trace=FILE     write a Chrome trace_event JSON file\n"
               "                   (open in chrome://tracing or Perfetto)\n"
               "  --provenance=FILE  write per-node first-inform provenance\n"
               "                   JSONL (informer, round, channel, depth)\n"
               "  --event_sample_cap=N  per-round, per-kind bottom-k event\n"
               "                   reservoir size (default 8, must be >= 1)\n"
               "  --progress[=BOOL]  rate-limited stderr heartbeat while the\n"
               "                   trials run (implied off by --quiet)\n"
               "  --list           list registry algorithm ids and exit\n"
               "  --quiet          suppress all stderr chatter (summary table,\n"
               "                   'wrote FILE' notes, --progress)\n\n"
               "JSON schema: see src/runner/json_report.hpp; telemetry schemas:\n"
               "src/obs/export.hpp. The report AND the telemetry files (modulo\n"
               "wall-clock *_ns fields, cf. tools/strip_timing.py) are\n"
               "bit-identical for every --threads value >= 1.\n");
}

void print_algorithms() {
  Table t("registered algorithms (--algorithm=ID)", {"id", "label", "summary"});
  for (const runner::AlgorithmEntry& e : runner::algorithms()) {
    t.row().add(e.id).add(e.display).add(e.summary);
  }
  t.print(std::cout);
}

void print_summary(const runner::ScenarioResult& result) {
  const runner::ScenarioSpec& s = result.spec;
  const analysis::ReportAggregate& a = result.aggregate;
  Table t(s.name + ": " + s.algorithm + " on n=" + std::to_string(s.n) + ", " +
              std::to_string(s.trials) + " trials (seed " + std::to_string(s.seed) +
              ", F=" + std::to_string(s.fault_count()) + ")",
          {"metric", "mean", "stddev", "min", "p50", "p90", "p99", "max"});
  const auto add_metric = [&](const char* name, const analysis::MetricStat& m,
                              int precision) {
    constexpr double kQs[] = {0.50, 0.90, 0.99};
    const std::vector<double> qs = m.quantiles(kQs);
    t.row()
        .add(name)
        .add(m.mean(), precision)
        .add(m.stddev(), precision)
        .add(m.min(), precision)
        .add(qs[0], precision)
        .add(qs[1], precision)
        .add(qs[2], precision)
        .add(m.max(), precision);
  };
  add_metric("rounds", a.rounds, 1);
  add_metric("payload msg/node", a.payload_per_node, 2);
  add_metric("connections/node", a.connections_per_node, 2);
  add_metric("bits/node", a.bits_per_node, 1);
  add_metric("max delta", a.max_delta, 1);
  add_metric("informed fraction", a.informed_fraction, 4);
  add_metric("uninformed", a.uninformed, 1);
  std::ostringstream os;
  t.print(os);
  os << "failures: " << a.failures << "/" << a.runs << " trials left nodes uninformed\n";
  std::fputs(os.str().c_str(), stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string out_path;
  bool quiet = false;
  std::vector<std::string> spec_flags;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--list") {
      print_algorithms();
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--progress") {
      spec_flags.push_back("--progress=true");  // bare-flag sugar
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario_path = arg.substr(11);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      spec_flags.push_back(arg);
    }
  }

  try {
    runner::ScenarioSpec spec;
    if (!scenario_path.empty()) {
      spec = runner::ScenarioSpec::from_file(scenario_path);
    }
    spec.apply_cli(spec_flags);  // flags override the file
    if (quiet) spec.progress = false;  // --quiet silences the heartbeat too

    // run_scenario validates the spec and resolves the algorithm itself.
    const runner::ScenarioResult result = runner::run_scenario(spec);

    runner::write_scenario_json(std::cout, result);
    if (!out_path.empty()) {
      std::ofstream f(out_path);
      if (!f) {
        std::fprintf(stderr, "gossip_run: cannot write %s\n", out_path.c_str());
        return 1;
      }
      runner::write_scenario_json(f, result);
      if (!quiet) std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }

    // Telemetry exports (collected when any of the paths is set).
    const auto views = result.telemetry_views();
    const auto write_telemetry =
        [&](const std::string& path,
            void (*writer)(std::ostream&, const std::vector<const obs::Telemetry*>&,
                           const obs::ExportOptions&)) {
          if (path.empty()) return true;
          std::ofstream f(path);
          if (!f) {
            std::fprintf(stderr, "gossip_run: cannot write %s\n", path.c_str());
            return false;
          }
          writer(f, views, obs::ExportOptions{});
          if (!quiet) std::fprintf(stderr, "wrote %s\n", path.c_str());
          return true;
        };
    if (!write_telemetry(spec.timeseries, &obs::write_timeseries_jsonl) ||
        !write_telemetry(spec.events, &obs::write_events_jsonl) ||
        !write_telemetry(spec.provenance, &obs::write_provenance_jsonl) ||
        !write_telemetry(spec.trace, &obs::write_chrome_trace)) {
      return 1;
    }
    if (!quiet) print_summary(result);
  } catch (const runner::ScenarioError& e) {
    std::fprintf(stderr, "gossip_run: %s\n\n", e.what());
    print_usage(stderr);
    return 2;
  } catch (const std::exception& e) {
    // Algorithm-level preconditions (e.g. delta <= n, minimum n) surface as
    // contract violations; report them cleanly instead of std::terminate.
    std::fprintf(stderr, "gossip_run: %s\n", e.what());
    return 1;
  }
  return 0;
}
