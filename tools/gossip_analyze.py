#!/usr/bin/env python3
"""Cross-trial analysis of gossip_run telemetry files.

Consumes any subset of the three JSONL telemetry streams (schemas in
src/obs/export.hpp) and prints per-trial and cross-trial summaries:

    gossip_run --scenario=... --timeseries=ts.jsonl --events=ev.jsonl \
               --provenance=prov.jsonl
    python3 tools/gossip_analyze.py --provenance=prov.jsonl \
               --timeseries=ts.jsonl --events=ev.jsonl --n=512 --check

Provenance gives the dispersion-tree view (who informed whom): per-trial
spread depth, mean depth, channel mix, direct-addressing share, and the
first-informed-round distribution (the per-node spread latency). The time
series gives rounds-to-completion and loss totals; the event log gives
fault/churn counts by kind.

--check enforces the paper's O(log n)-round envelope on the spread: every
traced first-inform must land within the engine's own auto round cap
(10 * ceil(log2(n)) + 50, sim/engine.hpp auto_round_cap) for the given
--n. Exit 1 on violation (or on empty input), 0 otherwise - CI runs this
against the churn scenario's provenance artifact.
"""
import argparse
import collections
import json
import math
import sys


def read_jsonl(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def quantile(sorted_vals, q):
    """Linear-interpolated quantile, matching common/stats.hpp."""
    if not sorted_vals:
        return 0.0
    pos = q * (len(sorted_vals) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


def round_cap(n):
    """The engine's auto round cap: 10 * ceil(log2(n)) + 50."""
    return 10 * max(1, math.ceil(math.log2(max(2, n)))) + 50


def summarize_provenance(rows):
    """Per-trial dispersion-tree summaries keyed by trial index."""
    by_trial = collections.defaultdict(list)
    for r in rows:
        by_trial[r["trial"]].append(r)
    out = {}
    for trial, entries in sorted(by_trial.items()):
        depths = [e["depth"] for e in entries]
        # Seeds sit at round -1; spread latency is over real deliveries.
        rounds = sorted(e["round"] for e in entries if e["channel"] != "seed")
        channels = collections.Counter(e["channel"] for e in entries)
        non_seed = sum(c for k, c in channels.items() if k != "seed")
        direct = sum(1 for e in entries if e.get("direct"))
        out[trial] = {
            "informed": len(entries),
            "depth_max": max(depths) if depths else 0,
            "depth_mean": sum(depths) / len(depths) if depths else 0.0,
            "first_inform_round_p50": quantile(rounds, 0.50),
            "first_inform_round_p90": quantile(rounds, 0.90),
            "first_inform_round_max": rounds[-1] if rounds else 0,
            "direct_share": direct / non_seed if non_seed else 0.0,
            "channels": dict(sorted(channels.items())),
        }
    return out


def summarize_timeseries(rows):
    by_trial = collections.defaultdict(list)
    for r in rows:
        by_trial[r["trial"]].append(r)
    out = {}
    for trial, recs in sorted(by_trial.items()):
        recs.sort(key=lambda r: r["round"])
        last = recs[-1]
        out[trial] = {
            "rounds": last["round"] + 1,
            "final_informed": last.get("informed"),
            "final_alive": last["alive"],
            "total_loss_drops": sum(r["loss_drops"] for r in recs),
            "total_bits": sum(r["bits"] for r in recs),
        }
    return out


def summarize_events(rows):
    by_kind = collections.Counter(r["kind"] for r in rows)
    return dict(sorted(by_kind.items()))


def cross_trial(per_trial, field):
    vals = sorted(t[field] for t in per_trial.values())
    return {
        "mean": sum(vals) / len(vals),
        "min": vals[0],
        "p50": quantile(vals, 0.50),
        "max": vals[-1],
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--provenance", help="provenance JSONL (--provenance=FILE)")
    ap.add_argument("--timeseries", help="per-round time-series JSONL")
    ap.add_argument("--events", help="structured event JSONL")
    ap.add_argument("--n", type=int, default=0,
                    help="network size, enables the O(log n) envelope check")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 when the spread exceeds the round envelope")
    ap.add_argument("--json", action="store_true",
                    help="emit the summary as one JSON document")
    args = ap.parse_args()
    if not (args.provenance or args.timeseries or args.events):
        ap.error("need at least one of --provenance/--timeseries/--events")

    summary = {}
    violations = []

    if args.provenance:
        prov = summarize_provenance(read_jsonl(args.provenance))
        if not prov:
            print("gossip_analyze: provenance file has no entries",
                  file=sys.stderr)
            return 1
        summary["provenance"] = {
            "trials": len(prov),
            "per_trial": prov,
            "spread_depth": cross_trial(prov, "depth_max"),
            "first_inform_round_max": cross_trial(prov, "first_inform_round_max"),
            "direct_share": cross_trial(prov, "direct_share"),
        }
        if args.n:
            cap = round_cap(args.n)
            summary["provenance"]["round_envelope"] = cap
            for trial, t in prov.items():
                if t["first_inform_round_max"] > cap:
                    violations.append(
                        f"trial {trial}: last first-inform at round "
                        f"{t['first_inform_round_max']} > envelope {cap}")

    if args.timeseries:
        ts = summarize_timeseries(read_jsonl(args.timeseries))
        summary["timeseries"] = {
            "trials": len(ts),
            "per_trial": ts,
            "rounds": cross_trial(ts, "rounds") if ts else {},
        }
        if args.n and ts:
            cap = round_cap(args.n)
            for trial, t in ts.items():
                if t["rounds"] > cap:
                    violations.append(
                        f"trial {trial}: ran {t['rounds']} rounds > "
                        f"envelope {cap}")

    if args.events:
        summary["events"] = summarize_events(read_jsonl(args.events))

    if args.json:
        json.dump(summary, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        if "provenance" in summary:
            p = summary["provenance"]
            print(f"provenance: {p['trials']} trials")
            print(f"  spread depth        mean {p['spread_depth']['mean']:.2f}"
                  f"  max {p['spread_depth']['max']}")
            print(f"  last first-inform   mean "
                  f"{p['first_inform_round_max']['mean']:.2f}"
                  f"  max {p['first_inform_round_max']['max']}")
            print(f"  direct share        mean {p['direct_share']['mean']:.4f}")
            if "round_envelope" in p:
                print(f"  round envelope      {p['round_envelope']}"
                      f" (n={args.n})")
        if "timeseries" in summary:
            t = summary["timeseries"]
            print(f"timeseries: {t['trials']} trials, rounds"
                  f" mean {t['rounds'].get('mean', 0):.2f}"
                  f" max {t['rounds'].get('max', 0)}")
        if "events" in summary:
            counts = ", ".join(f"{k}={v}" for k, v in summary["events"].items())
            print(f"events: {counts if counts else 'none'}")

    for v in violations:
        print(f"gossip_analyze: envelope violation: {v}", file=sys.stderr)
    return 1 if (violations and args.check) else 0


if __name__ == "__main__":
    sys.exit(main())
