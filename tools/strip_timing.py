#!/usr/bin/env python3
"""Strip wall-clock fields from a telemetry JSONL stream.

The observability determinism contract (README "Observability") covers
everything in the per-round time series EXCEPT the phase*_ns wall-clock
fields. CI diffs --threads=1 against --threads=4 time series after piping
both through this filter:

    gossip_run ... --timeseries=/dev/stdout | python3 tools/strip_timing.py

Reads JSONL on stdin, drops every key ending in "_ns", re-serialises each
object compactly (sorted keys are NOT needed: dicts keep insertion order,
and both inputs were produced by the same writer).
"""
import json
import signal
import sys


def main() -> int:
    # Die quietly when the consumer (e.g. `head`) closes the pipe early.
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        obj = {k: v for k, v in obj.items() if not k.endswith("_ns")}
        sys.stdout.write(json.dumps(obj, separators=(",", ":")) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
