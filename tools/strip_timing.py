#!/usr/bin/env python3
"""Strip wall-clock-class fields from a JSONL stream or a JSON document.

The determinism contracts (README "Determinism contracts") cover everything
in the telemetry files and the scenario reports EXCEPT the wall-clock-class
fields: phase timing (any key ending in "_ns"), peak memory (any key
containing "_rss" - process-wide and machine-dependent), and the derived
"recorder_overhead" ratio. CI diffs --threads=1 against --threads=4 output
after piping both through this filter:

    gossip_run ... --timeseries=/dev/stdout | python3 tools/strip_timing.py
    python3 tools/strip_timing.py < report_t1.json > stripped_t1.json

Input may be JSONL (one object per line, e.g. --timeseries/--events output)
or a single pretty-printed JSON document (the gossip_run report); the format
is auto-detected. Keys are stripped recursively at every nesting level and
each object/document is re-serialised compactly (sorted keys are NOT needed:
dicts keep insertion order, and both diffed inputs come from one writer).
"""
import json
import signal
import sys


def strip(value):
    if isinstance(value, dict):
        return {
            k: strip(v)
            for k, v in value.items()
            if not (k.endswith("_ns") or "_rss" in k or k == "recorder_overhead")
        }
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


def emit(obj) -> None:
    sys.stdout.write(json.dumps(obj, separators=(",", ":")) + "\n")


def main() -> int:
    # Die quietly when the consumer (e.g. `head`) closes the pipe early.
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    text = sys.stdin.read()
    if not text.strip():
        return 0
    try:
        # JSONL fast path: every non-blank line is its own object.
        objs = [
            json.loads(line)
            for line in text.splitlines()
            if line.strip()
        ]
    except json.JSONDecodeError:
        # Pretty-printed document spanning multiple lines (the report).
        objs = [json.loads(text)]
    for obj in objs:
        emit(strip(obj))
    return 0


if __name__ == "__main__":
    sys.exit(main())
