// Quickstart: broadcast a rumor with the paper's optimal algorithm.
//
//   $ ./examples/quickstart [n] [seed]
//
// Builds an n-node random phone call network, runs Cluster2 (Theorem 2:
// O(log log n) rounds, O(1) messages per node, O(nb) bits) from a random
// source, and prints the complexity report including the per-phase
// breakdown. This is the smallest end-to-end use of the public API.
#include <cstdlib>
#include <iostream>

#include "common/math.hpp"
#include "core/broadcast.hpp"

int main(int argc, char** argv) {
  using namespace gossip;

  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                                   : (1u << 16);
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  // 1. A complete network of n nodes with random unique IDs. Nodes know
  //    only their own ID (and n); every run is reproducible from the seed.
  sim::NetworkOptions net_options;
  net_options.n = n;
  net_options.seed = seed;
  net_options.rumor_bits = 256;  // b, the payload size
  sim::Network net(net_options);

  // 2. Broadcast with Cluster2 from node 0.
  core::BroadcastOptions options;
  options.algorithm = core::Algorithm::kCluster2;
  options.source = 0;
  const core::BroadcastReport report = core::broadcast(net, options);

  // 3. Inspect the model-level complexity measures.
  std::cout << "network size          : " << report.n << "\n"
            << "informed              : " << report.informed << " / " << report.alive
            << (report.all_informed ? "  (everyone)" : "  (INCOMPLETE)") << "\n"
            << "rounds                : " << report.rounds << "  (log log n = "
            << loglog2d(n) << ", log n = " << log2d(n) << ")\n"
            << "messages per node     : " << report.payload_messages_per_node()
            << "  (O(1) - Theorem 2)\n"
            << "connections per node  : " << report.connections_per_node() << "\n"
            << "bits per node         : " << report.bits_per_node() << "  (b = "
            << net.costs().rumor_bits << ")\n"
            << "max per-round load    : " << report.max_delta() << "\n\n"
            << "phase breakdown (rounds / payload messages):\n";
  for (const auto& phase : report.phases) {
    std::cout << "  " << phase.name << ": " << phase.rounds << " rounds, "
              << phase.payload_messages << " msgs\n";
  }
  return report.all_informed ? 0 : 1;
}
