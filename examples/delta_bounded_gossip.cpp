// Scenario: gossip under per-node connection limits (paper Section 7).
//
// Real transports cap how many simultaneous connections a node can serve
// (file descriptors, NIC queues, accept backlogs). Cluster1/Cluster2 assume
// a leader can answer n-1 requests in one round; this example shows the
// paper's answer when that is unacceptable: pick a budget Delta, build a
// Delta-clustering with Cluster3 (Theorem 18), broadcast with
// ClusterPushPull (Lemma 17), and pay only log n / log Delta rounds - while
// the measured peak fan-in actually honours the budget.
//
//   $ ./examples/delta_bounded_gossip [n]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/math.hpp"
#include "common/table.hpp"
#include "core/cluster3.hpp"
#include "core/cluster_push_pull.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                                   : (1u << 16);

  std::cout << "Delta-bounded gossip: n = " << n
            << " - sweeping the per-node connection budget\n";

  Table t("connection budget vs. broadcast latency",
          {"Delta budget", "cluster size D", "clusters", "peak fan-in", "within budget",
           "build rounds", "broadcast rounds", "log n/log D"});

  for (const std::uint64_t delta : {64ull, 256ull, 1024ull, 8192ull}) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 11;
    sim::Network net(o);
    sim::Engine engine(net);

    // Stage 1: the Delta-clustering (Theorem 18).
    core::Cluster3 builder(engine, delta);
    const auto build = builder.run();
    const auto stats = builder.driver().clustering().stats();

    // Stage 2: broadcast over it (Algorithm 3 / Lemma 17), measured alone.
    core::ClusterPushPull spread(builder.driver());
    const auto sp = spread.run(/*source=*/0, builder.cluster_target(),
                               /*reset_metrics=*/true);

    const std::uint32_t peak = std::max(build.max_delta(), sp.max_delta());
    t.row()
        .add(std::uint64_t{delta})
        .add(std::uint64_t{builder.cluster_target()})
        .add(stats.clusters)
        .add(std::uint64_t{peak})
        .add(peak <= delta ? "yes" : "NO")
        .add(build.rounds)
        .add(sp.rounds)
        .add(log2d(n) / std::log2(std::max(2.0, static_cast<double>(builder.cluster_target()))),
             2);
    if (!sp.all_informed) std::cout << "WARNING: incomplete at Delta=" << delta << "\n";
  }
  t.print(std::cout);

  std::cout << "\nHow to read this: raising the budget buys latency - broadcast\n"
               "rounds fall like log n / log Delta (Lemma 16 says you cannot do\n"
               "better) - while 'peak fan-in' stays within the budget at every\n"
               "point (Theorem 18). The one-off clustering build is O(log log n)\n"
               "rounds and amortizes over every later broadcast.\n";
  return 0;
}
