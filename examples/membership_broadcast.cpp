// Scenario: disseminating a membership update in a large cluster.
//
// A coordination service (think: a control plane pushing a new view of the
// member list) must get one update to every node. This example compares the
// candidate dissemination strategies on the same network - the paper's
// Cluster2 against the uniform gossips and the prior direct-addressing state
// of the art - and prints the trade-off table an operator would look at:
// rounds (latency in synchronous steps), messages (network load), bits, and
// the peak per-node fan-in (hot-spotting).
//
//   $ ./examples/membership_broadcast [n] [update_bits]
#include <cstdlib>
#include <iostream>

#include "baselines/avin_elsasser.hpp"
#include "baselines/rrs.hpp"
#include "baselines/uniform.hpp"
#include "common/math.hpp"
#include "common/table.hpp"
#include "core/broadcast.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                                   : (1u << 16);
  const std::uint32_t update_bits =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 2048;

  std::cout << "Membership update dissemination: n = " << n << " nodes, update = "
            << update_bits << " bits, source = node 0\n";

  Table t("strategy comparison",
          {"strategy", "rounds", "msg/node", "conn/node", "KB/node", "peak fan-in",
           "complete"});

  const auto add_row = [&](const std::string& name, const core::BroadcastReport& r) {
    t.row()
        .add(name)
        .add(r.rounds)
        .add(r.payload_messages_per_node(), 2)
        .add(r.connections_per_node(), 2)
        .add(r.bits_per_node() / 8192.0, 2)
        .add(std::uint64_t{r.max_delta()})
        .add(r.all_informed ? "yes" : "NO");
  };

  const auto fresh_net = [&] {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 7;
    o.rumor_bits = update_bits;
    return o;
  };

  {
    sim::Network net(fresh_net());
    core::BroadcastOptions o;
    o.algorithm = core::Algorithm::kCluster2;
    add_row("Cluster2 (this paper)", core::broadcast(net, o));
  }
  {
    sim::Network net(fresh_net());
    core::BroadcastOptions o;
    o.algorithm = core::Algorithm::kCluster3PushPull;
    o.delta = 1024;  // cap fan-in at 1024 connections/round
    add_row("Cluster3+PushPull (Delta=1024)", core::broadcast(net, o));
  }
  {
    sim::Network net(fresh_net());
    sim::Engine engine(net);
    baselines::AvinElsasser ae(engine);
    add_row("Avin-Elsasser (DISC'13)", ae.run(0));
  }
  {
    sim::Network net(fresh_net());
    add_row("RRS counters (FOCS'00)", baselines::run_rrs(net, 0, {}));
  }
  {
    sim::Network net(fresh_net());
    add_row("uniform PUSH-PULL", baselines::run_push_pull(net, 0, {}));
  }
  {
    sim::Network net(fresh_net());
    add_row("uniform PUSH", baselines::run_push(net, 0, {}));
  }
  t.print(std::cout);

  std::cout << "\nHow to read this: Cluster2 minimizes total network load (its\n"
               "msg/node and KB/node stay constant as the fleet grows - Theorem 2)\n"
               "at the cost of hot leaders (peak fan-in ~n). If fan-in matters\n"
               "(connection limits, NIC queues), Cluster3+PushPull caps it at\n"
               "Delta while keeping near-optimal load and latency that degrades\n"
               "only as log n / log Delta (Section 7). Uniform gossip has no hot\n"
               "spots but pays log n rounds and rumor retransmissions.\n";
  return 0;
}
