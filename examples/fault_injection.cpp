// Scenario: broadcasting through partial outages, on the pluggable
// sim::FaultModel timeline.
//
// Part 1 (Theorem 19): an oblivious adversary takes down a fraction of the
// fleet before the update goes out - a rack loses power, an AZ drops. The
// paper's guarantee: with F failed nodes, still all but o(F) of the
// survivors learn the update, with unchanged round/message bounds.
//
// Part 2 (beyond the paper): the outage happens mid-broadcast - a
// ScheduledCrash fires at the start of round t, and can even take the
// source down. On PUSH-PULL every round the rumor survives multiplies the
// informed set, so the damage shrinks geometrically with t. (The cluster
// algorithms funnel the rumor through the final merged-cluster share, so a
// mid-run crash of that skeleton is far more damaging - see
// bench_fault_tolerance's scheduled-crash sweep.)
//
// Part 3: lossy channels - every contact's payload is dropped independently
// with probability p (Doerr-Fouz style transmission failures), composed
// with a crash via CompositeFault.
//
//   $ ./examples/fault_injection [n]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "baselines/uniform.hpp"
#include "common/table.hpp"
#include "core/broadcast.hpp"
#include "sim/fault.hpp"

namespace {

using namespace gossip;

// Builds a fresh network, runs the model's oblivious setup (the harness's
// job - TrialRunner does the same per trial; the adversary's choices come
// from an independent stream, fixed before the algorithm draws anything),
// picks an alive source, and hands (net, source) to the algorithm.
template <class RunAlgorithm>
core::BroadcastReport run_with_model(std::uint32_t n, std::uint64_t seed,
                                     sim::FaultModel& model, RunAlgorithm&& run) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  sim::Network net(o);
  Rng adversary(mix64(seed * 65537ULL));
  model.on_run_begin(net, adversary);
  std::uint32_t source = 0;
  while (!net.alive(source)) ++source;
  return run(net, source);
}

/// Cluster2 broadcast with the model on the engine's timeline.
core::BroadcastReport run_cluster2_with_model(std::uint32_t n, std::uint64_t seed,
                                              sim::FaultModel& model) {
  return run_with_model(n, seed, model,
                        [&](sim::Network& net, std::uint32_t source) {
                          core::BroadcastOptions bo;
                          bo.source = source;
                          bo.fault_model = &model;
                          return core::broadcast(net, bo);
                        });
}

/// Same harness, PUSH-PULL baseline (the fault surface is uniform across
/// algorithms: UniformOptions carries the same non-owning model pointer).
core::BroadcastReport run_push_pull_with_model(std::uint32_t n, std::uint64_t seed,
                                               sim::FaultModel& model) {
  return run_with_model(n, seed, model,
                        [&](sim::Network& net, std::uint32_t source) {
                          baselines::UniformOptions uo;
                          uo.fault = &model;
                          return baselines::run_push_pull(net, source, uo);
                        });
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                                   : (1u << 16);
  constexpr unsigned kSeeds = 3;

  std::cout << "Fault injection: Cluster2 broadcast under sim::FaultModel scenarios, "
               "n = " << n << "\n";

  // --- Part 1: Theorem 19 - pre-run oblivious crashes (StaticCrash). ------
  Table t1("coverage under pre-run failures (" + std::to_string(kSeeds) + " seeds each)",
           {"F/n", "adversary", "survivors", "uninformed", "uninformed/F", "rounds"});
  for (const double frac : {0.05, 0.15, 0.30}) {
    for (const auto strategy :
         {sim::FaultStrategy::kRandomSubset, sim::FaultStrategy::kSmallestIds,
          sim::FaultStrategy::kIndexStride}) {
      const auto f = static_cast<std::uint32_t>(frac * n);
      double uninformed_sum = 0;
      std::uint64_t rounds = 0;
      std::uint64_t survivors = 0;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        sim::StaticCrash model(f, strategy);
        const auto report = run_cluster2_with_model(n, seed, model);
        uninformed_sum += static_cast<double>(report.uninformed());
        rounds = report.rounds;
        survivors = report.alive;
      }
      t1.row()
          .add(frac, 2)
          .add(sim::to_string(strategy))
          .add(survivors)
          .add(uninformed_sum / kSeeds, 1)
          .add(uninformed_sum / kSeeds / static_cast<double>(f), 5)
          .add(rounds);
    }
  }
  t1.print(std::cout);

  std::cout << "\nHow to read this: 'uninformed/F' near zero is Theorem 19's\n"
               "all-but-o(F) guarantee; the adversary's strategy does not matter\n"
               "(the algorithms are symmetric in the nodes, so oblivious failures\n"
               "act like random ones), and the round count never changes - the\n"
               "schedule is deterministic and failures only silence dead nodes.\n";

  // --- Part 2: scheduled mid-broadcast crashes (PUSH-PULL). ---------------
  // 2a: kill ONLY THE SOURCE at round t (explicit victim set). Once the
  // rumor escapes the source, losing it no longer matters.
  Table t2a("PUSH-PULL: kill the source at round t (" + std::to_string(kSeeds) +
                " seeds each)",
            {"crash round", "informed frac", "uninformed", "rounds"});
  for (const std::uint64_t t_crash : {0ull, 1ull, 2ull, 4ull, 8ull}) {
    double informed_frac_sum = 0;
    double uninformed_sum = 0;
    double rounds_sum = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      // The source is always node 0 here: no pre-run crash leaves it alive,
      // and the harness picks the first alive node.
      sim::ScheduledCrash model(t_crash, std::vector<std::uint32_t>{0});
      const auto report = run_push_pull_with_model(n, seed, model);
      informed_frac_sum += report.informed_fraction();
      uninformed_sum += static_cast<double>(report.uninformed());
      rounds_sum += static_cast<double>(report.rounds);
    }
    t2a.row()
        .add(std::to_string(t_crash))
        .add(informed_frac_sum / kSeeds, 5)
        .add(uninformed_sum / kSeeds, 1)
        .add(rounds_sum / kSeeds, 1);
  }
  t2a.print(std::cout);

  // 2b: a 20% oblivious crash set fired at round t.
  Table t2b("PUSH-PULL: 20% random crash at round t (" + std::to_string(kSeeds) +
                " seeds each)",
            {"crash round", "survivors", "informed frac", "uninformed", "rounds"});
  const auto f20 = static_cast<std::uint32_t>(0.2 * n);
  for (const std::uint64_t t_crash : {0ull, 2ull, 4ull, 8ull, 16ull}) {
    double informed_frac_sum = 0;
    double uninformed_sum = 0;
    double rounds_sum = 0;
    std::uint64_t survivors = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      sim::ScheduledCrash model(t_crash, f20, sim::FaultStrategy::kRandomSubset);
      const auto report = run_push_pull_with_model(n, seed, model);
      informed_frac_sum += report.informed_fraction();
      uninformed_sum += static_cast<double>(report.uninformed());
      rounds_sum += static_cast<double>(report.rounds);
      survivors = report.alive;
    }
    t2b.row()
        .add(std::to_string(t_crash))
        .add(survivors)
        .add(informed_frac_sum / kSeeds, 5)
        .add(uninformed_sum / kSeeds, 1)
        .add(rounds_sum / kSeeds, 1);
  }
  t2b.print(std::cout);

  std::cout << "\nHow to read this: a crash at round 0 can strand everyone (the\n"
               "source dies before its first call - runs to the round cap with\n"
               "nobody informed); from round 1 on the rumor has escaped and every\n"
               "surviving copy multiplies, so the same outage costs only a few\n"
               "extra rounds and coverage of the survivors returns to 1.\n";

  // --- Part 3: lossy channels, alone and composed with a crash. -----------
  Table t3("lossy channels: drop each payload w.p. p (" + std::to_string(kSeeds) +
               " seeds each)",
           {"model", "informed frac", "uninformed", "rounds"});
  for (const double p : {0.1, 0.3, 0.5}) {
    double informed_frac_sum = 0;
    double uninformed_sum = 0;
    std::uint64_t rounds = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      sim::LossyChannel model(p);
      const auto report = run_cluster2_with_model(n, seed, model);
      informed_frac_sum += report.informed_fraction();
      uninformed_sum += static_cast<double>(report.uninformed());
      rounds = report.rounds;
    }
    sim::LossyChannel label(p);
    t3.row()
        .add(label.describe())
        .add(informed_frac_sum / kSeeds, 5)
        .add(uninformed_sum / kSeeds, 1)
        .add(rounds);
  }
  {
    // Composite: 10% crash at round 4 on top of a 20% lossy fabric.
    double informed_frac_sum = 0;
    double uninformed_sum = 0;
    std::uint64_t rounds = 0;
    std::string label;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      sim::CompositeFault model;
      model.add(std::make_unique<sim::ScheduledCrash>(
                   4, static_cast<std::uint32_t>(0.1 * n),
                   sim::FaultStrategy::kRandomSubset))
          .add(std::make_unique<sim::LossyChannel>(0.2));
      label = model.describe();
      const auto report = run_cluster2_with_model(n, seed, model);
      informed_frac_sum += report.informed_fraction();
      uninformed_sum += static_cast<double>(report.uninformed());
      rounds = report.rounds;
    }
    t3.row()
        .add(label)
        .add(informed_frac_sum / kSeeds, 5)
        .add(uninformed_sum / kSeeds, 1)
        .add(rounds);
  }
  t3.print(std::cout);

  std::cout << "\nHow to read this: the cluster schedule is fixed, so loss never\n"
               "changes the round count - it converts dropped payloads into\n"
               "uninformed stragglers. Degradation is graceful while the multi-hop\n"
               "coordination (grow/merge/relay chains) still mostly gets through\n"
               "(p <= ~0.3); at p = 0.5 those chains break and coverage collapses -\n"
               "PUSH-PULL under the same loss merely slows down (bench_fault_\n"
               "tolerance's lossy sweep shows the contrast).\n";
  return 0;
}
