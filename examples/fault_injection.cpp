// Scenario: broadcasting through a partial outage (Theorem 19).
//
// An oblivious adversary takes down a fraction of the fleet before the
// update goes out - a rack loses power, an AZ drops. The paper's guarantee:
// with F failed nodes, still all but o(F) of the survivors learn the update,
// with unchanged round/message bounds. This example injects increasing
// failure fractions under three adversary strategies and reports what
// actually happens to coverage.
//
//   $ ./examples/fault_injection [n]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/broadcast.hpp"
#include "sim/fault.hpp"

int main(int argc, char** argv) {
  using namespace gossip;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                                   : (1u << 16);

  std::cout << "Fault injection: Cluster2 broadcast with F oblivious failures, n = "
            << n << "\n";

  Table t("coverage under failures (3 seeds each)",
          {"F/n", "adversary", "survivors", "uninformed", "uninformed/F", "rounds"});

  for (const double frac : {0.05, 0.15, 0.30}) {
    for (const auto strategy :
         {sim::FaultStrategy::kRandomSubset, sim::FaultStrategy::kSmallestIds,
          sim::FaultStrategy::kIndexStride}) {
      const auto f = static_cast<std::uint32_t>(frac * n);
      double uninformed_sum = 0;
      std::uint64_t rounds = 0;
      std::uint64_t survivors = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        sim::NetworkOptions o;
        o.n = n;
        o.seed = seed;
        sim::Network net(o);
        // Oblivious: the failure set is fixed before the run, from an
        // independent random stream.
        Rng adversary(mix64(seed * 65537ULL));
        for (std::uint32_t v : sim::choose_failures(net, f, strategy, adversary)) {
          net.fail(v);
        }
        std::uint32_t source = 0;
        while (!net.alive(source)) ++source;
        core::BroadcastOptions bo;
        bo.source = source;
        const auto report = core::broadcast(net, bo);
        uninformed_sum += static_cast<double>(report.uninformed());
        rounds = report.rounds;
        survivors = report.alive;
      }
      t.row()
          .add(frac, 2)
          .add(sim::to_string(strategy))
          .add(survivors)
          .add(uninformed_sum / 3.0, 1)
          .add(uninformed_sum / 3.0 / static_cast<double>(f), 5)
          .add(rounds);
    }
  }
  t.print(std::cout);

  std::cout << "\nHow to read this: 'uninformed/F' near zero is Theorem 19's\n"
               "all-but-o(F) guarantee; the adversary's strategy does not matter\n"
               "(the algorithms are symmetric in the nodes, so oblivious failures\n"
               "act like random ones), and the round count never changes - the\n"
               "schedule is deterministic and failures only silence dead nodes.\n";
  return 0;
}
