// Phase instrumentation hooks.
//
// The algorithms emit a snapshot after every phase step when an observer is
// installed; bench_growth_dynamics uses this to reproduce the paper's phase
// dynamics (Lemmas 5, 6, 10-13): exponential initial growth, cluster-size
// squaring, and the squaring of the uninformed fraction in the pull phase.
// Snapshots are computed only when an observer is present - they cost O(n).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "cluster/clustering.hpp"

namespace gossip::core {

struct PhaseSnapshot {
  std::string_view phase;             ///< e.g. "grow", "square", "merge_all", "pull"
  std::uint64_t step = 0;             ///< iteration index within the phase
  std::uint64_t round = 0;            ///< global round count so far
  std::uint64_t schedule_s = 0;       ///< current target cluster size s (0 if n/a)
  std::uint64_t informed = 0;         ///< informed alive nodes
  cluster::ClusteringStats clustering;
};

using PhaseObserverFn = std::function<void(const PhaseSnapshot&)>;

}  // namespace gossip::core
