// Cluster2 (paper Algorithm 2, Theorem 2): the main result. Spreads a
// b-bit rumor in O(log log n) rounds using O(1) messages per node on
// average and O(nb) total bits - simultaneously optimal round-, message-
// and bit-complexity in the random phone call model with direct addressing.
//
// The message optimality comes from working with only Theta(n / log n)
// clustered nodes through the grow and square phases (growth-controlled
// recruiting), then expanding the single merged cluster to Theta(n) nodes
// with BoundedClusterPush before the final PULL phase, so each straggler
// expects to pull O(1) times.
#pragma once

#include <cstdint>
#include <span>

#include "cluster/driver.hpp"
#include "core/cluster_algorithm_base.hpp"
#include "core/options.hpp"
#include "core/phase_observer.hpp"
#include "core/report.hpp"

namespace gossip::core {

class Cluster2 : public ClusterAlgorithmBase {
 public:
  explicit Cluster2(sim::Engine& engine, Cluster2Options options = Cluster2Options(),
                    cluster::DriverOptions driver_opts = cluster::DriverOptions(),
                    PhaseObserverFn observer = nullptr);

  /// Runs the full algorithm with node `source` holding the rumor.
  /// One-shot: construct a fresh instance (and engine) per execution.
  BroadcastReport run(std::uint32_t source);

  /// Multi-source variant (paper Section 2: the rumor may start at one node
  /// "or multiple nodes"); identical schedule, same guarantees.
  BroadcastReport run(std::span<const std::uint32_t> sources);

 private:
  Cluster2Options opts_;
};

}  // namespace gossip::core
