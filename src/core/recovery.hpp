// Recovery supervisor: self-healing for the cluster broadcasts.
//
// PR 4/6 measured what Theorem 19 only guarantees pre-run: a mid-run crash
// that decapitates a merge leader strands nearly every node, and heavy loss
// breaks the relay chains - the direct-addressing cores have no recovery
// story. This supervisor layers one on top of a finished-but-incomplete
// cluster broadcast (Doerr-Fouz: robustness is explicit failure handling
// layered on the fast protocol), in repair epochs of four steps:
//
//   1. Suspicion probes (membership-style heartbeats, src/membership/):
//      every follower direct-pulls its leader for `suspicion_probes` rounds;
//      an alive leader's reply carries its ID (and the rumor when it has it,
//      so probes double as repair). A follower that misses EVERY probe
//      suspects its leader - single misses under loss are forgiven.
//   2. Re-election: suspects promote themselves to singleton leaders, then
//      `reelect_merge_reps` push+relay+merge-to-smallest repetitions (the
//      MergeAllClusters machinery) consolidate the survivors and recruit
//      the stranded unclustered.
//   3. Repair rounds under a progress watchdog: ClusterShare + one informed
//      random push + one unclustered pull per iteration, until the informed
//      count stops growing for `watchdog_rounds << epoch` rounds.
//   4. Bounded exponential round-backoff: a stalled epoch sleeps
//      min(backoff_base << epoch, max_backoff) idle rounds - the fault
//      timeline keeps advancing, so transient adversities (PartitionFault
//      windows, loss bursts) can clear before the next attempt.
//
// When the retry budget is exhausted the supervisor degrades gracefully:
// stranded nodes fall back to plain PUSH-PULL (informed push, uninformed
// pull - no direct addressing, nothing left to decapitate) so every run
// completes with a verdict instead of hanging uninformed.
//
// Determinism: the supervisor runs ordinary engine rounds; all node
// randomness flows through the engine's draw path and the network's
// node_rng streams, and every local decision (suspicion counters, watchdog
// arithmetic) is a pure function of delivered messages. Recovery
// trajectories are therefore bit-identical across TrialRunner workers,
// engine threads and delivery buckets, like every other layer. Re-election
// and fallback handoffs post kReelect/kFallback events to the EventLog.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/driver.hpp"
#include "core/options.hpp"

namespace gossip::core {

/// What one supervisor invocation did (consumed by reports and tests).
struct RecoveryStats {
  unsigned epochs = 0;              ///< repair epochs actually run
  std::uint64_t rounds = 0;         ///< engine rounds spent (fallback included)
  std::uint64_t suspected = 0;      ///< follower->leader suspicions, all epochs
  std::uint64_t reelected = 0;      ///< suspects still leading after the merges
  bool fallback = false;            ///< degraded to plain PUSH-PULL
  std::uint64_t fallback_rounds = 0;
  bool completed = false;           ///< every alive node informed at return
};

/// Drives repair epochs over the clustering and informed state of a finished
/// broadcast. The driver (and its engine/network) must outlive the call;
/// `informed` is the algorithm's capacity-sized informed bitmap, repaired in
/// place.
class RecoverySupervisor {
 public:
  RecoverySupervisor(cluster::Driver& driver, const RecoveryOptions& opts);

  /// Runs until every alive node is informed, or the retry budget AND the
  /// fallback round cap are exhausted. Idempotent on a complete broadcast
  /// (returns immediately, zero rounds).
  RecoveryStats run(std::vector<std::uint8_t>& informed);

 private:
  [[nodiscard]] std::uint64_t count_informed(
      const std::vector<std::uint8_t>& informed) const;
  /// Steps 1+2: probe leaders, promote the suspects, merge the pieces.
  void reelect(std::vector<std::uint8_t>& informed, unsigned epoch,
               RecoveryStats& stats);
  /// Step 3: repair rounds under the epoch's progress watchdog. Returns true
  /// when every alive node is informed.
  bool repair(std::vector<std::uint8_t>& informed, unsigned epoch);
  /// Step 4: idle rounds (the fault clock advances, nobody talks).
  void backoff(unsigned epoch);
  /// Graceful degradation: plain PUSH-PULL until done or the round cap.
  void fallback(std::vector<std::uint8_t>& informed, RecoveryStats& stats);

  cluster::Driver& driver_;
  sim::Engine& engine_;
  sim::Network& net_;
  RecoveryOptions opts_;
  std::vector<std::uint8_t> probe_heard_;  ///< per-follower: leader replied
};

}  // namespace gossip::core
