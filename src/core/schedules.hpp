// Deterministic parameter schedules derived from n (and Delta).
//
// Every node knows n (paper Section 2), so all loop lengths, thresholds and
// probabilities below are program constants computable locally - no
// communication is needed to agree on them. Centralising them here keeps
// Cluster2/Cluster3 in sync and makes the calibration testable.
#pragma once

#include <cstdint>

#include "core/options.hpp"

namespace gossip::core {

/// Concrete Cluster2 schedule for an n-node network.
struct Cluster2Schedule {
  std::uint64_t threshold = 0;   ///< grow-phase cluster size cap (paper: C' log^3 n)
  std::uint64_t seeds = 0;       ///< expected number of singleton seeds
  double seed_prob = 0.0;        ///< per-node seeding probability
  unsigned grow_rounds = 0;      ///< GrowInitialClusters iterations
  std::uint64_t s0 = 0;          ///< SquareClusters entry size
  std::uint64_t s_target = 0;    ///< SquareClusters exit threshold
  unsigned bounded_push_iters = 0;
  unsigned pull_rounds = 0;
};

[[nodiscard]] Cluster2Schedule compute_cluster2_schedule(std::uint64_t n,
                                                         const Cluster2Options& opts);

/// Concrete Cluster3(Delta) schedule.
struct Cluster3Schedule {
  std::uint64_t cluster_target = 0;  ///< D = Delta / C'': the realized cluster size
  Cluster2Schedule grow;             ///< capped grow/square schedule
  unsigned bounded_push_iters = 0;
  unsigned pull_rounds = 0;
};

[[nodiscard]] Cluster3Schedule compute_cluster3_schedule(std::uint64_t n, std::uint64_t delta,
                                                         const Cluster3Options& opts);

}  // namespace gossip::core
