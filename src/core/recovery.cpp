#include "core/recovery.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::core {

using cluster::RelayPolicy;
using sim::Contact;
using sim::Message;
using sim::make_hooks;
using sim::no_hook;

RecoverySupervisor::RecoverySupervisor(cluster::Driver& driver,
                                       const RecoveryOptions& opts)
    : driver_(driver),
      engine_(driver.engine()),
      net_(driver.network()),
      opts_(opts),
      probe_heard_(net_.capacity(), 0) {}

std::uint64_t RecoverySupervisor::count_informed(
    const std::vector<std::uint8_t>& informed) const {
  std::uint64_t count = 0;
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (net_.alive(v) && informed[v]) ++count;
  }
  return count;
}

RecoveryStats RecoverySupervisor::run(std::vector<std::uint8_t>& informed) {
  // Capacity-sized like every per-node bitmap (mid-run joins never
  // reallocate; see sim/network.hpp).
  GOSSIP_CHECK(informed.size() == net_.capacity());
  RecoveryStats stats;
  const std::uint64_t start_rounds = engine_.rounds();
  for (unsigned epoch = 0; epoch < opts_.retry_budget; ++epoch) {
    if (count_informed(informed) == net_.alive_count()) break;
    stats.epochs = epoch + 1;
    reelect(informed, epoch, stats);
    if (repair(informed, epoch)) break;
    // The watchdog fired: back off (the fault timeline keeps advancing, so
    // a partition window or loss burst can clear) and try again, unless
    // this was the last budgeted epoch - then fall through immediately.
    if (epoch + 1 < opts_.retry_budget) backoff(epoch);
  }
  if (count_informed(informed) != net_.alive_count()) fallback(informed, stats);
  stats.completed = count_informed(informed) == net_.alive_count();
  stats.rounds = engine_.rounds() - start_rounds;
  return stats;
}

void RecoverySupervisor::reelect(std::vector<std::uint8_t>& informed,
                                 unsigned epoch, RecoveryStats& stats) {
  auto& cl = driver_.clustering();
  std::fill(probe_heard_.begin(), probe_heard_.end(), 0);
  // Step 1: heartbeat probes. A follower direct-pulls its leader; any alive
  // responder answers with its own ID - the membership service's leading
  // digest slot (membership/membership.hpp) - plus the rumor when it has it,
  // so every probe round doubles as intra-cluster repair. The initiate hook
  // only reads clustering state (the sharded phase-1 contract); suspicion
  // state is written in the serial reply phase.
  for (unsigned p = 0; p < opts_.suspicion_probes; ++p) {
    engine_.run_round(make_hooks(
        // GOSSIP_HOT
        [&](std::uint32_t v) -> std::optional<Contact> {
          if (!cl.is_follower(v)) return std::nullopt;
          return Contact::pull_direct(cl.follow(v));
        },
        // GOSSIP_HOT
        [&](std::uint32_t v) {
          const Message m = Message::single_id(net_.id_of(v));
          return informed[v] ? m.and_rumor() : m;
        },
        no_hook,
        // GOSSIP_HOT
        [&](std::uint32_t q, const Message& m) {
          if (!m.ids().empty()) probe_heard_[q] = 1;
          if (m.has_rumor()) informed[q] = 1;
        }));
  }
  // Step 2: suspects (every probe missed - single drops under loss are
  // forgiven; a false suspicion only costs a redundant merge) promote
  // themselves to singleton leaders...
  std::uint64_t suspected = 0;
  std::vector<std::uint32_t> suspects;
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (!net_.alive(v) || !cl.is_follower(v) || probe_heard_[v]) continue;
    ++suspected;
    cl.make_leader(v);
    cl.set_active(v, true);
    cl.set_size_estimate(v, 1);
    GOSSIP_DCHECK_MSG(cl.is_leader(v),
                      "re-election must leave the suspect leading itself");
    suspects.push_back(v);
  }
  // ...then merge-to-smallest consolidates the pieces and the recruiting
  // pushes adopt any stranded unclustered nodes (MergeAllClusters machinery,
  // cluster/driver.hpp).
  for (unsigned rep = 0; rep < opts_.reelect_merge_reps; ++rep) {
    driver_.clear_candidates();
    driver_.push_cluster_id(/*only_active=*/false, /*recruit_unclustered=*/true,
                            RelayPolicy::kSmallest);
    driver_.relay_candidates(RelayPolicy::kSmallest, /*only_inactive_relayers=*/false);
    driver_.merge_from_inbox(RelayPolicy::kSmallest, /*only_inactive=*/false);
  }
  driver_.settle(2);
  std::uint64_t promoted = 0;
  for (const std::uint32_t v : suspects) {
    if (net_.alive(v) && cl.is_leader(v)) ++promoted;
  }
  stats.suspected += suspected;
  stats.reelected += promoted;
  if (obs::EventLog* log = engine_.event_log()) {
    log->note_reelect(suspected, promoted, epoch);
  }
}

bool RecoverySupervisor::repair(std::vector<std::uint8_t>& informed,
                                unsigned epoch) {
  // Progress watchdog: patience doubles per epoch (bounded - later epochs
  // face healed networks but colder clusters), measured in engine rounds
  // without growth of the informed-alive count.
  const std::uint64_t allowance = std::max<std::uint64_t>(1, opts_.watchdog_rounds)
                                  << std::min(epoch, 16u);
  std::uint64_t last = count_informed(informed);
  std::uint64_t rounds_since_progress = 0;
  while (last < net_.alive_count()) {
    // One repair iteration, 4 rounds: intra-cluster share (collect +
    // distribute), one uniform push by every informed node (the
    // cross-cluster injection ClusterShare cannot do), one unclustered pull.
    driver_.share_rumor(informed, /*collect_first=*/true);
    engine_.run_round(make_hooks(
        // GOSSIP_HOT
        [&](std::uint32_t v) -> std::optional<Contact> {
          if (!informed[v]) return std::nullopt;
          return Contact::push_random(Message::rumor());
        },
        no_hook,
        // GOSSIP_HOT
        [&](std::uint32_t r, const Message& m) {
          if (m.has_rumor()) informed[r] = 1;
        }));
    driver_.unclustered_pull_round();
    const std::uint64_t now = count_informed(informed);
    if (now > last) {
      last = now;
      rounds_since_progress = 0;
    } else {
      rounds_since_progress += 4;
      if (rounds_since_progress >= allowance) return false;
    }
  }
  return true;
}

void RecoverySupervisor::backoff(unsigned epoch) {
  const std::uint64_t idle =
      std::min<std::uint64_t>(opts_.max_backoff,
                              static_cast<std::uint64_t>(opts_.backoff_base)
                                  << std::min(epoch, 16u));
  for (std::uint64_t i = 0; i < idle; ++i) {
    // Nobody initiates; the round still advances the fault clock (churn,
    // partition heals, loss schedules run on engine-lifetime rounds).
    engine_.run_round(
        make_hooks([](std::uint32_t) -> std::optional<Contact> { return std::nullopt; }));
  }
}

void RecoverySupervisor::fallback(std::vector<std::uint8_t>& informed,
                                  RecoveryStats& stats) {
  const std::uint64_t stranded = net_.alive_count() - count_informed(informed);
  // Handoff invariants: degradation happens only after the full budget was
  // spent on a still-incomplete broadcast.
  GOSSIP_DCHECK_MSG(stranded > 0, "fallback handoff with nobody stranded");
  GOSSIP_DCHECK_MSG(stats.epochs == opts_.retry_budget,
                    "fallback handoff before the retry budget was exhausted");
  stats.fallback = true;
  if (obs::EventLog* log = engine_.event_log()) {
    log->note_fallback(stranded, stats.epochs, opts_.retry_budget);
  }
  const std::uint64_t cap =
      opts_.fallback_round_cap != 0
          ? opts_.fallback_round_cap
          : 10ULL * ceil_log2(std::max<std::uint64_t>(2, net_.capacity())) + 50;
  for (std::uint64_t r = 0; r < cap; ++r) {
    if (count_informed(informed) == net_.alive_count()) break;
    // Plain PUSH-PULL: no leaders, no direct addressing, nothing left to
    // decapitate - the robust textbook protocol as the floor of degradation.
    engine_.run_round(make_hooks(
        // GOSSIP_HOT
        [&](std::uint32_t v) -> std::optional<Contact> {
          if (informed[v]) return Contact::push_random(Message::rumor());
          return Contact::pull_random();
        },
        // GOSSIP_HOT
        [&](std::uint32_t v) {
          return informed[v] ? Message::rumor() : Message::empty();
        },
        // GOSSIP_HOT
        [&](std::uint32_t to, const Message& m) {
          if (m.has_rumor()) informed[to] = 1;
        },
        // GOSSIP_HOT
        [&](std::uint32_t q, const Message& m) {
          if (m.has_rumor()) informed[q] = 1;
        }));
    ++stats.fallback_rounds;
  }
}

}  // namespace gossip::core
