// Tuning knobs for the paper's algorithms.
//
// The paper leaves all constants (C, C', C'', the Theta(.) loop counts and
// the squaring constants) free. The defaults here are *simulation-
// calibrated*: they preserve every mechanism and every asymptotic
// relationship the proofs use, but scale the polylog exponents so the
// algorithms are exercised meaningfully at laptop-simulable n (2^8..2^22).
// The paper's asymptotic regime (seed probability 1/log^4 n with cluster
// thresholds log^3 n) only becomes non-degenerate around n >= 2^40; see
// DESIGN.md section 4.3 for the calibration rationale. Paper-exact exponents
// can be restored per-field for asymptotic studies.
#pragma once

#include <cstdint>

namespace gossip::core {

/// Options for Cluster1 (Algorithm 1, Theorem 9): round-optimal, message-
/// unoptimized.
struct Cluster1Options {
  /// GrowInitialClusters seeds leaders with probability 1/(C log2 n).
  double seed_factor_c = 4.0;
  /// Minimum initial cluster size C' log2 n enforced by ClusterDissolve.
  double min_size_factor = 1.0;
  /// Recruiting rounds beyond ceil(log2(C log2 n)) (saturation slack).
  unsigned extra_grow_rounds = 3;
  /// SquareClusters schedule: s <- max(2s, kappa * s^2).
  double square_kappa = 0.25;
  /// MergeAllClusters push+merge repetitions. The paper uses 2, which is
  /// w.h.p.-sufficient only asymptotically; at simulable n the merge phase
  /// handles O(log n) thin clusters, and each extra O(1)-round repetition
  /// drives the split-brain probability down geometrically.
  unsigned merge_all_reps = 5;
  /// Path-compression rounds after simultaneous merges.
  unsigned settle_rounds = 2;
  /// PULL rounds beyond ceil(log log n) for the unclustered stragglers.
  unsigned extra_pull_rounds = 5;
  /// Hard bound on squaring iterations (loop safety; never binds in practice).
  unsigned max_square_iters = 64;
};

/// Options for Cluster2 (Algorithm 2, Theorem 2): round-, message- and
/// bit-optimal.
struct Cluster2Options {
  /// Grow-phase cluster size threshold: max(8, size_factor * log2^2(n) / 4).
  /// (Paper: C' log^3 n; exponent scaled to the simulable regime.)
  double grow_size_factor = 1.0;
  /// Seed count is derived from the paper's mass relationship
  /// (#seeds * threshold = n / log n): m = max(4, mass_factor * n /
  /// (threshold * log2 n)). This is what keeps only Theta(n / log n) nodes
  /// clustered and the message complexity linear.
  double mass_factor = 1.0;
  /// Deactivate a threshold-sized cluster whose measured growth fell below
  /// this factor (paper: 2 - 1/log n; sim-calibrated to tolerate the
  /// measurement noise of smaller clusters).
  double growth_stop_factor = 1.5;
  /// Grow iterations beyond ceil(log2(threshold)).
  unsigned extra_grow_rounds = 2;
  /// SquareClusters schedule: s <- max(2s, kappa * s^2 / log2 n).
  double square_kappa = 1.0;
  /// MergeAllClusters repetitions (>= 2; the paper's 2 is asymptotic - see
  /// Cluster1Options::merge_all_reps).
  unsigned merge_all_reps = 5;
  unsigned settle_rounds = 2;
  /// BoundedClusterPush growth-stop factor (paper: 1.1).
  double bounded_push_stop = 1.1;
  /// BoundedClusterPush iterations beyond ceil(log2 log2 n).
  unsigned extra_bounded_push_rounds = 3;
  unsigned extra_pull_rounds = 5;
  unsigned max_square_iters = 64;
};

/// Options for Cluster3(Delta) (Algorithm 4, Theorem 18): Delta-clustering.
struct Cluster3Options {
  /// The paper's C'': target cluster size is Delta / delta_slack, which
  /// bounds every leader's per-round load strictly below Delta.
  double delta_slack = 4.0;
  /// MergeClusters activation: p = merge_activation_scale * s / (Delta/C'').
  double merge_activation_scale = 10.0;
  Cluster2Options grow;  ///< grow/square phases are Cluster2's (paper line 1-2)
  double bounded_push_stop = 1.1;
  unsigned extra_bounded_push_rounds = 3;
  unsigned extra_pull_rounds = 5;
  unsigned settle_rounds = 2;
};

/// Options for ClusterPushPull(Delta) (Algorithm 3, Lemma 17).
struct ClusterPushPullOptions {
  /// Spread iterations beyond ceil(log(n/D) / log D) where D is the realized
  /// cluster size floor.
  unsigned extra_spread_iters = 2;
  /// Final random-PULL + ClusterShare repetitions (paper lines 5-6; >= 1).
  unsigned final_pull_reps = 3;
};

/// Options for the recovery supervisor (core/recovery.hpp): watchdogged
/// repair epochs over a finished-but-incomplete cluster broadcast, with
/// suspicion-driven leader re-election and a plain PUSH-PULL fallback once
/// the retry budget is exhausted. Off by default - a disabled supervisor
/// never runs a round, keeping recovery-off trajectories bit-identical to
/// runs built without one.
struct RecoveryOptions {
  /// Master switch; the supervisor only engages when the algorithm finished
  /// with uninformed alive nodes.
  bool enabled = false;
  /// Repair epochs before degrading to plain PUSH-PULL.
  unsigned retry_budget = 3;
  /// Rounds without informed-count progress before an epoch is declared
  /// stalled (doubled per epoch - bounded exponential backoff of patience).
  unsigned watchdog_rounds = 4;
  /// Idle rounds slept after a stalled epoch: min(backoff_base << epoch,
  /// max_backoff). The sleep advances the fault timeline, so transient
  /// adversities (partitions, loss bursts) can clear between retries.
  unsigned backoff_base = 2;
  unsigned max_backoff = 32;
  /// Heartbeat-probe rounds per epoch; a follower suspects its leader only
  /// after missing every probe (loss tolerance, membership-style suspicion).
  unsigned suspicion_probes = 3;
  /// Push+relay+merge repetitions consolidating re-elected leaders.
  unsigned reelect_merge_reps = 2;
  /// Hard round cap on the PUSH-PULL fallback (0 = auto: 10 ceil(log2 n)
  /// + 50, generous enough that plain push-pull completes w.h.p.).
  std::uint64_t fallback_round_cap = 0;
};

}  // namespace gossip::core
