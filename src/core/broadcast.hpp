// One-call public API: broadcast a rumor with one of the paper's algorithms.
//
//   gossip::sim::Network net({.n = 1'000'000, .seed = 7});
//   auto report = gossip::core::broadcast(net, {.algorithm =
//       gossip::core::Algorithm::kCluster2});
//
// For the Delta-bounded variant (kCluster3PushPull) the call builds the
// Delta-clustering with Cluster3 and then broadcasts with ClusterPushPull;
// the returned report covers the combined execution (Theorem 4's end-to-end
// accounting). Baseline algorithms live in gossip::baselines and return the
// same BroadcastReport type.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "core/phase_observer.hpp"
#include "core/report.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::obs {
struct Telemetry;
}  // namespace gossip::obs

namespace gossip::core {

enum class Algorithm {
  kCluster1,          ///< Algorithm 1: round-optimal
  kCluster2,          ///< Algorithm 2: round-, message- and bit-optimal
  kCluster3PushPull,  ///< Algorithms 4+3: Delta-bounded communication
};

[[nodiscard]] const char* to_string(Algorithm a) noexcept;

struct BroadcastOptions {
  Algorithm algorithm = Algorithm::kCluster2;
  std::uint32_t source = 0;
  /// Communication bound for kCluster3PushPull (>= 16).
  std::uint64_t delta = 1024;
  /// Enable the O(n) structural invariant checks (tests/debugging).
  bool validate = false;
  /// 0 = serial engine (default). >= 1 = sharded phase-1 execution across
  /// this many threads (plumbed to DriverOptions.threads; see the Threading
  /// model notes in sim/engine.hpp for the determinism contract).
  unsigned threads = 0;
  /// Initiators per phase-1 shard when threads >= 1 (0 = default width;
  /// plumbed to DriverOptions.shard_size).
  std::uint32_t shard_size = 0;
  /// Receiver buckets for the delivery phases (0 = the engine's auto
  /// default; plumbed to DriverOptions.delivery_buckets).
  /// Trajectory-invariant.
  std::uint32_t delivery_buckets = 0;
  /// Fault scenario on the run's round timeline (scheduled crashes, lossy
  /// channels; see sim/fault.hpp). Non-owning - must outlive the call. The
  /// caller invokes on_run_begin itself (faults and seeding are harness
  /// concerns; TrialRunner does both). Null = fault-free.
  sim::FaultModel* fault_model = nullptr;
  /// Observability handle attached to the run's engine/driver (src/obs/;
  /// plumbed to DriverOptions.telemetry). Non-owning. Null = detached. The
  /// cluster algorithms keep their informed state internal, so records carry
  /// no informed count (exported as null).
  obs::Telemetry* telemetry = nullptr;
  Cluster1Options cluster1;
  Cluster2Options cluster2;
  Cluster3Options cluster3;
  ClusterPushPullOptions push_pull;
  /// Self-healing (core/recovery.hpp): when enabled and the algorithm ends
  /// with uninformed alive nodes, a recovery supervisor runs repair epochs
  /// (suspicion-driven leader re-election, watchdogged re-share, bounded
  /// backoff) and finally degrades to plain PUSH-PULL, so the run completes
  /// with a verdict. Disabled (the default) adds zero rounds and keeps
  /// trajectories bit-identical to builds without a supervisor.
  RecoveryOptions recovery;
  PhaseObserverFn observer;
};

/// Runs the selected algorithm on a fresh engine over `net`.
[[nodiscard]] BroadcastReport broadcast(sim::Network& net, const BroadcastOptions& options);

}  // namespace gossip::core
