#include "core/cluster3.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/schedules.hpp"

namespace gossip::core {

Cluster3::Cluster3(sim::Engine& engine, std::uint64_t delta, Cluster3Options options,
                   cluster::DriverOptions driver_opts, PhaseObserverFn observer)
    : ClusterAlgorithmBase(engine, driver_opts, std::move(observer)),
      delta_(delta),
      opts_(options) {}

BroadcastReport Cluster3::run() {
  const std::uint64_t n = net_.n();
  const double log_n = std::max(2.0, log2d(n));
  const Cluster3Schedule sched = compute_cluster3_schedule(n, delta_, opts_);
  cluster_target_ = sched.cluster_target;
  const std::uint64_t D = sched.cluster_target;

  // --- GrowInitialClusters + SquareClusters (Algorithm 4 lines 1-2): as in
  // Cluster2, but stopped at s ~ sqrt(Delta log n)/C'' so clusters stay well
  // below the Delta scale.
  seed_singletons(sched.grow.seed_prob);
  grow_controlled(sched.grow.threshold, sched.grow.grow_rounds,
                  opts_.grow.growth_stop_factor);
  mark_phase("grow");

  const double kappa = opts_.grow.square_kappa;
  const std::uint64_t last_s = square_clusters(
      sched.grow.s0, sched.grow.s_target,
      [kappa, log_n](std::uint64_t s) {
        const auto squared = static_cast<std::uint64_t>(
            kappa * static_cast<double>(saturating_mul(s, s)) / log_n);
        return std::max(2 * s, squared);
      },
      cluster::RelayPolicy::kRandom, opts_.grow.max_square_iters);
  // The loop exits right after its merge repetitions, so clusters sit at the
  // merged (squared) size with no trailing resize; trim them back to the
  // schedule scale now, or the MergeClusters/settle pulls that follow would
  // load the big leaders beyond Delta.
  driver_.resize(std::clamp<std::uint64_t>(2 * last_s, 4, std::max<std::uint64_t>(4, D / 2)),
                 /*only_active=*/false);
  mark_phase("square");

  // --- MergeClusters (lines 7-10): activate w.p. ~ 10 s / (Delta/C''); each
  // active cluster absorbs ~D/(10 s) inactive ones chosen uniformly, giving
  // clusters of size Theta(D).
  const double p = std::clamp(opts_.merge_activation_scale * static_cast<double>(last_s) /
                                  static_cast<double>(D),
                              0.05, 0.95);
  driver_.activate(p);
  driver_.clear_candidates();
  driver_.push_cluster_id(/*only_active=*/true, /*recruit_unclustered=*/false,
                          cluster::RelayPolicy::kRandom);
  driver_.relay_candidates(cluster::RelayPolicy::kRandom, /*only_inactive_relayers=*/true);
  driver_.merge_from_inbox(cluster::RelayPolicy::kRandom, /*only_inactive=*/true);
  driver_.settle(opts_.settle_rounds);
  mark_phase("merge");

  // --- BoundedClusterPush (lines 11-19): recruit the unclustered while a
  // continuous ClusterResize(D) keeps every leader's load below Delta.
  bounded_cluster_push(opts_.bounded_push_stop, sched.bounded_push_iters,
                       /*resize_target=*/D);
  mark_phase("bounded_push");

  // --- UnclusteredNodesPull (line 5) + final ClusterResize (line 6) -----------
  // Resize first: the last BoundedClusterPush iteration recruits after its
  // resize, so clusters can sit above 2D here; trimming them now keeps every
  // leader's load through the pull phase and the final resize below Delta.
  driver_.resize(D, /*only_active=*/false);
  // Dissolve undersized strays so every PULL joins a healthy cluster.
  driver_.dissolve_below(std::max<std::uint64_t>(2, D / 8));
  unclustered_pull(sched.pull_rounds);
  driver_.resize(D, /*only_active=*/false);
  mark_phase("pull_resize");

  return make_report();
}

}  // namespace gossip::core
