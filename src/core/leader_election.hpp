// Leader election on top of the clustering machinery.
//
// The paper uses this reduction in the Theorem 15 proof: "spreading a
// message starting at one node u can be used to elect u as a cluster leader
// by simply attaching its ID to the message spread". More directly, the
// Cluster1/Cluster2 pipelines already terminate with a single cluster whose
// leader every node knows through its follow variable - so electing a leader
// costs exactly one broadcast-shaped execution: O(log log n) rounds, and
// with the Cluster2 machinery O(1) messages per node.
#pragma once

#include <cstdint>
#include <optional>

#include "core/options.hpp"
#include "core/report.hpp"
#include "sim/network.hpp"

namespace gossip::core {

struct LeaderElectionResult {
  /// The elected leader's ID; every agreeing node's follow points at it.
  NodeId leader;
  /// Index of the elected leader.
  std::uint32_t leader_index = 0;
  /// Alive nodes that agree on this leader.
  std::uint64_t agreeing = 0;
  bool unanimous = false;  ///< all alive nodes agree
  BroadcastReport report;  ///< complexity measures of the election run
};

/// Elects a leader with the Cluster2 pipeline: after the run, the single
/// cluster's leader is the winner and every node holds its ID locally.
[[nodiscard]] LeaderElectionResult elect_leader(sim::Network& net,
                                                Cluster2Options options = Cluster2Options());

}  // namespace gossip::core
