#include "core/cluster1.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::core {

Cluster1::Cluster1(sim::Engine& engine, Cluster1Options options,
                   cluster::DriverOptions driver_opts, PhaseObserverFn observer)
    : ClusterAlgorithmBase(engine, driver_opts, std::move(observer)), opts_(options) {}

BroadcastReport Cluster1::run(std::uint32_t source) {
  return run(std::span<const std::uint32_t>(&source, 1));
}

BroadcastReport Cluster1::run(std::span<const std::uint32_t> sources) {
  set_sources(sources);

  const std::uint64_t n = net_.n();
  const double log_n = std::max(2.0, log2d(n));

  // --- GrowInitialClusters (lines 6-10) ----------------------------------
  // Sample leaders w.p. 1/(C log n); recruit for Theta(log log n) rounds
  // until ~90% of nodes sit in clusters of size >= C' log n (Lemma 5).
  const double seed_prob = 1.0 / (opts_.seed_factor_c * log_n);
  const auto grow_rounds = static_cast<unsigned>(
      std::ceil(std::log2(opts_.seed_factor_c * log_n)) + opts_.extra_grow_rounds);
  seed_singletons(seed_prob);
  grow_simple(grow_rounds);
  mark_phase("grow");

  // --- SquareClusters (lines 11-20) ----------------------------------------
  // s starts at C' log n and is squared each iteration until it exceeds
  // sqrt(n / log n) (Lemma 6).
  const auto s0 = std::max<std::uint64_t>(
      4, static_cast<std::uint64_t>(std::llround(opts_.min_size_factor * log_n)));
  const std::uint64_t target = isqrt(n / static_cast<std::uint64_t>(log_n));
  const double kappa = opts_.square_kappa;
  square_clusters(
      s0, target,
      [kappa](std::uint64_t s) {
        const auto squared = static_cast<std::uint64_t>(
            kappa * static_cast<double>(saturating_mul(s, s)));
        return std::max(2 * s, squared);
      },
      cluster::RelayPolicy::kSmallest, opts_.max_square_iters);
  mark_phase("square");

  // --- MergeAllClusters (lines 21-24) ----------------------------------------
  merge_all_clusters(opts_.merge_all_reps, opts_.settle_rounds);
  mark_phase("merge_all");

  // --- UnclusteredNodesPull (lines 25-26) --------------------------------------
  unclustered_pull(ceil_loglog2(n) + opts_.extra_pull_rounds);
  mark_phase("pull");

  // --- ClusterShare(message) (line 5) --------------------------------------------
  final_share();
  mark_phase("share");

  return make_report();
}

}  // namespace gossip::core
