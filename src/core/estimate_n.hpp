// Unknown network size: the guess-test-and-double strategy (paper Section
// 2). The model assumes nodes know n "without loss of generality", because
// a node can run the algorithm with a guess N, test success with high
// probability, and retry with a larger guess.
//
// This module makes that reduction executable:
//   * guesses follow the tower schedule N_k = 2^(2^k). Since each Cluster1
//     attempt costs Theta(log log N_k) = Theta(2^k) rounds, the total cost
//     telescopes to O(log log n_true) - the constant-factor overhead the
//     paper asserts (plain doubling would cost an extra log n factor);
//   * the success test is decentralized: after the clustering attempt, every
//     node pushes its cluster ID to a few random nodes; any receiver whose
//     own cluster ID differs (or who is unclustered) has *proof* that the
//     guess failed. Verdicts are aggregated within each cluster, so all
//     nodes of a consistent clustering agree. If the guess was large enough,
//     Cluster1 built one cluster over everyone and no conflict exists; if it
//     was too small, conflicting cluster IDs circulate w.h.p.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "core/report.hpp"
#include "sim/network.hpp"

namespace gossip::core {

struct EstimateNOptions {
  unsigned first_tower_exponent = 2;  ///< first guess N = 2^(2^2) = 16
  unsigned max_tower_exponent = 6;    ///< last guess N = 2^64 (saturated)
  unsigned verification_pushes = 3;   ///< conflict probes per node per attempt
  Cluster1Options cluster1;           ///< knobs for the per-guess attempts
};

struct EstimateNResult {
  std::uint64_t estimate = 0;     ///< the accepted guess N (>= n/agreement scale)
  unsigned attempts = 0;          ///< guesses consumed
  bool success = false;           ///< a guess passed verification
  std::uint64_t rounds = 0;       ///< total rounds across all attempts
  sim::RunStats stats;            ///< cumulative metering
};

/// Runs guess-test-and-double on a network whose size the algorithm does
/// not consult (only the returned estimate is derived from communication).
[[nodiscard]] EstimateNResult estimate_network_size(sim::Network& net,
                                                    EstimateNOptions options =
                                                        EstimateNOptions());

}  // namespace gossip::core
