// Cluster3(Delta) (paper Algorithm 4, Theorem 18): computes a
// Theta(Delta)-clustering - every node clustered, cluster sizes within a
// constant factor of Delta/C'' - in O(log log n) rounds with O(n) messages,
// while no node is involved in more than Delta communications in any round.
//
// Together with ClusterPushPull (Algorithm 3) this realizes every point of
// the Section 7 trade-off curve: broadcast in Theta(log n / log Delta)
// rounds under a Delta communication bound (Lemma 16's floor).
#pragma once

#include <cstdint>

#include "cluster/driver.hpp"
#include "core/cluster_algorithm_base.hpp"
#include "core/options.hpp"
#include "core/phase_observer.hpp"
#include "core/report.hpp"

namespace gossip::core {

class Cluster3 : public ClusterAlgorithmBase {
 public:
  Cluster3(sim::Engine& engine, std::uint64_t delta,
           Cluster3Options options = Cluster3Options(),
           cluster::DriverOptions driver_opts = cluster::DriverOptions(),
           PhaseObserverFn observer = nullptr);

  /// Computes the Delta-clustering. The result lives in driver().clustering();
  /// run a ClusterPushPull over the same driver to broadcast.
  /// The report's informed counters are zero - this builds structure only.
  BroadcastReport run();

  /// The realized per-cluster size target D = Delta / C''.
  [[nodiscard]] std::uint64_t cluster_target() const noexcept { return cluster_target_; }

 private:
  std::uint64_t delta_;
  std::uint64_t cluster_target_ = 0;
  Cluster3Options opts_;
};

}  // namespace gossip::core
