#include "core/cluster2.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/schedules.hpp"

namespace gossip::core {

Cluster2::Cluster2(sim::Engine& engine, Cluster2Options options,
                   cluster::DriverOptions driver_opts, PhaseObserverFn observer)
    : ClusterAlgorithmBase(engine, driver_opts, std::move(observer)), opts_(options) {}

BroadcastReport Cluster2::run(std::uint32_t source) {
  return run(std::span<const std::uint32_t>(&source, 1));
}

BroadcastReport Cluster2::run(std::span<const std::uint32_t> sources) {
  set_sources(sources);

  const std::uint64_t n = net_.n();
  const double log_n = std::max(2.0, log2d(n));
  const Cluster2Schedule sched = compute_cluster2_schedule(n, opts_);

  // --- GrowInitialClusters (Algorithm 2 lines 7-17) -----------------------
  // Only Theta(n / log n) nodes get clustered: seeds * threshold tracks
  // n / log n and growth-controlled clusters stop/split (Lemma 11).
  seed_singletons(sched.seed_prob);
  grow_controlled(sched.threshold, sched.grow_rounds, opts_.growth_stop_factor);
  mark_phase("grow");

  // --- SquareClusters (lines 18-27): s <- Theta(s^2 / log n), random merge.
  const double kappa = opts_.square_kappa;
  square_clusters(
      sched.s0, sched.s_target,
      [kappa, log_n](std::uint64_t s) {
        const auto squared = static_cast<std::uint64_t>(
            kappa * static_cast<double>(saturating_mul(s, s)) / log_n);
        return std::max(2 * s, squared);
      },
      cluster::RelayPolicy::kRandom, opts_.max_square_iters);
  mark_phase("square");

  // --- MergeAllClusters (line 3, "as in Algorithm 1") ------------------------
  merge_all_clusters(opts_.merge_all_reps, opts_.settle_rounds);
  mark_phase("merge_all");

  // --- BoundedClusterPush (lines 28-35): expand the single cluster to
  // Theta(n) nodes so the final PULL costs O(1) messages per straggler
  // (Lemma 13).
  bounded_cluster_push(opts_.bounded_push_stop, sched.bounded_push_iters,
                       /*resize_target=*/std::nullopt);
  mark_phase("bounded_push");

  // --- UnclusteredNodesPull (line 5) ------------------------------------------
  unclustered_pull(sched.pull_rounds);
  mark_phase("pull");

  // --- ClusterShare(message) (line 6) --------------------------------------------
  final_share();
  mark_phase("share");

  return make_report();
}

}  // namespace gossip::core
