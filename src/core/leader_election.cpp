#include "core/leader_election.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "core/cluster2.hpp"
#include "sim/engine.hpp"

namespace gossip::core {

LeaderElectionResult elect_leader(sim::Network& net, Cluster2Options options) {
  sim::Engine engine(net);
  Cluster2 algo(engine, options);
  // The rumor is irrelevant for the election; any alive source works.
  std::uint32_t source = 0;
  while (source < net.n() && !net.alive(source)) ++source;
  GOSSIP_CHECK_MSG(source < net.n(), "no alive nodes");
  LeaderElectionResult result;
  result.report = algo.run(source);

  // Every node's local view of its leader is its follow variable (its own
  // ID if it leads). Tally agreement.
  const auto& cl = algo.driver().clustering();
  // Sorted tally instead of a hash map: the winning leader under a vote tie
  // must not depend on hash iteration order (determinism contract; enforced
  // by tools/gossip_lint.py). Ties break to the smallest raw ID.
  std::vector<std::uint64_t> votes;
  votes.reserve(net.n());
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (!net.alive(v) || cl.is_unclustered(v)) continue;
    votes.push_back((cl.is_leader(v) ? net.id_of(v) : cl.follow(v)).raw());
  }
  GOSSIP_CHECK_MSG(!votes.empty(), "election produced no clustering");
  std::sort(votes.begin(), votes.end());
  std::uint64_t best_raw = 0;
  std::uint64_t best_count = 0;
  for (std::size_t i = 0; i < votes.size();) {
    std::size_t j = i;
    while (j < votes.size() && votes[j] == votes[i]) ++j;
    if (j - i > best_count) {
      best_raw = votes[i];
      best_count = j - i;
    }
    i = j;
  }
  result.leader = NodeId(best_raw);
  result.leader_index = net.index_of(result.leader);
  result.agreeing = best_count;
  result.unanimous = best_count == net.alive_count();
  return result;
}

}  // namespace gossip::core
