#include "core/leader_election.hpp"

#include <unordered_map>

#include "common/assert.hpp"
#include "core/cluster2.hpp"
#include "sim/engine.hpp"

namespace gossip::core {

LeaderElectionResult elect_leader(sim::Network& net, Cluster2Options options) {
  sim::Engine engine(net);
  Cluster2 algo(engine, options);
  // The rumor is irrelevant for the election; any alive source works.
  std::uint32_t source = 0;
  while (source < net.n() && !net.alive(source)) ++source;
  GOSSIP_CHECK_MSG(source < net.n(), "no alive nodes");
  LeaderElectionResult result;
  result.report = algo.run(source);

  // Every node's local view of its leader is its follow variable (its own
  // ID if it leads). Tally agreement.
  const auto& cl = algo.driver().clustering();
  std::unordered_map<std::uint64_t, std::uint64_t> votes;
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (!net.alive(v) || cl.is_unclustered(v)) continue;
    ++votes[(cl.is_leader(v) ? net.id_of(v) : cl.follow(v)).raw()];
  }
  GOSSIP_CHECK_MSG(!votes.empty(), "election produced no clustering");
  std::uint64_t best_raw = 0;
  std::uint64_t best_count = 0;
  for (const auto& [raw, count] : votes) {
    if (count > best_count) {
      best_raw = raw;
      best_count = count;
    }
  }
  result.leader = NodeId(best_raw);
  result.leader_index = net.index_of(result.leader);
  result.agreeing = best_count;
  result.unanimous = best_count == net.alive_count();
  return result;
}

}  // namespace gossip::core
