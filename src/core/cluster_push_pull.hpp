// ClusterPushPull(Delta) (paper Algorithm 3, Lemma 17): broadcast over an
// existing Delta-clustering in O(log n / log Delta) rounds with O(n)
// payload messages.
//
// Iteration structure (3 rounds, matching the Lemma 17 proof): members of
// newly informed clusters push the rumor to uniformly random nodes exactly
// once; first-time receivers relay it to their leader; uninformed followers
// poll their leader (uninformed leaders poll a random node). After the
// Theta(log n / log Delta) growth iterations, the paper's lines 5-6 run: all
// remaining uninformed nodes PULL from random nodes, then a final
// ClusterShare sweeps each cluster. Polling pulls are connections; payload
// traffic stays O(1) per node (see the metering convention in
// sim/metrics.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/driver.hpp"
#include "core/options.hpp"
#include "core/report.hpp"

namespace gossip::core {

class ClusterPushPull {
 public:
  /// Runs over the clustering held by `driver` (typically produced by
  /// Cluster3). The driver's engine keeps accumulating metrics; pass
  /// `reset_metrics` to measure this broadcast in isolation (Lemma 17's
  /// "once the Delta-clustering is computed" accounting).
  explicit ClusterPushPull(cluster::Driver& driver,
                           ClusterPushPullOptions options = ClusterPushPullOptions());

  /// Broadcasts from `source`. `cluster_size_hint` is the clustering's size
  /// parameter D (a program constant of the Delta-clustering), which sizes
  /// the spread loop as ceil(log n / log D) + extra.
  BroadcastReport run(std::uint32_t source, std::uint64_t cluster_size_hint,
                      bool reset_metrics = false);

  [[nodiscard]] const std::vector<std::uint8_t>& informed() const noexcept {
    return informed_;
  }
  /// Mutable informed bitmap, for post-run repair (core/recovery.hpp).
  [[nodiscard]] std::vector<std::uint8_t>& mutable_informed() noexcept {
    return informed_;
  }

 private:
  cluster::Driver& driver_;
  sim::Engine& engine_;
  sim::Network& net_;
  ClusterPushPullOptions opts_;
  std::vector<std::uint8_t> informed_;
  std::vector<std::uint8_t> pushed_;
  std::vector<std::uint8_t> need_relay_;

  void push_round();
  void relay_round();
  void poll_round(bool uninformed_pull_random);
};

}  // namespace gossip::core
