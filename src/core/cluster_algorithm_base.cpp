#include "core/cluster_algorithm_base.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::core {

using cluster::RelayPolicy;

ClusterAlgorithmBase::ClusterAlgorithmBase(sim::Engine& engine,
                                           cluster::DriverOptions driver_opts,
                                           PhaseObserverFn observer)
    : engine_(engine),
      net_(engine.network()),
      driver_(engine, driver_opts),
      informed_(engine.network().capacity(), 0),
      observer_(std::move(observer)) {}

void ClusterAlgorithmBase::set_sources(std::span<const std::uint32_t> sources) {
  bool any_alive = false;
  for (const std::uint32_t s : sources) {
    GOSSIP_CHECK_MSG(s < net_.n(), "source index out of range");
    informed_[s] = 1;
    any_alive |= net_.alive(s);
  }
  GOSSIP_CHECK_MSG(any_alive, "need at least one alive source");
}

void ClusterAlgorithmBase::mark_phase(std::string name) {
  const auto& total = engine_.metrics().run().total;
  phase_marks_.push_back(PhaseMark{std::move(name), engine_.rounds(),
                                   total.payload_messages, total.connections, total.bits});
}

void ClusterAlgorithmBase::observe(std::string_view phase, std::uint64_t step,
                                   std::uint64_t schedule_s) {
  if (!observer_) return;
  PhaseSnapshot snap;
  snap.phase = phase;
  snap.step = step;
  snap.round = engine_.rounds();
  snap.schedule_s = schedule_s;
  snap.informed = count_informed();
  snap.clustering = driver_.clustering().stats();
  observer_(snap);
}

std::uint64_t ClusterAlgorithmBase::count_informed() const {
  std::uint64_t informed = 0;
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (net_.alive(v) && informed_[v]) ++informed;
  }
  return informed;
}

BroadcastReport ClusterAlgorithmBase::make_report() const {
  BroadcastReport r;
  r.n = net_.n();
  r.alive = net_.alive_count();
  r.informed = count_informed();
  r.all_informed = r.informed == r.alive;
  r.rounds = engine_.rounds();
  r.stats = engine_.metrics().run();
  PhaseMark prev{"", 0, 0, 0, 0};
  for (const auto& mark : phase_marks_) {
    PhaseBreakdown pb;
    pb.name = mark.name;
    pb.rounds = mark.rounds - prev.rounds;
    pb.payload_messages = mark.payload_messages - prev.payload_messages;
    pb.connections = mark.connections - prev.connections;
    pb.bits = mark.bits - prev.bits;
    r.phases.push_back(std::move(pb));
    prev = mark;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Seeding (Algorithm 1 line 7 / Algorithm 2 lines 8-9)
// ---------------------------------------------------------------------------
void ClusterAlgorithmBase::seed_singletons(double prob) {
  auto& cl = driver_.clustering();
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (!net_.alive(v)) continue;
    Rng coin = net_.node_rng(v, /*salt=*/0x5eed0);
    if (coin.bernoulli(prob)) {
      cl.make_leader(v);
      cl.set_active(v, true);
      cl.set_size_estimate(v, 1);
    }
  }
}

// ---------------------------------------------------------------------------
// GrowInitialClusters, Cluster1 flavour (Algorithm 1 lines 8-10)
// ---------------------------------------------------------------------------
void ClusterAlgorithmBase::grow_simple(unsigned rounds) {
  for (unsigned t = 0; t < rounds; ++t) {
    driver_.push_cluster_id(/*only_active=*/false, /*recruit_unclustered=*/true,
                            RelayPolicy::kSmallest);
    observe("grow", t, 0);
  }
  driver_.clear_candidates();  // discard stray relay candidates from recruiting
}

// ---------------------------------------------------------------------------
// GrowInitialClusters, Cluster2/3 flavour (Algorithm 2 lines 10-17)
// ---------------------------------------------------------------------------
void ClusterAlgorithmBase::grow_controlled(std::uint64_t threshold, unsigned rounds,
                                           double stop_factor) {
  auto& cl = driver_.clustering();
  for (unsigned t = 0; t < rounds; ++t) {
    driver_.push_cluster_id(/*only_active=*/true, /*recruit_unclustered=*/true,
                            RelayPolicy::kRandom);
    driver_.collect_and_verdict(
        /*only_active=*/true, /*with_ids=*/true,
        [&](std::uint32_t leader, std::uint64_t size, std::vector<NodeId>& members) {
          cluster::Driver::Verdict v;
          v.size_hint = size;
          if (size < threshold) return v;  // below the gate: keep recruiting
          // Paper lines 13-15: the slow-growth (crowding) stop applies only
          // to clusters at or above the size gate, where the measured growth
          // factor is statistically meaningful (Lemma 10/11).
          const double prev =
              static_cast<double>(std::max<std::uint64_t>(1, cl.size_estimate(leader)));
          if (static_cast<double>(size) / prev < stop_factor) {
            v.active = false;
            return v;
          }
          // Size threshold reached: stop recruiting. In the paper's
          // asymptotic regime the crowding stop alone bounds the clustered
          // mass; at simulable n the crowding signal (2 - 1/log n) is below
          // measurement noise, so the size cap is what enforces the
          // calibrated mass  seeds * threshold ~ n / log n  (Lemma 11).
          v.active = false;
          // Paper line 17: ClusterResize(threshold) - split an overshooting
          // cluster into ~threshold-sized groups so no cluster gets too big.
          const std::uint64_t groups = std::max<std::uint64_t>(1, size / threshold);
          if (groups > 1) {
            const std::uint64_t base = size / groups;
            const std::uint64_t extra = size % groups;
            std::size_t idx = 0;
            for (std::uint64_t g = 0; g < groups; ++g) {
              idx += base + (g < extra ? 1 : 0);
              v.new_leaders.push_back(members[idx - 1]);
            }
            v.size_hint = base;
          }
          return v;
        });
    observe("grow", t, threshold);
  }
  driver_.clear_candidates();
}

// ---------------------------------------------------------------------------
// SquareClusters (Algorithm 1 lines 11-20 / Algorithm 2 lines 18-27)
// ---------------------------------------------------------------------------
std::uint64_t ClusterAlgorithmBase::square_clusters(
    std::uint64_t s0, std::uint64_t target,
    const std::function<std::uint64_t(std::uint64_t)>& next_s, RelayPolicy policy,
    unsigned max_iters) {
  driver_.dissolve_below(s0);
  std::uint64_t s = s0;
  std::uint64_t last_used = s0;
  unsigned iters = 0;
  while (s <= target && iters < max_iters) {
    driver_.clear_candidates();
    driver_.resize(s, /*only_active=*/false);
    driver_.activate(1.0 / static_cast<double>(s));
    for (int rep = 0; rep < 2; ++rep) {
      driver_.push_cluster_id(/*only_active=*/true, /*recruit_unclustered=*/false, policy);
      driver_.relay_candidates(policy, /*only_inactive_relayers=*/true);
      driver_.merge_from_inbox(policy, /*only_inactive=*/true);
    }
    last_used = s;
    s = next_s(s);
    GOSSIP_CHECK_MSG(s > last_used, "square schedule must grow s");
    ++iters;
    observe("square", iters, s);
  }
  return last_used;
}

// ---------------------------------------------------------------------------
// MergeAllClusters (Algorithm 1 lines 21-24)
// ---------------------------------------------------------------------------
void ClusterAlgorithmBase::merge_all_clusters(unsigned reps, unsigned settle_rounds) {
  for (unsigned rep = 0; rep < reps; ++rep) {
    driver_.clear_candidates();
    driver_.push_cluster_id(/*only_active=*/false, /*recruit_unclustered=*/false,
                            RelayPolicy::kSmallest);
    driver_.relay_candidates(RelayPolicy::kSmallest, /*only_inactive_relayers=*/false);
    driver_.merge_from_inbox(RelayPolicy::kSmallest, /*only_inactive=*/false);
    observe("merge_all", rep, 0);
  }
  driver_.settle(settle_rounds);
}

// ---------------------------------------------------------------------------
// BoundedClusterPush (Algorithm 2 lines 28-35 / Algorithm 4 lines 11-19)
// ---------------------------------------------------------------------------
void ClusterAlgorithmBase::bounded_cluster_push(double stop_factor, unsigned iterations,
                                                std::optional<std::uint64_t> resize_target) {
  driver_.set_all_active(true);  // paper: ClusterActivate(1)
  auto& cl = driver_.clustering();
  for (unsigned t = 0; t < iterations; ++t) {
    if (resize_target) driver_.resize(*resize_target, /*only_active=*/true);
    driver_.push_cluster_id(/*only_active=*/true, /*recruit_unclustered=*/true,
                            RelayPolicy::kRandom);
    driver_.collect_and_verdict(
        /*only_active=*/true, /*with_ids=*/false,
        [&](std::uint32_t leader, std::uint64_t size, std::vector<NodeId>&) {
          cluster::Driver::Verdict v;
          v.size_hint = size;
          const double prev = static_cast<double>(std::max<std::uint64_t>(
              1, cl.size_estimate(leader)));
          v.active = static_cast<double>(size) / prev >= stop_factor;
          return v;
        });
    observe("bounded_push", t, resize_target.value_or(0));
  }
  driver_.clear_candidates();
}

// ---------------------------------------------------------------------------
// UnclusteredNodesPull (Algorithm 1 line 26)
// ---------------------------------------------------------------------------
void ClusterAlgorithmBase::unclustered_pull(unsigned rounds) {
  for (unsigned t = 0; t < rounds; ++t) {
    driver_.unclustered_pull_round();
    observe("pull", t, 0);
  }
}

// ---------------------------------------------------------------------------
// ClusterShare(message) (Algorithm 1 line 5)
// ---------------------------------------------------------------------------
void ClusterAlgorithmBase::final_share() {
  driver_.share_rumor(informed_, /*collect_first=*/true);
  observe("share", 0, 0);
}

}  // namespace gossip::core
