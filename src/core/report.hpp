// Result of a broadcast (or clustering) execution: what every benchmark and
// test consumes. Collects the model-level complexity measures the paper is
// about - rounds, messages (payload and connection counts), bits, maximum
// per-round involvement (Delta) - plus per-phase round attribution.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"

namespace gossip::core {

/// Per-phase slice of the run metrics (deltas between phase marks).
struct PhaseBreakdown {
  std::string name;
  std::uint64_t rounds = 0;
  std::uint64_t payload_messages = 0;
  std::uint64_t connections = 0;
  std::uint64_t bits = 0;
};

struct BroadcastReport {
  std::uint64_t n = 0;            ///< network size (including failed nodes)
  std::uint64_t alive = 0;        ///< surviving nodes
  std::uint64_t informed = 0;     ///< informed alive nodes at termination
  bool all_informed = false;      ///< informed == alive
  std::uint64_t rounds = 0;
  sim::RunStats stats;            ///< full metering (see sim/metrics.hpp)
  /// Mean relative error of the nodes' local network-size estimates at
  /// termination, |estimate - alive| / alive averaged over alive nodes.
  /// 0 for algorithms that do not estimate n (broadcasts); the membership
  /// scenarios populate it (see membership/membership.hpp).
  double estimate_n_error = 0.0;
  /// Dispersion-tree shape of the spread, derived from the provenance
  /// tracer's first-inform records (obs/provenance.hpp). 0 when the run was
  /// not traced (e.g. run_trial without a telemetry handle).
  double spread_depth = 0.0;  ///< max informer-chain depth (seed = 0)
  double direct_share = 0.0;  ///< direct-addressed fraction of first-informs
  /// Per-phase attribution, in execution order.
  std::vector<PhaseBreakdown> phases;

  [[nodiscard]] double informed_fraction() const noexcept {
    return alive ? static_cast<double>(informed) / static_cast<double>(alive) : 0.0;
  }
  [[nodiscard]] std::uint64_t uninformed() const noexcept { return alive - informed; }
  [[nodiscard]] double payload_messages_per_node() const noexcept {
    return stats.payload_messages_per_node(n);
  }
  [[nodiscard]] double connections_per_node() const noexcept {
    return stats.connections_per_node(n);
  }
  [[nodiscard]] double bits_per_node() const noexcept { return stats.bits_per_node(n); }
  [[nodiscard]] std::uint32_t max_delta() const noexcept {
    return stats.total.max_involvement;
  }
};

}  // namespace gossip::core
