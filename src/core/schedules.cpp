#include "core/schedules.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::core {

Cluster2Schedule compute_cluster2_schedule(std::uint64_t n, const Cluster2Options& opts) {
  GOSSIP_CHECK(n >= 16);
  Cluster2Schedule s;
  const double log_n = std::max(2.0, log2d(n));

  // Grow-phase cluster threshold (paper: C' log^3 n, exponent calibrated to
  // the simulable regime - see options.hpp).
  s.threshold = std::max<std::uint64_t>(
      8, static_cast<std::uint64_t>(std::llround(opts.grow_size_factor * log_n * log_n / 4.0)));

  // Seeds from the mass relationship  seeds * threshold ~= n / log n, which
  // is what keeps only Theta(n / log n) nodes clustered (Lemma 11). The
  // floor of 16 protects tiny networks from the Poisson variance of
  // independent sampling (a 4-seed mean draws <= 1 seed a few percent of
  // the time); it is inactive for n >= 2^14.
  const double seeds = std::max(
      16.0, opts.mass_factor * static_cast<double>(n) /
                (static_cast<double>(s.threshold) * log_n));
  s.seeds = static_cast<std::uint64_t>(std::llround(seeds));
  s.seed_prob = std::min(1.0, seeds / static_cast<double>(n));

  // Doubling growth needs ~log2(threshold) recruiting iterations.
  s.grow_rounds = static_cast<unsigned>(std::ceil(std::log2(static_cast<double>(s.threshold)))) +
                  opts.extra_grow_rounds;

  s.s0 = std::max<std::uint64_t>(4, s.threshold / 2);
  // SquareClusters exit: (n log n)^(1/3) is the 2-repetition reachability
  // bound for MergeAllClusters (DESIGN.md section 4); the paper's
  // sqrt(n)/log^2 n sits below it in the simulable regime.
  s.s_target = std::max<std::uint64_t>(
      s.threshold,
      static_cast<std::uint64_t>(std::llround(std::cbrt(static_cast<double>(n) * log_n))));

  // BoundedClusterPush must take the clustered mass (seeds * threshold) to
  // Theta(n); growth per iteration is at least ~1.5x while a constant
  // fraction of the network is unclustered.
  const double mass = static_cast<double>(s.seeds) * static_cast<double>(s.threshold);
  s.bounded_push_iters =
      static_cast<unsigned>(std::ceil(std::log2(std::max(2.0, static_cast<double>(n) / mass)) /
                                      std::log2(1.5))) +
      opts.extra_bounded_push_rounds;
  s.pull_rounds = ceil_loglog2(n) + opts.extra_pull_rounds;
  return s;
}

Cluster3Schedule compute_cluster3_schedule(std::uint64_t n, std::uint64_t delta,
                                           const Cluster3Options& opts) {
  GOSSIP_CHECK_MSG(delta >= 16, "Cluster3 needs Delta >= 16 (paper: Delta = log^omega(1) n)");
  GOSSIP_CHECK_MSG(delta <= n, "Delta cannot exceed n");
  Cluster3Schedule s;
  const double log_n = std::max(2.0, log2d(n));

  s.cluster_target =
      std::max<std::uint64_t>(4, static_cast<std::uint64_t>(
                                     static_cast<double>(delta) / opts.delta_slack));

  // Grow/square phases are Cluster2's, but clusters must never outgrow the
  // Delta-scale: cap the threshold at D/4 and the squaring exit at
  // sqrt(Delta log n)/C'' (paper Algorithm 4 line 2), itself capped at D.
  s.grow = compute_cluster2_schedule(n, opts.grow);
  s.grow.threshold = std::min(s.grow.threshold,
                              std::max<std::uint64_t>(4, s.cluster_target / 4));
  // Re-derive the seed count from the (possibly capped) threshold so the
  // clustered mass stays at Theta(n / log n) - otherwise small Delta would
  // shrink the mass quadratically and starve BoundedClusterPush.
  const double seeds =
      std::max(16.0, opts.grow.mass_factor * static_cast<double>(n) /
                         (static_cast<double>(s.grow.threshold) * log_n));
  s.grow.seeds = static_cast<std::uint64_t>(std::llround(seeds));
  s.grow.seed_prob = std::min(1.0, seeds / static_cast<double>(n));
  s.grow.s0 = std::max<std::uint64_t>(4, s.grow.threshold / 2);
  const auto square_exit = static_cast<std::uint64_t>(
      std::sqrt(static_cast<double>(delta) * log_n) / opts.delta_slack);
  // Squaring with activation 1/s needs ~mass/s^2 active clusters; below ~8
  // the whole clustered mass collapses into a handful of clusters in one
  // iteration and their leaders' loads blow through Delta. Cap the exit so
  // the expected active count stays at least 8 (the loop simply skips when
  // the cap falls below s0 - the grow phase already delivers D/2-scale
  // clusters then).
  const double mass_d =
      static_cast<double>(s.grow.seeds) * static_cast<double>(s.grow.threshold);
  const auto active_floor_cap = static_cast<std::uint64_t>(std::sqrt(mass_d / 8.0));
  const std::uint64_t cap =
      std::min<std::uint64_t>(std::max<std::uint64_t>(s.grow.s0, s.cluster_target / 2),
                              std::max<std::uint64_t>(4, active_floor_cap));
  s.grow.s_target = std::min<std::uint64_t>(std::max(square_exit, s.grow.s0), cap);
  s.grow.grow_rounds =
      static_cast<unsigned>(std::ceil(std::log2(static_cast<double>(s.grow.threshold)))) +
      opts.grow.extra_grow_rounds;

  const double mass =
      static_cast<double>(s.grow.seeds) * static_cast<double>(s.grow.threshold);
  s.bounded_push_iters =
      static_cast<unsigned>(std::ceil(std::log2(std::max(2.0, static_cast<double>(n) / mass)) /
                                      std::log2(1.5))) +
      opts.extra_bounded_push_rounds;
  s.pull_rounds = ceil_loglog2(n) + opts.extra_pull_rounds;
  return s;
}

}  // namespace gossip::core
