// Shared phase machinery for Cluster1 / Cluster2 / Cluster3.
//
// The three algorithms are assembled from the same phases (paper Sections 4,
// 5, 7): seeding singleton clusters, recruiting growth (plain or
// growth-controlled), the cluster-size squaring loop, merging all clusters,
// bounded cluster push, the unclustered PULL phase and the final
// ClusterShare. Each phase method documents the exact pseudocode lines it
// implements.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cluster/driver.hpp"
#include "core/phase_observer.hpp"
#include "core/report.hpp"

namespace gossip::core {

class ClusterAlgorithmBase {
 public:
  [[nodiscard]] cluster::Driver& driver() noexcept { return driver_; }
  [[nodiscard]] const cluster::Driver& driver() const noexcept { return driver_; }
  [[nodiscard]] const std::vector<std::uint8_t>& informed() const noexcept { return informed_; }
  /// Mutable informed bitmap, for post-run repair (the recovery supervisor
  /// continues the broadcast task in place; core/recovery.hpp).
  [[nodiscard]] std::vector<std::uint8_t>& mutable_informed() noexcept { return informed_; }

 protected:
  ClusterAlgorithmBase(sim::Engine& engine, cluster::DriverOptions driver_opts,
                       PhaseObserverFn observer);

  /// Marks the initially informed nodes (the broadcast task allows one or
  /// several sources - paper Section 2). Contract: at least one alive source.
  void set_sources(std::span<const std::uint32_t> sources);

  // --- phase bookkeeping ---------------------------------------------------
  /// Records that the named phase just finished (at the current round count).
  void mark_phase(std::string name);
  /// Emits a snapshot to the observer (no-op when none installed).
  void observe(std::string_view phase, std::uint64_t step, std::uint64_t schedule_s);
  [[nodiscard]] std::uint64_t count_informed() const;
  [[nodiscard]] BroadcastReport make_report() const;

  // --- phases ---------------------------------------------------------------
  /// Samples every node independently as an active singleton-cluster leader.
  /// (Algorithm 1 line 7 / Algorithm 2 lines 8-9.)
  void seed_singletons(double prob);

  /// Cluster1's GrowInitialClusters loop (Algorithm 1 lines 8-10): `rounds`
  /// recruiting pushes by all clustered nodes; unclustered receivers adopt.
  void grow_simple(unsigned rounds);

  /// Cluster2/3's growth-controlled GrowInitialClusters (Algorithm 2 lines
  /// 10-17): recruiting push + size measurement per iteration; clusters at or
  /// above `threshold` deactivate when growth falls below `stop_factor`, and
  /// are split back to ~threshold otherwise (the continuous ClusterResize).
  void grow_controlled(std::uint64_t threshold, unsigned rounds, double stop_factor);

  /// SquareClusters (Algorithm 1 lines 11-20 / Algorithm 2 lines 18-27):
  /// dissolve below s0, then iterate resize(s) / activate(1/s) / two
  /// ClusterPUSH+ClusterMerge repetitions, advancing s via `next_s`, while
  /// s <= target. Returns the last s actually used for a resize (s0 if the
  /// loop never ran - the simulable-regime case discussed in DESIGN.md).
  std::uint64_t square_clusters(std::uint64_t s0, std::uint64_t target,
                                const std::function<std::uint64_t(std::uint64_t)>& next_s,
                                cluster::RelayPolicy policy, unsigned max_iters);

  /// MergeAllClusters (Algorithm 1 lines 21-24): `reps` repetitions of
  /// all-cluster ClusterPUSH + merge-to-smallest, then settle rounds.
  void merge_all_clusters(unsigned reps, unsigned settle_rounds);

  /// BoundedClusterPush (Algorithm 2 lines 28-35 / Algorithm 4 lines 11-19):
  /// recruiting pushes with growth measurement; clusters deactivate when
  /// growth < stop_factor. With `resize_target`, every iteration starts with
  /// ClusterResize(resize_target) (the Cluster3 variant keeping leader load
  /// below Delta).
  void bounded_cluster_push(double stop_factor, unsigned iterations,
                            std::optional<std::uint64_t> resize_target);

  /// UnclusteredNodesPull (Algorithm 1 line 26).
  void unclustered_pull(unsigned rounds);

  /// Final ClusterShare(message) (Algorithm 1 line 5).
  void final_share();

  sim::Engine& engine_;
  sim::Network& net_;
  cluster::Driver driver_;
  std::vector<std::uint8_t> informed_;
  PhaseObserverFn observer_;

 private:
  struct PhaseMark {
    std::string name;
    std::uint64_t rounds;
    std::uint64_t payload_messages;
    std::uint64_t connections;
    std::uint64_t bits;
  };
  std::vector<PhaseMark> phase_marks_;
};

}  // namespace gossip::core
