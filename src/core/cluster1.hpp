// Cluster1 (paper Algorithm 1, Theorem 9): the round-optimal gossip
// algorithm. Spreads a rumor to all nodes in O(log log n) rounds in the
// random phone call model with direct addressing. Message- and bit-
// complexity are deliberately unoptimized (a constant fraction of nodes
// transmits in most rounds); Cluster2 is the optimized variant.
//
// Pipeline: GrowInitialClusters -> SquareClusters -> MergeAllClusters ->
// UnclusteredNodesPull -> ClusterShare(message).
#pragma once

#include <cstdint>
#include <span>

#include "cluster/driver.hpp"
#include "core/cluster_algorithm_base.hpp"
#include "core/options.hpp"
#include "core/phase_observer.hpp"
#include "core/report.hpp"

namespace gossip::core {

class Cluster1 : public ClusterAlgorithmBase {
 public:
  explicit Cluster1(sim::Engine& engine, Cluster1Options options = Cluster1Options(),
                    cluster::DriverOptions driver_opts = cluster::DriverOptions(),
                    PhaseObserverFn observer = nullptr);

  /// Runs the full algorithm with node `source` holding the rumor.
  /// One-shot: construct a fresh instance (and engine) per execution.
  BroadcastReport run(std::uint32_t source);

  /// Multi-source variant (paper Section 2: the rumor may start at one node
  /// "or multiple nodes"); identical schedule, same guarantees.
  BroadcastReport run(std::span<const std::uint32_t> sources);

 private:
  Cluster1Options opts_;
};

}  // namespace gossip::core
