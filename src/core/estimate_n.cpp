#include "core/estimate_n.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/cluster1.hpp"
#include "sim/engine.hpp"

namespace gossip::core {

namespace {

/// One verification pass: nodes probe random peers with their cluster ID and
/// aggregate conflict flags within each cluster (2 + 2 + 2 rounds). Returns
/// true if no alive node holds evidence against the guess. Two kinds of
/// evidence exist: (a) structural - an unclustered node, or two nodes in
/// different clusters (the clustering is not a single cluster); (b) scale -
/// a leader counting more than 2 * guess members (the network is provably
/// larger than the guess, so the schedule cannot be trusted even if this
/// run happened to converge).
bool verify_single_cluster(cluster::Driver& driver, unsigned probes,
                           std::uint64_t guess) {
  sim::Engine& engine = driver.engine();
  sim::Network& net = engine.network();
  auto& cl = driver.clustering();
  std::vector<std::uint8_t> conflict(net.capacity(), 0);

  // Scale check: a ClusterSize exchange; oversize clusters reject the guess.
  driver.compute_sizes(/*only_active=*/false);
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (net.alive(v) && cl.is_clustered(v) && cl.size_estimate(v) > 2 * guess) {
      conflict[v] = 1;
    }
  }

  // Probe rounds: everyone pushes its cluster ID (or a deliberate conflict
  // marker if unclustered - an unclustered node is itself proof of failure).
  for (unsigned p = 0; p < probes; ++p) {
    engine.run_round(sim::make_hooks(
        [&](std::uint32_t v) -> std::optional<sim::Contact> {
          if (cl.is_unclustered(v)) {
            conflict[v] = 1;
            return std::nullopt;
          }
          return sim::Contact::push_random(sim::Message::single_id(driver.cluster_id_of(v)));
        },
        sim::no_hook,
        [&](std::uint32_t r, const sim::Message& m) {
          if (m.ids().empty()) return;
          if (cl.is_unclustered(r) || m.ids().front() != driver.cluster_id_of(r)) {
            conflict[r] = 1;
          }
        }));
  }

  // Aggregate within clusters: conflicted followers push the flag to their
  // leader; everyone pulls the aggregated verdict.
  engine.run_round(sim::make_hooks(
      [&](std::uint32_t v) -> std::optional<sim::Contact> {
        if (!conflict[v] || !cl.is_follower(v)) return std::nullopt;
        return sim::Contact::push_direct(cl.follow(v), sim::Message::count(1));
      },
      sim::no_hook,
      [&](std::uint32_t leader, const sim::Message& m) {
        if (m.has_count() && m.count_value()) conflict[leader] = 1;
      }));

  engine.run_round(sim::make_hooks(
      [&](std::uint32_t v) -> std::optional<sim::Contact> {
        if (!cl.is_follower(v)) return std::nullopt;
        return sim::Contact::pull_direct(cl.follow(v));
      },
      [&](std::uint32_t v) { return sim::Message::count(conflict[v]); },
      sim::no_hook,
      [&](std::uint32_t q, const sim::Message& m) {
        if (m.has_count() && m.count_value()) conflict[q] = 1;
      }));

  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (net.alive(v) && conflict[v]) return false;
  }
  return true;
}

}  // namespace

EstimateNResult estimate_network_size(sim::Network& net, EstimateNOptions options) {
  GOSSIP_CHECK(options.first_tower_exponent <= options.max_tower_exponent);
  EstimateNResult result;
  sim::Engine engine(net);

  for (unsigned k = options.first_tower_exponent; k <= options.max_tower_exponent; ++k) {
    // N_k = 2^(2^k), saturated to keep the schedule arithmetic finite.
    const unsigned bits = std::min(62u, 1u << k);
    const std::uint64_t guess = 1ULL << bits;
    ++result.attempts;

    // Fresh clustering attempt parameterized by the guess. The schedule
    // derives everything from `guess`, not from net.n().
    cluster::Driver driver(engine);
    Cluster1Options c1 = options.cluster1;
    {
      // Run the Cluster1 pipeline against the guessed size by constructing
      // the phases manually on this driver (Cluster1 itself derives its
      // schedule from a size parameter; we reuse its option set).
      const double log_guess = std::max(2.0, static_cast<double>(bits));
      const double seed_prob = 1.0 / (c1.seed_factor_c * log_guess);
      auto& cl = driver.clustering();
      for (std::uint32_t v = 0; v < net.n(); ++v) {
        if (!net.alive(v)) continue;
        Rng coin = net.node_rng(v, 0xe571u + k);
        if (coin.bernoulli(seed_prob)) {
          cl.make_leader(v);
          cl.set_active(v, true);
          cl.set_size_estimate(v, 1);
        }
      }
      const auto grow_rounds = static_cast<unsigned>(
          std::ceil(std::log2(c1.seed_factor_c * log_guess)) + c1.extra_grow_rounds);
      for (unsigned t = 0; t < grow_rounds; ++t) {
        driver.push_cluster_id(false, true, cluster::RelayPolicy::kSmallest);
      }
      driver.clear_candidates();
      const auto s0 = std::max<std::uint64_t>(
          4, static_cast<std::uint64_t>(std::llround(c1.min_size_factor * log_guess)));
      driver.dissolve_below(s0);
      std::uint64_t s = s0;
      const std::uint64_t target = isqrt(guess / std::max<std::uint64_t>(2, bits));
      unsigned iters = 0;
      while (s <= target && iters < c1.max_square_iters) {
        driver.clear_candidates();
        driver.resize(s, false);
        driver.activate(1.0 / static_cast<double>(s));
        for (int rep = 0; rep < 2; ++rep) {
          driver.push_cluster_id(true, false, cluster::RelayPolicy::kSmallest);
          driver.relay_candidates(cluster::RelayPolicy::kSmallest, true);
          driver.merge_from_inbox(cluster::RelayPolicy::kSmallest, true);
        }
        s = std::max(2 * s, static_cast<std::uint64_t>(
                                c1.square_kappa *
                                static_cast<double>(saturating_mul(s, s))));
        ++iters;
      }
      for (unsigned rep = 0; rep < c1.merge_all_reps; ++rep) {
        driver.clear_candidates();
        driver.push_cluster_id(false, false, cluster::RelayPolicy::kSmallest);
        driver.relay_candidates(cluster::RelayPolicy::kSmallest, false);
        driver.merge_from_inbox(cluster::RelayPolicy::kSmallest, false);
      }
      driver.settle(c1.settle_rounds);
      const unsigned pull_rounds =
          std::max(2u, static_cast<unsigned>(std::ceil(std::log2(log_guess)))) +
          c1.extra_pull_rounds;
      for (unsigned t = 0; t < pull_rounds; ++t) driver.unclustered_pull_round();
    }

    if (verify_single_cluster(driver, options.verification_pushes, guess)) {
      result.estimate = guess;
      result.success = true;
      break;
    }
  }

  result.rounds = engine.rounds();
  result.stats = engine.metrics().run();
  return result;
}

}  // namespace gossip::core
