#include "core/broadcast.hpp"

#include "common/assert.hpp"
#include "core/cluster1.hpp"
#include "core/cluster2.hpp"
#include "core/cluster3.hpp"
#include "core/cluster_push_pull.hpp"
#include "core/recovery.hpp"
#include "sim/engine.hpp"

namespace gossip::core {

namespace {
/// Runs the recovery supervisor over a finished-but-incomplete broadcast and
/// folds its work into the report: the informed counts are recounted, the
/// totals re-read from the engine (which metered the repair rounds like any
/// others), and the delta attributed as one "recovery" phase.
void maybe_recover(BroadcastReport& report, cluster::Driver& driver,
                   std::vector<std::uint8_t>& informed, sim::Engine& engine,
                   const sim::Network& net, const BroadcastOptions& options) {
  if (!options.recovery.enabled || report.all_informed) return;
  const std::uint64_t rounds_before = engine.rounds();
  const sim::RunStats before = engine.metrics().run();
  RecoverySupervisor supervisor(driver, options.recovery);
  (void)supervisor.run(informed);
  std::uint64_t informed_count = 0;
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (net.alive(v) && informed[v]) ++informed_count;
  }
  report.alive = net.alive_count();
  report.informed = informed_count;
  report.all_informed = report.informed == report.alive;
  report.rounds = engine.rounds();
  report.stats = engine.metrics().run();
  PhaseBreakdown pb;
  pb.name = "recovery";
  pb.rounds = report.rounds - rounds_before;
  pb.payload_messages = report.stats.total.payload_messages - before.total.payload_messages;
  pb.connections = report.stats.total.connections - before.total.connections;
  pb.bits = report.stats.total.bits - before.total.bits;
  report.phases.push_back(std::move(pb));
}
}  // namespace

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kCluster1: return "Cluster1";
    case Algorithm::kCluster2: return "Cluster2";
    case Algorithm::kCluster3PushPull: return "Cluster3+PushPull";
  }
  return "?";
}

BroadcastReport broadcast(sim::Network& net, const BroadcastOptions& options) {
  sim::Engine engine(net);
  engine.set_fault_model(options.fault_model);
  cluster::DriverOptions driver_opts;
  driver_opts.validate = options.validate;
  driver_opts.threads = options.threads;
  driver_opts.shard_size = options.shard_size;
  driver_opts.delivery_buckets = options.delivery_buckets;
  driver_opts.telemetry = options.telemetry;

  switch (options.algorithm) {
    case Algorithm::kCluster1: {
      Cluster1 algo(engine, options.cluster1, driver_opts, options.observer);
      BroadcastReport report = algo.run(options.source);
      maybe_recover(report, algo.driver(), algo.mutable_informed(), engine, net,
                    options);
      return report;
    }
    case Algorithm::kCluster2: {
      Cluster2 algo(engine, options.cluster2, driver_opts, options.observer);
      BroadcastReport report = algo.run(options.source);
      maybe_recover(report, algo.driver(), algo.mutable_informed(), engine, net,
                    options);
      return report;
    }
    case Algorithm::kCluster3PushPull: {
      Cluster3 builder(engine, options.delta, options.cluster3, driver_opts,
                       options.observer);
      BroadcastReport clustering_report = builder.run();
      ClusterPushPull spread(builder.driver(), options.push_pull);
      BroadcastReport spread_report =
          spread.run(options.source, builder.cluster_target(), /*reset_metrics=*/false);
      // Combined end-to-end accounting (Theorem 4): the engine metered both
      // stages; report total rounds and attribute phases from both reports.
      spread_report.rounds = engine.rounds();
      spread_report.phases.insert(spread_report.phases.begin(),
                                  clustering_report.phases.begin(),
                                  clustering_report.phases.end());
      maybe_recover(spread_report, builder.driver(), spread.mutable_informed(),
                    engine, net, options);
      return spread_report;
    }
  }
  GOSSIP_CHECK_MSG(false, "unknown algorithm");
  return {};
}

}  // namespace gossip::core
