#include "core/broadcast.hpp"

#include "common/assert.hpp"
#include "core/cluster1.hpp"
#include "core/cluster2.hpp"
#include "core/cluster3.hpp"
#include "core/cluster_push_pull.hpp"
#include "sim/engine.hpp"

namespace gossip::core {

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kCluster1: return "Cluster1";
    case Algorithm::kCluster2: return "Cluster2";
    case Algorithm::kCluster3PushPull: return "Cluster3+PushPull";
  }
  return "?";
}

BroadcastReport broadcast(sim::Network& net, const BroadcastOptions& options) {
  sim::Engine engine(net);
  engine.set_fault_model(options.fault_model);
  cluster::DriverOptions driver_opts;
  driver_opts.validate = options.validate;
  driver_opts.threads = options.threads;
  driver_opts.shard_size = options.shard_size;
  driver_opts.delivery_buckets = options.delivery_buckets;
  driver_opts.telemetry = options.telemetry;

  switch (options.algorithm) {
    case Algorithm::kCluster1: {
      Cluster1 algo(engine, options.cluster1, driver_opts, options.observer);
      return algo.run(options.source);
    }
    case Algorithm::kCluster2: {
      Cluster2 algo(engine, options.cluster2, driver_opts, options.observer);
      return algo.run(options.source);
    }
    case Algorithm::kCluster3PushPull: {
      Cluster3 builder(engine, options.delta, options.cluster3, driver_opts,
                       options.observer);
      BroadcastReport clustering_report = builder.run();
      ClusterPushPull spread(builder.driver(), options.push_pull);
      BroadcastReport spread_report =
          spread.run(options.source, builder.cluster_target(), /*reset_metrics=*/false);
      // Combined end-to-end accounting (Theorem 4): the engine metered both
      // stages; report total rounds and attribute phases from both reports.
      spread_report.rounds = engine.rounds();
      spread_report.phases.insert(spread_report.phases.begin(),
                                  clustering_report.phases.begin(),
                                  clustering_report.phases.end());
      return spread_report;
    }
  }
  GOSSIP_CHECK_MSG(false, "unknown algorithm");
  return {};
}

}  // namespace gossip::core
