#include "core/cluster_push_pull.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::core {

using sim::Contact;
using sim::Message;
using sim::make_hooks;
using sim::no_hook;

ClusterPushPull::ClusterPushPull(cluster::Driver& driver, ClusterPushPullOptions options)
    : driver_(driver),
      engine_(driver.engine()),
      net_(driver.network()),
      opts_(options),
      informed_(net_.capacity(), 0),
      pushed_(net_.capacity(), 0),
      need_relay_(net_.capacity(), 0) {}

// Members of newly informed clusters push the rumor to a uniformly random
// node - each node pushes exactly once over the whole execution, which is
// what keeps the total message count linear.
void ClusterPushPull::push_round() {
  engine_.run_round(make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (!informed_[v] || pushed_[v]) return std::nullopt;
        pushed_[v] = 1;
        return Contact::push_random(Message::rumor());
      },
      no_hook,
      [&](std::uint32_t r, const Message& m) {
        if (m.has_rumor() && !informed_[r]) {
          informed_[r] = 1;
          need_relay_[r] = 1;
        }
      }));
}

// First-time receivers relay the rumor to their own leader ("all messages
// received ... get then relayed to their cluster leader").
void ClusterPushPull::relay_round() {
  auto& cl = driver_.clustering();
  engine_.run_round(make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (!need_relay_[v] || !cl.is_follower(v)) {
          need_relay_[v] = 0;
          return std::nullopt;
        }
        need_relay_[v] = 0;
        return Contact::push_direct(cl.follow(v), Message::rumor());
      },
      no_hook,
      [&](std::uint32_t r, const Message& m) {
        if (m.has_rumor()) informed_[r] = 1;
      }));
}

// Uninformed followers poll their leader; uninformed leaders (and, in the
// final phase, every uninformed node) pull a uniformly random node.
void ClusterPushPull::poll_round(bool uninformed_pull_random) {
  auto& cl = driver_.clustering();
  engine_.run_round(make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (informed_[v]) return std::nullopt;
        if (uninformed_pull_random || !cl.is_follower(v)) return Contact::pull_random();
        return Contact::pull_direct(cl.follow(v));
      },
      [&](std::uint32_t v) {
        return informed_[v] ? Message::rumor() : Message::empty();
      },
      no_hook,
      [&](std::uint32_t q, const Message& m) {
        if (m.has_rumor() && !informed_[q]) {
          informed_[q] = 1;
          // A pull from a random node may inform a follower whose own leader
          // is still uninformed: relay next round. Pulls from the own leader
          // make the flag a no-op (the leader already has the rumor).
          need_relay_[q] = 1;
        }
      }));
}

BroadcastReport ClusterPushPull::run(std::uint32_t source, std::uint64_t cluster_size_hint,
                                     bool reset_metrics) {
  GOSSIP_CHECK(source < net_.n());
  if (reset_metrics) engine_.metrics().reset();
  const std::uint64_t start_rounds = engine_.rounds();
  informed_[source] = 1;

  // Line 2: ClusterShare(message) - the source's cluster gets informed.
  driver_.share_rumor(informed_, /*collect_first=*/true);

  // Line 3-4: Theta(log n / log Delta) spread iterations of
  // ClusterPUSH + relay + ClusterShare-poll (3 rounds each).
  const double d = std::max(2.0, static_cast<double>(cluster_size_hint));
  const auto spread_iters =
      static_cast<unsigned>(std::ceil(log2d(net_.n()) / std::log2(d))) +
      opts_.extra_spread_iters;
  for (unsigned t = 0; t < spread_iters; ++t) {
    push_round();
    relay_round();
    poll_round(/*uninformed_pull_random=*/false);
  }

  // Lines 5-6: remaining uninformed nodes PULL from random nodes, then the
  // rumor is shared within each cluster (relay + poll).
  for (unsigned rep = 0; rep < std::max(1u, opts_.final_pull_reps); ++rep) {
    poll_round(/*uninformed_pull_random=*/true);
    relay_round();
    poll_round(/*uninformed_pull_random=*/false);
  }

  BroadcastReport r;
  r.n = net_.n();
  r.alive = net_.alive_count();
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (net_.alive(v) && informed_[v]) ++r.informed;
  }
  r.all_informed = r.informed == r.alive;
  r.rounds = engine_.rounds() - (reset_metrics ? 0 : start_rounds);
  r.stats = engine_.metrics().run();
  PhaseBreakdown pb;
  pb.name = "cluster_push_pull";
  pb.rounds = engine_.rounds() - start_rounds;
  r.phases.push_back(std::move(pb));
  return r;
}

}  // namespace gossip::core
