// Minimal undirected graph with the BFS machinery the lower-bound analysis
// needs: connectivity, eccentricities, exact diameters for small graphs and
// certified diameter bounds (double-sweep lower bound, 2*ecc upper bound)
// for large ones.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace gossip::analysis {

constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

class Graph {
 public:
  explicit Graph(std::uint32_t n);

  void add_edge(std::uint32_t u, std::uint32_t v);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(std::uint32_t v) const {
    return adj_[v];
  }
  [[nodiscard]] std::uint32_t max_degree() const;

  /// BFS distances from `src` (kUnreachable where disconnected).
  [[nodiscard]] std::vector<std::uint32_t> bfs_distances(std::uint32_t src) const;

  [[nodiscard]] bool connected() const;

  /// Max finite BFS distance from src; kUnreachable if the graph is
  /// disconnected from src.
  [[nodiscard]] std::uint32_t eccentricity(std::uint32_t src) const;

  /// Exact diameter via all-sources BFS. Intended for n <= ~8192.
  /// kUnreachable if disconnected.
  [[nodiscard]] std::uint32_t diameter_exact() const;

  /// Certified diameter bounds from `sweeps` double-sweep probes:
  /// lower = max eccentricity observed, upper = 2 * min eccentricity
  /// observed (diam <= 2 rad). kUnreachable/kUnreachable if disconnected.
  struct Bounds {
    std::uint32_t lower = 0;
    std::uint32_t upper = 0;
  };
  [[nodiscard]] Bounds diameter_bounds(unsigned sweeps, Rng& rng) const;

 private:
  std::uint32_t n_;
  std::uint64_t num_edges_ = 0;
  std::vector<std::vector<std::uint32_t>> adj_;
};

}  // namespace gossip::analysis
