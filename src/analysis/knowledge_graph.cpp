#include "analysis/knowledge_graph.hpp"

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::analysis {

Graph union_contact_graphs(std::uint32_t n, unsigned t, Rng& rng) {
  GOSSIP_CHECK(n >= 2);
  Graph g(n);
  for (unsigned round = 0; round < t; ++round) {
    for (std::uint32_t v = 0; v < n; ++v) {
      std::uint32_t u = static_cast<std::uint32_t>(rng.uniform_below(n - 1));
      if (u >= v) ++u;
      g.add_edge(v, u);
    }
  }
  return g;
}

FeasibilityResult check_feasibility(std::uint32_t n, unsigned t, Rng& rng,
                                    std::uint32_t exact_diameter_cutoff) {
  FeasibilityResult res;
  res.t = t;
  const Graph g = union_contact_graphs(n, t, rng);
  res.max_degree = g.max_degree();

  // 2^t, saturated (t >= 32 always feasible for connected graphs of n < 2^32).
  const std::uint64_t reach = t >= 63 ? ~0ULL : (1ULL << t);

  if (!g.connected()) {
    res.connected = false;
    res.feasible = false;  // some node never interacts with the rest at all
    res.diameter_lower = kUnreachable;
    res.diameter_upper = kUnreachable;
    return res;
  }
  res.connected = true;

  if (n <= exact_diameter_cutoff) {
    const std::uint32_t diam = g.diameter_exact();
    res.diameter_lower = res.diameter_upper = diam;
    res.feasible = diam <= reach;
    return res;
  }

  Rng sweep_rng = rng.fork(0xd1a77);
  const Graph::Bounds b = g.diameter_bounds(/*sweeps=*/8, sweep_rng);
  res.diameter_lower = b.lower;
  res.diameter_upper = b.upper;
  if (b.upper <= reach) {
    res.feasible = true;
  } else if (b.lower > reach) {
    res.feasible = false;
  } else {
    res.feasible = true;  // conservative for a lower-bound experiment
    res.uncertain = true;
  }
  return res;
}

unsigned min_feasible_rounds(std::uint32_t n, std::uint64_t seed, unsigned t_max) {
  for (unsigned t = 1; t <= t_max; ++t) {
    // Fresh generator per t keeps G_1..G_t a nested family in distribution;
    // deterministic in (seed, t).
    Rng rng(mix64(seed ^ (0x10e27b0c9dULL + t * 0x9e3779b97f4a7c15ULL)));
    Rng sample = rng.fork(t);
    if (check_feasibility(n, t, sample).feasible) return t;
  }
  return t_max;
}

}  // namespace gossip::analysis
