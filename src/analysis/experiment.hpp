// Seed-sweep aggregation used by every benchmark: collect BroadcastReports
// across seeds and expose mean/min/max statistics per complexity measure.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "core/report.hpp"

namespace gossip::analysis {

/// Accumulates the complexity measures of repeated runs.
struct ReportAggregate {
  RunningStat rounds;
  RunningStat payload_per_node;
  RunningStat connections_per_node;
  RunningStat bits_per_node;
  RunningStat total_bits;
  RunningStat max_delta;
  RunningStat informed_fraction;
  RunningStat uninformed;
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;  ///< runs that did not inform everyone

  void add(const core::BroadcastReport& r);
};

}  // namespace gossip::analysis
