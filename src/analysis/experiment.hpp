// Seed-sweep aggregation used by every benchmark and the scenario runner:
// collect BroadcastReports across trials and expose mean/min/max/quantile
// statistics per complexity measure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "core/report.hpp"

namespace gossip::analysis {

/// One complexity measure across trials: streaming moments (RunningStat)
/// plus the raw per-trial samples, which is what makes quantiles and a
/// bit-deterministic merge possible. merge() REPLAYS the other side's
/// samples through add() in their original order, so merging k partial
/// aggregates (split anywhere, merged left to right) is bit-identical to
/// one serial pass - the contract the parallel TrialRunner relies on.
class MetricStat {
 public:
  void add(double x) {
    stat_.add(x);
    samples_.push_back(x);
  }

  void merge(const MetricStat& other) {
    // Index-based so self-merge is safe: add() may reallocate samples_, but
    // the first `count` elements survive and operator[] re-reads the data
    // pointer each iteration (a range-for here would be UB on &other == this).
    const std::size_t count = other.samples_.size();
    for (std::size_t i = 0; i < count; ++i) add(other.samples_[i]);
  }

  [[nodiscard]] std::size_t count() const noexcept { return stat_.count(); }
  [[nodiscard]] double mean() const noexcept { return stat_.mean(); }
  [[nodiscard]] double variance() const noexcept { return stat_.variance(); }
  [[nodiscard]] double stddev() const noexcept { return stat_.stddev(); }
  [[nodiscard]] double min() const noexcept { return stat_.min(); }
  [[nodiscard]] double max() const noexcept { return stat_.max(); }
  [[nodiscard]] double sum() const noexcept { return stat_.sum(); }

  /// Linear-interpolated quantile over the collected samples; 0 when empty.
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    return gossip::quantile(samples_, q);
  }
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  /// Batch variant for report emission: sorts the samples ONCE and reads
  /// every requested quantile off the sorted copy (quantile() above copies
  /// and sorts per call, which adds up at 8 metrics x several quantiles).
  [[nodiscard]] std::vector<double> quantiles(std::span<const double> qs) const {
    std::vector<double> out(qs.size(), 0.0);
    if (samples_.empty()) return out;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      out[i] = gossip::quantile_sorted(sorted, qs[i]);
    }
    return out;
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  RunningStat stat_;
  std::vector<double> samples_;
};

/// Accumulates the complexity measures of repeated runs.
struct ReportAggregate {
  MetricStat rounds;
  MetricStat payload_per_node;
  MetricStat connections_per_node;
  MetricStat bits_per_node;
  MetricStat total_bits;
  MetricStat max_delta;
  MetricStat informed_fraction;
  MetricStat uninformed;
  MetricStat estimate_error;  ///< BroadcastReport::estimate_n_error
  MetricStat spread_depth;    ///< BroadcastReport::spread_depth
  MetricStat direct_share;    ///< BroadcastReport::direct_share
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;  ///< runs that did not inform everyone

  void add(const core::BroadcastReport& r);

  /// Appends `other`'s trials after this aggregate's, metric by metric, in
  /// `other`'s original order. Deterministic: any contiguous split of a
  /// report sequence, aggregated partially and merged in sequence order,
  /// yields an aggregate bit-identical to serial add() of every report.
  void merge(const ReportAggregate& other);
};

}  // namespace gossip::analysis
