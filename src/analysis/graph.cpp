#include "analysis/graph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gossip::analysis {

Graph::Graph(std::uint32_t n) : n_(n), adj_(n) { GOSSIP_CHECK(n >= 1); }

void Graph::add_edge(std::uint32_t u, std::uint32_t v) {
  GOSSIP_CHECK(u < n_ && v < n_);
  if (u == v) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

std::uint32_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& a : adj_) best = std::max(best, a.size());
  return static_cast<std::uint32_t>(best);
}

std::vector<std::uint32_t> Graph::bfs_distances(std::uint32_t src) const {
  GOSSIP_CHECK(src < n_);
  std::vector<std::uint32_t> dist(n_, kUnreachable);
  std::vector<std::uint32_t> frontier{src};
  dist[src] = 0;
  std::uint32_t d = 0;
  std::vector<std::uint32_t> next;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (std::uint32_t u : frontier) {
      for (std::uint32_t w : adj_[u]) {
        if (dist[w] == kUnreachable) {
          dist[w] = d;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool Graph::connected() const {
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t Graph::eccentricity(std::uint32_t src) const {
  const auto dist = bfs_distances(src);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t Graph::diameter_exact() const {
  std::uint32_t diam = 0;
  for (std::uint32_t v = 0; v < n_; ++v) {
    const std::uint32_t ecc = eccentricity(v);
    if (ecc == kUnreachable) return kUnreachable;
    diam = std::max(diam, ecc);
  }
  return diam;
}

Graph::Bounds Graph::diameter_bounds(unsigned sweeps, Rng& rng) const {
  Bounds b;
  std::uint32_t min_ecc = kUnreachable;
  std::uint32_t start = static_cast<std::uint32_t>(rng.uniform_below(n_));
  for (unsigned i = 0; i < std::max(1u, sweeps); ++i) {
    const auto dist = bfs_distances(start);
    std::uint32_t ecc = 0;
    std::uint32_t farthest = start;
    for (std::uint32_t v = 0; v < n_; ++v) {
      if (dist[v] == kUnreachable) return Bounds{kUnreachable, kUnreachable};
      if (dist[v] > ecc) {
        ecc = dist[v];
        farthest = v;
      }
    }
    b.lower = std::max(b.lower, ecc);
    min_ecc = std::min(min_ecc, ecc);
    // Double-sweep: continue from the farthest vertex found (known to give
    // tight diameter lower bounds on random graphs).
    start = farthest;
  }
  b.upper = min_ecc == kUnreachable ? kUnreachable : 2 * min_ecc;
  return b;
}

}  // namespace gossip::analysis
