// The Omega(log log n) lower-bound machinery (paper Section 6, Theorem 3 and
// Lemma 14), made computational.
//
// Lemma 14: pre-sample the random contacts - G_t connects every node to the
// uniform contact it would draw in round t - and the knowledge graph after T
// rounds satisfies K_T <= (G_1 u ... u G_T)^(2^T), *regardless* of the
// algorithm, even with unbounded messages, non-oblivious behaviour and
// unbounded fan-out. Broadcasting from one node within T rounds therefore
// requires K' = G_1 u ... u G_T (a random graph where every node draws T
// uniform neighbours) to have diameter <= 2^T. Checking that condition
// yields, per (n, seed), the information-theoretic minimum round count that
// *no* algorithm can beat - the quantity Theorem 3 lower-bounds by
// ~log log n.
#pragma once

#include <cstdint>

#include "analysis/graph.hpp"
#include "common/rng.hpp"

namespace gossip::analysis {

/// Builds K' = union of G_1..G_T: every node draws T uniform random contacts
/// (self-loops excluded), edges undirected.
[[nodiscard]] Graph union_contact_graphs(std::uint32_t n, unsigned t, Rng& rng);

struct FeasibilityResult {
  unsigned t = 0;
  bool connected = false;
  /// Certified diameter bounds of K' (exact when they coincide).
  std::uint32_t diameter_lower = 0;
  std::uint32_t diameter_upper = 0;
  std::uint32_t max_degree = 0;
  /// True iff diameter(K') <= 2^t is certain; false iff certainly not.
  bool feasible = false;
  /// Set when the bounds straddle 2^t and n was too large for an exact
  /// diameter; the caller should treat the result as feasible (conservative
  /// for a lower-bound experiment).
  bool uncertain = false;
};

/// Checks Lemma 14's necessary condition for T-round broadcast.
/// Uses the exact diameter for n <= exact_diameter_cutoff, certified bounds
/// plus extra sweeps otherwise.
[[nodiscard]] FeasibilityResult check_feasibility(std::uint32_t n, unsigned t, Rng& rng,
                                                  std::uint32_t exact_diameter_cutoff = 8192);

/// Smallest T whose feasibility check passes (searching T = 1, 2, ...).
/// Every algorithm needs at least this many rounds on this random-contact
/// sample; Theorem 3 says the answer concentrates near log log n.
[[nodiscard]] unsigned min_feasible_rounds(std::uint32_t n, std::uint64_t seed,
                                           unsigned t_max = 16);

}  // namespace gossip::analysis
