#include "analysis/experiment.hpp"

namespace gossip::analysis {

void ReportAggregate::add(const core::BroadcastReport& r) {
  ++runs;
  if (!r.all_informed) ++failures;
  rounds.add(static_cast<double>(r.rounds));
  payload_per_node.add(r.payload_messages_per_node());
  connections_per_node.add(r.connections_per_node());
  bits_per_node.add(r.bits_per_node());
  total_bits.add(static_cast<double>(r.stats.total.bits));
  max_delta.add(static_cast<double>(r.max_delta()));
  informed_fraction.add(r.informed_fraction());
  uninformed.add(static_cast<double>(r.uninformed()));
  estimate_error.add(r.estimate_n_error);
  spread_depth.add(r.spread_depth);
  direct_share.add(r.direct_share);
}

void ReportAggregate::merge(const ReportAggregate& other) {
  runs += other.runs;
  failures += other.failures;
  rounds.merge(other.rounds);
  payload_per_node.merge(other.payload_per_node);
  connections_per_node.merge(other.connections_per_node);
  bits_per_node.merge(other.bits_per_node);
  total_bits.merge(other.total_bits);
  max_delta.merge(other.max_delta);
  informed_fraction.merge(other.informed_fraction);
  uninformed.merge(other.uninformed);
  estimate_error.merge(other.estimate_error);
  spread_depth.merge(other.spread_depth);
  direct_share.merge(other.direct_share);
}

}  // namespace gossip::analysis
