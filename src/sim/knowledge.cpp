#include "sim/knowledge.hpp"

#include <algorithm>
#include <iterator>

#include "common/assert.hpp"

namespace gossip::sim {

KnowledgeTracker::KnowledgeTracker(std::uint32_t n)
    : inline_(static_cast<std::size_t>(n) * kInlineSlots, 0), counts_(n, 0) {}

void KnowledgeTracker::learn(std::uint32_t node, NodeId id, NodeId own_id) {
  GOSSIP_CHECK(node < counts_.size());
  if (id.is_unclustered() || id == own_id) return;
  const std::uint64_t raw = id.raw();
  const std::size_t base = static_cast<std::size_t>(node) * kInlineSlots;
  const std::uint8_t count = counts_[node];

  if (count != kSpilled) {
    for (std::uint8_t i = 0; i < count; ++i) {
      if (inline_[base + i] == raw) return;
    }
    if (count < kInlineSlots) {
      inline_[base + count] = raw;
      counts_[node] = count + 1;
      ++total_;
      return;
    }
    // Spill: move the inline slots (plus the new ID) into a sorted vector;
    // the first inline slot becomes the spill index from now on.
    const std::size_t idx = spills_.size();
    spills_.emplace_back();
    std::vector<std::uint64_t>& spill = spills_.back();
    spill.reserve(kInlineSlots * 2);
    spill.assign(inline_.begin() + static_cast<std::ptrdiff_t>(base),
                 inline_.begin() + static_cast<std::ptrdiff_t>(base + kInlineSlots));
    spill.push_back(raw);
    std::sort(spill.begin(), spill.end());
    counts_[node] = kSpilled;
    inline_[base] = idx;
    ++total_;
    return;
  }

  std::vector<std::uint64_t>& spill = spills_[spill_index(node)];
  const auto it = std::lower_bound(spill.begin(), spill.end(), raw);
  if (it != spill.end() && *it == raw) return;
  const std::size_t pos = static_cast<std::size_t>(it - spill.begin());
  if (spill.size() == spill.capacity()) {
    // Grow by ~25% instead of the allocator's usual doubling: learned-ID
    // sets are long-lived and counted against experiment memory, so slack
    // matters more than the (already O(k)-per-insert) copy.
    spill.reserve(spill.capacity() + spill.capacity() / 4 + 1);
  }
  spill.insert(spill.begin() + static_cast<std::ptrdiff_t>(pos), raw);
  ++total_;
}

void KnowledgeTracker::learn_all(std::uint32_t node, std::span<const NodeId> ids,
                                 NodeId own_id) {
  GOSSIP_CHECK(node < counts_.size());
  // Small batches: the per-ID path's inline scan / single binary search is
  // already cheaper than a sort. The threshold only trades speed; the
  // resulting set is identical either way.
  if (ids.size() <= kInlineSlots * 2) {
    for (const NodeId id : ids) learn(node, id, own_id);
    return;
  }

  // Normalise the batch: drop self/sentinel entries, sort, dedup.
  batch_scratch_.clear();
  for (const NodeId id : ids) {
    if (id.is_unclustered() || id == own_id) continue;
    batch_scratch_.push_back(id.raw());
  }
  std::sort(batch_scratch_.begin(), batch_scratch_.end());
  batch_scratch_.erase(std::unique(batch_scratch_.begin(), batch_scratch_.end()),
                       batch_scratch_.end());
  if (batch_scratch_.empty()) return;

  const std::size_t base = static_cast<std::size_t>(node) * kInlineSlots;
  const std::uint8_t count = counts_[node];
  if (count != kSpilled) {
    // Fold the inline slots into the batch; if the union still fits inline
    // the batch was tiny after dedup, otherwise spill once with the whole
    // union (exactly the state the equivalent learn() loop converges to).
    const std::size_t before = count;
    for (std::uint8_t i = 0; i < count; ++i) batch_scratch_.push_back(inline_[base + i]);
    std::sort(batch_scratch_.begin(), batch_scratch_.end());
    batch_scratch_.erase(std::unique(batch_scratch_.begin(), batch_scratch_.end()),
                         batch_scratch_.end());
    if (batch_scratch_.size() <= kInlineSlots) {
      for (std::size_t i = 0; i < batch_scratch_.size(); ++i) {
        inline_[base + i] = batch_scratch_[i];
      }
      counts_[node] = static_cast<std::uint8_t>(batch_scratch_.size());
    } else {
      const std::size_t idx = spills_.size();
      spills_.emplace_back(batch_scratch_.begin(), batch_scratch_.end());
      counts_[node] = kSpilled;
      inline_[base] = idx;
    }
    total_ += batch_scratch_.size() - before;
    return;
  }

  std::vector<std::uint64_t>& spill = spills_[spill_index(node)];
  union_scratch_.clear();
  union_scratch_.reserve(spill.size() + batch_scratch_.size());
  std::set_union(spill.begin(), spill.end(), batch_scratch_.begin(),
                 batch_scratch_.end(), std::back_inserter(union_scratch_));
  total_ += union_scratch_.size() - spill.size();
  spill.assign(union_scratch_.begin(), union_scratch_.end());
}

bool KnowledgeTracker::knows(std::uint32_t node, NodeId id, NodeId own_id) const {
  GOSSIP_CHECK(node < counts_.size());
  if (id == own_id) return true;
  if (id.is_unclustered()) return false;
  const std::uint64_t raw = id.raw();
  const std::size_t base = static_cast<std::size_t>(node) * kInlineSlots;
  const std::uint8_t count = counts_[node];
  if (count != kSpilled) {
    for (std::uint8_t i = 0; i < count; ++i) {
      if (inline_[base + i] == raw) return true;
    }
    return false;
  }
  const std::vector<std::uint64_t>& spill = spills_[spill_index(node)];
  return std::binary_search(spill.begin(), spill.end(), raw);
}

std::size_t KnowledgeTracker::known_count(std::uint32_t node) const {
  GOSSIP_CHECK(node < counts_.size());
  const std::uint8_t count = counts_[node];
  if (count != kSpilled) return count;
  return spills_[spill_index(node)].size();
}

std::vector<NodeId> KnowledgeTracker::known_ids(std::uint32_t node) const {
  GOSSIP_CHECK(node < counts_.size());
  std::vector<NodeId> out;
  const std::size_t base = static_cast<std::size_t>(node) * kInlineSlots;
  const std::uint8_t count = counts_[node];
  if (count != kSpilled) {
    out.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) out.emplace_back(inline_[base + i]);
    std::sort(out.begin(), out.end());
  } else {
    const std::vector<std::uint64_t>& spill = spills_[spill_index(node)];
    out.reserve(spill.size());
    for (const std::uint64_t raw : spill) out.emplace_back(raw);
  }
  return out;
}

std::size_t KnowledgeTracker::memory_bytes() const noexcept {
  std::size_t bytes = inline_.capacity() * sizeof(std::uint64_t) +
                      counts_.capacity() * sizeof(std::uint8_t) +
                      spills_.capacity() * sizeof(std::vector<std::uint64_t>);
  for (const std::vector<std::uint64_t>& spill : spills_) {
    bytes += spill.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace gossip::sim
