#include "sim/knowledge.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gossip::sim {

KnowledgeTracker::KnowledgeTracker(std::uint32_t n)
    : inline_(static_cast<std::size_t>(n) * kInlineSlots, 0), counts_(n, 0) {}

void KnowledgeTracker::learn(std::uint32_t node, NodeId id, NodeId own_id) {
  GOSSIP_CHECK(node < counts_.size());
  if (id.is_unclustered() || id == own_id) return;
  const std::uint64_t raw = id.raw();
  const std::size_t base = static_cast<std::size_t>(node) * kInlineSlots;
  const std::uint8_t count = counts_[node];

  if (count != kSpilled) {
    for (std::uint8_t i = 0; i < count; ++i) {
      if (inline_[base + i] == raw) return;
    }
    if (count < kInlineSlots) {
      inline_[base + count] = raw;
      counts_[node] = count + 1;
      ++total_;
      return;
    }
    // Spill: move the inline slots (plus the new ID) into a sorted vector;
    // the first inline slot becomes the spill index from now on.
    const std::size_t idx = spills_.size();
    spills_.emplace_back();
    std::vector<std::uint64_t>& spill = spills_.back();
    spill.reserve(kInlineSlots * 2);
    spill.assign(inline_.begin() + static_cast<std::ptrdiff_t>(base),
                 inline_.begin() + static_cast<std::ptrdiff_t>(base + kInlineSlots));
    spill.push_back(raw);
    std::sort(spill.begin(), spill.end());
    counts_[node] = kSpilled;
    inline_[base] = idx;
    ++total_;
    return;
  }

  std::vector<std::uint64_t>& spill = spills_[spill_index(node)];
  const auto it = std::lower_bound(spill.begin(), spill.end(), raw);
  if (it != spill.end() && *it == raw) return;
  const std::size_t pos = static_cast<std::size_t>(it - spill.begin());
  if (spill.size() == spill.capacity()) {
    // Grow by ~25% instead of the allocator's usual doubling: learned-ID
    // sets are long-lived and counted against experiment memory, so slack
    // matters more than the (already O(k)-per-insert) copy.
    spill.reserve(spill.capacity() + spill.capacity() / 4 + 1);
  }
  spill.insert(spill.begin() + static_cast<std::ptrdiff_t>(pos), raw);
  ++total_;
}

bool KnowledgeTracker::knows(std::uint32_t node, NodeId id, NodeId own_id) const {
  GOSSIP_CHECK(node < counts_.size());
  if (id == own_id) return true;
  if (id.is_unclustered()) return false;
  const std::uint64_t raw = id.raw();
  const std::size_t base = static_cast<std::size_t>(node) * kInlineSlots;
  const std::uint8_t count = counts_[node];
  if (count != kSpilled) {
    for (std::uint8_t i = 0; i < count; ++i) {
      if (inline_[base + i] == raw) return true;
    }
    return false;
  }
  const std::vector<std::uint64_t>& spill = spills_[spill_index(node)];
  return std::binary_search(spill.begin(), spill.end(), raw);
}

std::size_t KnowledgeTracker::known_count(std::uint32_t node) const {
  GOSSIP_CHECK(node < counts_.size());
  const std::uint8_t count = counts_[node];
  if (count != kSpilled) return count;
  return spills_[spill_index(node)].size();
}

std::vector<NodeId> KnowledgeTracker::known_ids(std::uint32_t node) const {
  GOSSIP_CHECK(node < counts_.size());
  std::vector<NodeId> out;
  const std::size_t base = static_cast<std::size_t>(node) * kInlineSlots;
  const std::uint8_t count = counts_[node];
  if (count != kSpilled) {
    out.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) out.emplace_back(inline_[base + i]);
    std::sort(out.begin(), out.end());
  } else {
    const std::vector<std::uint64_t>& spill = spills_[spill_index(node)];
    out.reserve(spill.size());
    for (const std::uint64_t raw : spill) out.emplace_back(raw);
  }
  return out;
}

std::size_t KnowledgeTracker::memory_bytes() const noexcept {
  std::size_t bytes = inline_.capacity() * sizeof(std::uint64_t) +
                      counts_.capacity() * sizeof(std::uint8_t) +
                      spills_.capacity() * sizeof(std::vector<std::uint64_t>);
  for (const std::vector<std::uint64_t>& spill : spills_) {
    bytes += spill.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace gossip::sim
