#include "sim/knowledge.hpp"

#include "common/assert.hpp"

namespace gossip::sim {

KnowledgeTracker::KnowledgeTracker(std::uint32_t n) : known_(n) {}

void KnowledgeTracker::learn(std::uint32_t node, NodeId id, NodeId own_id) {
  GOSSIP_CHECK(node < known_.size());
  if (id.is_unclustered() || id == own_id) return;
  if (known_[node].insert(id.raw()).second) ++total_;
}

bool KnowledgeTracker::knows(std::uint32_t node, NodeId id, NodeId own_id) const {
  GOSSIP_CHECK(node < known_.size());
  if (id == own_id) return true;
  if (id.is_unclustered()) return false;
  return known_[node].contains(id.raw());
}

std::size_t KnowledgeTracker::known_count(std::uint32_t node) const {
  GOSSIP_CHECK(node < known_.size());
  return known_[node].size();
}

}  // namespace gossip::sim
