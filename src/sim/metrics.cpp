#include "sim/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gossip::sim {

void RoundStats::accumulate(const RoundStats& r) noexcept {
  pushes += r.pushes;
  pull_requests += r.pull_requests;
  pull_responses += r.pull_responses;
  payload_messages += r.payload_messages;
  connections += r.connections;
  bits += r.bits;
  initiators += r.initiators;
  max_involvement = std::max(max_involvement, r.max_involvement);
}

MetricsCollector::MetricsCollector(std::uint32_t n, bool keep_history)
    : n_(n), keep_history_(keep_history), involvement_(n, 0) {}

void MetricsCollector::begin_round() {
  GOSSIP_CHECK_MSG(!in_round_, "begin_round called twice");
  in_round_ = true;
  round_ = RoundStats{};
}

void MetricsCollector::end_round() {
  GOSSIP_CHECK_MSG(in_round_, "end_round without begin_round");
  in_round_ = false;
  ++run_.rounds;
  run_.total.accumulate(round_);
  if (keep_history_) run_.per_round.push_back(round_);
  for (std::uint32_t node : touched_) involvement_[node] = 0;
  touched_.clear();
}

void MetricsCollector::reset() {
  GOSSIP_CHECK(!in_round_);
  run_ = RunStats{};
  for (std::uint32_t node : touched_) involvement_[node] = 0;
  touched_.clear();
}

}  // namespace gossip::sim
