#include "sim/engine.hpp"

#include <numeric>

#include "common/assert.hpp"

namespace gossip::sim {

Engine::Engine(Network& net, bool keep_history)
    : net_(net), metrics_(net.n(), keep_history) {
  all_nodes_.resize(net.n());
  std::iota(all_nodes_.begin(), all_nodes_.end(), 0u);
  pull_stamp_.resize(net.n());
  // Default delivery decomposition: auto (currently the flat sweep, so
  // default rounds run exactly the PR 4 order). See set_delivery_buckets
  // and make_bucket_map.
  delivery_map_ = make_bucket_map(net.n(), requested_buckets_);
  pushes_.configure(delivery_map_);
}

std::uint32_t Engine::random_other(std::uint32_t self) {
  // Uniform over all n-1 other nodes (failed ones included - the caller
  // cannot know who failed; such contacts are simply lost). Shares
  // next_target_draw()'s buffer so out-of-round draws stay in stream order
  // with serial round draws.
  std::uint32_t t = next_target_draw();
  if (t >= self) ++t;
  return t;
}

namespace detail {
std::uint32_t resolve_direct_target(const Network& net, std::uint32_t node,
                                    const Contact& contact) {
  GOSSIP_CHECK_MSG(contact.target.is_node(),
                   "direct contact needs a concrete target ID");
  const auto found = net.find(contact.target);
  GOSSIP_CHECK_MSG(found.has_value(), "direct contact to ID outside the network: "
                                          << contact.target.to_string());
  const std::uint32_t target = *found;
  GOSSIP_CHECK_MSG(target != node, "node attempted to contact itself");
  if (const auto* k = net.knowledge()) {
    GOSSIP_CHECK_MSG(k->knows(node, contact.target, net.id_of(node)),
                     "direct-addressing violation: node "
                         << net.id_of(node).to_string() << " does not know "
                         << contact.target.to_string());
  }
  return target;
}
}  // namespace detail

void Engine::run_round(const RoundHooks& hooks) {
  run_round(hooks, std::span<const std::uint32_t>(all_nodes_));
}

void Engine::run_round(const RoundHooks& hooks, std::span<const std::uint32_t> initiators) {
  GOSSIP_CHECK_MSG(hooks.initiate, "a round needs an initiate hook");
  run_round(detail::LegacyHooksAdapter{hooks}, initiators);
}

}  // namespace gossip::sim
