#include "sim/engine.hpp"

#include <numeric>

#include "common/assert.hpp"

namespace gossip::sim {

Engine::Engine(Network& net, bool keep_history)
    : net_(net), metrics_(net.capacity(), keep_history), synced_n_(net.n()) {
  all_nodes_.resize(net.n());
  std::iota(all_nodes_.begin(), all_nodes_.end(), 0u);
  // Receiver-indexed state is sized to the network's pre-reserved capacity
  // (== n for join-free networks): mid-run joins extend the initiator list
  // (sync_network_growth) but never reallocate or re-partition delivery
  // state, so the bucket decomposition and the pull stamps stay stable
  // while n moves.
  pull_stamp_.resize(net.capacity());
  // Default delivery decomposition: auto (currently the flat sweep, so
  // default rounds run exactly the PR 4 order). See set_delivery_buckets
  // and make_bucket_map.
  delivery_map_ = make_bucket_map(net.capacity(), requested_buckets_);
  pushes_.configure(delivery_map_);
}

void Engine::sync_network_growth() {
  const std::uint32_t n = net_.n();
  if (n == synced_n_) return;
  GOSSIP_CHECK_MSG(n > synced_n_, "the index space never shrinks");
  GOSSIP_CHECK_MSG(n <= net_.capacity(), "network grew past its capacity");
  // Joiners initiate and can be drawn as uniform targets from this round
  // on. The carried-over uniform draws were taken against the old bound
  // n_old - 1, so discard them; the refill consumes the master stream at a
  // new position, which is deterministic because join order is part of the
  // round timeline (the same joins happen at the same rounds under every
  // executor and thread count).
  for (std::uint32_t v = synced_n_; v < n; ++v) all_nodes_.push_back(v);
  draw_buf_.clear();
  draw_pos_ = 0;
  synced_n_ = n;
}

std::uint32_t Engine::random_other(std::uint32_t self) {
  // Uniform over all n-1 other nodes (failed ones included - the caller
  // cannot know who failed; such contacts are simply lost). Shares
  // next_target_draw()'s buffer so out-of-round draws stay in stream order
  // with serial round draws.
  std::uint32_t t = next_target_draw();
  if (t >= self) ++t;
  return t;
}

namespace detail {
std::uint32_t resolve_direct_target(const Network& net, std::uint32_t node,
                                    const Contact& contact, bool tolerate_unknown) {
  GOSSIP_CHECK_MSG(contact.target.is_node(),
                   "direct contact needs a concrete target ID");
  const auto found = net.find(contact.target);
  if (!found.has_value()) {
    // Without an adversary, dialing an ID that names nothing is an
    // algorithm bug. With byzantine responders armed, poisoned garbage IDs
    // are expected to reach honest knowledge - the dial just finds no
    // endpoint (kUnresolvedTarget; the caller loses the turn).
    if (tolerate_unknown) return kUnresolvedTarget;
    GOSSIP_CHECK_MSG(found.has_value(), "direct contact to ID outside the network: "
                                            << contact.target.to_string());
  }
  const std::uint32_t target = *found;
  GOSSIP_CHECK_MSG(target != node, "node attempted to contact itself");
  if (const auto* k = net.knowledge()) {
    GOSSIP_CHECK_MSG(k->knows(node, contact.target, net.id_of(node)),
                     "direct-addressing violation: node "
                         << net.id_of(node).to_string() << " does not know "
                         << contact.target.to_string());
  }
  return target;
}
}  // namespace detail

void Engine::run_round(const RoundHooks& hooks) {
  GOSSIP_CHECK_MSG(hooks.initiate, "a round needs an initiate hook");
  // Like the templated all-nodes overload: the initiator span is derived
  // inside the impl, after this round's joins fired.
  run_round_impl(detail::LegacyHooksAdapter{hooks}, std::span<const std::uint32_t>(),
                 /*use_all_nodes=*/true);
}

void Engine::run_round(const RoundHooks& hooks, std::span<const std::uint32_t> initiators) {
  GOSSIP_CHECK_MSG(hooks.initiate, "a round needs an initiate hook");
  run_round_impl(detail::LegacyHooksAdapter{hooks}, initiators, /*use_all_nodes=*/false);
}

}  // namespace gossip::sim
