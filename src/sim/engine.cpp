#include "sim/engine.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace gossip::sim {

Engine::Engine(Network& net, bool keep_history)
    : net_(net), metrics_(net.n(), keep_history) {
  all_nodes_.resize(net.n());
  std::iota(all_nodes_.begin(), all_nodes_.end(), 0u);
}

std::uint32_t Engine::random_other(std::uint32_t self) {
  // Uniform over all n-1 other nodes (failed ones included - the caller
  // cannot know who failed; such contacts are simply lost).
  const std::uint32_t n = net_.n();
  std::uint32_t t = static_cast<std::uint32_t>(net_.rng().uniform_below(n - 1));
  if (t >= self) ++t;
  return t;
}

void Engine::learn_from_message(std::uint32_t receiver, const Message& msg) {
  if (auto* k = net_.knowledge()) {
    const NodeId own = net_.id_of(receiver);
    msg.ids().for_each([&](NodeId id) { k->learn(receiver, id, own); });
  }
}

void Engine::learn_contact(std::uint32_t a, std::uint32_t b) {
  if (auto* k = net_.knowledge()) {
    // A phone call reveals both endpoints' IDs (Lemma 14's G_t edges).
    k->learn(a, net_.id_of(b), net_.id_of(a));
    k->learn(b, net_.id_of(a), net_.id_of(b));
  }
}

void Engine::run_round(const RoundHooks& hooks) {
  run_round(hooks, std::span<const std::uint32_t>(all_nodes_));
}

void Engine::run_round(const RoundHooks& hooks, std::span<const std::uint32_t> initiators) {
  GOSSIP_CHECK_MSG(hooks.initiate, "a round needs an initiate hook");
  metrics_.begin_round();
  pushes_.clear();
  pulls_.clear();

  // ---- Phase 1: collect initiated contacts (one per node at most). -------
  for (const std::uint32_t node : initiators) {
    if (!net_.alive(node)) continue;
    std::optional<Contact> contact = hooks.initiate(node);
    if (!contact) continue;
    metrics_.record_initiator();
    std::uint32_t target;
    if (contact->to_random) {
      target = random_other(node);
    } else {
      GOSSIP_CHECK_MSG(contact->target.is_node(),
                       "direct contact needs a concrete target ID");
      const auto found = net_.find(contact->target);
      GOSSIP_CHECK_MSG(found.has_value(),
                       "direct contact to ID outside the network: "
                           << contact->target.to_string());
      target = *found;
      GOSSIP_CHECK_MSG(target != node, "node attempted to contact itself");
      if (const auto* k = net_.knowledge()) {
        GOSSIP_CHECK_MSG(k->knows(node, contact->target, net_.id_of(node)),
                         "direct-addressing violation: node "
                             << net_.id_of(node).to_string() << " does not know "
                             << contact->target.to_string());
      }
    }

    learn_contact(node, target);

    if (contact->kind == ContactKind::kPush || contact->kind == ContactKind::kExchange) {
      const Message& msg = contact->payload;
      metrics_.record_push(node, target, msg.bits(net_.costs()), !msg.is_empty());
      if (net_.alive(target)) {
        if (contact->kind == ContactKind::kExchange) {
          pulls_.push_back(PendingPull{node, target});
        }
        pushes_.push_back(PendingPush{target, node, std::move(contact->payload)});
      }
    } else {
      metrics_.record_pull_request(node, target);
      if (net_.alive(target)) {
        pulls_.push_back(PendingPull{node, target});
      }
    }
  }

  // ---- Phase 2: deliver pushes. ------------------------------------------
  if (hooks.on_push) {
    for (const PendingPush& p : pushes_) {
      learn_from_message(p.to, p.msg);
      hooks.on_push(p.to, p.msg);
    }
  } else {
    for (const PendingPush& p : pushes_) learn_from_message(p.to, p.msg);
  }

  // ---- Phase 3: answer pulls, one address-oblivious response per node. ---
  if (!pulls_.empty()) {
    // Group requests by responder so `respond` runs exactly once per node.
    std::sort(pulls_.begin(), pulls_.end(),
              [](const PendingPull& a, const PendingPull& b) {
                return a.responder < b.responder;
              });
    std::size_t i = 0;
    while (i < pulls_.size()) {
      const std::uint32_t responder = pulls_[i].responder;
      const Message response = hooks.respond ? hooks.respond(responder) : Message::empty();
      const std::uint64_t bits = response.bits(net_.costs());
      const bool has_payload = !response.is_empty();
      for (; i < pulls_.size() && pulls_[i].responder == responder; ++i) {
        metrics_.record_pull_response(bits, has_payload);
        learn_from_message(pulls_[i].from, response);
        if (hooks.on_pull_reply) hooks.on_pull_reply(pulls_[i].from, response);
      }
    }
  }

  metrics_.end_round();
}

}  // namespace gossip::sim
