// Persistent worker pool with a deterministic-friendly parallel_for.
//
// The pool exists so the engine's sharded phase 1 does not pay thread
// creation per round: workers are spawned once and parked on a condition
// variable between rounds. parallel_for(count, fn) hands out item indices
// through an atomic ticket counter - dynamic load balancing - which is safe
// for deterministic execution because the work items themselves are keyed
// by index (each shard owns its buffers and RNG stream), so WHICH thread
// runs an item never influences WHAT the item computes.
//
// A pool built with threads <= 1 spawns no workers and runs parallel_for
// inline on the caller, in index order; results are identical either way.
// parallel_for is not reentrant and must only be driven by one thread at a
// time (the engine is the only caller).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gossip::sim::parallel {

class ThreadPool {
 public:
  /// `threads` counts the caller too: a pool of k serves parallel_for with
  /// k-1 workers plus the calling thread. 0 is normalised to 1 (inline).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  /// Alias for threads(): the pool's degree of parallelism, caller included.
  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Invokes fn(i) exactly once for every i in [0, count), across the pool,
  /// and returns when all invocations have completed. fn runs concurrently
  /// on up to threads() threads and must be safe for that; if any invocation
  /// throws, the exception of the LOWEST-index throwing item is rethrown
  /// here after the remaining items finish - deterministic regardless of
  /// thread schedule, so error behaviour cannot vary across worker counts.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Ticket-drain loop shared by workers and the caller. Takes a pointer so
  /// a worker that woke after its job fully drained never dereferences the
  /// stale descriptor.
  void run_tickets(const std::function<void(std::size_t)>* fn, std::size_t count);

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers park here between jobs
  std::condition_variable cv_done_;  ///< caller parks here during a job
  std::uint64_t generation_ = 0;     ///< bumped per job (guarded by mu_)
  bool stop_ = false;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_count_ = 0;
  unsigned busy_workers_ = 0;  ///< workers inside run_tickets (guarded by mu_)
  std::exception_ptr first_error_;   ///< lowest-index exception (guarded by mu_)
  std::size_t first_error_index_ = 0;  ///< its item index (guarded by mu_)

  std::atomic<std::size_t> next_ticket_{0};
  std::atomic<std::size_t> finished_{0};
};

}  // namespace gossip::sim::parallel
