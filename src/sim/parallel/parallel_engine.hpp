// Deterministic parallel round executor.
//
// ParallelEngine IS-A Engine whose phase 1 always runs sharded (see the
// Threading model notes in sim/engine.hpp): initiators split into fixed
// contiguous shards, one counter-based RNG stream per (round, shard), merge
// in shard order. The class exists so callers that want parallel execution
// say so by type - everything that consumes a sim::Engine& (cluster::Driver,
// the baselines' skeleton, the cluster algorithms) works on it unchanged,
// because the serial/sharded choice is made at run time inside run_round.
//
// Determinism contract: for a fixed (network seed, shard_size, sequence of
// rounds), metrics, knowledge graphs and every hook-observed delivery are
// bit-identical for ANY threads >= 1 - the parity suite in
// tests/test_parallel_engine.cpp pins threads in {1, 2, 8} against each
// other. Trajectories differ from the serial Engine's whenever a round
// consumes uniform draws (shard streams vs. one master stream); rounds that
// only direct-address are bit-identical to the serial path too. Fault models
// (sim/fault.hpp) keep the contract: scheduled crashes fire on the engine's
// round clock and loss decisions come from (seed, round, initiator) streams,
// so neither varies with the thread count - and both agree with the serial
// executor's.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"

namespace gossip::sim::parallel {

struct ParallelOptions {
  /// Worker count including the calling thread; values > hardware
  /// concurrency are allowed (useful for determinism tests on small hosts).
  unsigned threads = 1;
  /// Initiators per shard; 0 picks kDefaultShardSize. Part of the
  /// determinism contract - see shard.hpp.
  std::uint32_t shard_size = 0;
  /// Receiver buckets for the delivery phases (Engine::set_delivery_buckets;
  /// 0 = auto - currently the flat sweep - 1 = flat). NOT part of any determinism
  /// contract: delivery content is bucket-invariant.
  std::uint32_t delivery_buckets = 0;
  /// Run phases 2-3 on the pool too (Engine::set_parallel_delivery). Opt-in:
  /// it tightens the hook thread-safety contract - see sim/engine.hpp.
  bool parallel_delivery = false;
  /// Retain per-round stats (as Engine's keep_history).
  bool keep_history = false;
};

class ParallelEngine final : public Engine {
 public:
  explicit ParallelEngine(Network& net, ParallelOptions options = ParallelOptions());
};

}  // namespace gossip::sim::parallel
