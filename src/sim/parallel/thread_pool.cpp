#include "sim/parallel/thread_pool.hpp"

namespace gossip::sim::parallel {

ThreadPool::ThreadPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_tickets(const std::function<void(std::size_t)>* fn,
                             std::size_t count) {
  for (;;) {
    const std::size_t i = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    try {
      (*fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      // Keep the lowest-index exception so the one that propagates does not
      // depend on the thread schedule.
      if (!first_error_ || i < first_error_index_) {
        first_error_ = std::current_exception();
        first_error_index_ = i;
      }
    }
    if (finished_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      // Empty critical section: pairs the completion signal with the
      // caller's predicate check so the notify cannot be lost.
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    std::size_t count;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_fn_;
      count = job_count_;
      ++busy_workers_;
    }
    // A worker that overslept an entire job sees count already drained and
    // exits run_tickets without dereferencing the (then stale) descriptor.
    run_tickets(fn, count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_workers_;
      if (busy_workers_ == 0 && finished_.load(std::memory_order_acquire) == count) {
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Same contract as the pooled path: every item runs even when one
    // throws, and the lowest-index exception (here: the first, since the
    // loop is in index order) is rethrown at the end.
    std::exception_ptr error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A worker that woke late for the PREVIOUS job may still hold the stale
    // job descriptor; publishing a new one while it could still read the
    // ticket counter would corrupt both jobs. Wait for true idle first.
    cv_done_.wait(lock, [&] { return busy_workers_ == 0; });
    job_fn_ = &fn;
    job_count_ = count;
    next_ticket_.store(0, std::memory_order_relaxed);
    finished_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    first_error_index_ = 0;
    ++generation_;
  }
  cv_work_.notify_all();
  run_tickets(&fn, count);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] {
      return finished_.load(std::memory_order_acquire) == count && busy_workers_ == 0;
    });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace gossip::sim::parallel
