// Per-shard state of the sharded phase-1 executor.
//
// Phase 1 (initiate + target draw + payload metering + queue encoding) is
// embarrassingly parallel once three kinds of shared mutation are factored
// out into thread-local buffers:
//   * uniform target draws   -> a counter-based RNG stream per (round, shard)
//                               (Rng::fork(round, shard) off one base
//                               generator), so the draw sequence depends only
//                               on the shard decomposition, never on threads;
//   * metrics                -> a plain RoundStats delta per shard, plus the
//                               contact endpoint list for the involvement
//                               counters (those need the global per-node
//                               histogram and are replayed at merge time);
//   * pending deliveries and -> one PushQueue + PendingPull vector per shard,
//     knowledge learning        replayed/merged in shard-index order, which
//                               equals global initiator order because shards
//                               are contiguous initiator ranges.
// The merge (engine side) walks shards 0..k-1, so every thread count -
// including 1 - produces bit-identical trajectories for a fixed shard size.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "obs/provenance.hpp"
#include "obs/sample.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel/thread_pool.hpp"
#include "sim/push_queue.hpp"

namespace gossip::sim::parallel {

/// Initiators per shard. Part of the determinism contract: trajectories are
/// a function of (seed, rounds run, shard size) - changing the shard size
/// re-keys the draw streams, changing the thread count never does. Small
/// enough for load balancing across oversubscribed pools, large enough that
/// per-shard setup (one two-level RNG fork, buffer resets) amortises away.
inline constexpr std::uint32_t kDefaultShardSize = 8192;

/// Uniform draws per bulk refill within a shard (capped by the shard's own
/// initiator count, since a shard can never need more draws than that).
inline constexpr std::size_t kShardDrawBatch = 1024;

struct ShardBuffer {
  RoundStats stats;  ///< additive counters only; max_involvement stays 0
  std::vector<std::pair<std::uint32_t, std::uint32_t>> endpoints;
  /// Pending pushes, receiver-bucketed (sim/push_queue.hpp): phase 2 replays
  /// bucket-major across shards, shard-minor within a bucket, so each
  /// receiver still sees its deliveries in global initiator order.
  BucketedPushQueue pushes;
  std::vector<PendingPull> pulls;

  Rng rng{0};
  std::vector<std::uint32_t> draw_buf;
  std::size_t draw_pos = 0;
  std::size_t draw_len = 0;
  std::size_t draw_chunk = 0;

  /// Telemetry: per-shard loss-drop total plus the deterministic bottom-k
  /// candidate sample (obs/sample.hpp), folded in shard order at merge
  /// time. Keyed by the engine's sharded round key, so the sample set is a
  /// pure function of the trajectory, not of threads or buckets.
  std::uint64_t loss_drops = 0;
  obs::TopKSample drop_sample;
  std::uint64_t obs_round = 0;

  /// Provenance (obs/provenance.hpp): the armed tracer this round (null =
  /// untraced) and the shard's first-inform candidates, appended in
  /// initiator order and applied by the engine's serial shard-order merge.
  /// The tracer's bitmap is READ-only here - phase 1 never writes it, so
  /// the probe is race-free across shards.
  const obs::ProvenanceTracer* tracer = nullptr;
  std::vector<obs::TraceCandidate> trace_candidates;

  /// Re-arms the shard for one round: clears the buffers (capacity kept),
  /// adopts the engine's current delivery-bucket decomposition, provenance
  /// tracer (null when untraced) and event-sample cap, and re-keys the draw
  /// stream from the base generator.
  void begin_round(const Rng& base, std::uint64_t round, std::uint64_t shard,
                   std::size_t initiator_count, const BucketMap& delivery_buckets,
                   const obs::ProvenanceTracer* round_tracer,
                   std::size_t sample_cap) {
    stats = RoundStats{};
    endpoints.clear();
    pushes.clear();
    pushes.configure(delivery_buckets);
    pulls.clear();
    rng = base.fork(round, shard);
    draw_pos = 0;
    draw_len = 0;
    draw_chunk = std::min(kShardDrawBatch, initiator_count);
    loss_drops = 0;
    drop_sample.set_cap(sample_cap);
    drop_sample.clear();
    obs_round = round;
    tracer = round_tracer;
    trace_candidates.clear();
  }

  /// Next uniform draw from [0, bound), bulk-refilled from the shard stream.
  // GOSSIP_HOT
  std::uint32_t next_draw(std::uint64_t bound) {
    if (draw_pos == draw_len) {
      if (draw_buf.size() < draw_chunk) draw_buf.resize(draw_chunk);
      rng.fill_uniform_below(bound,
                            std::span<std::uint32_t>(draw_buf.data(), draw_chunk));
      draw_len = draw_chunk;
      draw_pos = 0;
    }
    return draw_buf[draw_pos++];
  }
};

/// Phase-1 sink writing into one shard (see detail::run_phase1 in
/// sim/engine.hpp for the contract). Only counts are metered here; the
/// endpoint list carries what the involvement counters and the knowledge
/// tracker need for the serial, deterministic merge.
struct ShardSink {
  ShardBuffer& sb;
  std::uint64_t draw_bound;  ///< n - 1
  bool want_endpoints;

  void record_initiator() { ++sb.stats.initiators; }
  // GOSSIP_HOT
  std::uint32_t draw_other(std::uint32_t node) {
    std::uint32_t t = sb.next_draw(draw_bound);
    if (t >= node) ++t;
    // Uniform-other contract: the skip-self adjustment must keep the target
    // inside [0, n) and away from the initiator, or the draw stream and the
    // contact graph silently diverge from the model.
    GOSSIP_DCHECK_MSG(t <= draw_bound && t != node,
                      "draw_other produced an out-of-range or self target");
    return t;
  }
  void record_push(std::uint32_t, std::uint32_t, std::uint64_t bits, bool has_payload) {
    sb.stats.add_push(bits, has_payload);
  }
  void record_pull_request(std::uint32_t, std::uint32_t) {
    sb.stats.add_pull_request();
  }
  void on_contact(std::uint32_t a, std::uint32_t b) {
    if (want_endpoints) sb.endpoints.emplace_back(a, b);
  }
  // GOSSIP_HOT
  void enqueue_push(std::uint32_t to, std::uint32_t src, std::uint8_t chan,
                    Message&& msg) {
    if (msg.has_rumor() && sb.tracer != nullptr && !sb.tracer->informed(to)) {
      // gossip-lint: allow(hot-push-back) at most one candidate per uninformed
      // receiver per round; amortized across the run
      sb.trace_candidates.push_back(obs::TraceCandidate{to, src, chan});
    }
    sb.pushes.enqueue(to, std::move(msg));
  }
  // GOSSIP_HOT
  void enqueue_pull(std::uint32_t from, std::uint32_t responder, std::uint8_t chan) {
    // gossip-lint: allow(hot-push-back) shard-local pending-pull buffer;
    // capacity is retained across rounds so growth amortizes away
    sb.pulls.push_back(PendingPull{from, responder, chan});
  }
  void record_loss(std::uint32_t initiator) {
    ++sb.loss_drops;
    sb.drop_sample.offer(obs::event_priority(sb.obs_round, initiator),
                         initiator);
  }
};

/// Everything the engine owns when sharded execution is enabled.
class Phase1Sharder {
 public:
  /// `stream_seed` keys every shard stream this sharder will hand out. The
  /// engine derives it from one master-stream draw at enable time, so (a) it
  /// is deterministic in the network seed and the engine's construction
  /// order, (b) it never varies with the thread count, and (c) two engines
  /// sharded over the SAME network get independent draw streams - a second
  /// broadcast must not replay the first one's contact graph.
  Phase1Sharder(std::uint64_t stream_seed, unsigned threads, std::uint32_t shard_size)
      : pool_(threads),
        shard_size_(shard_size == 0 ? kDefaultShardSize : shard_size),
        stream_base_(mix64(stream_seed ^ 0x7a5ba11e15eedULL)) {}

  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.threads(); }
  [[nodiscard]] std::uint32_t shard_size() const noexcept { return shard_size_; }
  [[nodiscard]] const Rng& stream_base() const noexcept { return stream_base_; }

  /// Shard count for an initiator span, fixing this round's decomposition.
  [[nodiscard]] std::size_t shard_count(std::size_t initiators) const noexcept {
    return (initiators + shard_size_ - 1) / shard_size_;
  }

  /// Buffers for `count` shards this round (existing capacity reused).
  [[nodiscard]] std::span<ShardBuffer> acquire(std::size_t count) {
    if (shards_.size() < count) shards_.resize(count);
    return std::span<ShardBuffer>(shards_.data(), count);
  }

 private:
  ThreadPool pool_;
  std::uint32_t shard_size_;
  Rng stream_base_;
  std::vector<ShardBuffer> shards_;
};

}  // namespace gossip::sim::parallel
