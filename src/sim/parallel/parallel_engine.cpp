#include "sim/parallel/parallel_engine.hpp"

namespace gossip::sim::parallel {

ParallelEngine::ParallelEngine(Network& net, ParallelOptions options)
    : Engine(net, options.keep_history) {
  // threads == 0 would mean "serial engine", which this type promises not to
  // be; normalise to the single-thread sharded mode (same trajectories as
  // any other thread count).
  set_threads(options.threads == 0 ? 1 : options.threads, options.shard_size);
  set_delivery_buckets(options.delivery_buckets);
  set_parallel_delivery(options.parallel_delivery);
}

}  // namespace gossip::sim::parallel
