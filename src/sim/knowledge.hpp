// Who-knows-whom tracking and direct-addressing honesty enforcement.
//
// Paper, Section 2: a node may only direct-address "a node whose ID it
// knows"; Lemma 14 formalises exactly how the knowledge graph K_t can grow
// (every communication reveals the partner's ID; every ID carried in a
// received message becomes known). With tracking enabled, the engine applies
// those two learning rules and *rejects* any direct-addressed contact to an
// unknown ID - so an algorithm implementation cannot silently cheat the
// model. Tracking costs O(total knowledge) memory and is enabled by default
// in tests (and disabled for multi-million-node benchmark runs).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"

namespace gossip::sim {

class KnowledgeTracker {
 public:
  explicit KnowledgeTracker(std::uint32_t n);

  /// Records that `node` has learned `id`. Self-IDs and the unclustered
  /// sentinel are ignored (a node always knows itself; infinity is not an
  /// address).
  void learn(std::uint32_t node, NodeId id, NodeId own_id);

  /// True if `node` has learned `id` (or if `id` is its own).
  [[nodiscard]] bool knows(std::uint32_t node, NodeId id, NodeId own_id) const;

  /// Number of distinct foreign IDs `node` has learned.
  [[nodiscard]] std::size_t known_count(std::uint32_t node) const;

  /// Sum of known_count over all nodes (size of the knowledge graph's edge
  /// multiset, directed).
  [[nodiscard]] std::uint64_t total_knowledge() const noexcept { return total_; }

 private:
  std::vector<std::unordered_set<std::uint64_t>> known_;
  std::uint64_t total_ = 0;
};

}  // namespace gossip::sim
