// Who-knows-whom tracking and direct-addressing honesty enforcement.
//
// Paper, Section 2: a node may only direct-address "a node whose ID it
// knows"; Lemma 14 formalises exactly how the knowledge graph K_t can grow
// (every communication reveals the partner's ID; every ID carried in a
// received message becomes known). With tracking enabled, the engine applies
// those two learning rules and *rejects* any direct-addressed contact to an
// unknown ID - so an algorithm implementation cannot silently cheat the
// model. Tracking costs O(total knowledge) memory and is enabled by default
// in tests (and disabled for multi-million-node benchmark runs).
//
// Storage layout: a cache-friendly flat design instead of one heap-backed
// unordered_set per node. Every node owns kInlineSlots raw-ID slots in one
// contiguous array (the InlineVec idiom, flattened across nodes); a node
// that learns more IDs spills once into a sorted vector shared-indexed from
// its first inline slot. knows()/learn() are allocation-free on the common
// path (inline scan, or binary search after a spill; an insert that actually
// grows knowledge is bounded by total_knowledge, so the O(k) sorted insert
// amortises away). The paper's algorithms keep per-node knowledge at
// O(log n), so most nodes never leave the inline slots at all; compared with
// the previous vector<unordered_set> (56-byte set header plus a 16-byte heap
// node and bucket slot per learned ID), this cuts tracker memory by roughly
// 2-4x and removes the per-learn allocator traffic (see
// tests/test_knowledge_memory.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"

namespace gossip::sim {

class KnowledgeTracker {
 public:
  explicit KnowledgeTracker(std::uint32_t n);

  /// Records that `node` has learned `id`. Self-IDs and the unclustered
  /// sentinel are ignored (a node always knows itself; infinity is not an
  /// address).
  void learn(std::uint32_t node, NodeId id, NodeId own_id);

  /// Bulk variant of learn for a message's whole ID list: sorts and dedups
  /// the batch once and set-unions it into the node's spill in one pass,
  /// instead of one binary-search insertion (each O(k) in the spill size)
  /// per ID. Duplicates, self-IDs and sentinels in `ids` are allowed and
  /// ignored; the resulting knowledge set is exactly what the equivalent
  /// learn() loop would produce. Small batches fall back to that loop - the
  /// win is the large ClusterResize-style lists that the engine's delivery
  /// and sharded-merge paths replay.
  void learn_all(std::uint32_t node, std::span<const NodeId> ids, NodeId own_id);

  /// True if `node` has learned `id` (or if `id` is its own).
  [[nodiscard]] bool knows(std::uint32_t node, NodeId id, NodeId own_id) const;

  /// Number of distinct foreign IDs `node` has learned.
  [[nodiscard]] std::size_t known_count(std::uint32_t node) const;

  /// Sum of known_count over all nodes (size of the knowledge graph's edge
  /// multiset, directed).
  [[nodiscard]] std::uint64_t total_knowledge() const noexcept { return total_; }

  /// All IDs `node` has learned, sorted ascending. Used by tests to compare
  /// knowledge graphs across engine dispatch paths; O(k log k) per call.
  [[nodiscard]] std::vector<NodeId> known_ids(std::uint32_t node) const;

  /// Bytes of storage this tracker holds (flat arrays + spill capacities).
  /// Exact accounting, O(spilled nodes) per call; used by the memory tests
  /// and capacity planning for large runs.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  /// Inline raw-ID slots per node before spilling to a sorted vector. Four
  /// slots cover the working set of the paper's O(log n)-knowledge phases
  /// while keeping the flat array at 32 bytes per node.
  static constexpr std::size_t kInlineSlots = 4;
  /// counts_ sentinel: the node has spilled; inline_[node * kInlineSlots]
  /// holds its index into spills_ instead of an ID.
  static constexpr std::uint8_t kSpilled = 0xFF;

  [[nodiscard]] std::size_t spill_index(std::uint32_t node) const {
    return static_cast<std::size_t>(inline_[static_cast<std::size_t>(node) * kInlineSlots]);
  }

  std::vector<std::uint64_t> inline_;  ///< n * kInlineSlots raw IDs (flat)
  std::vector<std::uint8_t> counts_;   ///< inline fill count, or kSpilled
  std::vector<std::vector<std::uint64_t>> spills_;  ///< sorted overflow sets
  std::uint64_t total_ = 0;
  // learn_all scratch (batch normalisation and set-union output), kept so
  // steady-state bulk learns do not allocate.
  std::vector<std::uint64_t> batch_scratch_;
  std::vector<std::uint64_t> union_scratch_;
};

}  // namespace gossip::sim
