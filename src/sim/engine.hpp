// Synchronous round executor for the random phone call model with direct
// addressing (paper Section 2).
//
// Per round, each alive node may initiate at most ONE communication - a PUSH
// (deliver a message) or a PULL (request a message) - addressed either to a
// uniformly random node or directly to a node whose ID the initiator has
// learned. The engine:
//   * resolves targets (uniform random excludes self; contacts to failed
//     nodes are lost: pushes vanish, pulls stay unanswered);
//   * enforces address-obliviousness structurally: the pull-response
//     callback is evaluated AT MOST ONCE per contacted node per round and
//     that single message answers every requester;
//   * with knowledge tracking enabled, rejects direct contacts to unlearned
//     IDs and applies Lemma 14's learning rules (communication reveals the
//     partner's ID both ways; received IDs become known);
//   * meters rounds, payload messages, connections, bits and per-node
//     involvement (Delta) through MetricsCollector.
//
// Two dispatch paths execute the same semantics:
//   * the templated run_round(Hooks&&) resolves the four per-round hooks at
//     compile time (static dispatch) - this is the hot path for
//     multi-million-node runs;
//   * the std::function-based RoundHooks overloads are a thin adapter over
//     the template, kept so algorithms can migrate incrementally and so the
//     dispatch cost itself can be measured (bench_engine_throughput).
// Both paths share the scale machinery: uniform targets come from a bulk
// Rng::fill_uniform_below ring buffer; queued pushes are packed into a
// variable-length byte stream (phase 2's replay of that queue is the
// dominant memory traffic of a large round); and pending pulls resolve in
// two O(m) passes over an epoch-stamped per-responder response cache
// (evaluate-all-then-deliver snapshot semantics) - no sorting, no
// allocation after warm-up.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace gossip::sim {

enum class ContactKind : std::uint8_t {
  kPush,
  kPull,
  /// One phone call transferring content both ways (PUSH the payload, get
  /// the partner's address-oblivious response back). This is the classical
  /// Karp et al. [10] exchange used by the RRS and Name-Dropper baselines;
  /// the paper's own algorithms use only kPush/kPull.
  kExchange,
};

/// One initiated communication.
struct Contact {
  ContactKind kind = ContactKind::kPush;
  bool to_random = true;            ///< uniform random target vs. direct addressing
  NodeId target;                    ///< used when !to_random
  Message payload;                  ///< carried content for kPush / kExchange

  [[nodiscard]] static Contact push_random(Message msg) {
    return Contact{ContactKind::kPush, true, NodeId::unclustered(), std::move(msg)};
  }
  [[nodiscard]] static Contact push_direct(NodeId to, Message msg) {
    return Contact{ContactKind::kPush, false, to, std::move(msg)};
  }
  [[nodiscard]] static Contact pull_random() {
    return Contact{ContactKind::kPull, true, NodeId::unclustered(), Message::empty()};
  }
  [[nodiscard]] static Contact pull_direct(NodeId from) {
    return Contact{ContactKind::kPull, false, from, Message::empty()};
  }
  [[nodiscard]] static Contact exchange_random(Message msg) {
    return Contact{ContactKind::kExchange, true, NodeId::unclustered(), std::move(msg)};
  }
  [[nodiscard]] static Contact exchange_direct(NodeId with, Message msg) {
    return Contact{ContactKind::kExchange, false, with, std::move(msg)};
  }
};

// ---------------------------------------------------------------------------
// Static-dispatch hook detection.
//
// A hooks object for the templated executor is any type with an
// `initiate(node)` member; the other three hooks are optional and detected at
// compile time, so an algorithm that never answers pulls pays nothing for the
// respond machinery. All callbacks receive node *indices*; implementations
// must only consult that node's local state - the engine cannot enforce
// locality, but the knowledge tracker enforces the addressing consequences.
// Hooks must not consume the network's master RNG inside initiate(): the
// engine batches its own uniform-target draws per chunk of initiators (the
// draw ORDER is preserved, so results are bit-identical to unbatched
// execution as long as initiate() leaves the master stream alone). Per-node
// randomness belongs to Network::node_rng / forked streams, which every
// algorithm in this repo already uses.
// ---------------------------------------------------------------------------

template <class H>
concept HasInitiateHook = requires(H& h, std::uint32_t v) {
  { h.initiate(v) } -> std::convertible_to<std::optional<Contact>>;
};
template <class H>
concept HasRespondHook = requires(H& h, std::uint32_t v) {
  { h.respond(v) } -> std::convertible_to<Message>;
};
template <class H>
concept HasOnPushHook = requires(H& h, std::uint32_t v, const Message& m) {
  h.on_push(v, m);
};
template <class H>
concept HasOnPullReplyHook = requires(H& h, std::uint32_t v, const Message& m) {
  h.on_pull_reply(v, m);
};

namespace detail {
/// Placeholder for an omitted hook slot in make_hooks.
struct NoHookFn {};
}  // namespace detail

/// Pass for any hook slot of make_hooks that the round does not use.
inline constexpr detail::NoHookFn no_hook{};

/// Hooks object composed from callables (lambdas or function objects). Slots
/// holding sim::no_hook produce no member, so the executor statically skips
/// the corresponding phase work.
template <class I, class R, class P, class Q>
struct ComposedHooks {
  I initiate_fn;
  [[no_unique_address]] R respond_fn;
  [[no_unique_address]] P on_push_fn;
  [[no_unique_address]] Q on_pull_reply_fn;

  std::optional<Contact> initiate(std::uint32_t v) { return initiate_fn(v); }
  Message respond(std::uint32_t v)
    requires std::invocable<R&, std::uint32_t>
  {
    return respond_fn(v);
  }
  void on_push(std::uint32_t receiver, const Message& m)
    requires std::invocable<P&, std::uint32_t, const Message&>
  {
    on_push_fn(receiver, m);
  }
  void on_pull_reply(std::uint32_t requester, const Message& m)
    requires std::invocable<Q&, std::uint32_t, const Message&>
  {
    on_pull_reply_fn(requester, m);
  }
};

/// Builds a static-dispatch hooks object. Slot order matches RoundHooks:
/// (initiate, respond, on_push, on_pull_reply); pass sim::no_hook for unused
/// trailing-or-middle slots.
template <class I, class R = detail::NoHookFn, class P = detail::NoHookFn,
          class Q = detail::NoHookFn>
[[nodiscard]] auto make_hooks(I initiate, R respond = {}, P on_push = {},
                              Q on_pull_reply = {}) {
  return ComposedHooks<I, R, P, Q>{std::move(initiate), std::move(respond),
                                   std::move(on_push), std::move(on_pull_reply)};
}

/// Behaviour of one synchronous round, type-erased. This is the legacy
/// dynamic-dispatch surface; it executes through the same templated engine
/// core via an adapter, paying one indirect call per hook invocation.
struct RoundHooks {
  /// Called once per (alive) initiator; return std::nullopt to stay silent.
  std::function<std::optional<Contact>(std::uint32_t node)> initiate;
  /// Address-oblivious pull response; called at most once per node per
  /// round, only if someone pulled it. Null => all pulls answered Empty.
  std::function<Message(std::uint32_t node)> respond;
  /// Delivery of a pushed message (receiver is alive). Null => drop.
  std::function<void(std::uint32_t receiver, const Message& msg)> on_push;
  /// Delivery of a pull response (requester is alive; responder was alive).
  /// Pulls to failed nodes produce no callback. Null => drop.
  std::function<void(std::uint32_t requester, const Message& msg)> on_pull_reply;
};

namespace detail {
/// Adapts RoundHooks onto the static-dispatch executor. Null checks replace
/// the compile-time hook detection; semantics are identical.
struct LegacyHooksAdapter {
  const RoundHooks& h;

  std::optional<Contact> initiate(std::uint32_t v) const { return h.initiate(v); }
  Message respond(std::uint32_t v) const {
    return h.respond ? h.respond(v) : Message::empty();
  }
  void on_push(std::uint32_t receiver, const Message& m) const {
    if (h.on_push) h.on_push(receiver, m);
  }
  void on_pull_reply(std::uint32_t requester, const Message& m) const {
    if (h.on_pull_reply) h.on_pull_reply(requester, m);
  }
};
}  // namespace detail

class Engine {
 public:
  /// `keep_history` retains per-round stats (used by the dynamics bench).
  explicit Engine(Network& net, bool keep_history = false);

  /// Runs one round with every node as a potential initiator (static
  /// dispatch; hooks resolved at compile time). RoundHooks is excluded so a
  /// mutable RoundHooks lvalue still routes through the null-check adapter.
  template <class Hooks>
    requires(!std::same_as<std::remove_cvref_t<Hooks>, RoundHooks>)
  void run_round(Hooks&& hooks) {
    run_round(std::forward<Hooks>(hooks),
              std::span<const std::uint32_t>(all_nodes_));
  }

  /// Runs one round where only `initiators` are offered the chance to act
  /// (everyone can still receive). This is a pure performance device for
  /// rounds in which whole classes of nodes are known to be silent; it never
  /// changes semantics, because initiate can always return nullopt.
  template <class Hooks>
    requires(!std::same_as<std::remove_cvref_t<Hooks>, RoundHooks>)
  void run_round(Hooks&& hooks, std::span<const std::uint32_t> initiators);

  /// Legacy dynamic-dispatch overloads (thin adapters over the template).
  void run_round(const RoundHooks& hooks);
  void run_round(const RoundHooks& hooks, std::span<const std::uint32_t> initiators);

  [[nodiscard]] std::uint64_t rounds() const noexcept { return metrics_.run().rounds; }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept { return metrics_; }
  [[nodiscard]] MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] Network& network() noexcept { return net_; }
  [[nodiscard]] const Network& network() const noexcept { return net_; }

  /// Draws a uniformly random node index different from `self`, from the
  /// same bulk draw buffer the round executor consumes (so interleaving
  /// calls with rounds keeps one deterministic master-stream order).
  /// Precondition: the network has at least two nodes (there is no "other"
  /// node to draw in a single-node network; uniform_below(0) is undefined).
  [[nodiscard]] std::uint32_t random_other(std::uint32_t self);

 private:
  // The pending-push queue is a variable-length byte stream: phase 2 streams
  // it back in order, and at multi-million n that write+read traffic is the
  // dominant memory cost of a round, so the common payloads are packed tight
  // (6 bytes for a flag-only rumor push vs. sizeof(Message) ~ 72). Entry:
  //   u32 to | u8 flags | u8 n_ids | [u64 count if flag] | n_ids * u64 ids
  // ID lists longer than kPushInlineIds (only ClusterResize responses,
  // paper footnote 2) spill the whole Message to push_spill_ and store its
  // index in place of the count.
  static constexpr std::size_t kPushInlineIds = 15;
  static constexpr std::uint8_t kPushHasRumor = 1;
  static constexpr std::uint8_t kPushHasCount = 2;
  static constexpr std::uint8_t kPushSpilled = 4;

  struct PendingPull {
    std::uint32_t from;
    std::uint32_t responder;
  };
  /// One evaluated pull response (the single address-oblivious answer a
  /// responder gives this round), with its metering precomputed.
  struct CachedResponse {
    Message msg;
    std::uint64_t bits;
    bool has_payload;
  };

  /// Uniform target draws per bulk fill_uniform_below refill: large enough
  /// to amortize and vectorize the fill, small enough to stay L1-resident.
  static constexpr std::size_t kDrawBatch = 1024;

  /// Next uniform draw from [0, n-1), bulk-refilled. Draws are consumed in
  /// contact order; unconsumed draws carry over across rounds, so the master
  /// stream is deterministic in (seed, contact sequence).
  std::uint32_t next_target_draw() {
    if (draw_pos_ == draw_buf_.size()) {
      GOSSIP_CHECK_MSG(net_.n() >= 2, "uniform contacts need at least two nodes");
      draw_buf_.resize(kDrawBatch);
      net_.rng().fill_uniform_below(net_.n() - 1, draw_buf_);
      draw_pos_ = 0;
    }
    return draw_buf_[draw_pos_++];
  }

  void learn_from_message(std::uint32_t receiver, const Message& msg) {
    if (auto* k = net_.knowledge()) {
      const NodeId own = net_.id_of(receiver);
      msg.ids().for_each([&](NodeId id) { k->learn(receiver, id, own); });
    }
  }

  void learn_contact(std::uint32_t a, std::uint32_t b) {
    if (auto* k = net_.knowledge()) {
      // A phone call reveals both endpoints' IDs (Lemma 14's G_t edges).
      k->learn(a, net_.id_of(b), net_.id_of(a));
      k->learn(b, net_.id_of(a), net_.id_of(b));
    }
  }

  /// Resolves the target of a direct-addressed contact, enforcing the
  /// model's honesty rules (real ID, not self, known to the initiator).
  [[nodiscard]] std::uint32_t resolve_direct_target(std::uint32_t node,
                                                    const Contact& contact) const;

  /// Reserves `need` bytes at the tail of the push stream, returning the
  /// write cursor. Geometric growth; no shrink, so steady-state rounds do
  /// not allocate.
  std::uint8_t* push_stream_grow(std::size_t need) {
    if (push_len_ + need > push_bytes_.size()) {
      push_bytes_.resize(std::max(push_bytes_.size() * 2, push_len_ + need));
    }
    std::uint8_t* cursor = push_bytes_.data() + push_len_;
    push_len_ += need;
    return cursor;
  }

  /// Encodes a payload into the pending-push byte stream; oversized ID
  /// lists (rare) move into push_spill_.
  void enqueue_push(std::uint32_t to, Message&& msg) {
    ++push_entries_;
    const Message::IdList& ids = msg.ids();
    const std::size_t n_ids = ids.size();
    std::uint8_t flags = static_cast<std::uint8_t>(
        (msg.has_rumor() ? kPushHasRumor : 0) | (msg.has_count() ? kPushHasCount : 0));
    if (n_ids > kPushInlineIds) {
      const std::uint64_t spill_index = push_spill_.size();
      push_spill_.push_back(std::move(msg));
      flags = static_cast<std::uint8_t>(flags | kPushSpilled);
      std::uint8_t* w = push_stream_grow(6 + 8);
      std::memcpy(w, &to, 4);
      w[4] = flags;
      w[5] = 0;
      std::memcpy(w + 6, &spill_index, 8);
      return;
    }
    const bool has_count = msg.has_count();
    std::uint8_t* w = push_stream_grow(6 + (has_count ? 8 : 0) + n_ids * 8);
    std::memcpy(w, &to, 4);
    w[4] = flags;
    w[5] = static_cast<std::uint8_t>(n_ids);
    w += 6;
    if (has_count) {
      const std::uint64_t count = msg.count_value();
      std::memcpy(w, &count, 8);
      w += 8;
    }
    for (std::size_t i = 0; i < n_ids; ++i) {
      const std::uint64_t raw = ids[i].raw();
      std::memcpy(w + i * 8, &raw, 8);
    }
  }

  void enqueue_pull(std::uint32_t from, std::uint32_t responder) {
    pulls_.push_back(PendingPull{from, responder});
  }

  Network& net_;
  MetricsCollector metrics_;
  // Scratch buffers reused across rounds.
  std::vector<std::uint8_t> push_bytes_;  ///< encoded pending pushes
  std::size_t push_len_ = 0;
  std::size_t push_entries_ = 0;
  std::vector<Message> push_spill_;  ///< payloads with > kPushInlineIds IDs
  std::vector<PendingPull> pulls_;
  std::vector<std::uint32_t> all_nodes_;
  // Bulk uniform-target draws (ring of kDrawBatch, refilled on demand).
  std::vector<std::uint32_t> draw_buf_;
  std::size_t draw_pos_ = 0;
  // Responder-indexed response cache (epoch-stamped; array sized n once).
  std::vector<CachedResponse> responses_;
  std::vector<std::uint32_t> response_of_;  ///< response index per pending pull
  std::vector<std::uint64_t> pull_stamp_;   ///< epoch << 32 | response index
  std::uint32_t pull_epoch_ = 0;
};

template <class Hooks>
  requires(!std::same_as<std::remove_cvref_t<Hooks>, RoundHooks>)
void Engine::run_round(Hooks&& hooks, std::span<const std::uint32_t> initiators) {
  using H = std::remove_reference_t<Hooks>;
  static_assert(HasInitiateHook<H>, "a round needs an initiate hook");
  // A const hooks object would silently constrain away its non-const hook
  // members (compiling to a round that never delivers); reject it unless
  // constness provably hides nothing.
  static_assert(HasRespondHook<H> == HasRespondHook<std::remove_const_t<H>> &&
                    HasOnPushHook<H> == HasOnPushHook<std::remove_const_t<H>> &&
                    HasOnPullReplyHook<H> == HasOnPullReplyHook<std::remove_const_t<H>>,
                "const hooks object hides non-const hook members; pass it non-const");

  metrics_.begin_round();
  push_len_ = 0;
  push_entries_ = 0;
  push_spill_.clear();
  pulls_.clear();
  if (++pull_epoch_ == 0) {
    // 2^32 rounds: wipe the stamps so a recycled epoch value cannot alias.
    std::fill(pull_stamp_.begin(), pull_stamp_.end(), 0);
    pull_epoch_ = 1;
  }

  // ---- Phase 1: collect initiated contacts (one per node at most). -------
  // Uniform targets come from next_target_draw()'s bulk-refilled buffer (one
  // vectorizable fill_uniform_below pass per kDrawBatch contacts); when no
  // node has failed, the per-contact aliveness probes (a guaranteed random
  // cache miss each on large networks) are skipped entirely.
  const bool no_failures = net_.failed_count() == 0;
  const bool track = net_.knowledge() != nullptr;
  for (const std::uint32_t node : initiators) {
    if (no_failures) {
      // alive() would bounds-check a caller-supplied initiator; keep that
      // contract on the fast path that skips it.
      GOSSIP_CHECK(node < net_.n());
    } else if (!net_.alive(node)) {
      continue;
    }
    std::optional<Contact> contact = hooks.initiate(node);
    if (!contact) continue;
    metrics_.record_initiator();
    std::uint32_t target;
    if (contact->to_random) {
      // Uniform over all n-1 other nodes (failed ones included - the
      // caller cannot know who failed; such contacts are simply lost).
      target = next_target_draw();
      if (target >= node) ++target;
    } else {
      target = resolve_direct_target(node, *contact);
    }

    if (track) learn_contact(node, target);

    if (contact->kind == ContactKind::kPush || contact->kind == ContactKind::kExchange) {
      // Meter before the payload is moved into the pending-push queue.
      const std::uint64_t bits = contact->payload.bits(net_.costs());
      const bool has_payload = !contact->payload.is_empty();
      metrics_.record_push(node, target, bits, has_payload);
      if (no_failures || net_.alive(target)) {
        if (contact->kind == ContactKind::kExchange) enqueue_pull(node, target);
        // With no delivery observer (no on_push hook, no knowledge
        // tracking), queueing the payload would be dead work.
        if (track || HasOnPushHook<H>) enqueue_push(target, std::move(contact->payload));
      }
    } else {
      metrics_.record_pull_request(node, target);
      if (no_failures || net_.alive(target)) enqueue_pull(node, target);
    }
  }

  // ---- Phase 2: deliver pushes. ------------------------------------------
  // The byte stream is decoded back into a (stack-local) Message per
  // delivery; hooks must not retain the reference beyond the call.
  if (track || HasOnPushHook<H>) {
    const std::uint8_t* r = push_bytes_.data();
    std::uint64_t scratch_ids[kPushInlineIds];
    for (std::size_t e = 0; e < push_entries_; ++e) {
      std::uint32_t to;
      std::memcpy(&to, r, 4);
      const std::uint8_t flags = r[4];
      const std::uint8_t n_ids = r[5];
      r += 6;
      if (flags & kPushSpilled) {
        std::uint64_t spill_index;
        std::memcpy(&spill_index, r, 8);
        r += 8;
        const Message& msg = push_spill_[spill_index];
        if (track) learn_from_message(to, msg);
        if constexpr (HasOnPushHook<H>) hooks.on_push(to, msg);
        continue;
      }
      std::uint64_t count = 0;
      if (flags & kPushHasCount) {
        std::memcpy(&count, r, 8);
        r += 8;
      }
      std::memcpy(scratch_ids, r, static_cast<std::size_t>(n_ids) * 8);
      r += static_cast<std::size_t>(n_ids) * 8;
      const Message msg = Message::from_parts(
          (flags & kPushHasRumor) != 0, (flags & kPushHasCount) != 0, count,
          std::span<const std::uint64_t>(scratch_ids, n_ids));
      if (track) learn_from_message(to, msg);
      if constexpr (HasOnPushHook<H>) hooks.on_push(to, msg);
    }
  }

  // ---- Phase 3: answer pulls, one address-oblivious response per node. ---
  // Two O(m) passes, no sort, no allocation after warm-up. Pass A: the
  // first pull that reaches a responder evaluates its (one) response and
  // epoch-stamps the responder with the cache index; later pulls reuse it.
  // Pass B delivers. Evaluating EVERY response before delivering ANY reply
  // gives synchronous-round snapshot semantics: a response reflects the
  // post-push, pre-reply state, independent of pull arrival order. (The
  // seed executor interleaved respond with deliveries in sorted-responder
  // order, so its same-seed trajectories differ; see CHANGES.md.) With no
  // respond hook every answer is Empty, so the phase only runs when a hook
  // observes it.
  if constexpr (HasRespondHook<H> || HasOnPullReplyHook<H>) {
    if (!pulls_.empty()) {
      responses_.clear();
      response_of_.resize(pulls_.size());
      for (std::size_t i = 0; i < pulls_.size(); ++i) {
        const PendingPull& p = pulls_[i];
        const std::uint64_t stamp = pull_stamp_[p.responder];
        std::uint32_t index;
        if ((stamp >> 32) != pull_epoch_) {
          index = static_cast<std::uint32_t>(responses_.size());
          pull_stamp_[p.responder] =
              (static_cast<std::uint64_t>(pull_epoch_) << 32) | index;
          Message response;
          if constexpr (HasRespondHook<H>) response = hooks.respond(p.responder);
          const std::uint64_t bits = response.bits(net_.costs());
          const bool has_payload = !response.is_empty();
          responses_.push_back(CachedResponse{std::move(response), bits, has_payload});
        } else {
          index = static_cast<std::uint32_t>(stamp);
        }
        response_of_[i] = index;
      }
      for (std::size_t i = 0; i < pulls_.size(); ++i) {
        const CachedResponse& cached = responses_[response_of_[i]];
        metrics_.record_pull_response(cached.bits, cached.has_payload);
        if (track) learn_from_message(pulls_[i].from, cached.msg);
        if constexpr (HasOnPullReplyHook<H>) hooks.on_pull_reply(pulls_[i].from, cached.msg);
      }
    }
  }

  metrics_.end_round();
}

}  // namespace gossip::sim
