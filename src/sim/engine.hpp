// Synchronous round executor for the random phone call model with direct
// addressing (paper Section 2).
//
// Per round, each alive node may initiate at most ONE communication - a PUSH
// (deliver a message) or a PULL (request a message) - addressed either to a
// uniformly random node or directly to a node whose ID the initiator has
// learned. The engine:
//   * resolves targets (uniform random excludes self; contacts to failed
//     nodes are lost: pushes vanish, pulls stay unanswered);
//   * enforces address-obliviousness structurally: the pull-response
//     callback is evaluated AT MOST ONCE per contacted node per round and
//     that single message answers every requester;
//   * with knowledge tracking enabled, rejects direct contacts to unlearned
//     IDs and applies Lemma 14's learning rules (communication reveals the
//     partner's ID both ways; received IDs become known);
//   * meters rounds, payload messages, connections, bits and per-node
//     involvement (Delta) through MetricsCollector.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace gossip::sim {

enum class ContactKind : std::uint8_t {
  kPush,
  kPull,
  /// One phone call transferring content both ways (PUSH the payload, get
  /// the partner's address-oblivious response back). This is the classical
  /// Karp et al. [10] exchange used by the RRS and Name-Dropper baselines;
  /// the paper's own algorithms use only kPush/kPull.
  kExchange,
};

/// One initiated communication.
struct Contact {
  ContactKind kind = ContactKind::kPush;
  bool to_random = true;            ///< uniform random target vs. direct addressing
  NodeId target;                    ///< used when !to_random
  Message payload;                  ///< carried content for kPush / kExchange

  [[nodiscard]] static Contact push_random(Message msg) {
    return Contact{ContactKind::kPush, true, NodeId::unclustered(), std::move(msg)};
  }
  [[nodiscard]] static Contact push_direct(NodeId to, Message msg) {
    return Contact{ContactKind::kPush, false, to, std::move(msg)};
  }
  [[nodiscard]] static Contact pull_random() {
    return Contact{ContactKind::kPull, true, NodeId::unclustered(), Message::empty()};
  }
  [[nodiscard]] static Contact pull_direct(NodeId from) {
    return Contact{ContactKind::kPull, false, from, Message::empty()};
  }
  [[nodiscard]] static Contact exchange_random(Message msg) {
    return Contact{ContactKind::kExchange, true, NodeId::unclustered(), std::move(msg)};
  }
  [[nodiscard]] static Contact exchange_direct(NodeId with, Message msg) {
    return Contact{ContactKind::kExchange, false, with, std::move(msg)};
  }
};

/// Behaviour of one synchronous round. All callbacks receive node *indices*;
/// implementations must only consult that node's local state - the engine
/// cannot enforce locality, but the knowledge tracker enforces the
/// addressing consequences.
struct RoundHooks {
  /// Called once per (alive) initiator; return std::nullopt to stay silent.
  std::function<std::optional<Contact>(std::uint32_t node)> initiate;
  /// Address-oblivious pull response; called at most once per node per
  /// round, only if someone pulled it. Null => all pulls answered Empty.
  std::function<Message(std::uint32_t node)> respond;
  /// Delivery of a pushed message (receiver is alive). Null => drop.
  std::function<void(std::uint32_t receiver, const Message& msg)> on_push;
  /// Delivery of a pull response (requester is alive; responder was alive).
  /// Pulls to failed nodes produce no callback. Null => drop.
  std::function<void(std::uint32_t requester, const Message& msg)> on_pull_reply;
};

class Engine {
 public:
  /// `keep_history` retains per-round stats (used by the dynamics bench).
  explicit Engine(Network& net, bool keep_history = false);

  /// Runs one round with every node as a potential initiator.
  void run_round(const RoundHooks& hooks);

  /// Runs one round where only `initiators` are offered the chance to act
  /// (everyone can still receive). This is a pure performance device for
  /// rounds in which whole classes of nodes are known to be silent; it never
  /// changes semantics, because hooks.initiate can always return nullopt.
  void run_round(const RoundHooks& hooks, std::span<const std::uint32_t> initiators);

  [[nodiscard]] std::uint64_t rounds() const noexcept { return metrics_.run().rounds; }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept { return metrics_; }
  [[nodiscard]] MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] Network& network() noexcept { return net_; }
  [[nodiscard]] const Network& network() const noexcept { return net_; }

  /// Draws a uniformly random node index different from `self`.
  [[nodiscard]] std::uint32_t random_other(std::uint32_t self);

 private:
  struct PendingPush {
    std::uint32_t to;
    std::uint32_t from;
    Message msg;
  };
  struct PendingPull {
    std::uint32_t from;
    std::uint32_t responder;
  };

  void learn_from_message(std::uint32_t receiver, const Message& msg);
  void learn_contact(std::uint32_t a, std::uint32_t b);

  Network& net_;
  MetricsCollector metrics_;
  // Scratch buffers reused across rounds.
  std::vector<PendingPush> pushes_;
  std::vector<PendingPull> pulls_;
  std::vector<std::uint32_t> all_nodes_;
};

}  // namespace gossip::sim
