// Synchronous round executor for the random phone call model with direct
// addressing (paper Section 2).
//
// Per round, each alive node may initiate at most ONE communication - a PUSH
// (deliver a message) or a PULL (request a message) - addressed either to a
// uniformly random node or directly to a node whose ID the initiator has
// learned. The engine:
//   * resolves targets (uniform random excludes self; contacts to failed
//     nodes are lost: pushes vanish, pulls stay unanswered);
//   * enforces address-obliviousness structurally: the pull-response
//     callback is evaluated AT MOST ONCE per contacted node per round and
//     that single message answers every requester;
//   * with knowledge tracking enabled, rejects direct contacts to unlearned
//     IDs and applies Lemma 14's learning rules (communication reveals the
//     partner's ID both ways; received IDs become known);
//   * meters rounds, payload messages, connections, bits and per-node
//     involvement (Delta) through MetricsCollector.
//
// Two dispatch paths execute the same semantics:
//   * the templated run_round(Hooks&&) resolves the four per-round hooks at
//     compile time (static dispatch) - this is the hot path for
//     multi-million-node runs;
//   * the std::function-based RoundHooks overloads are a thin adapter over
//     the template, kept so algorithms can migrate incrementally and so the
//     dispatch cost itself can be measured (bench_engine_throughput).
// Both paths share the scale machinery: uniform targets come from a bulk
// Rng::fill_uniform_below ring buffer; queued pushes are packed into a
// variable-length byte stream (phase 2's replay of that queue is the
// dominant memory traffic of a large round; see sim/push_queue.hpp); and
// pending pulls resolve in two O(m) passes over an epoch-stamped
// per-responder response cache (evaluate-all-then-deliver snapshot
// semantics) - no sorting, no allocation after warm-up.
//
// Receiver-bucketed delivery (PR 5). Phases 2-3 probe receiver-indexed
// state (hook targets, KnowledgeTracker rows, the pull-response stamps)
// once per contact - a random DRAM miss each at multi-million n. The engine
// therefore partitions receivers into contiguous power-of-two buckets
// (sim/push_queue.hpp BucketMap; set_delivery_buckets, 0 = auto - currently
// the flat sweep, see make_bucket_map - 1 = flat): phase 1 routes pending pushes into per-bucket
// streams and phase 3 groups pull requests by responder bucket, so the
// delivery sweeps touch one cache-resident slice of receiver state at a
// time. Delivery CONTENT is bucket-invariant by construction - a receiver
// lives in exactly one bucket, so its own delivery sequence, the metrics,
// the learned knowledge sets and the response every requester sees are
// bit-identical for every bucket count (tests/test_delivery_buckets.cpp
// pins {1, 4, 64}); what changes is only the interleaving of hook calls
// ACROSS receivers (phase-2 on_push runs bucket-major instead of global
// initiator order, respond() evaluates in responder-bucket order instead of
// first-pull order). on_pull_reply delivery stays in requester (initiator)
// order under every bucket count.
//
// Threading model (sim/parallel). set_threads(k) with k >= 1 - or
// constructing a parallel::ParallelEngine - replaces the serial phase-1
// loop with a sharded one: initiators are split into fixed-size contiguous
// shards, each shard runs on the pool with its OWN draw stream
// (Rng::fork(round, shard) off a seed-derived base) and its own
// contact/push buffers, and the shards merge in index order. Consequences:
//   * trajectories are bit-identical for every thread count >= 1 (the shard
//     decomposition, streams and merge order never depend on the pool), but
//     DIFFER from the serial engine's on uniform draws, which consume one
//     master stream in contact order. Direct-addressed rounds consume no
//     engine randomness and stay bit-identical to the serial path.
//   * hooks.initiate runs concurrently; it must not mutate shared state
//     (every algorithm in this repo only reads its per-node state there).
//   * knowledge learned from a round's contacts becomes visible only after
//     phase 1 completes (truly-simultaneous-calls semantics); the serial
//     path applies it incrementally in initiator order. The learned SETS
//     are identical; only mid-phase-1 reads could tell the difference.
// Phases 2-3 run serially on the calling thread by default, in the
// deterministic orders documented above. set_parallel_delivery(true)
// additionally fans the delivery sweeps of a sharded engine over the same
// pool, one receiver bucket per work item (pass B of phase 3 splits at
// requester-bucket boundaries): because buckets PARTITION the receivers and
// per-bucket metrics deltas merge in bucket order, results stay
// bit-identical for every thread count. The hook contract tightens in this
// mode: respond / on_push / on_pull_reply may run concurrently for nodes in
// DIFFERENT buckets and must only touch that node's own state (every
// algorithm in this repo qualifies except through shared tallies - which is
// why this stays opt-in). With knowledge tracking enabled the engine
// silently keeps the delivery phases serial (the tracker's spill arena is
// shared across rows), still bucketed; semantics are unchanged either way.
//
// Fault timeline (sim/fault.hpp). set_fault_model(m) installs a pluggable
// fault scenario the engine consults per round: before each round it calls
// m->on_round_begin(round, net) - which may crash nodes mid-run (the alive
// set is dynamic but monotone) - and arms a per-contact LossChannel when
// m->loss_probability(round) > 0. A lossy contact's connection still happens
// (metered; the handshake reveals both endpoints' IDs) but its payload -
// push content, pull response, both exchange directions - is dropped,
// exactly as if the target had failed. Loss decisions are keyed by (network
// seed, round, initiator) counter-based streams, never by the engine's draw
// path, so they are identical for the serial and sharded executors and for
// every thread count. `round` is the engine-lifetime round index (it starts
// at 0 and never resets with the metrics).
//
// Partitions (sim/fault.hpp PartitionFault). When the fault model returns a
// non-null m->partition_components(round) map, every contact whose initiator
// and target carry different component labels is treated exactly like a
// lossy contact: the connection is metered, the payload is dropped, and the
// drop is counted among the round's loss drops in telemetry. The map is
// pre-committed at run begin from its own seed-keyed per-node streams, so
// partition trajectories follow the same determinism contract as loss.
//
// Churn (PR 6). The alive set is no longer monotone: fault models (and
// callers) may also Network::join() mid-run, up to the capacity the network
// pre-reserved at construction (NetworkOptions::max_nodes). All
// receiver-indexed engine state - metrics, pull stamps, the delivery bucket
// map - is sized to that capacity up front, so joins never reallocate or
// re-partition anything; at each round begin (after the fault model's
// on_round_begin, where scheduled joins fire) the engine folds growth in by
// extending the all-nodes initiator list and discarding carried-over
// uniform draws taken against the old bound (sync_network_growth). Join
// order is part of the round timeline, so trajectories stay bit-identical
// across executors, thread counts and delivery bucket counts.
//
// Byzantine responders (sim/fault.hpp ByzantineResponder). When the fault
// model reports has_byzantine(), each traitor's pull response is rewritten
// by corrupt_response - a pure function of (network seed, round, responder),
// so the cached-response machinery and every executor agree bit-for-bit -
// and phase 1 tolerates direct contacts to IDs that name nothing (poisoned
// garbage a node honestly learned): the dial finds no endpoint and the
// initiator simply loses its turn.
#pragma once

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "obs/recorder.hpp"
#include "sim/fault.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/parallel/shard.hpp"
#include "sim/push_queue.hpp"

namespace gossip::sim {

enum class ContactKind : std::uint8_t {
  kPush,
  kPull,
  /// One phone call transferring content both ways (PUSH the payload, get
  /// the partner's address-oblivious response back). This is the classical
  /// Karp et al. [10] exchange used by the RRS and Name-Dropper baselines;
  /// the paper's own algorithms use only kPush/kPull.
  kExchange,
};

/// One initiated communication.
struct Contact {
  ContactKind kind = ContactKind::kPush;
  bool to_random = true;            ///< uniform random target vs. direct addressing
  NodeId target;                    ///< used when !to_random
  Message payload;                  ///< carried content for kPush / kExchange

  [[nodiscard]] static Contact push_random(Message msg) {
    return Contact{ContactKind::kPush, true, NodeId::unclustered(), std::move(msg)};
  }
  [[nodiscard]] static Contact push_direct(NodeId to, Message msg) {
    return Contact{ContactKind::kPush, false, to, std::move(msg)};
  }
  [[nodiscard]] static Contact pull_random() {
    return Contact{ContactKind::kPull, true, NodeId::unclustered(), Message::empty()};
  }
  [[nodiscard]] static Contact pull_direct(NodeId from) {
    return Contact{ContactKind::kPull, false, from, Message::empty()};
  }
  [[nodiscard]] static Contact exchange_random(Message msg) {
    return Contact{ContactKind::kExchange, true, NodeId::unclustered(), std::move(msg)};
  }
  [[nodiscard]] static Contact exchange_direct(NodeId with, Message msg) {
    return Contact{ContactKind::kExchange, false, with, std::move(msg)};
  }
};

// ---------------------------------------------------------------------------
// Static-dispatch hook detection.
//
// A hooks object for the templated executor is any type with an
// `initiate(node)` member; the other three hooks are optional and detected at
// compile time, so an algorithm that never answers pulls pays nothing for the
// respond machinery. All callbacks receive node *indices*; implementations
// must only consult that node's local state - the engine cannot enforce
// locality, but the knowledge tracker enforces the addressing consequences.
// Hooks must not consume the network's master RNG inside initiate(): the
// engine batches its own uniform-target draws per chunk of initiators (the
// draw ORDER is preserved, so results are bit-identical to unbatched
// execution as long as initiate() leaves the master stream alone). Per-node
// randomness belongs to Network::node_rng / forked streams, which every
// algorithm in this repo already uses.
// ---------------------------------------------------------------------------

template <class H>
concept HasInitiateHook = requires(H& h, std::uint32_t v) {
  { h.initiate(v) } -> std::convertible_to<std::optional<Contact>>;
};
template <class H>
concept HasRespondHook = requires(H& h, std::uint32_t v) {
  { h.respond(v) } -> std::convertible_to<Message>;
};
template <class H>
concept HasOnPushHook = requires(H& h, std::uint32_t v, const Message& m) {
  h.on_push(v, m);
};
template <class H>
concept HasOnPullReplyHook = requires(H& h, std::uint32_t v, const Message& m) {
  h.on_pull_reply(v, m);
};

namespace detail {
/// Placeholder for an omitted hook slot in make_hooks.
struct NoHookFn {};
}  // namespace detail

/// Pass for any hook slot of make_hooks that the round does not use.
inline constexpr detail::NoHookFn no_hook{};

/// Hooks object composed from callables (lambdas or function objects). Slots
/// holding sim::no_hook produce no member, so the executor statically skips
/// the corresponding phase work.
template <class I, class R, class P, class Q>
struct ComposedHooks {
  I initiate_fn;
  [[no_unique_address]] R respond_fn;
  [[no_unique_address]] P on_push_fn;
  [[no_unique_address]] Q on_pull_reply_fn;

  std::optional<Contact> initiate(std::uint32_t v) { return initiate_fn(v); }
  Message respond(std::uint32_t v)
    requires std::invocable<R&, std::uint32_t>
  {
    return respond_fn(v);
  }
  void on_push(std::uint32_t receiver, const Message& m)
    requires std::invocable<P&, std::uint32_t, const Message&>
  {
    on_push_fn(receiver, m);
  }
  void on_pull_reply(std::uint32_t requester, const Message& m)
    requires std::invocable<Q&, std::uint32_t, const Message&>
  {
    on_pull_reply_fn(requester, m);
  }
};

/// Builds a static-dispatch hooks object. Slot order matches RoundHooks:
/// (initiate, respond, on_push, on_pull_reply); pass sim::no_hook for unused
/// trailing-or-middle slots.
template <class I, class R = detail::NoHookFn, class P = detail::NoHookFn,
          class Q = detail::NoHookFn>
[[nodiscard]] auto make_hooks(I initiate, R respond = {}, P on_push = {},
                              Q on_pull_reply = {}) {
  return ComposedHooks<I, R, P, Q>{std::move(initiate), std::move(respond),
                                   std::move(on_push), std::move(on_pull_reply)};
}

/// Behaviour of one synchronous round, type-erased. This is the legacy
/// dynamic-dispatch surface; it executes through the same templated engine
/// core via an adapter, paying one indirect call per hook invocation.
struct RoundHooks {
  /// Called once per (alive) initiator; return std::nullopt to stay silent.
  std::function<std::optional<Contact>(std::uint32_t node)> initiate;
  /// Address-oblivious pull response; called at most once per node per
  /// round, only if someone pulled it. Null => all pulls answered Empty.
  std::function<Message(std::uint32_t node)> respond;
  /// Delivery of a pushed message (receiver is alive). Null => drop.
  std::function<void(std::uint32_t receiver, const Message& msg)> on_push;
  /// Delivery of a pull response (requester is alive; responder was alive).
  /// Pulls to failed nodes produce no callback. Null => drop.
  std::function<void(std::uint32_t requester, const Message& msg)> on_pull_reply;
};

namespace detail {
/// Adapts RoundHooks onto the static-dispatch executor. Null checks replace
/// the compile-time hook detection; semantics are identical.
struct LegacyHooksAdapter {
  const RoundHooks& h;

  std::optional<Contact> initiate(std::uint32_t v) const { return h.initiate(v); }
  Message respond(std::uint32_t v) const {
    return h.respond ? h.respond(v) : Message::empty();
  }
  void on_push(std::uint32_t receiver, const Message& m) const {
    if (h.on_push) h.on_push(receiver, m);
  }
  void on_pull_reply(std::uint32_t requester, const Message& m) const {
    if (h.on_pull_reply) h.on_pull_reply(requester, m);
  }
};

/// resolve_direct_target's "this ID names nothing" result, returned instead
/// of a contract violation when byzantine poisoning makes unknown IDs an
/// expected consequence of honest behaviour.
inline constexpr std::uint32_t kUnresolvedTarget = 0xFFFFFFFFu;

/// Resolves the target of a direct-addressed contact, enforcing the model's
/// honesty rules (real ID, not self, known to the initiator). Read-only on
/// the network, so safe from phase-1 worker threads. With `tolerate_unknown`
/// an ID absent from the network yields kUnresolvedTarget instead of
/// throwing (see the Byzantine notes at the top of this header).
[[nodiscard]] std::uint32_t resolve_direct_target(const Network& net, std::uint32_t node,
                                                  const Contact& contact,
                                                  bool tolerate_unknown);

/// Phase-1 loop shared by the serial and sharded executors: offer every
/// initiator in `initiators` its one contact and route the consequences
/// through `sink`. The Sink supplies the executor-specific parts:
///   u32  draw_other(u32 node)                    uniform target != node
///   void record_initiator()
///   void record_push(u32 from, u32 to, u64 bits, bool has_payload)
///   void record_pull_request(u32 from, u32 to)
///   void on_contact(u32 a, u32 b)                endpoints for knowledge/Delta
///   void enqueue_push(u32 to, u32 src, u8 chan, Message&&)
///   void enqueue_pull(u32 from, u32 responder, u8 chan)
///   void record_loss(u32 initiator)              telemetry; drop branch only
/// `src`/`chan` carry the provenance channel (obs::ProvenanceTracer
/// encoding) of the eventual delivery; with a tracer armed the sinks use
/// them to record first-inform candidates at enqueue time
/// (obs::TraceCandidate) - the queues themselves never store them, so
/// computing them here is a couple of ALU ops per contact.
/// `want_payloads` skips queueing when nothing observes deliveries (no
/// on_push hook, no knowledge tracking) - queueing would be dead work.
/// `loss` is the round's armed LossChannel, or null for a lossless round
/// (the common case pays one predictable branch per contact). Drop decisions
/// are keyed by the initiator, so serial and sharded execution agree.
/// `partition` is the round's component map (null = whole network): a
/// cross-component contact drops its payload exactly like a lossy one.
/// `tolerate_unknown` (byzantine rounds only) turns direct dials to IDs that
/// name nothing into lost turns: the initiator is counted (it acted), but no
/// connection is metered, nothing is learned and nothing is delivered.
// GOSSIP_HOT
template <class Hooks, class Sink>
void run_phase1(Network& net, Hooks& hooks, Sink& sink,
                std::span<const std::uint32_t> initiators, bool no_failures,
                bool want_payloads, const LossChannel* loss,
                const std::uint32_t* partition, bool tolerate_unknown) {
  for (const std::uint32_t node : initiators) {
    if (no_failures) {
      // alive() would bounds-check a caller-supplied initiator; keep that
      // contract on the fast path that skips it.
      GOSSIP_CHECK(node < net.n());
    } else if (!net.alive(node)) {
      continue;
    }
    std::optional<Contact> contact = hooks.initiate(node);
    if (!contact) continue;
    sink.record_initiator();
    std::uint32_t target;
    if (contact->to_random) {
      // Uniform over all n-1 other nodes (failed ones included - the
      // caller cannot know who failed; such contacts are simply lost).
      target = sink.draw_other(node);
    } else {
      target = resolve_direct_target(net, node, *contact, tolerate_unknown);
      if (target == kUnresolvedTarget) continue;  // poisoned ID: dial finds nobody
    }

    sink.on_contact(node, target);

    // Lossy channel / partition: the connection succeeds (metered; IDs
    // exchanged in the handshake) but the payload in every direction is
    // dropped - the same observable consequences as contacting a failed
    // node. A cross-component contact under an armed partition map drops
    // unconditionally and is counted among the round's loss drops.
    const bool lost = (loss != nullptr && loss->drop(node)) ||
                      (partition != nullptr && partition[node] != partition[target]);
    if (lost) sink.record_loss(node);
    // Provenance channel byte of whatever this contact delivers (kind bits
    // + "dialled a learned ID" bit; obs::ProvenanceTracer encoding).
    const std::uint8_t direct =
        contact->to_random ? 0 : obs::ProvenanceTracer::kDirectBit;
    if (contact->kind == ContactKind::kPush || contact->kind == ContactKind::kExchange) {
      const bool exchange = contact->kind == ContactKind::kExchange;
      // Meter before the payload is moved into the pending-push queue.
      const std::uint64_t bits = contact->payload.bits(net.costs());
      const bool has_payload = !contact->payload.is_empty();
      sink.record_push(node, target, bits, has_payload);
      if (!lost && (no_failures || net.alive(target))) {
        if (exchange) {
          sink.enqueue_pull(
              node, target,
              static_cast<std::uint8_t>(obs::ProvenanceTracer::kChanExchange | direct));
        }
        if (want_payloads) {
          sink.enqueue_push(target, node,
                            static_cast<std::uint8_t>(
                                (exchange ? obs::ProvenanceTracer::kChanExchange
                                          : obs::ProvenanceTracer::kChanPush) |
                                direct),
                            std::move(contact->payload));
        }
      }
    } else {
      sink.record_pull_request(node, target);
      if (!lost && (no_failures || net.alive(target))) {
        sink.enqueue_pull(node, target,
                          static_cast<std::uint8_t>(
                              obs::ProvenanceTracer::kChanPullResponse | direct));
      }
    }
  }
}
}  // namespace detail

class Engine {
 public:
  /// `keep_history` retains per-round stats (used by the dynamics bench).
  explicit Engine(Network& net, bool keep_history = false);

  /// Virtual only so parallel::ParallelEngine can be owned through an
  /// Engine pointer; the engine has no other virtual surface (run_round is
  /// a template and dispatches statically).
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enables (threads >= 1) or disables (threads == 0) the sharded phase-1
  /// executor described in the Threading model notes above. shard_size == 0
  /// picks parallel::kDefaultShardSize. Sharded trajectories are identical
  /// for every thread count but re-key the uniform draws, so enabling this
  /// mid-run changes subsequent same-seed trajectories exactly once (see
  /// CHANGES.md); typical callers opt in before the first round via the
  /// `threads` field of their run options.
  ///
  /// Enabling consumes ONE draw from the network's master stream: it seeds
  /// this engine's shard streams, so consecutive sharded engines over the
  /// same network run independent trajectories (just as consecutive serial
  /// engines advance the shared master stream) instead of replaying one
  /// contact graph. Still deterministic in (network seed, construction
  /// order) and still invariant in the thread count.
  void set_threads(unsigned threads, std::uint32_t shard_size = 0) {
    par_.reset();
    if (threads >= 1) {
      par_ = std::make_unique<parallel::Phase1Sharder>(net_.rng().next_u64(), threads,
                                                       shard_size);
    }
  }
  /// Worker count of the sharded executor, or 0 in serial mode.
  [[nodiscard]] unsigned threads() const noexcept { return par_ ? par_->threads() : 0; }

  /// Receiver-bucket decomposition of the delivery phases (see the bucketing
  /// notes above). `requested` 0 = auto (currently the flat sweep - the
  /// prefetched linear probe wins at every measured n, see make_bucket_map),
  /// 1 = flat, otherwise the bucket count is the largest power-of-two
  /// partition not exceeding the request. Delivery content, metrics and
  /// knowledge are bit-identical for every value; only cross-receiver hook
  /// interleaving changes. Takes effect from the next round; consumes no
  /// randomness, so toggling it never re-keys a trajectory.
  void set_delivery_buckets(std::uint32_t requested) {
    GOSSIP_CHECK_MSG(requested <= kMaxDeliveryBuckets,
                     "delivery_buckets must be in [0, " << kMaxDeliveryBuckets
                                                        << "] (0 = auto)");
    requested_buckets_ = requested;
    // Partitioned over the pre-reserved capacity (== n when joins are off),
    // so the decomposition never shifts when joiners arrive mid-run.
    delivery_map_ = make_bucket_map(net_.capacity(), requested);
    pushes_.configure(delivery_map_);
  }
  /// The requested bucket knob (0 = auto), not the resolved count.
  [[nodiscard]] std::uint32_t delivery_buckets() const noexcept {
    return requested_buckets_;
  }
  /// Buckets the current decomposition resolves to (>= 1).
  [[nodiscard]] std::uint32_t delivery_bucket_count() const noexcept {
    return delivery_map_.count;
  }

  /// Opt-in: run phases 2-3 of a sharded engine on its thread pool, one
  /// receiver bucket per work item (see the Threading model notes for the
  /// tightened hook contract). No effect in serial mode, with a flat bucket
  /// map, or while knowledge tracking is enabled - those rounds keep the
  /// serial bucketed sweep. Results are bit-identical either way.
  void set_parallel_delivery(bool on) noexcept { parallel_delivery_ = on; }
  [[nodiscard]] bool parallel_delivery() const noexcept { return parallel_delivery_; }

  /// Wall-clock seconds accumulated per engine phase across run_round calls
  /// while set_phase_timing(true) is active (bench_engine_throughput's
  /// breakdown). Off by default: the hot loop then pays one predicted
  /// branch per phase per round and takes no clock reads. The struct is the
  /// shared obs::PhaseTimes, so the bench ReferenceEngine's recorder-backed
  /// accumulation carries identical reset/accumulate semantics.
  using PhaseTimes = obs::PhaseTimes;
  void set_phase_timing(bool on) noexcept { time_phases_ = on; }
  [[nodiscard]] const PhaseTimes& phase_times() const noexcept { return phase_times_; }
  /// Zeroes the accumulated phase clocks (recorded telemetry rounds, if a
  /// recorder is attached, are kept; its own accumulators reset in step).
  void reset_phase_times() noexcept {
    phase_times_ = PhaseTimes{};
    if (telemetry_ != nullptr) telemetry_->rounds.reset_phase_times();
  }

  /// Attaches (or detaches, with nullptr) the observability handle: every
  /// subsequent round appends one obs::RoundRecord, the event log receives
  /// the fault timeline (joins/crashes via the network observer this call
  /// installs, sampled loss drops, byzantine corruptions), and phase clocks
  /// are read regardless of set_phase_timing. Detached costs one pointer
  /// null-check per round - no virtual call sits in any phase loop. While
  /// attached, a sharded engine keeps its delivery phases serial (like
  /// knowledge tracking does): corruption events are noted inside pass A.
  /// Non-owning; the handle must outlive every subsequent run_round.
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
    net_.set_observer(telemetry != nullptr ? &telemetry->events : nullptr);
  }
  [[nodiscard]] obs::Telemetry* telemetry() const noexcept { return telemetry_; }
  /// Event log of the attached handle (null when detached); the cluster
  /// Driver posts its verdict summaries here.
  [[nodiscard]] obs::EventLog* event_log() const noexcept {
    return telemetry_ != nullptr ? &telemetry_->events : nullptr;
  }

  /// Installs (or clears, with nullptr) a fault model consulted on the round
  /// timeline - see the Fault timeline notes above. Non-owning: the model
  /// must outlive every subsequent run_round. The caller is responsible for
  /// invoking the model's on_run_begin hook before the algorithm starts
  /// (TrialRunner does this per trial).
  void set_fault_model(FaultModel* fault) noexcept { fault_ = fault; }
  [[nodiscard]] FaultModel* fault_model() const noexcept { return fault_; }

  /// Runs one round with every node as a potential initiator (static
  /// dispatch; hooks resolved at compile time). RoundHooks is excluded so a
  /// mutable RoundHooks lvalue still routes through the null-check adapter.
  template <class Hooks>
    requires(!std::same_as<std::remove_cvref_t<Hooks>, RoundHooks>)
  void run_round(Hooks&& hooks) {
    // The all-nodes span is derived INSIDE the impl, after the fault model's
    // on_round_begin - this round's joiners must already be initiators.
    run_round_impl(std::forward<Hooks>(hooks), std::span<const std::uint32_t>(),
                   /*use_all_nodes=*/true);
  }

  /// Runs one round where only `initiators` are offered the chance to act
  /// (everyone can still receive). This is a pure performance device for
  /// rounds in which whole classes of nodes are known to be silent; it never
  /// changes semantics, because initiate can always return nullopt. Callers
  /// of this overload own the initiator set, so nodes joining at this
  /// round's boundary initiate only if the caller listed them.
  template <class Hooks>
    requires(!std::same_as<std::remove_cvref_t<Hooks>, RoundHooks>)
  void run_round(Hooks&& hooks, std::span<const std::uint32_t> initiators) {
    run_round_impl(std::forward<Hooks>(hooks), initiators, /*use_all_nodes=*/false);
  }

  /// Legacy dynamic-dispatch overloads (thin adapters over the template).
  void run_round(const RoundHooks& hooks);
  void run_round(const RoundHooks& hooks, std::span<const std::uint32_t> initiators);

  [[nodiscard]] std::uint64_t rounds() const noexcept { return metrics_.run().rounds; }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept { return metrics_; }
  [[nodiscard]] MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] Network& network() noexcept { return net_; }
  [[nodiscard]] const Network& network() const noexcept { return net_; }

  /// Draws a uniformly random node index different from `self`, from the
  /// same bulk draw buffer the serial round executor consumes (so
  /// interleaving calls with rounds keeps one deterministic master-stream
  /// order; sharded rounds leave the master stream untouched).
  /// Precondition: the network has at least two nodes (there is no "other"
  /// node to draw in a single-node network; uniform_below(0) is undefined).
  [[nodiscard]] std::uint32_t random_other(std::uint32_t self);

 private:
  /// Uniform target draws per bulk fill_uniform_below refill: large enough
  /// to amortize and vectorize the fill, small enough to stay L1-resident.
  static constexpr std::size_t kDrawBatch = 1024;

  /// Shared body of both public run_round templates; `use_all_nodes` defers
  /// taking the all-nodes span until after this round's joins have fired.
  template <class Hooks>
  void run_round_impl(Hooks&& hooks, std::span<const std::uint32_t> initiators,
                      bool use_all_nodes);

  /// Folds mid-run network growth into the engine: extends the all-nodes
  /// initiator list with the joiners and discards uniform draws carried over
  /// from the old bound. Called once per round, after the fault model ran.
  void sync_network_growth();

  /// Phase-1 sink of the serial executor: meters straight into the
  /// collector, learns contacts immediately, fills the engine's own queues,
  /// draws from the master-stream ring buffer.
  struct SerialSink {
    Engine& e;
    bool track;
    /// Round tracer hoisted out of the engine: enqueue_push probes it per
    /// contact, and a member load through `e` would be reloaded every
    /// iteration (the queue stores alias the Engine object).
    obs::ProvenanceTracer* const tracer = nullptr;

    void record_initiator() { e.metrics_.record_initiator(); }
    std::uint32_t draw_other(std::uint32_t node) {
      std::uint32_t t = e.next_target_draw();
      if (t >= node) ++t;
      return t;
    }
    void record_push(std::uint32_t from, std::uint32_t to, std::uint64_t bits,
                     bool has_payload) {
      e.metrics_.record_push(from, to, bits, has_payload);
    }
    void record_pull_request(std::uint32_t from, std::uint32_t to) {
      e.metrics_.record_pull_request(from, to);
    }
    void on_contact(std::uint32_t a, std::uint32_t b) {
      if (track) e.learn_contact(a, b);
    }
    // GOSSIP_HOT
    void enqueue_push(std::uint32_t to, std::uint32_t src, std::uint8_t chan,
                      Message&& msg) {
      // The bitmap claim happens here (cheap: the word was just probed), but
      // the Entry store is deferred to the apply sweep between phases 1 and
      // 2: its scattered stores would stall this loop's store pipeline
      // (measured ~1.5x phase 1 at n=1e6), while the sweep's sequential scan
      // prefetches them. Claiming also dedups same-round candidates, so the
      // serial list holds exactly the round's first-informs.
      if (msg.has_rumor() && tracer != nullptr && tracer->try_claim(to))
          [[unlikely]] {
        // gossip-lint: allow(hot-push-back) at most one claim per node per run; amortized
        e.trace_candidates_.push_back(obs::TraceCandidate{to, src, chan});
      }
      e.pushes_.enqueue(to, std::move(msg));
    }
    void enqueue_pull(std::uint32_t from, std::uint32_t responder, std::uint8_t chan) {
      e.pulls_[e.pull_count_++] = PendingPull{from, responder, chan};
    }
    void record_loss(std::uint32_t initiator) {
      if (e.telemetry_ != nullptr) e.telemetry_->events.note_loss_drop(initiator);
    }
  };

  /// Next uniform draw from [0, n-1), bulk-refilled. Draws are consumed in
  /// contact order; unconsumed draws carry over across rounds, so the master
  /// stream is deterministic in (seed, contact sequence).
  std::uint32_t next_target_draw() {
    if (draw_pos_ == draw_buf_.size()) {
      GOSSIP_CHECK_MSG(net_.n() >= 2, "uniform contacts need at least two nodes");
      draw_buf_.resize(kDrawBatch);
      net_.rng().fill_uniform_below(net_.n() - 1, draw_buf_);
      draw_pos_ = 0;
    }
    return draw_buf_[draw_pos_++];
  }

  void learn_from_message(std::uint32_t receiver, const Message& msg) {
    KnowledgeTracker* k = net_.knowledge();
    if (!k) return;
    const NodeId own = net_.id_of(receiver);
    const Message::IdList& ids = msg.ids();
    if (ids.size() <= 3) {
      // Common case (paper: O(1) IDs per message): the per-ID path's inline
      // scan beats gathering a batch.
      ids.for_each([&](NodeId id) { k->learn(receiver, id, own); });
      return;
    }
    // ClusterResize-style lists: one sorted bulk merge via learn_all.
    learn_scratch_.clear();
    ids.for_each([&](NodeId id) { learn_scratch_.push_back(id); });
    k->learn_all(receiver, learn_scratch_, own);
  }

  void learn_contact(std::uint32_t a, std::uint32_t b) {
    if (auto* k = net_.knowledge()) {
      // A phone call reveals both endpoints' IDs (Lemma 14's G_t edges).
      k->learn(a, net_.id_of(b), net_.id_of(a));
      k->learn(b, net_.id_of(a), net_.id_of(b));
    }
  }

  /// One direction of learn_contact, for the sharded merge's split replay
  /// (initiator side in shard order, target side in receiver-bucket order).
  void learn_one_sided(std::uint32_t learner, std::uint32_t partner) {
    if (auto* k = net_.knowledge()) {
      k->learn(learner, net_.id_of(partner), net_.id_of(learner));
    }
  }

  /// Phase 2 body for one pending-push queue: decode, learn, deliver.
  /// Provenance never touches this loop - push first-informs were already
  /// recorded as enqueue-time candidates by the phase-1 sinks and applied
  /// before phase 2 started, so the replay runs the original layout whether
  /// or not a tracer is armed.
  template <class Hooks>
  void deliver_queue(const PushQueue& queue, Hooks& hooks, bool track) {
    queue.for_each([&](std::uint32_t to, const Message& msg) {
      if (track) learn_from_message(to, msg);
      if constexpr (HasOnPushHook<std::remove_reference_t<Hooks>>) hooks.on_push(to, msg);
    });
  }

  /// Sharded phase 1: fan the initiator span out over fixed-size shards on
  /// the pool, then merge metrics deltas, involvement, knowledge and pull
  /// queues in shard-index (= initiator) order. Push queues stay per shard;
  /// phase 2 replays them in the same order without re-copying the streams.
  /// The loss channel is shared read-only across the workers (drop() forks
  /// from a const base, so it is thread-safe and thread-count-invariant).
  template <class Hooks>
  void run_phase1_sharded(Hooks& hooks, std::span<const std::uint32_t> initiators,
                          bool no_failures, bool track, bool want_payloads,
                          const LossChannel* loss, const std::uint32_t* partition,
                          bool tolerate_unknown) {
    parallel::Phase1Sharder& par = *par_;
    const std::size_t n_shards = par.shard_count(initiators.size());
    const std::span<parallel::ShardBuffer> shards = par.acquire(n_shards);
    active_shards_ = n_shards;
    // Engine-lifetime key (never reset by set_threads or metrics resets), so
    // re-enabling sharding on a used engine cannot replay draw streams.
    const std::uint64_t round_key = sharded_round_key_++;
    const bool want_endpoints = track || metrics_.track_involvement();
    const std::uint64_t draw_bound = net_.n() - 1;
    const std::uint32_t shard_size = par.shard_size();
    // Provenance tracer and the event-sample cap are round-stable: the
    // informed bitmap is only written in the engine's serial sections
    // (candidate application, phase 3), never during phase 1, so the shards
    // can probe it race-free while recording first-inform candidates.
    const obs::ProvenanceTracer* const shard_tracer =
        telemetry_ != nullptr && telemetry_->provenance.active()
            ? &telemetry_->provenance
            : nullptr;
    const std::size_t sample_cap =
        telemetry_ != nullptr ? telemetry_->events.sample_cap() : obs::kEventSampleCap;
    par.pool().parallel_for(n_shards, [&](std::size_t s) {
      parallel::ShardBuffer& sb = shards[s];
      const std::size_t lo = s * static_cast<std::size_t>(shard_size);
      const std::size_t len =
          std::min<std::size_t>(shard_size, initiators.size() - lo);
      sb.begin_round(par.stream_base(), round_key, s, len, delivery_map_,
                     shard_tracer, sample_cap);
      parallel::ShardSink sink{sb, draw_bound, want_endpoints};
      detail::run_phase1(net_, hooks, sink, initiators.subspan(lo, len), no_failures,
                         want_payloads, loss, partition, tolerate_unknown);
    });
    // Deterministic merge. The initiator-side endpoint replay runs in shard
    // (= global initiator) order; the target side is routed into receiver
    // buckets and replayed bucket-by-bucket, turning the per-contact random
    // probe of the involvement counters and the target's knowledge row into
    // a cache-resident sweep. Learned sets and Delta are order-insensitive
    // (set inserts; monotone counters under a running max), so the split
    // replay is bit-identical to the old per-endpoint interleaving.
    const bool bucket_endpoints = want_endpoints && !delivery_map_.flat();
    if (bucket_endpoints) {
      if (endpoint_buckets_.size() < delivery_map_.count) {
        endpoint_buckets_.resize(delivery_map_.count);
      }
      for (std::uint32_t b = 0; b < delivery_map_.count; ++b) {
        endpoint_buckets_[b].clear();
      }
    }
    for (const parallel::ShardBuffer& sb : shards) {
      // Shard deltas are additive counters only: involvement (a running max
      // over GLOBAL per-node counts) must be left to the replay below, or
      // the merge would double-count it.
      GOSSIP_DCHECK_MSG(sb.stats.max_involvement == 0,
                        "shard delta carries max_involvement; the merge owns it");
      metrics_.merge_round_delta(sb.stats);
      if (telemetry_ != nullptr) {
        // Bottom-k merge is order-insensitive, so folding shards in index
        // order matches every other shard/thread decomposition.
        telemetry_->events.merge_loss(sb.loss_drops, sb.drop_sample);
      }
      if (want_endpoints) {
        for (const auto& [a, b] : sb.endpoints) {
          if (bucket_endpoints) {
            learn_one_sided(a, b);
            metrics_.record_involvement(a);
            endpoint_buckets_[delivery_map_.bucket_of(b)].emplace_back(a, b);
          } else {
            learn_contact(a, b);
            metrics_.record_involvement(a);
            metrics_.record_involvement(b);
          }
        }
      }
      // The flat pending-pull buffer was sized for one pull per offered
      // initiator; a shard writing past it would corrupt its neighbour's
      // slots silently.
      GOSSIP_DCHECK_MSG(pull_count_ + sb.pulls.size() <= pulls_.size(),
                        "sharded merge overflows the pending-pull slots");
      std::copy(sb.pulls.begin(), sb.pulls.end(), pulls_.begin() + pull_count_);
      pull_count_ += sb.pulls.size();
    }
    if (bucket_endpoints) {
      for (std::uint32_t bucket = 0; bucket < delivery_map_.count; ++bucket) {
        for (const auto& [a, b] : endpoint_buckets_[bucket]) {
          learn_one_sided(b, a);
          metrics_.record_involvement(b);
        }
      }
    }
  }

  Network& net_;
  MetricsCollector metrics_;
  // Scratch buffers reused across rounds.
  BucketedPushQueue pushes_;  ///< serial-mode pending pushes (sharded: per shard)
  std::vector<PendingPull> pulls_;  ///< flat slots; pull_count_ are filled
  std::size_t pull_count_ = 0;
  // Serial sink's first-inform candidates for the round's armed tracer
  // (cleared at the top of run_round_impl). Sharded rounds collect
  // candidates per shard instead (parallel/shard.hpp).
  std::vector<obs::TraceCandidate> trace_candidates_;
  std::vector<std::uint32_t> all_nodes_;
  std::vector<NodeId> learn_scratch_;  ///< bulk-learn gather buffer
  // Bulk uniform-target draws (ring of kDrawBatch, refilled on demand).
  std::vector<std::uint32_t> draw_buf_;
  std::size_t draw_pos_ = 0;
  // Receiver-bucket decomposition of the delivery phases (see above).
  BucketMap delivery_map_;
  std::uint32_t requested_buckets_ = 0;  ///< the knob; 0 = auto
  bool parallel_delivery_ = false;
  // Phase-3 state. Pass A groups the pending pulls by responder bucket
  // (pull_refs_), evaluates each responder's single response into its
  // bucket's compact ResponseStore (epoch-stamped by byte offset via
  // pull_stamp_), meters every pull from the store's headers and records
  // the per-pull response offset. Pass B sweeps pulls_/response_of_
  // sequentially in requester (initiator) order, decoding on the fly - it
  // runs at all only when knowledge tracking or an on_pull_reply hook
  // consumes the message.
  struct PullRef {
    std::uint32_t responder;
    std::uint32_t index;  ///< position in pulls_ / response_of_
  };
  /// Per-responder evaluation state, 16 bytes so the epoch stamp and the
  /// cached response's metering share one cache line: a repeated pull pays
  /// exactly ONE random probe (prefetched ahead in the eval loop) instead
  /// of a stamp probe plus a dependent response-header read.
  struct PullStamp {
    std::uint64_t stamp = 0;  ///< epoch << 32 | response byte offset
    std::uint64_t meter = 0;  ///< response bits << 1 | has_payload
  };
  std::vector<std::vector<PullRef>> pull_refs_;
  std::vector<std::uint32_t> response_of_;  ///< per-pull response byte offset
  std::vector<ResponseStore> response_stores_;  ///< one per receiver bucket
  std::vector<PullStamp> pull_stamp_;
  std::uint32_t pull_epoch_ = 0;
  // Pool-execution scratch: per-bucket pass-A metering deltas (merged in
  // bucket order) and pass-B requester-chunk bounds.
  std::vector<RoundStats> bucket_deltas_;
  std::vector<std::size_t> pull_chunk_bounds_;
  // Sharded-merge scratch: contact endpoints routed by target bucket.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> endpoint_buckets_;
  // Phase timing (off by default; see PhaseTimes).
  bool time_phases_ = false;
  PhaseTimes phase_times_;
  // Sharded execution state (null in serial mode).
  std::unique_ptr<parallel::Phase1Sharder> par_;
  std::size_t active_shards_ = 0;  ///< shards filled by the current round
  std::uint64_t sharded_round_key_ = 0;  ///< engine-lifetime stream key
  // Fault timeline (null = fault-free; see sim/fault.hpp).
  FaultModel* fault_ = nullptr;          ///< non-owning
  std::uint64_t fault_clock_ = 0;        ///< engine-lifetime round index
  // Observability handle (null = detached; see set_telemetry).
  obs::Telemetry* telemetry_ = nullptr;  ///< non-owning
  // Network size the engine state last absorbed (see sync_network_growth).
  std::uint32_t synced_n_ = 0;
};

template <class Hooks>
void Engine::run_round_impl(Hooks&& hooks, std::span<const std::uint32_t> initiators,
                            bool use_all_nodes) {
  using H = std::remove_reference_t<Hooks>;
  static_assert(HasInitiateHook<H>, "a round needs an initiate hook");
  // A const hooks object would silently constrain away its non-const hook
  // members (compiling to a round that never delivers); reject it unless
  // constness provably hides nothing.
  static_assert(HasRespondHook<H> == HasRespondHook<std::remove_const_t<H>> &&
                    HasOnPushHook<H> == HasOnPushHook<std::remove_const_t<H>> &&
                    HasOnPullReplyHook<H> == HasOnPullReplyHook<std::remove_const_t<H>>,
                "const hooks object hides non-const hook members; pass it non-const");

  // ---- Fault timeline: churn, scheduled crashes, per-round loss. ---------
  // Runs before anything else so a crash at this round's boundary silences
  // the node as an initiator AND as a target, a join at this boundary makes
  // the node act from this round on, and the no_failures probe below stays
  // correct when the alive set shrinks.
  const std::uint64_t fault_round = fault_clock_++;
  // Open the telemetry round BEFORE the fault model runs: this round's
  // joins/crashes must stamp with this round index, not the previous one.
  if (telemetry_ != nullptr) {
    telemetry_->events.begin_round(static_cast<std::int64_t>(fault_round));
  }
  LossChannel loss_channel;
  if (fault_ != nullptr) {
    fault_->on_round_begin(fault_round, net_);
    loss_channel =
        LossChannel(net_.options().seed, fault_round, fault_->loss_probability(fault_round));
  }
  const LossChannel* loss = loss_channel.active() ? &loss_channel : nullptr;
  // Component map for the round: non-null only while a PartitionFault's
  // window is open; cross-component contacts then drop like lossy ones.
  const std::uint32_t* partition =
      fault_ != nullptr ? fault_->partition_components(fault_round) : nullptr;
  // Armed per round: traitors rewrite their pull responses and phase 1
  // tolerates dials to poisoned (nonexistent) IDs.
  const FaultModel* byz =
      fault_ != nullptr && fault_->has_byzantine() ? fault_ : nullptr;
  // Fold this round's joins (from the fault model or the caller) into the
  // initiator list and the draw bound before any span over all_nodes_ is
  // taken - growth would reallocate the vector under a live span.
  sync_network_growth();
  if (use_all_nodes) initiators = std::span<const std::uint32_t>(all_nodes_);

  // Wall-clock reads below are phase-timing TELEMETRY only - they never feed
  // a decision, so the trajectory stays a pure function of (seed, config).
  // gossip_lint still flags ::now() outside obs/; the four sites in this
  // function are carried in tools/lint_baseline.txt.
  using PhaseClock = std::chrono::steady_clock;
  // An attached recorder always captures per-phase clocks; phase_times_
  // accumulates only under the explicit set_phase_timing knob.
  const bool timing = time_phases_ || telemetry_ != nullptr;
  PhaseClock::time_point t_begin, t_phase1, t_phase2;
  if (timing) t_begin = PhaseClock::now();

  metrics_.begin_round();
  pushes_.clear();
  // Provenance tracing is per-round opt-in: armed AND not yet complete.
  // Once every armed slot has its first-inform recorded, active() turns
  // false, the sinks skip the candidate probe, and the round is bit-for-bit
  // the untraced fast path. The capacity condition backs try_claim's
  // bounds-check-free hot path: every enqueue target is < n <= the join
  // ceiling, so an arm() that covers Network::capacity() - what TrialRunner
  // and the bench always do - covers every probe; an under-armed tracer is
  // simply not traced by this engine rather than partially traced.
  obs::ProvenanceTracer* const tracer =
      telemetry_ != nullptr && telemetry_->provenance.active() &&
              telemetry_->provenance.capacity() >= net_.capacity()
          ? &telemetry_->provenance
          : nullptr;
  const std::int64_t trace_round = static_cast<std::int64_t>(fault_round);
  trace_candidates_.clear();
  // Pending-pull slots: at most one pull per offered initiator, so a flat
  // grown-once buffer replaces per-contact push_back bookkeeping on the
  // phase-1 hot path.
  if (pulls_.size() < initiators.size()) pulls_.resize(initiators.size());
  pull_count_ = 0;
  if (++pull_epoch_ == 0) {
    // 2^32 rounds: wipe the stamps so a recycled epoch value cannot alias.
    std::fill(pull_stamp_.begin(), pull_stamp_.end(), PullStamp{});
    pull_epoch_ = 1;
  }

  // ---- Phase 1: collect initiated contacts (one per node at most). -------
  // Uniform targets come from bulk-refilled draw buffers (one vectorizable
  // fill_uniform_below pass per batch of contacts); when no node has failed,
  // the per-contact aliveness probes (a guaranteed random cache miss each on
  // large networks) are skipped entirely. The loop body lives in
  // detail::run_phase1; serial and sharded execution differ only in the sink.
  const bool no_failures = net_.failed_count() == 0;
  const bool track = net_.knowledge() != nullptr;
  // With no delivery observer (no on_push hook, no knowledge tracking),
  // queueing payloads would be dead work.
  const bool want_payloads = track || HasOnPushHook<H>;
  const bool sharded = par_ != nullptr;
  if (sharded) {
    run_phase1_sharded(hooks, initiators, no_failures, track, want_payloads, loss,
                       partition, byz != nullptr);
  } else {
    SerialSink sink{*this, track, tracer};
    detail::run_phase1(net_, hooks, sink, initiators, no_failures, want_payloads, loss,
                       partition, byz != nullptr);
  }

  if (timing) t_phase1 = PhaseClock::now();

  // Apply the phase-1 first-inform candidates before any delivery runs.
  // Candidates only exist under want_payloads (= the phase-2 delivery gate),
  // and they replay here in global initiator order - serial sink order, or
  // shard-index order, which is the same thing - so the first candidate per
  // receiver IS its first push delivery and first-write-wins settles
  // same-round duplicates identically on every parallelism axis. Applying
  // them before phase 3's pass B keeps the phase ordering of informs:
  // push/exchange payloads land before any pull response is read. Both
  // sweeps scan a sequential list whose targets scatter over the entry
  // array, so they prefetch one lookahead window ahead (same trick as
  // phase 3's pass B).
  constexpr std::size_t kApplyLookahead = 48;
  if (tracer != nullptr && sharded) {
    // Shard sinks could only READ the bitmap (phase 1 runs parallel), so
    // their lists still hold same-round duplicates: full first-write-wins.
    for (const parallel::ShardBuffer& sb : par_->acquire(active_shards_)) {
      const std::span<const obs::TraceCandidate> cs = sb.trace_candidates;
      for (std::size_t i = 0; i < cs.size(); ++i) {
        if (i + kApplyLookahead < cs.size()) {
          tracer->prefetch_entry(cs[i + kApplyLookahead].to);
        }
        tracer->note_first_inform(cs[i].to, cs[i].src, trace_round, cs[i].chan);
      }
    }
  } else if (tracer != nullptr) {
    // The serial sink already claimed the bitmap bits (try_claim dedups at
    // the source), so this sweep is one unconditional Entry store each.
    const std::span<const obs::TraceCandidate> cs = trace_candidates_;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (i + kApplyLookahead < cs.size()) {
        tracer->prefetch_entry_slot(cs[i + kApplyLookahead].to);
      }
      tracer->note_claimed_entry(cs[i].to, cs[i].src, trace_round, cs[i].chan);
    }
  }

  // Delivery phases run on the pool only when explicitly opted in, the
  // receiver space is genuinely partitioned, and nothing thread-unsafe is
  // shared: knowledge learning funnels every row through one spill arena,
  // so tracked rounds keep the serial (still bucketed) sweep.
  // Telemetry keeps delivery serial too: pass A notes byzantine corruptions
  // into the (unsynchronized) event log, the same way knowledge tracking
  // funnels rows through one arena.
  const bool pool_delivery = parallel_delivery_ && sharded && !track &&
                             !delivery_map_.flat() && telemetry_ == nullptr;

  // ---- Phase 2: deliver pushes, bucket-major. ----------------------------
  // The byte stream(s) are decoded back into a (stack-local) Message per
  // delivery; hooks must not retain the reference beyond the call. Buckets
  // replay in index order; within a bucket, sharded rounds replay the
  // per-shard streams in shard order - so every receiver sees its
  // deliveries in global initiator order under any bucket/shard count.
  if (track || HasOnPushHook<H>) {
    std::span<parallel::ShardBuffer> shards;
    if (sharded) shards = par_->acquire(active_shards_);
    const auto deliver_bucket = [&](std::size_t b) {
      if (sharded) {
        for (const parallel::ShardBuffer& sb : shards) {
          deliver_queue(sb.pushes.bucket(static_cast<std::uint32_t>(b)), hooks, track);
        }
      } else {
        deliver_queue(pushes_.bucket(static_cast<std::uint32_t>(b)), hooks, track);
      }
    };
    if (pool_delivery) {
      par_->pool().parallel_for(delivery_map_.count, deliver_bucket);
    } else {
      for (std::size_t b = 0; b < delivery_map_.count; ++b) deliver_bucket(b);
    }
  }

  if (timing) t_phase2 = PhaseClock::now();

  // ---- Phase 3: answer pulls, one address-oblivious response per node. ---
  // Two O(m) passes, no sort, no allocation after warm-up. Pass A walks the
  // pending pulls by RESPONDER bucket: the first pull that reaches a
  // responder evaluates its (one) response into the bucket's compact
  // ResponseStore and epoch-stamps the responder with the entry's byte
  // offset; later pulls meter the cached entry from its 2-byte header. ALL
  // pull-response metering happens here (additive counters, so the order
  // within the round cannot change the totals), and each pull records its
  // response offset for the deliver pass. Pass B - skipped entirely when
  // neither knowledge tracking nor an on_pull_reply hook consumes the
  // message - delivers in requester (= initiator) order, decoding each
  // response from the store on the fly. Evaluating EVERY response before
  // delivering ANY reply gives synchronous-round snapshot semantics: a
  // response reflects the post-push, pre-reply state, independent of pull
  // arrival order. (The seed executor interleaved respond with deliveries
  // in sorted-responder order, so its same-seed trajectories differ; see
  // CHANGES.md.) With no respond hook every answer is Empty, so the phase
  // only runs when a hook observes it.
  if constexpr (HasRespondHook<H> || HasOnPullReplyHook<H>) {
    if (pull_count_ != 0) {
      const std::size_t m = pull_count_;
      const bool flat = delivery_map_.flat();
      // Pass B runs only when something consumes the decoded message.
      const bool deliver = track || HasOnPullReplyHook<H>;
      if (deliver) response_of_.resize(m);
      if (response_stores_.size() < delivery_map_.count) {
        response_stores_.resize(delivery_map_.count);
      }
      // Route pulls by responder bucket; remember whether the requester
      // sequence is bucket-monotone (it is for whole-network rounds, where
      // initiator order is ascending) so pass B can split at requester-
      // bucket boundaries without reordering deliveries.
      bool requester_monotone = true;
      if (!flat) {
        if (pull_refs_.size() < delivery_map_.count) {
          pull_refs_.resize(delivery_map_.count);
        }
        for (std::uint32_t b = 0; b < delivery_map_.count; ++b) pull_refs_[b].clear();
        std::uint32_t prev_bucket = 0;
        for (std::size_t i = 0; i < m; ++i) {
          const PendingPull& p = pulls_[i];
          pull_refs_[delivery_map_.bucket_of(p.responder)].push_back(
              PullRef{p.responder, static_cast<std::uint32_t>(i)});
          const std::uint32_t rq = delivery_map_.bucket_of(p.from);
          if (rq < prev_bucket) requester_monotone = false;
          prev_bucket = rq;
        }
      }

      // Pass A: evaluate + meter, responder-bucket-major. `delta` non-null
      // (pool execution) meters into a per-bucket RoundStats merged in
      // bucket order below; the serial sweep meters the collector directly.
      // The per-responder probe is the one unavoidable random access of the
      // phase, so the loops prefetch it kPullLookahead pulls ahead - by the
      // time a pull is evaluated its PullStamp line is already in L1.
      constexpr std::size_t kPullLookahead = 48;
      const auto evaluate_bucket = [&](std::size_t b, RoundStats* delta) {
        ResponseStore& store = response_stores_[b];
        store.clear();
        const auto eval_one = [&](std::uint32_t responder, std::uint32_t index) {
          PullStamp& ps = pull_stamp_[responder];
          std::uint32_t offset;
          std::uint64_t meter;
          if ((ps.stamp >> 32) != pull_epoch_) {
            Message response;
            if constexpr (HasRespondHook<H>) response = hooks.respond(responder);
            if (byz != nullptr && byz->byzantine(responder)) {
              // Pure in (seed, round, responder): the corrupted response is
              // the same whichever requester triggers the evaluation, so the
              // single-evaluation cache and every executor agree.
              response = byz->corrupt_response(fault_round, responder, net_, response);
              // Once per (responder, round) - evaluation is cached - and the
              // responder set is bucket-invariant, so so is the sample.
              if (telemetry_ != nullptr) telemetry_->events.note_corruption(responder);
            }
            const std::uint64_t bits = response.bits(net_.costs());
            const bool has_payload = !response.is_empty();
            offset = store.append(std::move(response));
            meter = bits << 1 | static_cast<std::uint64_t>(has_payload);
            ps.stamp = (static_cast<std::uint64_t>(pull_epoch_) << 32) | offset;
            ps.meter = meter;
          } else {
            offset = static_cast<std::uint32_t>(ps.stamp);
            meter = ps.meter;
          }
          if (delta != nullptr) {
            delta->add_pull_response(meter >> 1, (meter & 1) != 0);
          } else {
            metrics_.record_pull_response(meter >> 1, (meter & 1) != 0);
          }
          if (deliver) response_of_[index] = offset;
        };
        if (flat) {
          for (std::size_t i = 0; i < m; ++i) {
            if (i + kPullLookahead < m) {
              __builtin_prefetch(&pull_stamp_[pulls_[i + kPullLookahead].responder], 1);
            }
            eval_one(pulls_[i].responder, static_cast<std::uint32_t>(i));
          }
        } else {
          const std::span<const PullRef> refs(pull_refs_[b]);
          for (std::size_t j = 0; j < refs.size(); ++j) {
            if (j + kPullLookahead < refs.size()) {
              __builtin_prefetch(&pull_stamp_[refs[j + kPullLookahead].responder], 1);
            }
            // Bucket-order merge preconditions: every ref in this bucket's
            // list must actually belong to bucket b, and the routing pass
            // must have preserved ascending pull order within the bucket
            // (pass B's requester-order delivery depends on it).
            GOSSIP_DCHECK_MSG(delivery_map_.bucket_of(refs[j].responder) == b,
                              "pull ref routed into the wrong responder bucket");
            GOSSIP_DCHECK_MSG(j == 0 || refs[j].index > refs[j - 1].index,
                              "pull refs out of order within a responder bucket");
            eval_one(refs[j].responder, refs[j].index);
          }
        }
      };
      if (pool_delivery) {
        bucket_deltas_.assign(delivery_map_.count, RoundStats{});
        par_->pool().parallel_for(delivery_map_.count, [&](std::size_t b) {
          evaluate_bucket(b, &bucket_deltas_[b]);
        });
        for (const RoundStats& delta : bucket_deltas_) {
          GOSSIP_DCHECK_MSG(delta.max_involvement == 0,
                            "bucket delta carries max_involvement; the merge owns it");
          metrics_.merge_round_delta(delta);
        }
      } else {
        for (std::size_t b = 0; b < delivery_map_.count; ++b) {
          evaluate_bucket(b, nullptr);
        }
      }

      // Pass B: deliver in requester order (no metering left to do). A
      // rumor-bearing response is the requester's first-inform when nothing
      // informed it earlier; p.chan carries the channel byte phase 1
      // computed. The tracer's bitmap word is prefetched alongside the
      // response entry, one lookahead window ahead.
      if (deliver) {
        const auto deliver_one = [&](const ResponseStore& store, std::size_t i) {
          const PendingPull& p = pulls_[i];
          store.with_message(response_of_[i], [&](const Message& msg) {
            if (tracer != nullptr && msg.has_rumor()) {
              tracer->note_first_inform(p.from, p.responder, trace_round, p.chan);
            }
            if (track) learn_from_message(p.from, msg);
            if constexpr (HasOnPullReplyHook<H>) hooks.on_pull_reply(p.from, msg);
          });
        };
        const auto deliver_range = [&](std::size_t lo, std::size_t hi) {
          if (flat) {
            const ResponseStore& store = response_stores_[0];
            for (std::size_t i = lo; i < hi; ++i) {
              if (i + kPullLookahead < hi) {
                store.prefetch(response_of_[i + kPullLookahead]);
                if (tracer != nullptr) tracer->prefetch(pulls_[i + kPullLookahead].from);
              }
              deliver_one(store, i);
            }
          } else {
            for (std::size_t i = lo; i < hi; ++i) {
              if (i + kPullLookahead < hi) {
                const PendingPull& ahead = pulls_[i + kPullLookahead];
                response_stores_[delivery_map_.bucket_of(ahead.responder)].prefetch(
                    response_of_[i + kPullLookahead]);
                if (tracer != nullptr) tracer->prefetch(ahead.from);
              }
              deliver_one(response_stores_[delivery_map_.bucket_of(pulls_[i].responder)],
                          i);
            }
          }
        };
        if (pool_delivery && requester_monotone) {
          pull_chunk_bounds_.clear();
          pull_chunk_bounds_.push_back(0);
          for (std::size_t i = 1; i < m; ++i) {
            if (delivery_map_.bucket_of(pulls_[i].from) !=
                delivery_map_.bucket_of(pulls_[i - 1].from)) {
              pull_chunk_bounds_.push_back(i);
            }
          }
          pull_chunk_bounds_.push_back(m);
          const std::size_t chunks = pull_chunk_bounds_.size() - 1;
          par_->pool().parallel_for(chunks, [&](std::size_t c) {
            deliver_range(pull_chunk_bounds_[c], pull_chunk_bounds_[c + 1]);
          });
        } else {
          deliver_range(0, m);
        }
      }
    }
  }

  std::uint64_t p1_ns = 0, p2_ns = 0, p3_ns = 0;
  if (timing) {
    const PhaseClock::time_point t_end = PhaseClock::now();
    const auto ns = [](PhaseClock::duration d) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
    };
    p1_ns = ns(t_phase1 - t_begin);
    p2_ns = ns(t_phase2 - t_phase1);
    p3_ns = ns(t_end - t_phase2);
    if (time_phases_) {
      phase_times_.phase1_seconds += static_cast<double>(p1_ns) * 1e-9;
      phase_times_.phase2_seconds += static_cast<double>(p2_ns) * 1e-9;
      phase_times_.phase3_seconds += static_cast<double>(p3_ns) * 1e-9;
    }
  }

  if (telemetry_ != nullptr) {
    // Capture BEFORE metrics_.end_round() archives and resets the
    // in-progress RoundStats; the probe (if any) still sees live algorithm
    // state because the caller's run_round has not returned yet.
    const obs::EventLog::RoundCounts ec = telemetry_->events.end_round();
    telemetry_->rounds.on_round_end(fault_round, metrics_.current_round(),
                                    net_.n(), net_.alive_count(), ec.loss_drops,
                                    ec.corrupt_responses, p1_ns, p2_ns, p3_ns);
  }

  metrics_.end_round();
}

}  // namespace gossip::sim
