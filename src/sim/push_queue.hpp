// Pending-delivery queues of one synchronous round, extracted from the
// engine so the sharded executor can fill one instance per shard and replay
// them in deterministic shard order.
//
// The pending-push queue is a variable-length byte stream: phase 2 streams
// it back in order, and at multi-million n that write+read traffic is the
// dominant memory cost of a round, so the common payloads are packed tight
// (6 bytes for a flag-only rumor push vs. sizeof(Message) ~ 72). Entry:
//   u32 to | u8 flags | u8 n_ids | [u64 count if flag] | n_ids * u64 ids
// ID lists longer than kInlineIds (only ClusterResize responses, paper
// footnote 2) spill the whole Message to a side vector and store its index
// in place of the count.
//
// Provenance (PR 8) never touches this stream: first-inform candidates are
// recorded at ENQUEUE time by the phase-1 sinks (see sim/engine.hpp), so
// the wire format - and phase 2's replay cost - is identical whether the
// tracer is armed or not.
//
// Receiver bucketing (PR 5). Phases 2-3 probe receiver-indexed state - the
// on_push/on_pull_reply target's own arrays, KnowledgeTracker rows, the
// engine's pull-response stamps - once per contact, and at multi-million n
// each probe is a random DRAM miss. A BucketMap partitions the receiver
// index space into contiguous power-of-two ranges (`receiver >> bits`), so
// a delivery phase that sweeps bucket-by-bucket touches only one range's
// worth of receiver state at a time (cache-resident by construction), and -
// because buckets PARTITION the receivers - buckets can also be processed
// on different threads without two workers ever touching the same node's
// state. BucketedPushQueue is the phase-2 carrier: one PushQueue stream per
// bucket, filled by the phase-1 sinks and replayed bucket-by-bucket. Every
// receiver lives in exactly one bucket, so its deliveries keep their global
// enqueue (= initiator) order under any bucket count; only the interleaving
// ACROSS receivers changes, which no per-node hook can observe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/message.hpp"

namespace gossip::sim {

/// One pull request awaiting its (single, address-oblivious) response.
/// `chan` is the provenance channel byte of the eventual response
/// (obs::ProvenanceTracer encoding: kind bits + direct-addressing bit);
/// it rides along unconditionally - one byte per pending pull - so the
/// tracer needs no side table in phase 3.
struct PendingPull {
  std::uint32_t from;
  std::uint32_t responder;
  std::uint8_t chan = 0;
};

/// Contiguous power-of-two partition of the receiver index space used by the
/// bucketed delivery phases: node v belongs to bucket v >> bits. count == 1
/// (the identity map below) reproduces the flat, unbucketed sweep exactly.
struct BucketMap {
  std::uint32_t bits = 32;  ///< log2 of the receivers-per-bucket width
  std::uint32_t count = 1;  ///< number of buckets covering [0, n)

  // GOSSIP_HOT
  [[nodiscard]] std::uint32_t bucket_of(std::uint32_t receiver) const GOSSIP_AUDIT_NOEXCEPT {
    // Widen before shifting: bits == 32 (a flat map over a full-width index
    // space) would be UB on a 32-bit shift.
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(receiver) >> bits);
    GOSSIP_DCHECK_MSG(bucket < count,
                      "receiver outside the bucketed index space (bucket "
                          << bucket << " of " << count << ")");
    return bucket;
  }
  [[nodiscard]] bool flat() const noexcept { return count <= 1; }
};

/// Upper bound on the bucket count an engine accepts (and the scenario/bench
/// `delivery_buckets` knobs advertise). Far beyond the useful range: buckets
/// exist to make a slice of receiver state cache-resident, and n / 4096
/// receivers per bucket is sub-L1 for any simulable n.
inline constexpr std::uint32_t kMaxDeliveryBuckets = 4096;

/// Resolves a requested delivery-bucket count against a network size: the
/// map uses the smallest power-of-two width whose bucket count does not
/// exceed the request (so requested == 1 is exactly the flat map).
///
/// `requested` 0 = auto currently resolves to the FLAT map at every n:
/// measured on the bench host, the engine's prefetched linear probe of
/// receiver state beats scatter-routing into bucket streams from
/// L2-resident up through LLC-exceeding sizes (n = 16e6 was ~1.6x SLOWER
/// with 128 buckets), so bucketing earns its routing cost only as the
/// receiver PARTITION behind pool-executed delivery (set_parallel_delivery)
/// and as an explicit locality knob for sweeps on other hosts. The result
/// depends only on (n, requested) - never on thread counts - and is part of
/// no determinism contract at all: delivery content is bucket-invariant.
[[nodiscard]] inline BucketMap make_bucket_map(std::uint32_t n, std::uint32_t requested) {
  BucketMap map;
  if (n <= 1) return map;
  // 64-bit shifts: a full-width index space needs bits == 32, which would
  // be UB on the 32-bit top index.
  const std::uint64_t top = n - 1;  // highest receiver index
  const std::uint32_t target = requested == 0 ? 1 : requested;
  map.bits = 0;
  while ((top >> map.bits) + 1 > target) ++map.bits;
  map.count = static_cast<std::uint32_t>((top >> map.bits) + 1);
  return map;
}

class PushQueue {
 public:
  /// ID-list payloads up to this length are encoded inline in the stream.
  static constexpr std::size_t kInlineIds = 15;

  void clear() noexcept {
    len_ = 0;
    entries_ = 0;
    spill_.clear();
  }

  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] bool empty() const noexcept { return entries_ == 0; }

  /// Encodes a payload addressed to `to`; oversized ID lists (rare) move
  /// into the spill vector. Geometric growth, no shrink, so steady-state
  /// rounds do not allocate.
  // GOSSIP_HOT
  void enqueue(std::uint32_t to, Message&& msg) {
    ++entries_;
    const Message::IdList& ids = msg.ids();
    const std::size_t n_ids = ids.size();
    std::uint8_t flags = static_cast<std::uint8_t>(
        (msg.has_rumor() ? kHasRumor : 0) | (msg.has_count() ? kHasCount : 0));
    if (n_ids > kInlineIds) {
      const std::uint64_t spill_index = spill_.size();
      // gossip-lint: allow(hot-push-back) rare spill path (ClusterResize-length ID lists only)
      spill_.push_back(std::move(msg));
      flags = static_cast<std::uint8_t>(flags | kSpilled);
      std::uint8_t* w = grow(6 + 8);
      std::memcpy(w, &to, 4);
      w[4] = flags;
      w[5] = 0;
      std::memcpy(w + 6, &spill_index, 8);
      return;
    }
    const bool has_count = msg.has_count();
    std::uint8_t* w = grow(6 + (has_count ? 8 : 0) + n_ids * 8);
    std::memcpy(w, &to, 4);
    w[4] = flags;
    w[5] = static_cast<std::uint8_t>(n_ids);
    w += 6;
    if (has_count) {
      const std::uint64_t count = msg.count_value();
      std::memcpy(w, &count, 8);
      w += 8;
    }
    for (std::size_t i = 0; i < n_ids; ++i) {
      const std::uint64_t raw = ids[i].raw();
      std::memcpy(w + i * 8, &raw, 8);
    }
  }

  /// Replays the queue in enqueue order: fn(to, const Message&) per entry.
  /// Inline entries are decoded into a stack-local Message; the reference
  /// must not be retained beyond the call.
  // GOSSIP_HOT
  template <class Fn>
  void for_each(Fn&& fn) const {
    const std::uint8_t* r = bytes_.data();
    std::uint64_t scratch_ids[kInlineIds];
    for (std::size_t e = 0; e < entries_; ++e) {
      // Decode cursor must stay within the encoded prefix: a drifting cursor
      // would silently mis-deliver every later entry, so audit builds bound
      // it per entry.
      GOSSIP_DCHECK_MSG(static_cast<std::size_t>(r - bytes_.data()) + 6 <= len_,
                        "push stream decode overran the encoded bytes");
      std::uint32_t to;
      std::memcpy(&to, r, 4);
      const std::uint8_t flags = r[4];
      const std::uint8_t n_ids = r[5];
      r += 6;
      if (flags & kSpilled) {
        std::uint64_t spill_index;
        std::memcpy(&spill_index, r, 8);
        r += 8;
        fn(to, spill_[spill_index]);
        continue;
      }
      if (n_ids == 0 && (flags & kHasCount) == 0) {
        // Flag-only pushes (the bare rumor, or empty) dominate large
        // uniform-gossip rounds; deliver a shared constant instead of
        // re-building a Message per entry.
        static const Message kRumorOnly = Message::rumor();
        static const Message kEmpty = Message::empty();
        fn(to, (flags & kHasRumor) != 0 ? kRumorOnly : kEmpty);
        continue;
      }
      std::uint64_t count = 0;
      if (flags & kHasCount) {
        std::memcpy(&count, r, 8);
        r += 8;
      }
      if (n_ids != 0) std::memcpy(scratch_ids, r, static_cast<std::size_t>(n_ids) * 8);
      r += static_cast<std::size_t>(n_ids) * 8;
      const Message msg = Message::from_parts(
          (flags & kHasRumor) != 0, (flags & kHasCount) != 0, count,
          std::span<const std::uint64_t>(scratch_ids, n_ids));
      fn(to, msg);
    }
  }

 private:
  static constexpr std::uint8_t kHasRumor = 1;
  static constexpr std::uint8_t kHasCount = 2;
  static constexpr std::uint8_t kSpilled = 4;

  /// Reserves `need` bytes at the tail, returning the write cursor.
  std::uint8_t* grow(std::size_t need) {
    if (len_ + need > bytes_.size()) {
      bytes_.resize(std::max(bytes_.size() * 2, len_ + need));
    }
    std::uint8_t* cursor = bytes_.data() + len_;
    len_ += need;
    return cursor;
  }

  std::vector<std::uint8_t> bytes_;  ///< encoded pending pushes
  std::size_t len_ = 0;
  std::size_t entries_ = 0;
  std::vector<Message> spill_;  ///< payloads with > kInlineIds IDs
};

/// Phase 3's per-responder response cache, packed the same way as the push
/// queue (entry: u8 flags | u8 n_ids | [u64 count] | n_ids * u64 ids;
/// oversized ID lists spill whole Messages). Storing the one address-
/// oblivious response per responder as ~2-10 wire bytes instead of a
/// ~72-byte Message object is what keeps the evaluate pass's write traffic
/// (and the deliver pass's re-reads) cache-sized at multi-million n - on the
/// bench host this is the dominant phase-3 cost, ahead of the responder
/// probes themselves. Entries are addressed by byte offset; metering needs
/// only the 2-byte header (bits are a closed formula over flags and n_ids),
/// so repeated pulls to one responder never materialise the Message again.
class ResponseStore {
 public:
  void clear() noexcept {
    len_ = 0;
    spill_.clear();
  }

  /// Encodes a response, returning its byte offset (stable until clear()).
  // GOSSIP_HOT
  std::uint32_t append(Message&& msg) {
    const std::uint32_t offset = static_cast<std::uint32_t>(len_);
    const Message::IdList& ids = msg.ids();
    const std::size_t n_ids = ids.size();
    std::uint8_t flags = static_cast<std::uint8_t>(
        (msg.has_rumor() ? kHasRumor : 0) | (msg.has_count() ? kHasCount : 0));
    if (n_ids > PushQueue::kInlineIds) {
      const std::uint64_t spill_index = spill_.size();
      // gossip-lint: allow(hot-push-back) rare spill path (ClusterResize-length ID lists only)
      spill_.push_back(std::move(msg));
      flags = static_cast<std::uint8_t>(flags | kSpilled);
      std::uint8_t* w = grow(2 + 8);
      w[0] = flags;
      w[1] = 0;
      std::memcpy(w + 2, &spill_index, 8);
      return offset;
    }
    const bool has_count = msg.has_count();
    std::uint8_t* w = grow(2 + (has_count ? 8 : 0) + n_ids * 8);
    w[0] = flags;
    w[1] = static_cast<std::uint8_t>(n_ids);
    w += 2;
    if (has_count) {
      const std::uint64_t count = msg.count_value();
      std::memcpy(w, &count, 8);
      w += 8;
    }
    for (std::size_t i = 0; i < n_ids; ++i) {
      const std::uint64_t raw = ids[i].raw();
      std::memcpy(w + i * 8, &raw, 8);
    }
    return offset;
  }

  struct Meter {
    std::uint64_t bits;
    bool has_payload;
  };

  /// Metering of the entry at `offset` from its header alone - exactly what
  /// Message::bits / Message::is_empty would report after a decode.
  // GOSSIP_HOT
  [[nodiscard]] Meter meter_at(std::uint32_t offset, const MessageCosts& costs) const {
    GOSSIP_DCHECK_MSG(offset + 2 <= len_, "ResponseStore meter past the encoded bytes");
    const std::uint8_t* r = bytes_.data() + offset;
    const std::uint8_t flags = r[0];
    if (flags & kSpilled) {
      std::uint64_t spill_index;
      std::memcpy(&spill_index, r + 2, 8);
      const Message& msg = spill_[spill_index];
      return Meter{msg.bits(costs), !msg.is_empty()};
    }
    const std::uint8_t n_ids = r[1];
    std::uint64_t bits = 3;
    if (flags & kHasRumor) bits += costs.rumor_bits;
    if (flags & kHasCount) bits += costs.count_bits;
    bits += static_cast<std::uint64_t>(n_ids) * costs.id_bits;
    return Meter{bits, flags != 0 || n_ids != 0};
  }

  /// Invokes fn(const Message&) with the entry decoded at `offset`. Inline
  /// entries decode into a stack-local Message; the reference must not be
  /// retained beyond the call.
  // GOSSIP_HOT
  template <class Fn>
  void with_message(std::uint32_t offset, Fn&& fn) const {
    GOSSIP_DCHECK_MSG(offset + 2 <= len_, "ResponseStore decode past the encoded bytes");
    const std::uint8_t* r = bytes_.data() + offset;
    const std::uint8_t flags = r[0];
    const std::uint8_t n_ids = r[1];
    if (n_ids == 0 && (flags & (kHasCount | kSpilled)) == 0) {
      // Flag-only responses (the bare rumor, or Empty) dominate the uniform
      // baselines' rounds; deliver a shared constant instead of re-building
      // a Message per pull.
      static const Message kRumorOnly = Message::rumor();
      static const Message kEmpty = Message::empty();
      fn((flags & kHasRumor) != 0 ? kRumorOnly : kEmpty);
      return;
    }
    r += 2;
    if (flags & kSpilled) {
      std::uint64_t spill_index;
      std::memcpy(&spill_index, r, 8);
      fn(spill_[spill_index]);
      return;
    }
    std::uint64_t count = 0;
    if (flags & kHasCount) {
      std::memcpy(&count, r, 8);
      r += 8;
    }
    std::uint64_t scratch_ids[PushQueue::kInlineIds];
    // Guarded: the common flag-only response would otherwise pay a
    // zero-length memcpy call per delivery.
    if (n_ids != 0) std::memcpy(scratch_ids, r, static_cast<std::size_t>(n_ids) * 8);
    const Message msg = Message::from_parts(
        (flags & kHasRumor) != 0, (flags & kHasCount) != 0, count,
        std::span<const std::uint64_t>(scratch_ids, n_ids));
    fn(msg);
  }

  /// Hints the entry at `offset` into cache (pass B prefetches ahead while
  /// its offsets are still a sequential read).
  void prefetch(std::uint32_t offset) const {
    __builtin_prefetch(bytes_.data() + offset);
  }

 private:
  static constexpr std::uint8_t kHasRumor = 1;
  static constexpr std::uint8_t kHasCount = 2;
  static constexpr std::uint8_t kSpilled = 4;

  std::uint8_t* grow(std::size_t need) {
    // Entries are addressed by 32-bit offset (stamps, response_of_); a
    // >4 GiB store would silently alias entries, so fail loudly instead.
    // Unreachable for any simulable round: one response per responder and
    // <= 130 bytes per entry put the bound at ~33M distinct responders.
    GOSSIP_CHECK_MSG(len_ + need <= std::numeric_limits<std::uint32_t>::max(),
                     "ResponseStore exceeds the 32-bit offset space");
    if (len_ + need > bytes_.size()) {
      bytes_.resize(std::max(bytes_.size() * 2, len_ + need));
    }
    std::uint8_t* cursor = bytes_.data() + len_;
    len_ += need;
    return cursor;
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t len_ = 0;
  std::vector<Message> spill_;
};

/// Pending pushes partitioned by receiver bucket: one PushQueue stream per
/// bucket, routed at enqueue time. Phase 2 replays bucket-by-bucket (each
/// stream in enqueue order), so a receiver's deliveries arrive in the same
/// relative order as the flat queue's - see the bucketing notes above.
class BucketedPushQueue {
 public:
  /// Adopts a bucket decomposition. Existing queue capacity is kept (streams
  /// shrink to the new count logically, not physically), so reconfiguring
  /// between rounds does not reallocate.
  void configure(const BucketMap& map) {
    bits_ = map.bits;
    count_ = map.count;
    if (queues_.size() < count_) queues_.resize(count_);
  }

  void clear() noexcept {
    for (std::size_t b = 0; b < count_; ++b) queues_[b].clear();
    entries_ = 0;
  }

  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] bool empty() const noexcept { return entries_ == 0; }
  [[nodiscard]] std::uint32_t bucket_count() const noexcept {
    return static_cast<std::uint32_t>(count_);
  }

  // GOSSIP_HOT
  void enqueue(std::uint32_t to, Message&& msg) {
    ++entries_;
    const std::uint64_t bucket = static_cast<std::uint64_t>(to) >> bits_;
    GOSSIP_DCHECK_MSG(bucket < count_, "push routed outside the bucket partition");
    queues_[bucket].enqueue(to, std::move(msg));
  }

  /// Stream of one bucket, for phase 2's bucket-major replay.
  [[nodiscard]] const PushQueue& bucket(std::uint32_t b) const { return queues_[b]; }

 private:
  std::uint32_t bits_ = 32;
  std::size_t count_ = 1;
  std::size_t entries_ = 0;
  std::vector<PushQueue> queues_{1};
};

}  // namespace gossip::sim
