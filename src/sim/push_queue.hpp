// Pending-delivery queues of one synchronous round, extracted from the
// engine so the sharded executor can fill one instance per shard and replay
// them in deterministic shard order.
//
// The pending-push queue is a variable-length byte stream: phase 2 streams
// it back in order, and at multi-million n that write+read traffic is the
// dominant memory cost of a round, so the common payloads are packed tight
// (6 bytes for a flag-only rumor push vs. sizeof(Message) ~ 72). Entry:
//   u32 to | u8 flags | u8 n_ids | [u64 count if flag] | n_ids * u64 ids
// ID lists longer than kInlineIds (only ClusterResize responses, paper
// footnote 2) spill the whole Message to a side vector and store its index
// in place of the count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "sim/message.hpp"

namespace gossip::sim {

/// One pull request awaiting its (single, address-oblivious) response.
struct PendingPull {
  std::uint32_t from;
  std::uint32_t responder;
};

class PushQueue {
 public:
  /// ID-list payloads up to this length are encoded inline in the stream.
  static constexpr std::size_t kInlineIds = 15;

  void clear() noexcept {
    len_ = 0;
    entries_ = 0;
    spill_.clear();
  }

  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] bool empty() const noexcept { return entries_ == 0; }

  /// Encodes a payload addressed to `to`; oversized ID lists (rare) move
  /// into the spill vector. Geometric growth, no shrink, so steady-state
  /// rounds do not allocate.
  void enqueue(std::uint32_t to, Message&& msg) {
    ++entries_;
    const Message::IdList& ids = msg.ids();
    const std::size_t n_ids = ids.size();
    std::uint8_t flags = static_cast<std::uint8_t>(
        (msg.has_rumor() ? kHasRumor : 0) | (msg.has_count() ? kHasCount : 0));
    if (n_ids > kInlineIds) {
      const std::uint64_t spill_index = spill_.size();
      spill_.push_back(std::move(msg));
      flags = static_cast<std::uint8_t>(flags | kSpilled);
      std::uint8_t* w = grow(6 + 8);
      std::memcpy(w, &to, 4);
      w[4] = flags;
      w[5] = 0;
      std::memcpy(w + 6, &spill_index, 8);
      return;
    }
    const bool has_count = msg.has_count();
    std::uint8_t* w = grow(6 + (has_count ? 8 : 0) + n_ids * 8);
    std::memcpy(w, &to, 4);
    w[4] = flags;
    w[5] = static_cast<std::uint8_t>(n_ids);
    w += 6;
    if (has_count) {
      const std::uint64_t count = msg.count_value();
      std::memcpy(w, &count, 8);
      w += 8;
    }
    for (std::size_t i = 0; i < n_ids; ++i) {
      const std::uint64_t raw = ids[i].raw();
      std::memcpy(w + i * 8, &raw, 8);
    }
  }

  /// Replays the queue in enqueue order: fn(to, const Message&) per entry.
  /// Inline entries are decoded into a stack-local Message; the reference
  /// must not be retained beyond the call.
  template <class Fn>
  void for_each(Fn&& fn) const {
    const std::uint8_t* r = bytes_.data();
    std::uint64_t scratch_ids[kInlineIds];
    for (std::size_t e = 0; e < entries_; ++e) {
      std::uint32_t to;
      std::memcpy(&to, r, 4);
      const std::uint8_t flags = r[4];
      const std::uint8_t n_ids = r[5];
      r += 6;
      if (flags & kSpilled) {
        std::uint64_t spill_index;
        std::memcpy(&spill_index, r, 8);
        r += 8;
        fn(to, spill_[spill_index]);
        continue;
      }
      std::uint64_t count = 0;
      if (flags & kHasCount) {
        std::memcpy(&count, r, 8);
        r += 8;
      }
      std::memcpy(scratch_ids, r, static_cast<std::size_t>(n_ids) * 8);
      r += static_cast<std::size_t>(n_ids) * 8;
      const Message msg = Message::from_parts(
          (flags & kHasRumor) != 0, (flags & kHasCount) != 0, count,
          std::span<const std::uint64_t>(scratch_ids, n_ids));
      fn(to, msg);
    }
  }

 private:
  static constexpr std::uint8_t kHasRumor = 1;
  static constexpr std::uint8_t kHasCount = 2;
  static constexpr std::uint8_t kSpilled = 4;

  /// Reserves `need` bytes at the tail, returning the write cursor.
  std::uint8_t* grow(std::size_t need) {
    if (len_ + need > bytes_.size()) {
      bytes_.resize(std::max(bytes_.size() * 2, len_ + need));
    }
    std::uint8_t* cursor = bytes_.data() + len_;
    len_ += need;
    return cursor;
  }

  std::vector<std::uint8_t> bytes_;  ///< encoded pending pushes
  std::size_t len_ = 0;
  std::size_t entries_ = 0;
  std::vector<Message> spill_;  ///< payloads with > kInlineIds IDs
};

}  // namespace gossip::sim
