// The complete n-node network of the random phone call model (Section 2).
//
// Owns node identity (index <-> random unique ID maps), the alive set
// (monotone-shrinking under fault-model crashes, see sim/fault.hpp), the
// master RNG and derived per-node random streams,
// message bit costs, and (optionally) the knowledge tracker. The Engine
// executes rounds against this state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_index.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/knowledge.hpp"
#include "sim/message.hpp"

namespace gossip::sim {

struct NetworkOptions {
  std::uint32_t n = 1024;         ///< number of nodes
  std::uint64_t seed = 1;         ///< master seed; everything derives from it
  std::uint32_t rumor_bits = 256; ///< b, size of the broadcast payload
  bool track_knowledge = false;   ///< enforce direct-addressing honesty
};

class Network {
 public:
  explicit Network(const NetworkOptions& options);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] const NetworkOptions& options() const noexcept { return options_; }
  [[nodiscard]] const MessageCosts& costs() const noexcept { return costs_; }

  // id_of/find/alive run once or twice per contact on the engine's hot path
  // and are defined inline so round loops compile down to array accesses.
  [[nodiscard]] NodeId id_of(std::uint32_t index) const {
    GOSSIP_CHECK(index < n_);
    return ids_[index];
  }
  /// Index of an existing node ID; contract violation if unknown.
  [[nodiscard]] std::uint32_t index_of(NodeId id) const;
  /// Index lookup that tolerates non-existent IDs (including the
  /// unclustered sentinel, which indexes nothing).
  [[nodiscard]] std::optional<std::uint32_t> find(NodeId id) const {
    const std::uint32_t index = index_by_id_.find(id.raw());
    if (index == FlatIdIndex::kNotFound) return std::nullopt;
    return index;
  }

  // --- failures (sim/fault.hpp fault models; Section 8 adversary) -------
  /// Marks a node failed. The alive set is dynamic but MONOTONE: a fault
  /// model may crash nodes between rounds (Engine consults it at each round
  /// boundary), but a failed node never revives. Idempotent.
  void fail(std::uint32_t index);
  [[nodiscard]] bool alive(std::uint32_t index) const {
    GOSSIP_CHECK(index < n_);
    return alive_[index] != 0;
  }
  [[nodiscard]] std::uint32_t alive_count() const noexcept { return alive_count_; }
  [[nodiscard]] std::uint32_t failed_count() const noexcept { return n_ - alive_count_; }

  // --- randomness --------------------------------------------------------
  /// Master RNG (engine-level choices, e.g. uniform random contacts).
  [[nodiscard]] Rng& rng() noexcept { return master_rng_; }
  /// Fresh independent RNG for node `index`, salted (e.g. by round or phase)
  /// so repeated calls yield fresh independent coins. Deterministic in
  /// (seed, index, salt).
  [[nodiscard]] Rng node_rng(std::uint32_t index, std::uint64_t salt) const;

  // --- knowledge ----------------------------------------------------------
  /// Null when tracking is disabled.
  [[nodiscard]] KnowledgeTracker* knowledge() noexcept { return knowledge_.get(); }
  [[nodiscard]] const KnowledgeTracker* knowledge() const noexcept { return knowledge_.get(); }

 private:
  NetworkOptions options_;
  std::uint32_t n_;
  MessageCosts costs_;
  Rng master_rng_;
  std::uint64_t node_stream_base_;
  std::vector<NodeId> ids_;
  FlatIdIndex index_by_id_;  ///< flat open-addressing ID -> index map
  std::vector<std::uint8_t> alive_;
  std::uint32_t alive_count_;
  std::unique_ptr<KnowledgeTracker> knowledge_;
};

}  // namespace gossip::sim
