// The complete n-node network of the random phone call model (Section 2).
//
// Owns node identity (index <-> random unique ID maps), the alive set
// (dynamic in BOTH directions: fault-model crashes shrink it, mid-run joins
// grow it - see sim/fault.hpp and join() below), the master RNG and derived
// per-node random streams, message bit costs, and (optionally) the knowledge
// tracker. The Engine executes rounds against this state.
//
// Capacity pre-reservation. A network that will accept joins declares its
// ceiling up front (NetworkOptions::max_nodes); every flat per-node array -
// the ID table, the alive lane, the ID index's probe lanes, the knowledge
// tracker's rows - is allocated for `capacity()` at construction, so joins
// never reallocate state mid-round and message costs (derived from the
// capacity, i.e. the ID space the run can ever address) stay fixed while n
// moves. max_nodes = 0 (the default) means "no joins": capacity == n and
// nothing changes for the monotone world.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_index.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/knowledge.hpp"
#include "sim/message.hpp"

namespace gossip::sim {

struct NetworkOptions {
  std::uint32_t n = 1024;         ///< number of nodes at construction
  std::uint64_t seed = 1;         ///< master seed; everything derives from it
  std::uint32_t rumor_bits = 256; ///< b, size of the broadcast payload
  bool track_knowledge = false;   ///< enforce direct-addressing honesty
  /// Capacity ceiling for mid-run joins (0 = no joins, capacity == n).
  /// Values below n are clamped up to n.
  std::uint32_t max_nodes = 0;
};

/// Membership-change observer (obs::EventLog implements this). Notified
/// from join()/fail(), which are cold paths - per-round fault-model
/// activity, never per-contact - so a virtual call here costs nothing the
/// engine's phase loops can see.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_join(std::uint32_t index) = 0;
  virtual void on_fail(std::uint32_t index) = 0;
};

class Network {
 public:
  explicit Network(const NetworkOptions& options);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  /// Pre-reserved ceiling on n (== n when the network accepts no joins).
  /// Per-node state that must survive joins without reallocating - engine
  /// delivery state, algorithm-side flat arrays - is sized to this.
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const NetworkOptions& options() const noexcept { return options_; }
  [[nodiscard]] const MessageCosts& costs() const noexcept { return costs_; }

  // id_of/find/alive run once or twice per contact on the engine's hot path
  // and are defined inline so round loops compile down to array accesses.
  [[nodiscard]] NodeId id_of(std::uint32_t index) const {
    GOSSIP_CHECK(index < n_);
    return ids_[index];
  }
  /// Index of an existing node ID; contract violation if unknown.
  [[nodiscard]] std::uint32_t index_of(NodeId id) const;
  /// Index lookup that tolerates non-existent IDs (including the
  /// unclustered sentinel, which indexes nothing).
  [[nodiscard]] std::optional<std::uint32_t> find(NodeId id) const {
    const std::uint32_t index = index_by_id_.find(id.raw());
    if (index == FlatIdIndex::kNotFound) return std::nullopt;
    return index;
  }

  // --- joins (non-monotone alive set; sim/fault.hpp ChurnSchedule) -------
  /// Admits one node with a fresh unique ID drawn from the construction-time
  /// ID stream (deterministic in (seed, join order) - join order is part of
  /// the round timeline, see README "Churn & membership"). The joiner is
  /// alive, knows nothing (its knowledge row starts empty; it becomes
  /// directly addressable only once its ID travels in a gossiped list) and
  /// gets the next dense index. Returns that index. Contract violation when
  /// the pre-reserved capacity is exhausted - callers gate on can_join().
  std::uint32_t join();
  /// Same, with a caller-chosen ID (tests; replaying recorded schedules).
  std::uint32_t join(NodeId id);
  [[nodiscard]] bool can_join() const noexcept { return n_ < capacity_; }

  // --- failures (sim/fault.hpp fault models; Section 8 adversary) -------
  /// Marks a live node failed. The alive set is dynamic: fault models may
  /// crash nodes between rounds and joins may add fresh ones, but a failed
  /// node never revives. Double-failing is a contract violation - with
  /// joins in play, two fault models silently failing the same index would
  /// hide a schedule bug behind bookkeeping that still happens to balance.
  void fail(std::uint32_t index);
  [[nodiscard]] bool alive(std::uint32_t index) const {
    GOSSIP_CHECK(index < n_);
    return alive_[index] != 0;
  }
  [[nodiscard]] std::uint32_t alive_count() const noexcept { return alive_count_; }
  /// Nodes that have failed so far. Counted explicitly: with joins, n_ is
  /// itself a moving target, so `n_ - alive_count_` would only stay correct
  /// by the very invariant we want to be able to check.
  [[nodiscard]] std::uint32_t failed_count() const noexcept { return failed_count_; }

  // --- randomness --------------------------------------------------------
  /// Master RNG (engine-level choices, e.g. uniform random contacts).
  [[nodiscard]] Rng& rng() noexcept { return master_rng_; }
  /// Fresh independent RNG for node `index`, salted (e.g. by round or phase)
  /// so repeated calls yield fresh independent coins. Deterministic in
  /// (seed, index, salt).
  [[nodiscard]] Rng node_rng(std::uint32_t index, std::uint64_t salt) const;

  // --- observability ------------------------------------------------------
  /// Installs (or clears, with nullptr) the membership observer. Non-owning;
  /// the observer must outlive the network or be detached first.
  void set_observer(NetworkObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] NetworkObserver* observer() const noexcept { return observer_; }

  // --- knowledge ----------------------------------------------------------
  /// Null when tracking is disabled.
  [[nodiscard]] KnowledgeTracker* knowledge() noexcept { return knowledge_.get(); }
  [[nodiscard]] const KnowledgeTracker* knowledge() const noexcept { return knowledge_.get(); }

 private:
  NetworkOptions options_;
  std::uint32_t n_;
  std::uint32_t capacity_;
  MessageCosts costs_;
  Rng master_rng_;
  std::uint64_t node_stream_base_;
  Rng id_rng_;  ///< ID stream; join() continues it past the initial n draws
  std::vector<NodeId> ids_;
  FlatIdIndex index_by_id_;  ///< flat open-addressing ID -> index map
  std::vector<std::uint8_t> alive_;
  std::uint32_t alive_count_;
  std::uint32_t failed_count_ = 0;
  NetworkObserver* observer_ = nullptr;
  std::unique_ptr<KnowledgeTracker> knowledge_;
};

}  // namespace gossip::sim
