// Messages of the random phone call model.
//
// Paper, Section 2: "every message carries either the information to be
// broadcast, a node count, or O(1) node IDs", each of size O(log n) bits
// (except the b-bit rumor, and except ClusterResize responses which may carry
// floor(s'/s) IDs - footnote 2). A Message is therefore a combination of
// three optional payload parts: the rumor bit, a counter, and an ID list.
// Bit accounting is centralised in Message::bits() so that every benchmark
// meters identically.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "common/ids.hpp"
#include "common/inline_vec.hpp"

namespace gossip::sim {

/// Bit costs of the model's message parts, derived from n and the rumor
/// size b (paper: b = Omega(log n)).
struct MessageCosts {
  std::uint32_t id_bits = 64;     ///< bits per node ID (Theta(log n), poly ID space)
  std::uint32_t count_bits = 32;  ///< bits for a node count (log n + O(1))
  std::uint32_t rumor_bits = 256; ///< b, the broadcast payload size

  /// Canonical costs for an n-node network: IDs from a cubically large space.
  [[nodiscard]] static MessageCosts for_network(std::uint64_t n, std::uint32_t rumor_bits);
};

/// Message payload: any combination of {rumor, count, id list}.
/// An empty message (none of the three) models a content-free pull response.
class Message {
 public:
  using IdList = InlineVec<NodeId, 3>;

  Message() = default;

  [[nodiscard]] static Message empty() { return Message(); }

  [[nodiscard]] static Message rumor() {
    Message m;
    m.has_rumor_ = true;
    return m;
  }

  [[nodiscard]] static Message count(std::uint64_t value) {
    Message m;
    m.has_count_ = true;
    m.count_ = value;
    return m;
  }

  [[nodiscard]] static Message single_id(NodeId id) {
    Message m;
    m.ids_.push_back(id);
    return m;
  }

  [[nodiscard]] static Message id_list(IdList ids) {
    Message m;
    m.ids_ = std::move(ids);
    return m;
  }

  /// Rebuilds a message from its wire parts (raw ID values). Used by the
  /// engine to decode its compact pending-delivery records; also handy for
  /// tests constructing arbitrary payloads.
  [[nodiscard]] static Message from_parts(bool has_rumor, bool has_count,
                                          std::uint64_t count,
                                          std::span<const std::uint64_t> raw_ids) {
    Message m;
    m.has_rumor_ = has_rumor;
    m.has_count_ = has_count;
    m.count_ = count;
    for (const std::uint64_t raw : raw_ids) m.ids_.push_back(NodeId(raw));
    return m;
  }

  /// Builder-style composition, e.g. Message::rumor().and_id(leader).
  [[nodiscard]] Message and_rumor() const {
    Message m = *this;
    m.has_rumor_ = true;
    return m;
  }
  [[nodiscard]] Message and_count(std::uint64_t value) const {
    Message m = *this;
    m.has_count_ = true;
    m.count_ = value;
    return m;
  }
  [[nodiscard]] Message and_id(NodeId id) const {
    Message m = *this;
    m.ids_.push_back(id);
    return m;
  }

  [[nodiscard]] bool has_rumor() const noexcept { return has_rumor_; }
  [[nodiscard]] bool has_count() const noexcept { return has_count_; }
  [[nodiscard]] std::uint64_t count_value() const noexcept { return count_; }
  [[nodiscard]] const IdList& ids() const noexcept { return ids_; }
  [[nodiscard]] bool is_empty() const noexcept {
    return !has_rumor_ && !has_count_ && ids_.empty();
  }

  /// First ID carried, or the unclustered sentinel if none.
  [[nodiscard]] NodeId first_id() const {
    return ids_.empty() ? NodeId::unclustered() : ids_.front();
  }

  /// Size of this message under the model's accounting. Inline: the engine
  /// meters every contact through this on its hot path.
  [[nodiscard]] std::uint64_t bits(const MessageCosts& costs) const noexcept {
    // 3-bit presence header + payload parts.
    std::uint64_t total = 3;
    if (has_rumor_) total += costs.rumor_bits;
    if (has_count_) total += costs.count_bits;
    total += static_cast<std::uint64_t>(ids_.size()) * costs.id_bits;
    return total;
  }

 private:
  bool has_rumor_ = false;
  bool has_count_ = false;
  std::uint64_t count_ = 0;
  IdList ids_;
};

}  // namespace gossip::sim
