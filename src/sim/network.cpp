#include "sim/network.hpp"

#include "common/assert.hpp"

namespace gossip::sim {

Network::Network(const NetworkOptions& options)
    : options_(options),
      n_(options.n),
      costs_(MessageCosts::for_network(options.n, options.rumor_bits)),
      master_rng_(mix64(options.seed ^ 0x6f7e1c2d3b4a5968ULL)),
      node_stream_base_(mix64(options.seed + 0x51ed2701a4c8f3b7ULL)),
      alive_(options.n, 1),
      alive_count_(options.n) {
  GOSSIP_CHECK_MSG(n_ >= 2, "network needs at least two nodes");
  Rng id_rng(mix64(options.seed ^ 0x1db3a7c95e8f6420ULL));
  ids_ = generate_unique_ids(n_, id_rng);
  index_by_id_.build(ids_);
  if (options.track_knowledge) knowledge_ = std::make_unique<KnowledgeTracker>(n_);
}

std::uint32_t Network::index_of(NodeId id) const {
  const std::uint32_t index = index_by_id_.find(id.raw());
  GOSSIP_CHECK_MSG(index != FlatIdIndex::kNotFound, "unknown node ID " << id.to_string());
  return index;
}

void Network::fail(std::uint32_t index) {
  GOSSIP_CHECK(index < n_);
  if (alive_[index]) {
    alive_[index] = 0;
    --alive_count_;
  }
}

Rng Network::node_rng(std::uint32_t index, std::uint64_t salt) const {
  // Deterministic in (seed, index, salt); distinct triples give independent
  // streams (see Rng::fork).
  return Rng(node_stream_base_).fork(mix64(static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL + salt));
}

}  // namespace gossip::sim
