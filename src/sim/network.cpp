#include "sim/network.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace gossip::sim {

Network::Network(const NetworkOptions& options)
    : options_(options),
      n_(options.n),
      capacity_(std::max(options.n, options.max_nodes)),
      // Costs derive from the capacity: the ID space a run can ever address
      // is fixed at construction, so bit accounting never shifts mid-run
      // when joiners arrive. capacity == n for join-free networks, so the
      // monotone world meters exactly as before.
      costs_(MessageCosts::for_network(std::max(options.n, options.max_nodes),
                                       options.rumor_bits)),
      master_rng_(mix64(options.seed ^ 0x6f7e1c2d3b4a5968ULL)),
      node_stream_base_(mix64(options.seed + 0x51ed2701a4c8f3b7ULL)),
      id_rng_(mix64(options.seed ^ 0x1db3a7c95e8f6420ULL)),
      alive_(options.n, 1),
      alive_count_(options.n) {
  GOSSIP_CHECK_MSG(n_ >= 2, "network needs at least two nodes");
  ids_ = generate_unique_ids(n_, id_rng_);
  // Pre-reservation: the flat per-node lanes never reallocate under joins,
  // and the ID index is built with probe lanes sized for the ceiling.
  ids_.reserve(capacity_);
  alive_.reserve(capacity_);
  index_by_id_.build(ids_, capacity_);
  if (options.track_knowledge) knowledge_ = std::make_unique<KnowledgeTracker>(capacity_);
}

std::uint32_t Network::index_of(NodeId id) const {
  const std::uint32_t index = index_by_id_.find(id.raw());
  GOSSIP_CHECK_MSG(index != FlatIdIndex::kNotFound, "unknown node ID " << id.to_string());
  return index;
}

std::uint32_t Network::join() {
  // Continue the construction-time ID stream: the joiner's ID depends only
  // on (seed, join order), never on who asked or on any engine randomness.
  for (;;) {
    const std::uint64_t raw = id_rng_.next_u64();
    if (raw == std::numeric_limits<std::uint64_t>::max()) continue;  // sentinel
    if (index_by_id_.find(raw) != FlatIdIndex::kNotFound) continue;  // collision
    return join(NodeId(raw));
  }
}

std::uint32_t Network::join(NodeId id) {
  GOSSIP_CHECK_MSG(can_join(), "join beyond pre-reserved capacity (max_nodes = "
                                   << capacity_ << ")");
  GOSSIP_CHECK_MSG(id.is_node(), "joiner needs a real node ID");
  GOSSIP_CHECK_MSG(index_by_id_.find(id.raw()) == FlatIdIndex::kNotFound,
                   "joining ID already present: " << id.to_string());
  const std::uint32_t index = n_++;
  ids_.push_back(id);
  alive_.push_back(1);
  ++alive_count_;
  index_by_id_.insert(id.raw(), index);
  GOSSIP_CHECK(alive_count_ + failed_count_ == n_);
  if (observer_ != nullptr) observer_->on_join(index);
  return index;
}

void Network::fail(std::uint32_t index) {
  GOSSIP_CHECK(index < n_);
  GOSSIP_CHECK_MSG(alive_[index], "double fail of node " << index
                                      << " - fault schedules must pick live victims");
  alive_[index] = 0;
  --alive_count_;
  ++failed_count_;
  GOSSIP_CHECK(alive_count_ + failed_count_ == n_);
  if (observer_ != nullptr) observer_->on_fail(index);
}

Rng Network::node_rng(std::uint32_t index, std::uint64_t salt) const {
  // Deterministic in (seed, index, salt); distinct triples give independent
  // streams (see Rng::fork).
  return Rng(node_stream_base_).fork(mix64(static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL + salt));
}

}  // namespace gossip::sim
