#include "sim/fault.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/assert.hpp"
#include "sim/network.hpp"

namespace gossip::sim {

const char* to_string(FaultStrategy s) noexcept {
  switch (s) {
    case FaultStrategy::kRandomSubset: return "random";
    case FaultStrategy::kSmallestIds: return "smallest-ids";
    case FaultStrategy::kIndexStride: return "stride";
  }
  return "?";
}

std::vector<std::uint32_t> choose_failures(const Network& net, std::uint32_t f,
                                           FaultStrategy strategy, Rng& rng) {
  const std::uint32_t n = net.n();
  GOSSIP_CHECK_MSG(f < n, "cannot fail all nodes");
  std::vector<std::uint32_t> out;
  out.reserve(f);
  switch (strategy) {
    case FaultStrategy::kRandomSubset: {
      // Partial Fisher-Yates over the index range.
      std::vector<std::uint32_t> perm(n);
      std::iota(perm.begin(), perm.end(), 0u);
      for (std::uint32_t i = 0; i < f; ++i) {
        const auto j = static_cast<std::uint32_t>(rng.uniform_range(i, n - 1));
        std::swap(perm[i], perm[j]);
        out.push_back(perm[i]);
      }
      break;
    }
    case FaultStrategy::kSmallestIds: {
      std::vector<std::uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::nth_element(order.begin(), order.begin() + f, order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return net.id_of(a) < net.id_of(b);
                       });
      out.assign(order.begin(), order.begin() + f);
      break;
    }
    case FaultStrategy::kIndexStride: {
      const std::uint32_t stride = std::max<std::uint32_t>(1, n / std::max<std::uint32_t>(f, 1));
      for (std::uint32_t i = 0; out.size() < f && i < n; i += stride) out.push_back(i);
      // Top up sequentially if rounding left us short.
      for (std::uint32_t i = 0; out.size() < f; ++i) {
        if (std::find(out.begin(), out.end(), i) == out.end()) out.push_back(i);
      }
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// LossChannel
// ---------------------------------------------------------------------------

namespace {
/// Keys the loss streams away from every other seed-derived stream in the
/// simulator (network master/node/id streams, shard streams).
constexpr std::uint64_t kLossStreamSalt = 0x10551e55c4a77e1aULL;
}  // namespace

LossChannel::LossChannel(std::uint64_t network_seed, std::uint64_t round, double p)
    : round_rng_(Rng(mix64(network_seed ^ kLossStreamSalt)).fork(round)) {
  if (p <= 0.0) {
    threshold_ = 0;
  } else if (p >= 1.0) {
    threshold_ = ~0ULL;  // drops all but the all-ones draw (p = 1 - 2^-64)
  } else {
    // Exact for every representable p < 1: p * 2^64 < 2^64, so the cast is
    // defined and next_u64() < threshold has probability p up to 2^-64.
    threshold_ = static_cast<std::uint64_t>(p * 0x1p64);
  }
}

// ---------------------------------------------------------------------------
// FaultModel defaults
// ---------------------------------------------------------------------------

void FaultModel::on_run_begin(Network&, Rng&) {}
void FaultModel::on_round_begin(std::uint64_t, Network&) {}
double FaultModel::loss_probability(std::uint64_t) const { return 0.0; }

// ---------------------------------------------------------------------------
// StaticCrash
// ---------------------------------------------------------------------------

StaticCrash::StaticCrash(std::uint32_t count, FaultStrategy strategy)
    : count_(count), strategy_(strategy) {}

void StaticCrash::on_run_begin(Network& net, Rng& adversary) {
  if (count_ == 0) return;  // consume nothing, as the legacy f == 0 path did
  for (std::uint32_t v : choose_failures(net, count_, strategy_, adversary)) {
    net.fail(v);
  }
}

std::string StaticCrash::describe() const {
  std::ostringstream os;
  os << "static_crash(f=" << count_ << ", strategy=" << to_string(strategy_) << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// ScheduledCrash
// ---------------------------------------------------------------------------

ScheduledCrash::ScheduledCrash(std::uint64_t crash_round, std::uint32_t count,
                               FaultStrategy strategy)
    : crash_round_(crash_round),
      count_(count),
      strategy_(strategy),
      explicit_victims_(false) {}

ScheduledCrash::ScheduledCrash(std::uint64_t crash_round,
                               std::vector<std::uint32_t> victims)
    : crash_round_(crash_round),
      explicit_victims_(true),
      victims_(std::move(victims)) {}

void ScheduledCrash::on_run_begin(Network& net, Rng& adversary) {
  if (explicit_victims_ || count_ == 0) return;
  // Oblivious: the set is fixed before the algorithm runs, from the
  // adversary's own stream - only the crash is deferred to the timeline.
  victims_ = choose_failures(net, count_, strategy_, adversary);
}

void ScheduledCrash::on_round_begin(std::uint64_t round, Network& net) {
  if (fired_ || round < crash_round_) return;
  fired_ = true;  // monotone: the set crashes exactly once
  for (std::uint32_t v : victims_) net.fail(v);
}

std::string ScheduledCrash::describe() const {
  std::ostringstream os;
  os << "scheduled_crash(round=" << crash_round_;
  if (explicit_victims_) {
    os << ", victims=" << victims_.size();
  } else {
    os << ", f=" << count_ << ", strategy=" << to_string(strategy_);
  }
  os << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// LossyChannel
// ---------------------------------------------------------------------------

LossyChannel::LossyChannel(double p) : p_(p) {
  GOSSIP_CHECK_MSG(p >= 0.0 && p < 1.0, "loss probability must be in [0, 1)");
}

double LossyChannel::loss_probability(std::uint64_t) const { return p_; }

std::string LossyChannel::describe() const {
  std::ostringstream os;
  os << "lossy(p=" << p_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// CompositeFault
// ---------------------------------------------------------------------------

CompositeFault& CompositeFault::add(std::unique_ptr<FaultModel> part) {
  GOSSIP_CHECK(part != nullptr);
  parts_.push_back(std::move(part));
  return *this;
}

void CompositeFault::on_run_begin(Network& net, Rng& adversary) {
  for (const auto& part : parts_) part->on_run_begin(net, adversary);
}

void CompositeFault::on_round_begin(std::uint64_t round, Network& net) {
  for (const auto& part : parts_) part->on_round_begin(round, net);
}

double CompositeFault::loss_probability(std::uint64_t round) const {
  // Independent channels: a payload survives only if every part keeps it.
  double keep = 1.0;
  for (const auto& part : parts_) keep *= 1.0 - part->loss_probability(round);
  return 1.0 - keep;
}

std::string CompositeFault::describe() const {
  std::string out;
  for (const auto& part : parts_) {
    if (!out.empty()) out += " + ";
    out += part->describe();
  }
  return out.empty() ? "composite()" : out;
}

}  // namespace gossip::sim
