#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/assert.hpp"
#include "sim/network.hpp"

namespace gossip::sim {

const char* to_string(FaultStrategy s) noexcept {
  switch (s) {
    case FaultStrategy::kRandomSubset: return "random";
    case FaultStrategy::kSmallestIds: return "smallest-ids";
    case FaultStrategy::kIndexStride: return "stride";
  }
  return "?";
}

std::vector<std::uint32_t> choose_failures(const Network& net, std::uint32_t f,
                                           FaultStrategy strategy, Rng& rng) {
  const std::uint32_t n = net.n();
  GOSSIP_CHECK_MSG(f < n, "cannot fail all nodes");
  std::vector<std::uint32_t> out;
  out.reserve(f);
  switch (strategy) {
    case FaultStrategy::kRandomSubset: {
      // Partial Fisher-Yates over the index range.
      std::vector<std::uint32_t> perm(n);
      std::iota(perm.begin(), perm.end(), 0u);
      for (std::uint32_t i = 0; i < f; ++i) {
        const auto j = static_cast<std::uint32_t>(rng.uniform_range(i, n - 1));
        std::swap(perm[i], perm[j]);
        out.push_back(perm[i]);
      }
      break;
    }
    case FaultStrategy::kSmallestIds: {
      std::vector<std::uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::nth_element(order.begin(), order.begin() + f, order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return net.id_of(a) < net.id_of(b);
                       });
      out.assign(order.begin(), order.begin() + f);
      break;
    }
    case FaultStrategy::kIndexStride: {
      const std::uint32_t stride = std::max<std::uint32_t>(1, n / std::max<std::uint32_t>(f, 1));
      for (std::uint32_t i = 0; out.size() < f && i < n; i += stride) out.push_back(i);
      // Top up sequentially if rounding left us short.
      for (std::uint32_t i = 0; out.size() < f; ++i) {
        if (std::find(out.begin(), out.end(), i) == out.end()) out.push_back(i);
      }
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// LossChannel
// ---------------------------------------------------------------------------

namespace {
/// Keys the loss streams away from every other seed-derived stream in the
/// simulator (network master/node/id streams, shard streams).
constexpr std::uint64_t kLossStreamSalt = 0x10551e55c4a77e1aULL;
/// Same role for the churn arrival/victim streams...
constexpr std::uint64_t kChurnStreamSalt = 0xc4a12bd96e03f875ULL;
/// ...and for the byzantine response-poisoning streams...
constexpr std::uint64_t kByzantineStreamSalt = 0xb12a77f31c9e5d04ULL;
/// ...and for the partition component assignment.
constexpr std::uint64_t kPartitionStreamSalt = 0x7a9c0b3d51e8f246ULL;

/// Knuth's product-of-uniforms Poisson sampler. Consumes a variable number
/// of draws from `rng`, which is fine: churn streams are per-round forks, so
/// the consumption never leaks into any other stream. Capped defensively -
/// a mean large enough to hit the cap is a misconfigured schedule, not a
/// workload.
std::uint32_t poisson_draw(double mean, Rng& rng) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  std::uint32_t k = 0;
  double p = 1.0;
  do {
    p *= rng.uniform01();
    ++k;
  } while (p > limit && k < 1u << 16);
  return k - 1;
}
}  // namespace

LossChannel::LossChannel(std::uint64_t network_seed, std::uint64_t round, double p)
    : round_rng_(Rng(mix64(network_seed ^ kLossStreamSalt)).fork(round)) {
  if (p <= 0.0) {
    threshold_ = 0;
  } else if (p >= 1.0) {
    threshold_ = ~0ULL;  // drops all but the all-ones draw (p = 1 - 2^-64)
  } else {
    // Exact for every representable p < 1: p * 2^64 < 2^64, so the cast is
    // defined and next_u64() < threshold has probability p up to 2^-64.
    threshold_ = static_cast<std::uint64_t>(p * 0x1p64);
  }
}

// ---------------------------------------------------------------------------
// FaultModel defaults
// ---------------------------------------------------------------------------

void FaultModel::on_run_begin(Network&, Rng&) {}
void FaultModel::on_round_begin(std::uint64_t, Network&) {}
double FaultModel::loss_probability(std::uint64_t) const { return 0.0; }
bool FaultModel::has_byzantine() const { return false; }
bool FaultModel::byzantine(std::uint32_t) const { return false; }
Message FaultModel::corrupt_response(std::uint64_t, std::uint32_t, const Network&,
                                     const Message& honest) const {
  return honest;
}
const std::uint32_t* FaultModel::partition_components(std::uint64_t) const {
  return nullptr;
}

// ---------------------------------------------------------------------------
// StaticCrash
// ---------------------------------------------------------------------------

StaticCrash::StaticCrash(std::uint32_t count, FaultStrategy strategy)
    : count_(count), strategy_(strategy) {}

void StaticCrash::on_run_begin(Network& net, Rng& adversary) {
  if (count_ == 0) return;  // consume nothing, as the legacy f == 0 path did
  for (std::uint32_t v : choose_failures(net, count_, strategy_, adversary)) {
    net.fail(v);
  }
}

std::string StaticCrash::describe() const {
  std::ostringstream os;
  os << "static_crash(f=" << count_ << ", strategy=" << to_string(strategy_) << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// ScheduledCrash
// ---------------------------------------------------------------------------

ScheduledCrash::ScheduledCrash(std::uint64_t crash_round, std::uint32_t count,
                               FaultStrategy strategy)
    : crash_round_(crash_round),
      count_(count),
      strategy_(strategy),
      explicit_victims_(false) {}

ScheduledCrash::ScheduledCrash(std::uint64_t crash_round,
                               std::vector<std::uint32_t> victims)
    : crash_round_(crash_round),
      explicit_victims_(true),
      victims_(std::move(victims)) {}

void ScheduledCrash::on_run_begin(Network& net, Rng& adversary) {
  if (explicit_victims_ || count_ == 0) return;
  // Oblivious: the set is fixed before the algorithm runs, from the
  // adversary's own stream - only the crash is deferred to the timeline.
  victims_ = choose_failures(net, count_, strategy_, adversary);
}

void ScheduledCrash::on_round_begin(std::uint64_t round, Network& net) {
  if (fired_ || round < crash_round_) return;
  fired_ = true;  // monotone: the set crashes exactly once
  // A composed churn model may have crashed a victim before this round
  // fires; killing an already-dead node is not a schedule bug here, so skip
  // it rather than trip Network::fail's double-fail guard.
  for (std::uint32_t v : victims_) {
    if (net.alive(v)) net.fail(v);
  }
}

std::string ScheduledCrash::describe() const {
  std::ostringstream os;
  os << "scheduled_crash(round=" << crash_round_;
  if (explicit_victims_) {
    os << ", victims=" << victims_.size();
  } else {
    os << ", f=" << count_ << ", strategy=" << to_string(strategy_);
  }
  os << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// LossyChannel
// ---------------------------------------------------------------------------

LossyChannel::LossyChannel(double p) : p_(p) {
  GOSSIP_CHECK_MSG(p >= 0.0 && p < 1.0, "loss probability must be in [0, 1)");
}

double LossyChannel::loss_probability(std::uint64_t) const { return p_; }

std::string LossyChannel::describe() const {
  std::ostringstream os;
  os << "lossy(p=" << p_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// ChurnSchedule
// ---------------------------------------------------------------------------

ChurnSchedule::ChurnSchedule(double join_rate, double crash_rate,
                             std::uint64_t start_round, std::uint64_t end_round)
    : join_rate_(join_rate),
      crash_rate_(crash_rate),
      start_round_(start_round),
      end_round_(end_round),
      scripted_(false) {
  GOSSIP_CHECK_MSG(join_rate >= 0.0 && crash_rate >= 0.0,
                   "churn rates must be non-negative");
}

ChurnSchedule::ChurnSchedule(std::vector<ChurnEvent> script)
    : scripted_(true), script_(std::move(script)) {}

void ChurnSchedule::on_round_begin(std::uint64_t round, Network& net) {
  if (scripted_) {
    // Events are matched by round, unordered; repeated rounds accumulate.
    std::uint32_t joins = 0, crashes = 0;
    for (const ChurnEvent& e : script_) {
      if (e.round == round) {
        joins += e.joins;
        crashes += e.crashes;
      }
    }
    if (joins != 0 || crashes != 0) apply(joins, crashes, round, net);
    return;
  }
  if (round < start_round_ || round >= end_round_) return;
  if (join_rate_ <= 0.0 && crash_rate_ <= 0.0) return;
  // Arrival counts from the round's own counter stream: joins first, then
  // crashes, then (in apply) the crash victims - one fixed consumption
  // order, deterministic in (network seed, round) alone.
  Rng churn = Rng(mix64(net.options().seed ^ kChurnStreamSalt)).fork(round);
  const std::uint32_t joins = poisson_draw(join_rate_, churn);
  const std::uint32_t crashes = poisson_draw(crash_rate_, churn);
  if (joins != 0 || crashes != 0) apply_with(joins, crashes, churn, net);
}

void ChurnSchedule::apply(std::uint32_t joins, std::uint32_t crashes,
                          std::uint64_t round, Network& net) {
  Rng churn = Rng(mix64(net.options().seed ^ kChurnStreamSalt)).fork(round);
  apply_with(joins, crashes, churn, net);
}

void ChurnSchedule::apply_with(std::uint32_t joins, std::uint32_t crashes, Rng& churn,
                               Network& net) {
  // Joins before crashes: a joiner may die the same round it arrives.
  for (std::uint32_t j = 0; j < joins && net.can_join(); ++j) {
    (void)net.join();
    ++joins_applied_;
  }
  for (std::uint32_t c = 0; c < crashes; ++c) {
    if (net.alive_count() <= 2) break;  // keep the network a network
    auto v = static_cast<std::uint32_t>(churn.uniform_below(net.n()));
    while (!net.alive(v)) v = (v + 1) % net.n();
    net.fail(v);
    ++crashes_applied_;
  }
}

std::string ChurnSchedule::describe() const {
  std::ostringstream os;
  if (scripted_) {
    os << "churn(script=" << script_.size() << " events)";
  } else {
    os << "churn(join_rate=" << join_rate_ << ", crash_rate=" << crash_rate_;
    if (start_round_ != 0 || end_round_ != ~0ULL) {
      os << ", rounds=[" << start_round_ << ", ";
      if (end_round_ == ~0ULL) {
        os << "inf";
      } else {
        os << end_round_;
      }
      os << ")";
    }
    os << ")";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// LossSchedule
// ---------------------------------------------------------------------------

LossSchedule::LossSchedule(Shape shape, double a, double b, std::uint64_t r0,
                           std::uint64_t r1)
    : shape_(shape), a_(a), b_(b), r0_(r0), r1_(r1) {}

LossSchedule LossSchedule::burst(double p, std::uint64_t from, std::uint64_t until) {
  GOSSIP_CHECK_MSG(p >= 0.0 && p < 1.0, "burst loss probability must be in [0, 1)");
  GOSSIP_CHECK_MSG(from < until, "burst window must be non-empty");
  return LossSchedule(Shape::kBurst, p, 0.0, from, until);
}

LossSchedule LossSchedule::ramp(double p0, double p1, std::uint64_t over_rounds) {
  GOSSIP_CHECK_MSG(p0 >= 0.0 && p0 < 1.0 && p1 >= 0.0 && p1 < 1.0,
                   "ramp endpoints must be in [0, 1)");
  return LossSchedule(Shape::kRamp, p0, p1, over_rounds, 0);
}

LossSchedule LossSchedule::periodic(double p, std::uint64_t period, std::uint64_t duty) {
  GOSSIP_CHECK_MSG(p >= 0.0 && p < 1.0, "periodic loss probability must be in [0, 1)");
  GOSSIP_CHECK_MSG(period > 0 && duty <= period, "need duty <= period, period > 0");
  return LossSchedule(Shape::kPeriodic, p, 0.0, period, duty);
}

double LossSchedule::loss_probability(std::uint64_t round) const {
  switch (shape_) {
    case Shape::kBurst:
      return (round >= r0_ && round < r1_) ? a_ : 0.0;
    case Shape::kRamp: {
      if (r0_ == 0 || round >= r0_) return b_;
      const double t = static_cast<double>(round) / static_cast<double>(r0_);
      return a_ + (b_ - a_) * t;
    }
    case Shape::kPeriodic:
      return (round % r0_) < r1_ ? a_ : 0.0;
  }
  return 0.0;
}

std::string LossSchedule::describe() const {
  std::ostringstream os;
  switch (shape_) {
    case Shape::kBurst:
      os << "loss_schedule(burst p=" << a_ << ", rounds=[" << r0_ << ", " << r1_ << "))";
      break;
    case Shape::kRamp:
      os << "loss_schedule(ramp " << a_ << " -> " << b_ << " over " << r0_ << ")";
      break;
    case Shape::kPeriodic:
      os << "loss_schedule(periodic p=" << a_ << ", period=" << r0_ << ", duty=" << r1_
         << ")";
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// PartitionFault
// ---------------------------------------------------------------------------

PartitionFault::PartitionFault(std::uint64_t from_round, std::uint64_t until_round,
                               std::uint32_t parts)
    : from_round_(from_round), until_round_(until_round), parts_(parts) {
  GOSSIP_CHECK_MSG(from_round < until_round, "partition window must be non-empty");
  GOSSIP_CHECK_MSG(parts >= 2, "a partition needs at least 2 components");
}

void PartitionFault::on_run_begin(Network& net, Rng&) {
  // Labels over ALL capacity slots so a mid-partition joiner lands in a
  // component as well. Per-node forks off a seed-keyed base stream - NOT the
  // adversary stream - keep the assignment a pure function of (network seed,
  // node): the adversary stream's consumption order varies with the model
  // composition, this must not.
  components_.resize(net.capacity());
  Rng base = Rng(mix64(net.options().seed ^ kPartitionStreamSalt));
  for (std::uint32_t v = 0; v < net.capacity(); ++v) {
    components_[v] = static_cast<std::uint32_t>(base.fork(v).uniform_below(parts_));
  }
}

const std::uint32_t* PartitionFault::partition_components(std::uint64_t round) const {
  if (round < from_round_ || round >= until_round_) return nullptr;
  return components_.empty() ? nullptr : components_.data();
}

std::string PartitionFault::describe() const {
  std::ostringstream os;
  os << "partition(parts=" << parts_ << ", rounds=[" << from_round_ << ", "
     << until_round_ << "))";
  return os.str();
}

// ---------------------------------------------------------------------------
// ByzantineResponder
// ---------------------------------------------------------------------------

ByzantineResponder::ByzantineResponder(double fraction) : fraction_(fraction) {
  GOSSIP_CHECK_MSG(fraction >= 0.0 && fraction < 1.0,
                   "byzantine fraction must be in [0, 1)");
}

void ByzantineResponder::on_run_begin(Network& net, Rng& adversary) {
  traitor_.assign(net.capacity(), 0);
  const auto want = static_cast<std::uint32_t>(
      std::llround(fraction_ * static_cast<double>(net.n())));
  traitor_count_ = 0;
  if (want == 0) return;
  // Oblivious pre-commitment from the adversary's own stream; joiners get
  // indices >= the initial n and are never traitors.
  for (std::uint32_t v : choose_failures(net, want, FaultStrategy::kRandomSubset,
                                         adversary)) {
    traitor_[v] = 1;
    ++traitor_count_;
  }
}

bool ByzantineResponder::has_byzantine() const { return fraction_ > 0.0; }

bool ByzantineResponder::byzantine(std::uint32_t node) const {
  return node < traitor_.size() && traitor_[node] != 0;
}

Message ByzantineResponder::corrupt_response(std::uint64_t round, std::uint32_t responder,
                                             const Network& net,
                                             const Message& honest) const {
  // Pure in (network seed, round, responder): every executor, bucket count
  // and requester sees the same poisoned message. The detectable payload
  // parts (rumor, count) are stripped - the receiver notices the corruption
  // and discards them, modeled as absence. The ID list is the attack: one
  // poisoned slot per honest slot (at least one), alternating stale-but-real
  // IDs (may be dead, may be the receiver itself) with garbage IDs that
  // resolve to nothing.
  Rng poison =
      Rng(mix64(net.options().seed ^ kByzantineStreamSalt)).fork(round, responder);
  std::size_t slots = 0;
  honest.ids().for_each([&](NodeId) { ++slots; });
  if (slots == 0) slots = 1;
  Message::IdList ids;
  for (std::size_t i = 0; i < slots; ++i) {
    if ((poison.next_u64() & 1) != 0) {
      const auto v = static_cast<std::uint32_t>(poison.uniform_below(net.n()));
      ids.push_back(net.id_of(v));  // stale: resolvable, possibly dead
    } else {
      std::uint64_t raw = poison.next_u64();
      if (raw == ~0ULL) --raw;  // never the unclustered sentinel
      ids.push_back(NodeId(raw));  // garbage: dials dead air
    }
  }
  return Message::id_list(std::move(ids));
}

std::string ByzantineResponder::describe() const {
  std::ostringstream os;
  os << "byzantine(fraction=" << fraction_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// CompositeFault
// ---------------------------------------------------------------------------

CompositeFault& CompositeFault::add(std::unique_ptr<FaultModel> part) {
  GOSSIP_CHECK(part != nullptr);
  parts_.push_back(std::move(part));
  return *this;
}

void CompositeFault::on_run_begin(Network& net, Rng& adversary) {
  for (const auto& part : parts_) part->on_run_begin(net, adversary);
}

void CompositeFault::on_round_begin(std::uint64_t round, Network& net) {
  for (const auto& part : parts_) part->on_round_begin(round, net);
}

double CompositeFault::loss_probability(std::uint64_t round) const {
  // Independent channels: a payload survives only if every part keeps it.
  // Re-queried per part PER ROUND, so round-varying schedules (LossSchedule
  // bursts/ramps) compose exactly; clamped because accumulated rounding can
  // push the product a ulp outside [0, 1] at the extremes.
  double keep = 1.0;
  for (const auto& part : parts_) keep *= 1.0 - part->loss_probability(round);
  return std::clamp(1.0 - keep, 0.0, 1.0);
}

bool CompositeFault::has_byzantine() const {
  for (const auto& part : parts_) {
    if (part->has_byzantine()) return true;
  }
  return false;
}

bool CompositeFault::byzantine(std::uint32_t node) const {
  for (const auto& part : parts_) {
    if (part->byzantine(node)) return true;
  }
  return false;
}

Message CompositeFault::corrupt_response(std::uint64_t round, std::uint32_t responder,
                                         const Network& net,
                                         const Message& honest) const {
  // The first part claiming the responder supplies the corruption.
  for (const auto& part : parts_) {
    if (part->byzantine(responder)) {
      return part->corrupt_response(round, responder, net, honest);
    }
  }
  return honest;
}

const std::uint32_t* CompositeFault::partition_components(std::uint64_t round) const {
  // At most one part is expected to partition a given round; the first
  // non-null map wins (mirrors the first-byzantine-part convention above).
  for (const auto& part : parts_) {
    if (const std::uint32_t* map = part->partition_components(round)) return map;
  }
  return nullptr;
}

std::string CompositeFault::describe() const {
  std::string out;
  for (const auto& part : parts_) {
    if (!out.empty()) out += " + ";
    out += part->describe();
  }
  return out.empty() ? "composite()" : out;
}

}  // namespace gossip::sim
