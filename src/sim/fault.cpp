#include "sim/fault.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "sim/network.hpp"

namespace gossip::sim {

const char* to_string(FaultStrategy s) noexcept {
  switch (s) {
    case FaultStrategy::kRandomSubset: return "random";
    case FaultStrategy::kSmallestIds: return "smallest-ids";
    case FaultStrategy::kIndexStride: return "stride";
  }
  return "?";
}

std::vector<std::uint32_t> choose_failures(const Network& net, std::uint32_t f,
                                           FaultStrategy strategy, Rng& rng) {
  const std::uint32_t n = net.n();
  GOSSIP_CHECK_MSG(f < n, "cannot fail all nodes");
  std::vector<std::uint32_t> out;
  out.reserve(f);
  switch (strategy) {
    case FaultStrategy::kRandomSubset: {
      // Partial Fisher-Yates over the index range.
      std::vector<std::uint32_t> perm(n);
      std::iota(perm.begin(), perm.end(), 0u);
      for (std::uint32_t i = 0; i < f; ++i) {
        const auto j = static_cast<std::uint32_t>(rng.uniform_range(i, n - 1));
        std::swap(perm[i], perm[j]);
        out.push_back(perm[i]);
      }
      break;
    }
    case FaultStrategy::kSmallestIds: {
      std::vector<std::uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::nth_element(order.begin(), order.begin() + f, order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return net.id_of(a) < net.id_of(b);
                       });
      out.assign(order.begin(), order.begin() + f);
      break;
    }
    case FaultStrategy::kIndexStride: {
      const std::uint32_t stride = std::max<std::uint32_t>(1, n / std::max<std::uint32_t>(f, 1));
      for (std::uint32_t i = 0; out.size() < f && i < n; i += stride) out.push_back(i);
      // Top up sequentially if rounding left us short.
      for (std::uint32_t i = 0; out.size() < f; ++i) {
        if (std::find(out.begin(), out.end(), i) == out.end()) out.push_back(i);
      }
      break;
    }
  }
  return out;
}

}  // namespace gossip::sim
