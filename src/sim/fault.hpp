// Pluggable fault models on a deterministic round timeline.
//
// The paper's Section 8 adversary fixes a crash set *before* round 1; the
// rumor-spreading literature treats robustness more richly (Avin-Elsasser:
// node failures; Doerr-Fouz: independently failing transmissions). This
// header generalises the one-shot fail-set into a first-class FaultModel the
// Engine consults on a round timeline:
//
//   * on_run_begin(net, adversary)  - once, before the algorithm draws any
//     randomness (obliviousness: the adversary's choices come from its own
//     dedicated stream). TrialRunner calls this; direct Engine users call it
//     themselves.
//   * on_round_begin(round, net)    - before every engine round (0-based,
//     engine-lifetime count). May call Network::fail(): the alive set is
//     DYNAMIC but MONOTONE - nodes crash, they never come back.
//   * loss_probability(round)       - arms a per-contact LossChannel for the
//     round. A lossy contact's connection still happens (it is metered and
//     the handshake reveals both endpoints' IDs) but its payload - push
//     content, pull response, both exchange directions - is dropped, exactly
//     as if the target had failed.
//
// Determinism: loss decisions are drawn from counter-based streams keyed by
// (network seed, round, initiator) via Rng::fork, never from the engine's
// draw path, so they are bit-identical for the serial and sharded executors
// and for every engine/trial thread count.
//
// Churn (PR 6): on_round_begin may also call Network::join() - the alive
// set is non-monotone, but each node's own lifetime still is (join once,
// maybe crash once, never revive). Join/crash arrivals come from a
// counter-based stream keyed on (network seed, round), so a churn
// trajectory is part of the round timeline and bit-identical across every
// executor. ByzantineResponder adds the third adversary axis: alive nodes
// whose pull responses the engine replaces with corrupt_response() -
// payload corruption is detected (the rumor/count is dropped at the
// receiver, modeled as absent), but ID-list poisoning is NOT: stale and
// garbage IDs enter the receiver's knowledge like any gossiped list, and a
// later direct contact to one dials dead air.
//
// Concrete models: StaticCrash (wraps the Section 8 adversary - the
// back-compat default), ScheduledCrash (crash a set at round t, e.g. kill
// the source mid-broadcast), LossyChannel(p), ChurnSchedule (scripted or
// Poisson join/crash arrivals), LossSchedule (burst / ramp / periodic
// partition loss curves), ByzantineResponder(fraction), and CompositeFault.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/message.hpp"

namespace gossip::sim {

enum class FaultStrategy {
  kRandomSubset,  ///< F nodes uniformly at random
  kSmallestIds,   ///< the F nodes with the smallest IDs (attacks merge-to-smallest)
  kIndexStride,   ///< every ceil(n/F)-th node by index (deterministic spread)
};

[[nodiscard]] const char* to_string(FaultStrategy s) noexcept;

class Network;  // fwd

/// Chooses F distinct node indices to fail according to `strategy`.
/// Must be invoked before the algorithm under test draws any randomness that
/// depends on the same seed (obliviousness); callers pass a dedicated RNG.
[[nodiscard]] std::vector<std::uint32_t> choose_failures(const Network& net, std::uint32_t f,
                                                         FaultStrategy strategy, Rng& rng);

// ---------------------------------------------------------------------------
// Per-round loss channel (value type the Engine arms when a model reports a
// positive loss probability).
// ---------------------------------------------------------------------------

/// Decides, per contact, whether the connection's payload is dropped this
/// round. Decisions are a pure function of (network seed, round, initiator):
/// any executor - serial, sharded with any thread count, any trial worker -
/// reproduces the same drops. Probabilities below 2^-64 are lossless.
class LossChannel {
 public:
  LossChannel() = default;
  LossChannel(std::uint64_t network_seed, std::uint64_t round, double p);

  /// True when this round actually drops anything (p rounded above 0).
  [[nodiscard]] bool active() const noexcept { return threshold_ != 0; }

  /// Drop decision for the (single) contact `initiator` opened this round.
  [[nodiscard]] bool drop(std::uint32_t initiator) const noexcept {
    return round_rng_.fork(initiator).next_u64() < threshold_;
  }

 private:
  Rng round_rng_{0};  ///< Rng(mix64(seed ^ salt)).fork(round)
  std::uint64_t threshold_ = 0;  ///< p mapped onto the u64 range
};

// ---------------------------------------------------------------------------
// FaultModel interface.
// ---------------------------------------------------------------------------

/// A fault scenario consulted by the Engine on the round timeline. Crashes
/// must be monotone (Network::fail only; nodes never revive); the loss
/// probability may vary per round. Models are installed non-owning via
/// Engine::set_fault_model and must outlive the rounds they run.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Called once, before the algorithm runs and before the source is chosen.
  /// `adversary` is a dedicated stream (obliviousness: independent of the
  /// run's randomness). Models that pre-commit to a victim set draw it here.
  virtual void on_run_begin(Network& net, Rng& adversary);

  /// Called before every round; `round` counts this engine's rounds from 0
  /// (engine lifetime - it never resets with the metrics). May crash nodes.
  virtual void on_round_begin(std::uint64_t round, Network& net);

  /// Per-contact payload-drop probability for `round`, in [0, 1]. 0 (the
  /// default) keeps the round lossless and costs nothing on the hot path.
  /// Round-varying implementations are first-class: the engine re-queries
  /// every round and composites re-query every part (see CompositeFault).
  [[nodiscard]] virtual double loss_probability(std::uint64_t round) const;

  /// True when some node answers pulls adversarially; the engine arms its
  /// response-corruption path for a round only when this reports true.
  [[nodiscard]] virtual bool has_byzantine() const;

  /// True when `node`'s pull responses are adversarial (pre-committed at
  /// on_run_begin; oblivious, so constant across the run).
  [[nodiscard]] virtual bool byzantine(std::uint32_t node) const;

  /// Replacement for a byzantine `responder`'s single per-round response.
  /// Must be a pure function of (network seed, round, responder) - it is
  /// evaluated once per responder per round, in receiver-bucket order, and
  /// every requester sees the same corrupted message. The default returns
  /// `honest` unchanged.
  [[nodiscard]] virtual Message corrupt_response(std::uint64_t round,
                                                 std::uint32_t responder,
                                                 const Network& net,
                                                 const Message& honest) const;

  /// Component map for `round`, or nullptr when the network is whole (the
  /// default - no cost on the hot path). When non-null the pointer addresses
  /// `Network::capacity()` component labels and a contact whose initiator and
  /// target carry different labels behaves exactly like a lossy contact: the
  /// connection is metered, the payload is dropped. The map must stay valid
  /// and constant for the duration of the round.
  [[nodiscard]] virtual const std::uint32_t* partition_components(
      std::uint64_t round) const;

  /// Human-readable summary, e.g. "static_crash(f=32, strategy=random)".
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// The Section 8 oblivious adversary as a FaultModel: crashes `count` nodes
/// chosen by `strategy` at run begin (before round 0, before the source is
/// picked). This is the back-compat default for legacy fault_fraction /
/// fault_strategy scenarios - it consumes the adversary stream exactly as
/// the old choose_failures + Network::fail recipe did.
class StaticCrash final : public FaultModel {
 public:
  StaticCrash(std::uint32_t count, FaultStrategy strategy);

  void on_run_begin(Network& net, Rng& adversary) override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::uint32_t count_;
  FaultStrategy strategy_;
};

/// Crashes a set of nodes at the start of round `crash_round` (0-based:
/// crash_round = 0 kills them before any communication, after the source is
/// chosen - so the source itself may die mid-broadcast). The set is either
/// chosen obliviously at run begin (count + strategy, same adversary-stream
/// consumption as StaticCrash) or given explicitly by index.
class ScheduledCrash final : public FaultModel {
 public:
  ScheduledCrash(std::uint64_t crash_round, std::uint32_t count, FaultStrategy strategy);
  ScheduledCrash(std::uint64_t crash_round, std::vector<std::uint32_t> victims);

  void on_run_begin(Network& net, Rng& adversary) override;
  void on_round_begin(std::uint64_t round, Network& net) override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::uint64_t crash_round() const noexcept { return crash_round_; }
  [[nodiscard]] const std::vector<std::uint32_t>& victims() const noexcept {
    return victims_;
  }

 private:
  std::uint64_t crash_round_;
  std::uint32_t count_ = 0;
  FaultStrategy strategy_ = FaultStrategy::kRandomSubset;
  bool explicit_victims_;
  bool fired_ = false;
  std::vector<std::uint32_t> victims_;
};

/// Independent per-contact payload loss with probability `p` in [0, 1),
/// every round (Doerr-Fouz style transmission failures).
class LossyChannel final : public FaultModel {
 public:
  explicit LossyChannel(double p);

  [[nodiscard]] double loss_probability(std::uint64_t round) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double p_;
};

/// One scripted churn event: at the start of engine round `round`, `joins`
/// nodes arrive and then `crashes` uniformly random alive nodes fail.
struct ChurnEvent {
  std::uint64_t round = 0;
  std::uint32_t joins = 0;
  std::uint32_t crashes = 0;
};

/// Join/crash arrivals on the round timeline - either Poisson (expected
/// `join_rate` joins and `crash_rate` crashes per round) or scripted. All
/// randomness (arrival counts, crash victims) comes from a counter-based
/// stream keyed on (network seed, round), so the schedule is oblivious to
/// the algorithm and bit-identical across executors and thread counts.
/// Within a round, joins apply before crashes (a joiner can die the same
/// round it arrives). Joins silently stop at the network's pre-reserved
/// capacity; crashes never take the alive count below 2.
class ChurnSchedule final : public FaultModel {
 public:
  /// Poisson arrivals, optionally windowed to rounds [start, end).
  ChurnSchedule(double join_rate, double crash_rate, std::uint64_t start_round = 0,
                std::uint64_t end_round = ~0ULL);
  /// Scripted arrivals (events need not be sorted; rounds may repeat).
  explicit ChurnSchedule(std::vector<ChurnEvent> script);

  void on_round_begin(std::uint64_t round, Network& net) override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::uint64_t joins_applied() const noexcept { return joins_applied_; }
  [[nodiscard]] std::uint64_t crashes_applied() const noexcept { return crashes_applied_; }

 private:
  void apply(std::uint32_t joins, std::uint32_t crashes, std::uint64_t round,
             Network& net);
  void apply_with(std::uint32_t joins, std::uint32_t crashes, Rng& churn, Network& net);

  double join_rate_ = 0.0;
  double crash_rate_ = 0.0;
  std::uint64_t start_round_ = 0;
  std::uint64_t end_round_ = ~0ULL;
  bool scripted_;
  std::vector<ChurnEvent> script_;
  std::uint64_t joins_applied_ = 0;
  std::uint64_t crashes_applied_ = 0;
};

/// Round-varying loss curves, composable with every other model:
///   burst(p, from, until)      p on rounds [from, until), 0 elsewhere;
///   ramp(p0, p1, over_rounds)  linear from p0 at round 0 to p1 at round
///                              `over_rounds`, holding p1 after;
///   periodic(p, period, duty)  p during the first `duty` rounds of every
///                              `period`-round cycle (a recurring partition).
class LossSchedule final : public FaultModel {
 public:
  enum class Shape { kBurst, kRamp, kPeriodic };

  [[nodiscard]] static LossSchedule burst(double p, std::uint64_t from,
                                          std::uint64_t until);
  [[nodiscard]] static LossSchedule ramp(double p0, double p1,
                                         std::uint64_t over_rounds);
  [[nodiscard]] static LossSchedule periodic(double p, std::uint64_t period,
                                             std::uint64_t duty);

  [[nodiscard]] double loss_probability(std::uint64_t round) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Shape shape() const noexcept { return shape_; }

 private:
  LossSchedule(Shape shape, double a, double b, std::uint64_t r0, std::uint64_t r1);

  Shape shape_;
  double a_;         ///< burst/periodic: p; ramp: p0
  double b_;         ///< ramp: p1; unused otherwise
  std::uint64_t r0_; ///< burst: from; ramp: over_rounds; periodic: period
  std::uint64_t r1_; ///< burst: until; periodic: duty; unused for ramp
};

/// Splits the network into `parts` components for rounds [t0, t1): every
/// cross-component contact behaves as payload loss (connection metered,
/// content dropped), then the partition heals. Component labels cover ALL
/// capacity slots - joiners arriving mid-partition land in a component too -
/// and are pre-committed at run begin from a per-node counter stream keyed
/// on (network seed, node) with a dedicated salt, so the split is oblivious
/// to the algorithm and bit-identical across trial workers, engine threads
/// and delivery buckets.
class PartitionFault final : public FaultModel {
 public:
  PartitionFault(std::uint64_t from_round, std::uint64_t until_round,
                 std::uint32_t parts);

  void on_run_begin(Network& net, Rng& adversary) override;
  [[nodiscard]] const std::uint32_t* partition_components(
      std::uint64_t round) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::uint32_t component_of(std::uint32_t node) const {
    return components_[node];
  }

 private:
  std::uint64_t from_round_;
  std::uint64_t until_round_;
  std::uint32_t parts_;
  std::vector<std::uint32_t> components_;  ///< indexed by node, sized to capacity
};

/// A `fraction` of the initial nodes (pre-committed obliviously at run
/// begin) answer every pull with a corrupted message: the payload
/// (rumor/count) is stripped - corruption there is detectable, so the
/// receiver discards it - but the ID list is replaced with a poisoned one
/// (half stale-but-real IDs, half garbage) that the receiver CANNOT detect
/// and learns like any gossiped list. Joiners are never byzantine (the set
/// is fixed before the run). Pushes initiated by byzantine nodes are not
/// altered; the model targets the response path direct addressing trusts.
class ByzantineResponder final : public FaultModel {
 public:
  explicit ByzantineResponder(double fraction);

  void on_run_begin(Network& net, Rng& adversary) override;
  [[nodiscard]] bool has_byzantine() const override;
  [[nodiscard]] bool byzantine(std::uint32_t node) const override;
  [[nodiscard]] Message corrupt_response(std::uint64_t round, std::uint32_t responder,
                                         const Network& net,
                                         const Message& honest) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::uint32_t traitor_count() const noexcept { return traitor_count_; }

 private:
  double fraction_;
  std::uint32_t traitor_count_ = 0;
  std::vector<std::uint8_t> traitor_;  ///< indexed by node, sized to capacity
};

/// Runs several models on one timeline: setup and round hooks forward in
/// insertion order; loss channels compose as independent failures
/// (1 - prod(1 - p_i), re-queried per round so round-varying schedules
/// compose correctly); byzantine queries forward to the parts.
class CompositeFault final : public FaultModel {
 public:
  CompositeFault() = default;

  CompositeFault& add(std::unique_ptr<FaultModel> part);
  [[nodiscard]] std::size_t size() const noexcept { return parts_.size(); }

  void on_run_begin(Network& net, Rng& adversary) override;
  void on_round_begin(std::uint64_t round, Network& net) override;
  [[nodiscard]] double loss_probability(std::uint64_t round) const override;
  [[nodiscard]] bool has_byzantine() const override;
  [[nodiscard]] bool byzantine(std::uint32_t node) const override;
  [[nodiscard]] Message corrupt_response(std::uint64_t round, std::uint32_t responder,
                                         const Network& net,
                                         const Message& honest) const override;
  [[nodiscard]] const std::uint32_t* partition_components(
      std::uint64_t round) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<std::unique_ptr<FaultModel>> parts_;
};

}  // namespace gossip::sim
