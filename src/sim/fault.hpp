// Oblivious node-failure adversary (paper Section 8).
//
// The adversary fixes a set of F nodes *before* the execution begins,
// independent of the algorithm's randomness; failed nodes never initiate,
// respond, relay or get informed. Theorem 19: the algorithms still cluster /
// inform all but o(F) surviving nodes. Because all algorithms are symmetric
// in the nodes, any oblivious choice is equivalent to a random one - we
// nevertheless provide several concrete strategies so the benchmarks can
// demonstrate that the choice does not matter.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace gossip::sim {

enum class FaultStrategy {
  kRandomSubset,  ///< F nodes uniformly at random
  kSmallestIds,   ///< the F nodes with the smallest IDs (attacks merge-to-smallest)
  kIndexStride,   ///< every ceil(n/F)-th node by index (deterministic spread)
};

[[nodiscard]] const char* to_string(FaultStrategy s) noexcept;

class Network;  // fwd

/// Chooses F distinct node indices to fail according to `strategy`.
/// Must be invoked before the algorithm under test draws any randomness that
/// depends on the same seed (obliviousness); callers pass a dedicated RNG.
[[nodiscard]] std::vector<std::uint32_t> choose_failures(const Network& net, std::uint32_t f,
                                                         FaultStrategy strategy, Rng& rng);

}  // namespace gossip::sim
