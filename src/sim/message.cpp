#include "sim/message.hpp"

#include <algorithm>

#include "common/math.hpp"

namespace gossip::sim {

MessageCosts MessageCosts::for_network(std::uint64_t n, std::uint32_t rumor_bits) {
  MessageCosts c;
  const std::uint32_t log_n = std::max(1u, ceil_log2(std::max<std::uint64_t>(n, 2)));
  // Polynomially (cubically) large ID space => Theta(log n)-bit IDs.
  c.id_bits = std::max(8u, 3 * log_n);
  c.count_bits = log_n + 1;
  // The paper assumes b = Omega(log n); enforce that floor in the accounting.
  c.rumor_bits = std::max(rumor_bits, log_n);
  return c;
}

}  // namespace gossip::sim
