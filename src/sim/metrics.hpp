// Round-, message-, bit- and Delta-complexity metering (paper Sections 2, 7).
//
// Two message counts are kept, because the literature counts differently:
//  * payload messages - transmissions that carry content (a push with a
//    non-empty payload, or a non-empty pull response). This matches the
//    rumor-transmission accounting of Karp et al. [10] that the paper's O(1)
//    messages-per-node claims build on.
//  * connections - every initiated contact (all pushes and all pull
//    requests, empty or not). This is the conservative count; the paper's
//    Cluster2 bounds even the number of pulls, so we report both.
// Delta(v, r) = number of communications node v is involved in during round
// r (initiated + received pushes + received pull requests); Section 7 bounds
// its maximum. Involvement needs one counter probe per contact endpoint - a
// guaranteed random cache miss on multi-million-node networks - so it can be
// switched off for raw-throughput runs (set_track_involvement); every other
// measure is unaffected.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace gossip::sim {

/// Counters for a single synchronous round.
struct RoundStats {
  std::uint64_t pushes = 0;
  std::uint64_t pull_requests = 0;
  std::uint64_t pull_responses = 0;   ///< non-empty responses delivered
  std::uint64_t payload_messages = 0; ///< content-carrying transmissions
  std::uint64_t connections = 0;      ///< pushes + pull_requests
  std::uint64_t bits = 0;             ///< payload bits transmitted
  std::uint64_t initiators = 0;       ///< nodes that initiated a contact
  std::uint32_t max_involvement = 0;  ///< max communications of one node (Delta)

  // Counter bumps for one contact, shared by the collector's inline metering
  // and the sharded executor's per-shard deltas so the accounting cannot
  // drift between the two paths (involvement is handled separately - it
  // needs the global per-node histogram).
  void add_push(std::uint64_t push_bits, bool has_payload) noexcept {
    ++pushes;
    ++connections;
    if (has_payload) {
      ++payload_messages;
      bits += push_bits;
    }
  }
  void add_pull_request() noexcept {
    ++pull_requests;
    ++connections;
  }
  void add_pull_response(std::uint64_t response_bits, bool has_payload) noexcept {
    if (has_payload) {
      ++pull_responses;
      ++payload_messages;
      bits += response_bits;
    }
  }

  void accumulate(const RoundStats& r) noexcept;
};

/// Whole-run totals plus optional per-round history.
struct RunStats {
  std::uint64_t rounds = 0;
  RoundStats total;                    ///< max_involvement = max over rounds
  std::vector<RoundStats> per_round;   ///< filled only when history is enabled

  [[nodiscard]] double payload_messages_per_node(std::uint64_t n) const noexcept {
    return n ? static_cast<double>(total.payload_messages) / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] double connections_per_node(std::uint64_t n) const noexcept {
    return n ? static_cast<double>(total.connections) / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] double bits_per_node(std::uint64_t n) const noexcept {
    return n ? static_cast<double>(total.bits) / static_cast<double>(n) : 0.0;
  }
};

/// Accumulates statistics as the engine executes rounds. Involvement
/// counters are kept per node and reset per round via a touched-list, so a
/// round's cost is proportional to its traffic, not to n.
class MetricsCollector {
 public:
  MetricsCollector(std::uint32_t n, bool keep_history);

  void begin_round();
  void end_round();

  /// Delta metering on/off (default on). Off skips the two per-contact
  /// involvement-counter probes and reports max_involvement = 0.
  void set_track_involvement(bool on) noexcept { track_involvement_ = on; }
  [[nodiscard]] bool track_involvement() const noexcept { return track_involvement_; }

  // The record_* calls run once per contact on the engine's hot path and are
  // defined inline so the static-dispatch round executor can fold them into
  // its per-node loop.
  void record_initiator() { ++round_.initiators; }

  void record_push(std::uint32_t initiator, std::uint32_t target, std::uint64_t bits,
                   bool has_payload) {
    round_.add_push(bits, has_payload);
    if (track_involvement_) {
      bump_involvement(initiator);
      bump_involvement(target);
    }
  }

  void record_pull_request(std::uint32_t initiator, std::uint32_t target) {
    round_.add_pull_request();
    if (track_involvement_) {
      bump_involvement(initiator);
      bump_involvement(target);
    }
  }

  /// Merges a phase-1 shard's counter delta into the current round (sharded
  /// execution). Deltas are plain RoundStats accumulated thread-locally with
  /// max_involvement left 0: involvement needs the global per-node counters,
  /// so it is replayed separately through record_involvement in the
  /// deterministic merge order.
  void merge_round_delta(const RoundStats& delta) {
    GOSSIP_CHECK_MSG(in_round_, "merge_round_delta outside a round");
    round_.accumulate(delta);
  }

  /// Involvement bump for ONE contact endpoint, replayed after phase 1 by
  /// the sharded executor (initiator side in shard order, target side in
  /// receiver-bucket order). Order-insensitive within a round: the counters
  /// only increase and Delta is a max over the final per-node counts, so any
  /// replay order is bit-identical to inline serial metering.
  void record_involvement(std::uint32_t node) {
    if (track_involvement_) bump_involvement(node);
  }

  void record_pull_response(std::uint64_t bits, bool has_payload) {
    round_.add_pull_response(bits, has_payload);
  }

  [[nodiscard]] const RunStats& run() const noexcept { return run_; }
  [[nodiscard]] const RoundStats& current_round() const noexcept { return round_; }
  [[nodiscard]] bool in_round() const noexcept { return in_round_; }

  /// Resets all counters (used when one Network is reused across phases that
  /// should be measured separately).
  void reset();

 private:
  void bump_involvement(std::uint32_t node) {
    GOSSIP_CHECK(node < n_);
    ++involvement_[node];
    if (involvement_[node] == 1) touched_.push_back(node);
    round_.max_involvement = std::max(round_.max_involvement, involvement_[node]);
  }

  std::uint32_t n_;
  bool keep_history_;
  bool track_involvement_ = true;
  bool in_round_ = false;
  RoundStats round_;
  RunStats run_;
  std::vector<std::uint32_t> involvement_;
  std::vector<std::uint32_t> touched_;
};

}  // namespace gossip::sim
