// Umbrella header: the full public API of the optimal-gossip library.
//
//   #include "gossip.hpp"
//   gossip::sim::Network net({.n = 1 << 20, .seed = 7});
//   auto report = gossip::core::broadcast(net, {});
//
// See README.md for the architecture overview and DESIGN.md for the mapping
// from the paper (Haeupler & Malkhi, PODC 2014) to the modules.
#pragma once

#include "analysis/experiment.hpp"
#include "analysis/graph.hpp"
#include "analysis/knowledge_graph.hpp"
#include "baselines/avin_elsasser.hpp"
#include "baselines/name_dropper.hpp"
#include "baselines/rrs.hpp"
#include "baselines/uniform.hpp"
#include "cluster/clustering.hpp"
#include "cluster/driver.hpp"
#include "common/ids.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/broadcast.hpp"
#include "core/cluster1.hpp"
#include "core/cluster2.hpp"
#include "core/cluster3.hpp"
#include "core/cluster_push_pull.hpp"
#include "core/estimate_n.hpp"
#include "core/leader_election.hpp"
#include "core/options.hpp"
#include "core/schedules.hpp"
#include "runner/json_report.hpp"
#include "runner/json_writer.hpp"
#include "runner/registry.hpp"
#include "runner/scenario.hpp"
#include "runner/trial_runner.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/parallel/parallel_engine.hpp"
#include "sim/parallel/thread_pool.hpp"
