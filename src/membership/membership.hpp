// Membership/suspicion service riding the gossip payload (PR 6).
//
// Every alive node keeps a local membership table: for each peer it has
// heard of, the round it last heard a FRESH signal. Signals ride ordinary
// random phone calls (one EXCHANGE per node per round - the same budget as
// PUSH-PULL): each digest message carries the sender's own ID (its
// heartbeat) plus up to `digest_ids` member IDs sampled from the sender's
// relayable set. Freshness is one-hop:
//
//   * hearing a node FIRST-HAND - the leading digest slot, which the
//     protocol reserves for the sender's own ID - stamps it with the
//     current round (age 0, relayable);
//   * hearing a node SECOND-HAND (a later digest slot) stamps it
//     pessimistically at `round - gossip_ttl`: the information counts
//     against suspicion but is never relayed onwards, so a crashed node's
//     ID cannot circulate forever on relays alone (no gossip ghosts).
//
// Suspicion is local staleness: a peer not refreshed within
// `suspicion_after` rounds is suspected and drops out of the node's relay
// set and its network-size estimate. The headline observable is exactly
// that estimate: estimate_n(v) = 1 + unsuspected peers of v, and the run
// reports the mean relative error |estimate - alive| / alive over alive
// nodes (BroadcastReport::estimate_n_error) plus the fraction of nodes
// within kEstimateEpsilon (the report's `informed`).
//
// Under churn the table chases a moving target: joiners become visible only
// after their ID first rides a digest (they start knowing nobody and dial
// uniformly - allowed by the random phone call model, which needs no
// addresses for random contacts); crashed nodes linger until suspicion
// catches up, ~suspicion_after rounds of over-count. ByzantineResponder
// poisons the response path with stale/garbage IDs that the receiver
// CANNOT distinguish from honest digests - garbage never refreshes, so it
// inflates estimates for up to suspicion_after rounds per injection.
//
// Determinism: digests are sampled from per-(node, round) forked streams,
// state mutations in delivery hooks touch only the receiving node's own
// row, and respond() is pure per (responder, round) - so membership
// trajectories are bit-identical across engine thread counts, delivery
// bucket counts and trial workers, churn included.
#pragma once

#include <cstdint>

#include "core/report.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::obs {
struct Telemetry;
}  // namespace gossip::obs

namespace gossip::membership {

/// Relative-error threshold under which a node's estimate counts as
/// "informed" in the report.
inline constexpr double kEstimateEpsilon = 0.1;

struct MembershipOptions {
  /// Rounds to run (fixed horizon; membership is a continuous service, not
  /// a terminating broadcast). 0 = auto: 2 * suspicion_after +
  /// 4 * gossip_ttl + 8, long enough to reach the sampling steady state
  /// before estimates are read.
  unsigned rounds = 0;
  /// Relay freshness bound: only peers heard first-hand within this many
  /// rounds ride the node's digests. 0 = auto: ceil(log2 n) + 4.
  unsigned gossip_ttl = 0;
  /// Staleness after which a peer is suspected (and excluded from digests
  /// and estimates). 0 = auto: the window in which a node expects to sample
  /// (almost) the whole directory, max(3 * gossip_ttl,
  /// ceil(5 * n / samples_per_round)) with samples_per_round =
  /// 2 * (1 + digest_ids) - one-hop freshness caps how fast liveness
  /// information spreads, so the window is ~n / polylog(n) rounds. Smaller
  /// windows suspect honest-but-unsampled peers; larger ones let crashed
  /// nodes linger.
  unsigned suspicion_after = 0;
  /// Sampled member IDs per digest, on top of the sender's own ID. 0 =
  /// auto: 2 * gossip_ttl, which matches the expected relayable-set size
  /// (~2 first-hand contacts per round within the ttl window) - a wider
  /// digest would only repeat entries.
  unsigned digest_ids = 0;
  unsigned threads = 0;            ///< sharded phase-1 executor (0 = serial)
  std::uint32_t shard_size = 0;    ///< shard width when threads >= 1
  std::uint32_t delivery_buckets = 0;  ///< engine delivery decomposition
  sim::FaultModel* fault = nullptr;    ///< non-owning; on_run_begin is the caller's job
  /// Observability handle attached to the run's engine (src/obs/); the
  /// service installs a per-round probe exporting the mean network-size
  /// estimate over alive nodes (`estimate_n` in time-series records; the
  /// run has no informed set, so `informed` stays null). Non-owning.
  obs::Telemetry* telemetry = nullptr;
};

/// Runs the membership service for the configured horizon and reports the
/// estimate accuracy reached. `seed_node` bootstraps nothing special - every
/// initial node starts knowing only itself - but is kept so the runner's
/// (net, source, spec) calling convention applies; it must be alive.
[[nodiscard]] core::BroadcastReport run_membership(sim::Network& net,
                                                   std::uint32_t seed_node,
                                                   const MembershipOptions& options);

}  // namespace gossip::membership
