#include "membership/membership.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"

namespace gossip::membership {

namespace {

/// Digest-sampling stream salt (distinct from every per-node salt the
/// algorithms use; combined with the round below).
constexpr std::uint64_t kDigestSalt = 0x9d1ce57aa31f42e6ULL;

}  // namespace

core::BroadcastReport run_membership(sim::Network& net, std::uint32_t seed_node,
                                     const MembershipOptions& options) {
  GOSSIP_CHECK_MSG(net.alive(seed_node), "seed node must be alive");
  const std::uint32_t cap = net.capacity();

  const std::uint64_t n0 = net.n();
  const unsigned ttl =
      options.gossip_ttl ? options.gossip_ttl : gossip::ceil_log2(n0) + 4;
  // See the header: digest width matches the relayable-set size; the
  // suspicion window is sized so a node expects to sample (almost) every
  // peer within it - ~5 nominal passes over the directory leave a
  // few-percent miss fraction once digest overlap is accounted for. The
  // horizon reaches the sampling steady state before estimates are read.
  const unsigned digest_ids =
      options.digest_ids ? options.digest_ids : 2 * ttl;
  const std::uint64_t samples_per_round = 2 * (1 + std::uint64_t{digest_ids});
  const unsigned suspicion =
      options.suspicion_after
          ? options.suspicion_after
          : static_cast<unsigned>(std::max<std::uint64_t>(
                3 * ttl,
                (5 * n0 + samples_per_round - 1) / samples_per_round));
  const unsigned horizon =
      options.rounds ? options.rounds : 2 * suspicion + 4 * ttl + 8;

  sim::Engine engine(net);
  if (options.threads) engine.set_threads(options.threads, options.shard_size);
  if (options.delivery_buckets) engine.set_delivery_buckets(options.delivery_buckets);
  engine.set_fault_model(options.fault);

  // last heard FIRST-HAND-or-discounted, one sparse row per listener:
  // (peer, stamp) pairs for the peers actually heard of, sorted by peer
  // index. Stamps are rounds; second-hand receipt stores round - ttl (see
  // the header: one-hop freshness, no gossip ghosts). Sorted order makes
  // every scan visit peers in ascending index - exactly the old dense
  // capacity^2 matrix walk - so trajectories are bit-identical to the dense
  // implementation while memory tracks actual knowledge instead of
  // capacity^2 (which capped the service at n = 8192).
  using Row = std::vector<std::pair<std::uint32_t, std::int32_t>>;
  std::vector<Row> heard(cap);
  const auto upsert = [&](std::uint32_t listener, std::uint32_t peer,
                          std::int32_t stamp) {
    Row& row = heard[listener];
    const auto it = std::lower_bound(
        row.begin(), row.end(), peer,
        [](const auto& entry, std::uint32_t p) { return entry.first < p; });
    if (it != row.end() && it->first == peer) {
      it->second = std::max(it->second, stamp);
    } else {
      row.insert(it, {peer, stamp});
    }
  };
  // Poisoned IDs that resolve to no node, per listener: (raw id, stamp).
  // Bounded by byzantine exposure; empty in honest runs.
  std::vector<std::vector<std::pair<std::uint64_t, std::int32_t>>> ghosts(cap);

  std::uint64_t round = 0;

  // Digest: own ID (the heartbeat slot) + up to digest_ids peers sampled
  // uniformly from the relayable set (heard first-hand within ttl) via a
  // per-(node, round) forked stream. Reads only the node's own row, so it
  // is safe from phase-1 worker threads and pure per (node, round) - the
  // same digest answers initiate and respond.
  const auto make_digest = [&](std::uint32_t v) {
    sim::Message::IdList ids;
    ids.push_back(net.id_of(v));
    if (digest_ids == 0) return sim::Message::id_list(std::move(ids));
    Rng rng = net.node_rng(v, kDigestSalt + round);
    std::uint64_t seen = 0;
    const auto offer = [&](NodeId id, std::int32_t stamp) {
      if (round >= static_cast<std::uint64_t>(stamp) + ttl) {
        return;  // stale (or discounted second-hand): not relayable
      }
      if (seen < digest_ids) {
        ids.push_back(id);
      } else {
        const std::uint64_t j = rng.uniform_below(seen + 1);
        if (j < digest_ids) ids[1 + static_cast<std::size_t>(j)] = id;
      }
      ++seen;
    };
    for (const auto& [w, stamp] : heard[v]) offer(net.id_of(w), stamp);
    for (const auto& [raw, stamp] : ghosts[v]) offer(NodeId(raw), stamp);
    return sim::Message::id_list(std::move(ids));
  };

  // Absorb a received digest: the leading slot is the sender's heartbeat
  // (age 0, relayable onwards); later slots are second-hand and stored
  // discounted by ttl, so they count against suspicion but never re-relay.
  const auto absorb = [&](std::uint32_t v, const sim::Message& msg) {
    bool heartbeat_slot = true;
    msg.ids().for_each([&](NodeId id) {
      const std::int32_t stamp = static_cast<std::int32_t>(
          heartbeat_slot ? round : round - static_cast<std::uint64_t>(ttl));
      heartbeat_slot = false;
      if (const auto w = net.find(id)) {
        if (*w == v) return;
        upsert(v, *w, stamp);
        return;
      }
      // Unresolvable: byzantine garbage. Indistinguishable from an honest
      // member the listener has not met, so it enters the table like one.
      for (auto& [raw, cell] : ghosts[v]) {
        if (raw == id.raw()) {
          cell = std::max(cell, stamp);
          return;
        }
      }
      ghosts[v].emplace_back(id.raw(), stamp);
    });
  };

  if (options.telemetry != nullptr) {
    engine.set_telemetry(options.telemetry);
    // Fires at the end of round `round` (before the loop increments it);
    // ages are measured against round + 1, the reference the next round
    // would observe - the same convention as the end-of-run estimate below,
    // where `round` has already advanced past the last stamp. Captures
    // locals by reference; cleared after the round loop.
    options.telemetry->rounds.set_probe([&] {
      const std::uint64_t ref = round + 1;
      const auto fresh = [&](std::int32_t stamp) {
        return ref <= static_cast<std::uint64_t>(stamp) + suspicion;
      };
      double est_sum = 0.0;
      std::uint64_t alive_now = 0;
      for (std::uint32_t v = 0; v < net.n(); ++v) {
        if (!net.alive(v)) continue;
        std::uint64_t est = 1;
        for (const auto& [w, stamp] : heard[v]) {
          if (fresh(stamp)) ++est;
        }
        for (const auto& [raw, stamp] : ghosts[v]) {
          if (fresh(stamp)) ++est;
        }
        est_sum += static_cast<double>(est);
        ++alive_now;
      }
      obs::RoundRecorder::Probe p;
      if (alive_now) p.estimate_n = est_sum / static_cast<double>(alive_now);
      return p;
    });
  }

  auto hooks = sim::make_hooks(
      [&](std::uint32_t v) -> std::optional<sim::Contact> {
        return sim::Contact::exchange_random(make_digest(v));
      },
      [&](std::uint32_t v) -> sim::Message { return make_digest(v); },
      [&](std::uint32_t v, const sim::Message& msg) { absorb(v, msg); },
      [&](std::uint32_t v, const sim::Message& msg) { absorb(v, msg); });

  for (round = 0; round < horizon; ++round) engine.run_round(hooks);
  if (options.telemetry != nullptr) options.telemetry->rounds.set_probe({});

  // Estimate accuracy at the horizon. estimate_n(v) = self + unsuspected
  // peers (ghosts included - the listener cannot tell). `round` now equals
  // the horizon, one past the last stamp round, matching the age the next
  // round would observe.
  const std::uint64_t alive = net.alive_count();
  const auto unsuspected = [&](std::int32_t stamp) {
    return round <= static_cast<std::uint64_t>(stamp) + suspicion;
  };
  double err_sum = 0.0;
  std::uint64_t within_eps = 0;
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (!net.alive(v)) continue;
    std::uint64_t est = 1;
    for (const auto& [w, stamp] : heard[v]) {
      if (unsuspected(stamp)) ++est;
    }
    for (const auto& [raw, stamp] : ghosts[v]) {
      if (unsuspected(stamp)) ++est;
    }
    const double err = std::abs(static_cast<double>(est) - static_cast<double>(alive)) /
                       static_cast<double>(alive);
    err_sum += err;
    if (err <= kEstimateEpsilon) ++within_eps;
  }

  core::BroadcastReport r;
  r.n = net.n();
  r.alive = alive;
  r.informed = within_eps;  // nodes whose estimate is within kEstimateEpsilon
  r.all_informed = r.informed == r.alive;
  r.rounds = engine.rounds();
  r.stats = engine.metrics().run();
  r.estimate_n_error = alive ? err_sum / static_cast<double>(alive) : 0.0;
  core::PhaseBreakdown pb;
  pb.name = "membership";
  pb.rounds = engine.rounds();
  pb.payload_messages = r.stats.total.payload_messages;
  pb.connections = r.stats.total.connections;
  pb.bits = r.stats.total.bits;
  r.phases.push_back(std::move(pb));
  return r;
}

}  // namespace gossip::membership
