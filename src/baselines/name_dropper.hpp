// Name-Dropper (Harchol-Balter, Leighton & Lewin, PODC 1999 - paper
// reference [9]): the classical resource-discovery algorithm under direct
// addressing. Starting from any weakly connected knowledge graph, every
// round each node forwards all IDs it knows to one uniformly random known
// node; the knowledge graph becomes complete in O(log^2 n) rounds.
//
// Name-Dropper solves a different task (discovery, not broadcast) and its
// per-message payloads are Theta(n) IDs, so it runs on a dedicated
// mini-simulator with bitset knowledge sets instead of the main engine
// (which meters O(1)-ID messages); its round/message/ID-transfer accounting
// matches the engine's conventions. Used by the benchmarks as the
// O(log^2 n)-round reference point of the direct-addressing lineage.
#pragma once

#include <cstdint>

namespace gossip::baselines {

enum class NameDropperStart {
  kRing,        ///< each node initially knows its ring successor
  kRandomTree,  ///< node i knows a uniform random predecessor (rooted tree)
};

struct NameDropperOptions {
  NameDropperStart start = NameDropperStart::kRing;
  /// 0 = auto: 8 * ceil(log2 n)^2 + 50.
  unsigned max_rounds = 0;
};

struct NameDropperReport {
  std::uint64_t n = 0;
  std::uint64_t rounds = 0;
  bool complete = false;          ///< every node knows every other node
  std::uint64_t messages = 0;     ///< one per initiated forward
  std::uint64_t id_transfers = 0; ///< total IDs carried (bits ~ id_transfers * log n)
};

[[nodiscard]] NameDropperReport run_name_dropper(std::uint32_t n, std::uint64_t seed,
                                                 NameDropperOptions options =
                                                     NameDropperOptions());

}  // namespace gossip::baselines
