#include "baselines/uniform.hpp"
#include "baselines/uniform_detail.hpp"

namespace gossip::baselines {

core::BroadcastReport run_pull(sim::Network& net, std::uint32_t source,
                               UniformOptions options) {
  const unsigned cap = detail::auto_round_cap(net.n(), options.max_rounds);
  return detail::run_until_informed(
      net, source, cap, "pull",
      [](std::vector<std::uint8_t>& informed, std::uint64_t& informed_count) {
        sim::RoundHooks hooks;
        hooks.initiate =
            [&informed](std::uint32_t v) -> std::optional<sim::Contact> {
          if (informed[v]) return std::nullopt;
          return sim::Contact::pull_random();
        };
        hooks.respond = [&informed](std::uint32_t v) {
          return informed[v] ? sim::Message::rumor() : sim::Message::empty();
        };
        hooks.on_pull_reply = [&informed, &informed_count](std::uint32_t q,
                                                           const sim::Message& m) {
          if (m.has_rumor() && !informed[q]) {
            informed[q] = 1;
            ++informed_count;
          }
        };
        return hooks;
      });
}

}  // namespace gossip::baselines
