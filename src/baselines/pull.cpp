#include "baselines/uniform.hpp"
#include "baselines/uniform_detail.hpp"

namespace gossip::baselines {

namespace {

// Static-dispatch hooks: every uninformed node pulls from a uniform random
// node; informed responders answer with the rumor.
struct PullHooks {
  std::vector<std::uint8_t>& informed;
  std::uint64_t& informed_count;

  std::optional<sim::Contact> initiate(std::uint32_t v) const {
    if (informed[v]) return std::nullopt;
    return sim::Contact::pull_random();
  }
  sim::Message respond(std::uint32_t v) const {
    return informed[v] ? sim::Message::rumor() : sim::Message::empty();
  }
  void on_pull_reply(std::uint32_t q, const sim::Message& m) {
    if (m.has_rumor() && !informed[q]) {
      informed[q] = 1;
      ++informed_count;
    }
  }
};

}  // namespace

core::BroadcastReport run_pull(sim::Network& net, std::uint32_t source,
                               UniformOptions options) {
  const unsigned cap = detail::auto_round_cap(net.n(), options.max_rounds);
  return detail::run_until_informed(
      net, source, cap, options, "pull",
      [](std::vector<std::uint8_t>& informed, std::uint64_t& informed_count) {
        return PullHooks{informed, informed_count};
      });
}

}  // namespace gossip::baselines
