#include "baselines/name_dropper.hpp"

#include <bit>
#include <vector>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"

namespace gossip::baselines {

namespace {

/// Dense bitset knowledge row; word-parallel merge keeps the O(log^2 n)
/// rounds x n nodes x n-bit rows simulation fast.
class BitRows {
 public:
  BitRows(std::uint32_t n) : n_(n), words_per_row_((n + 63) / 64), bits_(static_cast<std::size_t>(n) * words_per_row_, 0) {}

  void set(std::uint32_t row, std::uint32_t col) {
    bits_[static_cast<std::size_t>(row) * words_per_row_ + col / 64] |= 1ULL << (col % 64);
  }

  [[nodiscard]] bool get(std::uint32_t row, std::uint32_t col) const {
    return (bits_[static_cast<std::size_t>(row) * words_per_row_ + col / 64] >>
            (col % 64)) & 1ULL;
  }

  /// dst |= src. Returns the number of newly set bits in dst.
  std::uint64_t merge(std::uint32_t dst, std::uint32_t src) {
    std::uint64_t gained = 0;
    auto* d = &bits_[static_cast<std::size_t>(dst) * words_per_row_];
    const auto* s = &bits_[static_cast<std::size_t>(src) * words_per_row_];
    for (std::uint32_t w = 0; w < words_per_row_; ++w) {
      const std::uint64_t before = d[w];
      d[w] |= s[w];
      gained += static_cast<std::uint64_t>(std::popcount(d[w] ^ before));
    }
    return gained;
  }

  [[nodiscard]] std::uint64_t popcount(std::uint32_t row) const {
    std::uint64_t total = 0;
    const auto* r = &bits_[static_cast<std::size_t>(row) * words_per_row_];
    for (std::uint32_t w = 0; w < words_per_row_; ++w) {
      total += static_cast<std::uint64_t>(std::popcount(r[w]));
    }
    return total;
  }

 private:
  std::uint32_t n_;
  std::uint32_t words_per_row_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

NameDropperReport run_name_dropper(std::uint32_t n, std::uint64_t seed,
                                   NameDropperOptions options) {
  GOSSIP_CHECK(n >= 2);
  const unsigned cap = options.max_rounds
                           ? options.max_rounds
                           : 8 * ceil_log2(n) * ceil_log2(n) + 50;
  Rng rng(mix64(seed ^ 0x9a11edd7099e6ULL));

  BitRows known(n);
  std::vector<std::vector<std::uint32_t>> contacts(n);  // materialised known sets
  for (std::uint32_t v = 0; v < n; ++v) {
    known.set(v, v);
    std::uint32_t peer = 0;
    switch (options.start) {
      case NameDropperStart::kRing:
        peer = (v + 1) % n;
        break;
      case NameDropperStart::kRandomTree:
        peer = v == 0 ? 1 : static_cast<std::uint32_t>(rng.uniform_below(v));
        break;
    }
    known.set(v, peer);
    contacts[v].push_back(peer);
  }

  NameDropperReport report;
  report.n = n;
  std::uint64_t total_known = 2ULL * n - (options.start == NameDropperStart::kRing ? 0 : 1);
  // (kRandomTree: node 0's peer is 1 and 1's may be 0; exact count recomputed below.)
  total_known = 0;
  for (std::uint32_t v = 0; v < n; ++v) total_known += known.popcount(v);

  const std::uint64_t complete = static_cast<std::uint64_t>(n) * n;
  std::vector<std::uint32_t> targets(n);
  while (total_known < complete && report.rounds < cap) {
    // Each node picks a uniformly random known contact and forwards its
    // entire known set ("drops all the names it knows").
    for (std::uint32_t v = 0; v < n; ++v) {
      // Refresh the materialised contact list lazily: collect new bits only
      // when the popcount outgrew the cached list. A full rescan is O(n/64)
      // words - cheap relative to the merge below.
      if (contacts[v].size() != known.popcount(v) - 1) {
        contacts[v].clear();
        for (std::uint32_t u = 0; u < n; ++u) {
          if (u != v && known.get(v, u)) contacts[v].push_back(u);
        }
      }
      targets[v] = contacts[v][rng.uniform_below(contacts[v].size())];
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      report.id_transfers += known.popcount(v);
      total_known += known.merge(targets[v], v);
      ++report.messages;
    }
    ++report.rounds;
  }
  report.complete = total_known == complete;
  return report;
}

}  // namespace gossip::baselines
