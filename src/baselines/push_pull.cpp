#include "baselines/uniform.hpp"
#include "baselines/uniform_detail.hpp"

namespace gossip::baselines {

namespace {

// Static-dispatch hooks: informed nodes push, uninformed nodes pull; both
// delivery directions inform the receiver.
struct PushPullHooks {
  std::vector<std::uint8_t>& informed;
  std::uint64_t& informed_count;

  std::optional<sim::Contact> initiate(std::uint32_t v) const {
    if (informed[v]) return sim::Contact::push_random(sim::Message::rumor());
    return sim::Contact::pull_random();
  }
  sim::Message respond(std::uint32_t v) const {
    return informed[v] ? sim::Message::rumor() : sim::Message::empty();
  }
  void learn(std::uint32_t v, const sim::Message& m) {
    if (m.has_rumor() && !informed[v]) {
      informed[v] = 1;
      ++informed_count;
    }
  }
  void on_push(std::uint32_t r, const sim::Message& m) { learn(r, m); }
  void on_pull_reply(std::uint32_t q, const sim::Message& m) { learn(q, m); }
};

}  // namespace

core::BroadcastReport run_push_pull(sim::Network& net, std::uint32_t source,
                                    UniformOptions options) {
  const unsigned cap = detail::auto_round_cap(net.n(), options.max_rounds);
  return detail::run_until_informed(
      net, source, cap, options, "push_pull",
      [](std::vector<std::uint8_t>& informed, std::uint64_t& informed_count) {
        return PushPullHooks{informed, informed_count};
      });
}

}  // namespace gossip::baselines
