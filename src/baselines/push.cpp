#include "baselines/uniform.hpp"
#include "baselines/uniform_detail.hpp"

namespace gossip::baselines {

namespace {

// Static-dispatch hooks: every informed node pushes the rumor to a uniform
// random node; receivers become informed.
struct PushHooks {
  std::vector<std::uint8_t>& informed;
  std::uint64_t& informed_count;

  std::optional<sim::Contact> initiate(std::uint32_t v) const {
    if (!informed[v]) return std::nullopt;
    return sim::Contact::push_random(sim::Message::rumor());
  }
  void on_push(std::uint32_t r, const sim::Message& m) {
    if (m.has_rumor() && !informed[r]) {
      informed[r] = 1;
      ++informed_count;
    }
  }
};

}  // namespace

core::BroadcastReport run_push(sim::Network& net, std::uint32_t source,
                               UniformOptions options) {
  const unsigned cap = detail::auto_round_cap(net.n(), options.max_rounds);
  return detail::run_until_informed(
      net, source, cap, options, "push",
      [](std::vector<std::uint8_t>& informed, std::uint64_t& informed_count) {
        return PushHooks{informed, informed_count};
      });
}

}  // namespace gossip::baselines
