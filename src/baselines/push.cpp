#include <utility>

#include "baselines/uniform.hpp"
#include "baselines/uniform_detail.hpp"

namespace gossip::baselines {

namespace detail {

core::BroadcastReport run_until_informed(
    sim::Network& net, std::uint32_t source, unsigned max_rounds, std::string phase_name,
    const std::function<sim::RoundHooks(std::vector<std::uint8_t>&, std::uint64_t&)>&
        make_hooks) {
  GOSSIP_CHECK_MSG(net.alive(source), "source node must be alive");
  sim::Engine engine(net);
  std::vector<std::uint8_t> informed(net.n(), 0);
  informed[source] = 1;
  std::uint64_t informed_count = 1;

  const sim::RoundHooks hooks = make_hooks(informed, informed_count);
  while (informed_count < net.alive_count() && engine.rounds() < max_rounds) {
    engine.run_round(hooks);
  }

  core::BroadcastReport r;
  r.n = net.n();
  r.alive = net.alive_count();
  r.informed = informed_count;
  r.all_informed = r.informed == r.alive;
  r.rounds = engine.rounds();
  r.stats = engine.metrics().run();
  core::PhaseBreakdown pb;
  pb.name = std::move(phase_name);
  pb.rounds = engine.rounds();
  pb.payload_messages = r.stats.total.payload_messages;
  pb.connections = r.stats.total.connections;
  pb.bits = r.stats.total.bits;
  r.phases.push_back(std::move(pb));
  return r;
}

}  // namespace detail

core::BroadcastReport run_push(sim::Network& net, std::uint32_t source,
                               UniformOptions options) {
  const unsigned cap = detail::auto_round_cap(net.n(), options.max_rounds);
  return detail::run_until_informed(
      net, source, cap, "push",
      [](std::vector<std::uint8_t>& informed, std::uint64_t& informed_count) {
        sim::RoundHooks hooks;
        hooks.initiate =
            [&informed](std::uint32_t v) -> std::optional<sim::Contact> {
          if (!informed[v]) return std::nullopt;
          return sim::Contact::push_random(sim::Message::rumor());
        };
        hooks.on_push = [&informed, &informed_count](std::uint32_t r,
                                                     const sim::Message& m) {
          if (m.has_rumor() && !informed[r]) {
            informed[r] = 1;
            ++informed_count;
          }
        };
        return hooks;
      });
}

}  // namespace gossip::baselines
