#include "baselines/rrs.hpp"

#include <algorithm>
#include <vector>

#include "baselines/uniform_detail.hpp"
#include "common/assert.hpp"
#include "common/math.hpp"
#include "sim/engine.hpp"

namespace gossip::baselines {

using sim::Contact;
using sim::Message;

namespace {

// Static-dispatch hooks for the random-rendezvous-style exchange protocol:
// every non-stopped node exchanges its state message with a random partner;
// both delivery directions feed the counter rule.
struct RrsHooks {
  std::vector<std::uint32_t>& ctr;
  std::vector<std::uint32_t>& partner_max;
  std::vector<std::uint8_t>& met_informed;
  std::uint64_t& informed_count;
  unsigned ctr_max;

  Message state_message(std::uint32_t v) const {
    if (ctr[v] == 0) return Message::empty();
    return Message::rumor().and_count(ctr[v]);
  }
  void process(std::uint32_t v, const Message& m) {
    if (!m.has_rumor()) return;
    if (ctr[v] == 0) {
      ctr[v] = 1;
      ++informed_count;
      return;
    }
    met_informed[v] = 1;
    if (m.has_count()) {
      partner_max[v] = std::max<std::uint32_t>(partner_max[v],
                                               static_cast<std::uint32_t>(m.count_value()));
    }
  }

  std::optional<Contact> initiate(std::uint32_t v) const {
    if (ctr[v] > ctr_max) return std::nullopt;  // state C: stopped
    return Contact::exchange_random(state_message(v));
  }
  Message respond(std::uint32_t v) const { return state_message(v); }
  void on_push(std::uint32_t r, const Message& m) { process(r, m); }
  void on_pull_reply(std::uint32_t q, const Message& m) { process(q, m); }
};

}  // namespace

core::BroadcastReport run_rrs(sim::Network& net, std::uint32_t source, RrsOptions options) {
  GOSSIP_CHECK_MSG(net.alive(source), "source node must be alive");
  const std::uint32_t n = net.n();
  const unsigned ctr_max =
      options.ctr_max ? options.ctr_max : ceil_loglog2(n) + 2;
  const unsigned cap = detail::auto_round_cap(n, options.max_rounds);

  sim::Engine engine(net);
  if (options.delivery_buckets) engine.set_delivery_buckets(options.delivery_buckets);
  engine.set_fault_model(options.fault);
  // ctr == 0: uninformed; 1..ctr_max: state B; > ctr_max: state C.
  // Capacity-sized: joiners are valid exchange partners under churn.
  std::vector<std::uint32_t> ctr(net.capacity(), 0);
  std::vector<std::uint32_t> partner_max(net.capacity(), 0);
  std::vector<std::uint8_t> met_informed(net.capacity(), 0);
  ctr[source] = 1;
  std::uint64_t informed_count = 1;

  if (options.telemetry != nullptr) {
    engine.set_telemetry(options.telemetry);
    options.telemetry->rounds.set_probe([&informed_count] {
      return obs::RoundRecorder::Probe{.informed = informed_count};
    });
  }

  RrsHooks hooks{ctr, partner_max, met_informed, informed_count, ctr_max};

  const auto is_informed = [&](std::uint32_t v) { return ctr[v] != 0; };
  while (!detail::all_alive_informed(net, informed_count, is_informed) &&
         engine.rounds() < cap) {
    std::fill(partner_max.begin(), partner_max.end(), 0);
    std::fill(met_informed.begin(), met_informed.end(), 0);
    engine.run_round(hooks);
    // Counter rule: a B-node that met a partner with counter >= its own (or
    // any informed partner in state C, whose counter is larger by
    // construction) increments once per round.
    for (std::uint32_t v = 0; v < n; ++v) {
      if (ctr[v] == 0 || ctr[v] > ctr_max) continue;
      if (met_informed[v] && partner_max[v] >= ctr[v]) ++ctr[v];
    }
  }

  if (options.telemetry != nullptr) options.telemetry->rounds.set_probe({});
  return detail::finish_report(net, engine, detail::count_informed_alive(net, is_informed),
                               "rrs");
}

}  // namespace gossip::baselines
