// Reconstruction of the Avin-Elsasser DISC 2013 algorithm ("Faster Rumor
// Spreading: Breaking the log n Barrier") - Theorem 1 of the paper under
// reproduction: O(sqrt(log n)) rounds, O(sqrt(log n)) messages per node,
// O(n log^{3/2} n + n b log log n) bits.
//
// The DISC'13 pseudocode is not reproduced inside Haeupler-Malkhi, so this
// implements the algorithm from its stated structure (see DESIGN.md section
// 1.4): clusters are grown as in GrowInitialClusters and then merged in
// phases with *geometrically increasing* merge fan-in - phase i activates
// clusters with probability ~2^-i, so cluster sizes multiply by ~2^i per
// O(1)-round phase and reach n/polylog(n) after Theta(sqrt(log n)) phases
// (sum of i up to k reaches log n at k ~ sqrt(2 log n)). This is exactly the
// "slower merge schedule" the paper improves on with its repeated squaring,
// and it reproduces all three stated complexities. A final MergeAll + PULL
// clean-up completes the broadcast as in Cluster1.
#pragma once

#include <cstdint>

#include "cluster/driver.hpp"
#include "core/cluster_algorithm_base.hpp"
#include "core/phase_observer.hpp"
#include "core/report.hpp"

namespace gossip::baselines {

struct AvinElsasserOptions {
  double seed_factor_c = 4.0;       ///< leader sampling 1/(C log n)
  unsigned extra_grow_rounds = 3;
  unsigned merge_all_reps = 4;
  unsigned settle_rounds = 2;
  unsigned extra_pull_rounds = 5;
  unsigned max_phases = 96;
};

class AvinElsasser : public core::ClusterAlgorithmBase {
 public:
  explicit AvinElsasser(sim::Engine& engine,
                        AvinElsasserOptions options = AvinElsasserOptions(),
                        cluster::DriverOptions driver_opts = cluster::DriverOptions(),
                        core::PhaseObserverFn observer = nullptr);

  core::BroadcastReport run(std::uint32_t source);

 private:
  AvinElsasserOptions opts_;
};

}  // namespace gossip::baselines
