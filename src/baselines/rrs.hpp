// Randomized Rumor Spreading with counters - the min-counter variant of
// Karp, Schindelhauer, Shenker & Vocking [FOCS 2000] (paper reference [10]),
// the pre-Avin-Elsasser state of the art the paper compares against:
// O(log n) rounds with only O(log log n) rumor transmissions per node.
//
// Mechanics: every round each participating node opens one random phone call
// and exchanges {rumor, counter} both ways (push-pull). An uninformed node
// that receives the rumor enters state B with counter 1. A B-node that
// talked to a partner whose counter was >= its own increments its counter;
// when the counter exceeds ctr_max = O(log log n) the node enters state C
// and stops initiating transmissions (it still answers). Uninformed nodes
// keep placing calls (empty exchanges) until informed.
#pragma once

#include <cstdint>

#include "core/report.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::obs {
struct Telemetry;
}  // namespace gossip::obs

namespace gossip::baselines {

struct RrsOptions {
  /// 0 = auto: ceil(log2 log2 n) + 2 (the O(log log n) state-B lifetime).
  unsigned ctr_max = 0;
  /// 0 = auto: 10 * ceil(log2 n) + 50.
  unsigned max_rounds = 0;
  /// Fault scenario on the round timeline (sim/fault.hpp; nullable,
  /// non-owning; the caller invokes on_run_begin itself).
  sim::FaultModel* fault = nullptr;
  /// Receiver buckets for the delivery phases (0 = the engine's auto
  /// default; Engine::set_delivery_buckets). Trajectory-invariant.
  std::uint32_t delivery_buckets = 0;
  /// Observability handle attached to the run's engine (src/obs/), with an
  /// informed-count probe. Non-owning. Null = detached.
  obs::Telemetry* telemetry = nullptr;
};

[[nodiscard]] core::BroadcastReport run_rrs(sim::Network& net, std::uint32_t source,
                                            RrsOptions options = RrsOptions());

}  // namespace gossip::baselines
