// Shared skeleton for the uniform gossip baselines.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/uniform.hpp"
#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/report.hpp"
#include "sim/engine.hpp"

namespace gossip::baselines::detail {

/// Exact oracle stop predicate: every alive node is informed. The counter
/// comparison alone is exact only while informed nodes cannot crash (then
/// informed is a subset of alive); with a dynamic fault model the counter
/// may include crashed nodes, so once it reaches the alive count the claim
/// is verified by scanning. Fault-free runs scan at most once (the final
/// round), so trajectories and stop rounds are unchanged.
template <class IsInformed>
[[nodiscard]] bool all_alive_informed(const sim::Network& net,
                                      std::uint64_t informed_count,
                                      IsInformed&& is_informed) {
  if (informed_count < net.alive_count()) return false;  // pigeonhole: exact
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (net.alive(v) && !is_informed(v)) return false;
  }
  return true;
}

/// Informed nodes still alive at termination (what BroadcastReport::informed
/// means; under mid-run crashes the raw counter over-counts).
template <class IsInformed>
[[nodiscard]] std::uint64_t count_informed_alive(const sim::Network& net,
                                                 IsInformed&& is_informed) {
  std::uint64_t count = 0;
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (net.alive(v) && is_informed(v)) ++count;
  }
  return count;
}

/// Assembles the standard single-phase report after a run.
[[nodiscard]] inline core::BroadcastReport finish_report(const sim::Network& net,
                                                         const sim::Engine& engine,
                                                         std::uint64_t informed_count,
                                                         std::string phase_name) {
  core::BroadcastReport r;
  r.n = net.n();
  r.alive = net.alive_count();
  r.informed = informed_count;
  r.all_informed = r.informed == r.alive;
  r.rounds = engine.rounds();
  r.stats = engine.metrics().run();
  core::PhaseBreakdown pb;
  pb.name = std::move(phase_name);
  pb.rounds = engine.rounds();
  pb.payload_messages = r.stats.total.payload_messages;
  pb.connections = r.stats.total.connections;
  pb.bits = r.stats.total.bits;
  r.phases.push_back(std::move(pb));
  return r;
}

/// Runs a per-round behaviour until all alive nodes are informed (oracle
/// stop) or `max_rounds` elapse, and assembles the standard report.
/// `make_hooks(informed, informed_count)` returns the hooks object for the
/// whole run; it may be any static-dispatch hooks type (see sim/engine.hpp),
/// so each baseline's per-round work is resolved at compile time.
/// `options.threads` >= 1 opts the run into the sharded phase-1 executor
/// (at options.shard_size); options.delivery_buckets != 0 pins the delivery
/// decomposition. `options.fault` (nullable) is installed on the engine's
/// round timeline; its on_run_begin is the caller's job.
template <class MakeHooks>
core::BroadcastReport run_until_informed(sim::Network& net, std::uint32_t source,
                                         unsigned max_rounds,
                                         const UniformOptions& options,
                                         std::string phase_name,
                                         MakeHooks&& make_hooks) {
  GOSSIP_CHECK_MSG(net.alive(source), "source node must be alive");
  sim::Engine engine(net);
  if (options.threads) engine.set_threads(options.threads, options.shard_size);
  if (options.delivery_buckets) engine.set_delivery_buckets(options.delivery_buckets);
  engine.set_fault_model(options.fault);
  // Capacity-sized (== n for join-free networks): joiners arriving mid-run
  // are valid receivers from their join round on, and start uninformed.
  std::vector<std::uint8_t> informed(net.capacity(), 0);
  informed[source] = 1;
  std::uint64_t informed_count = 1;

  if (options.telemetry != nullptr) {
    engine.set_telemetry(options.telemetry);
    // The probe captures informed_count by reference; cleared below before
    // the counter goes out of scope.
    options.telemetry->rounds.set_probe([&informed_count] {
      return obs::RoundRecorder::Probe{.informed = informed_count};
    });
  }

  auto hooks = make_hooks(informed, informed_count);
  const auto is_informed = [&](std::uint32_t v) { return informed[v] != 0; };
  while (!all_alive_informed(net, informed_count, is_informed) &&
         engine.rounds() < max_rounds) {
    engine.run_round(hooks);
  }
  if (options.telemetry != nullptr) options.telemetry->rounds.set_probe({});
  return finish_report(net, engine, count_informed_alive(net, is_informed),
                       std::move(phase_name));
}

[[nodiscard]] inline unsigned auto_round_cap(std::uint64_t n, unsigned requested) {
  if (requested) return requested;
  return 10 * gossip::ceil_log2(n) + 50;
}

}  // namespace gossip::baselines::detail
