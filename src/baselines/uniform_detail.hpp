// Shared skeleton for the uniform gossip baselines.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/report.hpp"
#include "sim/engine.hpp"

namespace gossip::baselines::detail {

/// Runs a per-round behaviour until all alive nodes are informed (oracle
/// stop) or `max_rounds` elapse, and assembles the standard report.
/// `behaviour(informed, informed_count)` returns the hooks for one round.
core::BroadcastReport run_until_informed(
    sim::Network& net, std::uint32_t source, unsigned max_rounds, std::string phase_name,
    const std::function<sim::RoundHooks(std::vector<std::uint8_t>&, std::uint64_t&)>&
        make_hooks);

[[nodiscard]] inline unsigned auto_round_cap(std::uint64_t n, unsigned requested) {
  if (requested) return requested;
  return 10 * gossip::ceil_log2(n) + 50;
}

}  // namespace gossip::baselines::detail
