// Uniform random phone call gossip baselines (paper references [12], [10]):
//   PUSH      - every informed node pushes the rumor to a uniform random node;
//   PULL      - every uninformed node pulls from a uniform random node;
//   PUSH-PULL - both per round (each node initiates one contact: a push if
//               informed, a pull otherwise).
//
// Termination convention: these protocols have no local termination rule
// (that is Karp et al.'s point); we stop at the first round in which every
// alive node is informed (an oracle measurement, standard in gossip
// simulation) or at a generous O(log n) cap. The measured message counts are
// therefore *lower* bounds for deployable variants - which only strengthens
// every comparison in which the paper's algorithms win.
#pragma once

#include <cstdint>

#include "core/report.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::obs {
struct Telemetry;
}  // namespace gossip::obs

namespace gossip::baselines {

struct UniformOptions {
  /// 0 = auto: 10 * ceil(log2 n) + 50 rounds.
  unsigned max_rounds = 0;
  /// 0 = serial engine (the default, trajectory-compatible with PR 1).
  /// >= 1 = sharded phase-1 execution across this many threads; results are
  /// bit-identical for every thread count >= 1 but re-key the uniform draw
  /// streams, so they differ from the serial trajectory (see the Threading
  /// model notes in sim/engine.hpp).
  unsigned threads = 0;
  /// Initiators per phase-1 shard when threads >= 1 (0 = the default width;
  /// part of the sharded determinism contract - see sim/parallel/shard.hpp).
  std::uint32_t shard_size = 0;
  /// Receiver buckets for the delivery phases (0 = the engine's auto
  /// default; Engine::set_delivery_buckets). Trajectory-invariant.
  std::uint32_t delivery_buckets = 0;
  /// Fault scenario on the run's round timeline (sim/fault.hpp). Non-owning;
  /// the caller invokes on_run_begin itself. Null = fault-free. With mid-run
  /// crashes the oracle stop condition ("every alive node informed") is
  /// evaluated exactly - informed nodes that later crash no longer count.
  sim::FaultModel* fault = nullptr;
  /// Observability handle attached to the run's engine (src/obs/); the
  /// baselines install an informed-count probe so time-series records carry
  /// the informed set's size per round. Non-owning. Null = detached.
  obs::Telemetry* telemetry = nullptr;
};

[[nodiscard]] core::BroadcastReport run_push(sim::Network& net, std::uint32_t source,
                                             UniformOptions options = UniformOptions());
[[nodiscard]] core::BroadcastReport run_pull(sim::Network& net, std::uint32_t source,
                                             UniformOptions options = UniformOptions());
[[nodiscard]] core::BroadcastReport run_push_pull(sim::Network& net, std::uint32_t source,
                                                  UniformOptions options = UniformOptions());

}  // namespace gossip::baselines
