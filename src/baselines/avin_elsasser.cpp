#include "baselines/avin_elsasser.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::baselines {

AvinElsasser::AvinElsasser(sim::Engine& engine, AvinElsasserOptions options,
                           cluster::DriverOptions driver_opts,
                           core::PhaseObserverFn observer)
    : core::ClusterAlgorithmBase(engine, driver_opts, std::move(observer)),
      opts_(options) {}

core::BroadcastReport AvinElsasser::run(std::uint32_t source) {
  GOSSIP_CHECK(source < net_.n());
  informed_[source] = 1;

  const std::uint64_t n = net_.n();
  const double log_n = std::max(2.0, log2d(n));

  // --- initial clusters of size ~log n, as Cluster1's GrowInitialClusters.
  const double seed_prob = 1.0 / (opts_.seed_factor_c * log_n);
  const auto grow_rounds = static_cast<unsigned>(
      std::ceil(std::log2(opts_.seed_factor_c * log_n)) + opts_.extra_grow_rounds);
  seed_singletons(seed_prob);
  grow_simple(grow_rounds);
  mark_phase("grow");

  // --- geometric merge phases: phase i activates w.p. ~2^-i, so sizes
  // multiply by ~2^(i-1) per phase; Theta(sqrt(log n)) phases reach
  // n/polylog(n). Each phase is O(1) rounds (resize + activate + push +
  // relay + merge).
  const auto s0 = std::max<std::uint64_t>(4, static_cast<std::uint64_t>(log_n));
  driver_.dissolve_below(s0);
  const std::uint64_t target = std::max<std::uint64_t>(
      s0, static_cast<std::uint64_t>(static_cast<double>(n) / (4.0 * log_n)));
  std::uint64_t s = s0;
  unsigned phase = 1;
  while (s < target && phase <= opts_.max_phases) {
    driver_.clear_candidates();
    driver_.resize(s, /*only_active=*/false);
    const double p = std::max(std::ldexp(1.0, -static_cast<int>(phase)), 1.0 / 64.0);
    driver_.activate(std::min(0.5, p));
    driver_.push_cluster_id(/*only_active=*/true, /*recruit_unclustered=*/false,
                            cluster::RelayPolicy::kRandom);
    driver_.relay_candidates(cluster::RelayPolicy::kRandom, /*only_inactive_relayers=*/true);
    driver_.merge_from_inbox(cluster::RelayPolicy::kRandom, /*only_inactive=*/true);
    const double growth = std::max(2.0, std::ldexp(1.0, static_cast<int>(phase)) / 2.0);
    s = std::max(s + 1, static_cast<std::uint64_t>(static_cast<double>(s) * growth));
    observe("phase", phase, s);
    ++phase;
  }
  mark_phase("merge_phases");

  // --- clean-up exactly as Cluster1: merge everything into the smallest-ID
  // cluster, pull in the stragglers, share the rumor.
  merge_all_clusters(opts_.merge_all_reps, opts_.settle_rounds);
  mark_phase("merge_all");
  unclustered_pull(ceil_loglog2(n) + opts_.extra_pull_rounds);
  mark_phase("pull");
  final_share();
  mark_phase("share");

  return make_report();
}

}  // namespace gossip::baselines
