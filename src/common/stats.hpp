// Streaming and batch statistics used to aggregate experiment results
// across seeds (mean/stddev/min/max/quantiles).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gossip {

/// Welford's online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a Summary (copies + sorts internally; fine for seed-level data).
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Linear-interpolated quantile of a sample vector, q in [0, 1].
/// Precondition: samples non-empty.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

/// Same, over an ALREADY-SORTED sample range (no copy, no sort) - for
/// callers evaluating several quantiles of one distribution.
/// Precondition: sorted non-empty and ascending.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

}  // namespace gossip
