#include "common/rng.hpp"

#include "common/assert.hpp"

namespace gossip {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t s = value;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start in the all-zero state; SplitMix64 makes that
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire's method; the rejection loop runs ~once on average.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

namespace {
// Shared body of the bulk fills. `threshold = (2^64 - bound) mod bound` is
// the Lemire acceptance cutoff; a draw with low half < threshold is redrawn.
// The scalar uniform_below only computes the threshold on the rare low-half
// path, but accepts exactly the same draws (threshold <= bound - 1), so
// precomputing it here changes speed, not the output stream.
template <typename Out, typename Next>
void fill_uniform_below_impl(std::uint64_t bound, std::span<Out> out, Next&& next) noexcept {
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (Out& slot : out) {
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    while (static_cast<std::uint64_t>(m) < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
    }
    slot = static_cast<Out>(static_cast<std::uint64_t>(m >> 64));
  }
}
}  // namespace

void Rng::fill_uniform_below(std::uint64_t bound, std::span<std::uint64_t> out) noexcept {
  fill_uniform_below_impl(bound, out, [this] { return next_u64(); });
}

void Rng::fill_uniform_below(std::uint64_t bound, std::span<std::uint32_t> out) {
  // Silent truncation would bias draws onto the low 32 bits; enforce the
  // documented fits-in-32-bits precondition. (Results are < bound, so
  // bound == 2^32 exactly still fits.)
  GOSSIP_CHECK(bound <= (1ULL << 32));
  fill_uniform_below_impl(bound, out, [this] { return next_u64(); });
}

std::uint64_t Rng::uniform_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + uniform_below(hi - lo + 1);
}

double Rng::uniform01() noexcept {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  // Child seed: decorrelate the parent seed and the stream index through two
  // SplitMix64 rounds; children of distinct (seed, stream) pairs collide only
  // with probability ~2^-64.
  return Rng(mix64(seed_ ^ mix64(stream + 0x632be59bd9b4e019ULL)));
}

}  // namespace gossip
