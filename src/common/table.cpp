#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace gossip {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  GOSSIP_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  GOSSIP_CHECK_MSG(!rows_.empty(), "call row() before add()");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }
Table& Table::add(unsigned v) { return add(std::to_string(v)); }
Table& Table::add(double v, int precision) { return add(format_double(v, precision)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "  ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };

  os << "\n== " << title_ << " ==\n";
  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total - 4, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace gossip
