#include "common/math.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace gossip {

unsigned floor_log2(std::uint64_t x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

unsigned ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

double log2d(std::uint64_t x) noexcept { return std::log2(static_cast<double>(x)); }

double loglog2d(std::uint64_t x) noexcept {
  const double l = log2d(x);
  if (l <= 2.0) return 1.0;
  return std::log2(l);
}

unsigned ceil_loglog2(std::uint64_t n) noexcept {
  return static_cast<unsigned>(std::ceil(loglog2d(n)));
}

std::uint64_t isqrt(std::uint64_t x) noexcept {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  // Fix up floating-point edge cases around perfect squares.
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) noexcept {
  const __uint128_t p = static_cast<__uint128_t>(a) * b;
  if (p > std::numeric_limits<std::uint64_t>::max()) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(p);
}

}  // namespace gossip
