// Plain-text aligned table printer for the benchmark harness. Every bench
// binary prints self-describing tables with this; keeping the format in one
// place makes bench_output.txt uniform and diffable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gossip {

/// Column-aligned table with a title, header row and formatted cells.
class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> headers);

  /// Starts a new row; fill it with the add_* calls below.
  Table& row();

  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(std::uint64_t v);
  Table& add(std::int64_t v);
  Table& add(int v);
  Table& add(unsigned v);
  /// Fixed-precision double (default 2 decimal places).
  Table& add(double v, int precision = 2);

  /// Renders the table (title, rule, header, rows) to `os`.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like "3.14" with the given precision.
[[nodiscard]] std::string format_double(double v, int precision = 2);

}  // namespace gossip
