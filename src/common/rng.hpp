// Deterministic, splittable pseudo-random number generation.
//
// All randomness in the library flows through gossip::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded via SplitMix64; `fork(stream)`
// derives statistically independent per-node streams, which is what lets the
// simulator model n nodes flipping independent coins without sharing state.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace gossip {

/// SplitMix64 step: used for seeding and for cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mixing of a 64-bit value (one SplitMix64 round on a copy).
[[nodiscard]] std::uint64_t mix64(std::uint64_t value) noexcept;

/// xoshiro256** generator with helpers for the distributions the algorithms
/// need (uniform-below, Bernoulli, uniform double).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's nearly-divisionless bounded sampling.
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Bulk variant of uniform_below: fills `out` with out.size() independent
  /// draws from [0, bound). Precondition: bound > 0.
  ///
  /// The widening-multiply acceptance test is hoisted out of the per-element
  /// path (one reciprocal-threshold computation per call, a single
  /// rarely-taken rejection branch per element), which lets the compiler
  /// pipeline the multiply chain across elements. The output stream is
  /// BIT-IDENTICAL to calling uniform_below(bound) out.size() times: callers
  /// may batch draws without changing any seeded experiment.
  void fill_uniform_below(std::uint64_t bound, std::span<std::uint64_t> out) noexcept;
  /// Same, for 32-bit sinks (used for node indices). Contract-checks that
  /// bound fits (bound <= 2^32), so not noexcept.
  void fill_uniform_below(std::uint64_t bound, std::span<std::uint32_t> out);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Derives an independent generator for a sub-stream (e.g. one per node).
  /// Different `stream` values give streams that never correlate in practice.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

  /// Counter-based two-dimensional fork: an independent stream per
  /// (stream_a, stream_b) pair, implemented as two chained forks so distinct
  /// pairs can never alias by arithmetic coincidence. This is what keys the
  /// sharded round executor's draw streams by (round, shard): any worker can
  /// reproduce shard s of round r from the base generator alone, so the
  /// trajectory is independent of which thread runs the shard.
  [[nodiscard]] Rng fork(std::uint64_t stream_a, std::uint64_t stream_b) const noexcept {
    return fork(stream_a).fork(stream_b);
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_;
  std::uint64_t seed_;  // retained so fork() can derive child seeds
};

}  // namespace gossip
