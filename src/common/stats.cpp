#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace gossip {

void RunningStat::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

// Chan/Welford parallel-variance merge: floating point by nature, so it is
// carried in tools/lint_baseline.txt rather than rewritten - TrialRunner
// folds worker stats in fixed index order, so the rounding is still
// deterministic for a fixed worker decomposition.
void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  RunningStat rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = quantile(std::move(samples), 0.5);
  return s;
}

double quantile(std::vector<double> samples, double q) {
  GOSSIP_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  return quantile_sorted(samples, q);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  GOSSIP_CHECK(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace gossip
