#include "common/ids.hpp"

#include <unordered_set>

#include "common/assert.hpp"

namespace gossip {

std::string NodeId::to_string() const {
  if (is_unclustered()) return "<unclustered>";
  return std::to_string(raw_);
}

std::vector<NodeId> generate_unique_ids(std::size_t n, Rng& rng) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(n * 2);
  while (ids.size() < n) {
    const std::uint64_t raw = rng.next_u64();
    if (raw == std::numeric_limits<std::uint64_t>::max()) continue;  // sentinel
    if (seen.insert(raw).second) ids.emplace_back(raw);
  }
  return ids;
}

}  // namespace gossip
