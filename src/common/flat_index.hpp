// Flat open-addressing index from node IDs to dense indices.
//
// Network::find runs once per direct-addressed contact on the engine's hot
// path; the previous std::unordered_map probe paid a bucket indirection and
// a 48+-byte heap node per entry. This index is two flat arrays (8-byte key
// lane probed linearly, 4-byte value lane touched only on a hit) built once
// at network construction at a load factor <= 0.5, so probe chains are short
// and the key lane stays cache-dense. Networks with join capacity build the
// table sized for their capacity ceiling up front (build's capacity_hint)
// and append joiners via insert(): the lanes never rehash or reallocate
// mid-run, so the no-reallocation contract of the flat network state extends
// to the ID index and the load factor stays <= 0.5 by construction.
//
// The reserved empty-slot key is the all-ones value, which is exactly the
// NodeId "unclustered" sentinel: it can never name a real node, so it can
// never be inserted. Empty slots carry kNotFound in the value lane, which
// makes a lookup of the sentinel itself fall out correctly (it lands on an
// empty or mismatching slot and walks to an empty one).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"

namespace gossip {

class FlatIdIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  FlatIdIndex() = default;

  /// Builds the index mapping ids[i] -> i. IDs must be distinct real node
  /// IDs (never the unclustered sentinel) and there may be at most 2^32 - 1
  /// of them (kNotFound must stay unambiguous). `capacity_hint` sizes the
  /// lanes for that many eventual entries (>= ids.size()), so later insert()
  /// calls up to the hint never rehash.
  void build(std::span<const NodeId> ids, std::size_t capacity_hint = 0) {
    GOSSIP_CHECK(ids.size() < kNotFound);
    const std::size_t want = std::max(ids.size(), capacity_hint);
    GOSSIP_CHECK(want < kNotFound);
    std::size_t capacity = 2;
    while (capacity < want * 2) capacity *= 2;
    mask_ = capacity - 1;
    size_ = 0;
    keys_.assign(capacity, kEmptyKey);
    vals_.assign(capacity, kNotFound);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      insert(ids[i].raw(), static_cast<std::uint32_t>(i));
    }
  }

  /// Appends one mapping. The key must be a real node ID not already
  /// present, and the table must have been built with enough capacity_hint
  /// headroom (load factor stays <= 0.5; growing mid-run would invalidate
  /// the no-reallocation contract above, so it is a contract violation).
  void insert(std::uint64_t key, std::uint32_t value) {
    GOSSIP_CHECK_MSG(key != kEmptyKey, "the unclustered sentinel is not indexable");
    GOSSIP_CHECK_MSG(size_ * 2 < keys_.size(), "FlatIdIndex insert beyond built capacity");
    std::size_t slot = mix64(key) & mask_;
    while (keys_[slot] != kEmptyKey) {
      GOSSIP_CHECK_MSG(keys_[slot] != key, "duplicate ID in index");
      slot = (slot + 1) & mask_;
    }
    keys_[slot] = key;
    vals_[slot] = value;
    ++size_;
  }

  /// Entries currently held.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Index of `key`, or kNotFound. Inline: one mix, then a linear walk of
  /// the key lane (expected < 1.5 probes at load 0.5). Termination rests on
  /// the <= 0.5 load-factor invariant (there is always an empty slot); audit
  /// builds count the walk and fire if it ever wraps the whole table.
  // GOSSIP_HOT
  [[nodiscard]] std::uint32_t find(std::uint64_t key) const {
    if (keys_.empty()) return kNotFound;
    std::size_t slot = mix64(key) & mask_;
    GOSSIP_AUDIT_ONLY(std::size_t audit_probes = 0;)
    for (;;) {
      GOSSIP_DCHECK_MSG(++audit_probes <= keys_.size(),
                        "FlatIdIndex probe walked the full table without an "
                        "empty slot (load-factor invariant broken)");
      const std::uint64_t k = keys_[slot];
      if (k == key) return vals_[slot];
      if (k == kEmptyKey) return kNotFound;
      slot = (slot + 1) & mask_;
    }
  }

  /// Bytes held by the two lanes (capacity accounting, as memory_bytes
  /// elsewhere in the library).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return keys_.capacity() * sizeof(std::uint64_t) +
           vals_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint64_t kEmptyKey = ~0ULL;

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace gossip
