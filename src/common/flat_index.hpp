// Flat open-addressing index from node IDs to dense indices.
//
// Network::find runs once per direct-addressed contact on the engine's hot
// path; the previous std::unordered_map probe paid a bucket indirection and
// a 48+-byte heap node per entry. This index is two flat arrays (8-byte key
// lane probed linearly, 4-byte value lane touched only on a hit) built once
// at network construction - the ID set never changes - at a load factor
// <= 0.5, so probe chains are short and the key lane stays cache-dense.
//
// The reserved empty-slot key is the all-ones value, which is exactly the
// NodeId "unclustered" sentinel: it can never name a real node, so it can
// never be inserted. Empty slots carry kNotFound in the value lane, which
// makes a lookup of the sentinel itself fall out correctly (it lands on an
// empty or mismatching slot and walks to an empty one).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"

namespace gossip {

class FlatIdIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  FlatIdIndex() = default;

  /// Builds the index mapping ids[i] -> i. IDs must be distinct real node
  /// IDs (never the unclustered sentinel) and there may be at most 2^32 - 1
  /// of them (kNotFound must stay unambiguous).
  void build(std::span<const NodeId> ids) {
    GOSSIP_CHECK(ids.size() < kNotFound);
    std::size_t capacity = 2;
    while (capacity < ids.size() * 2) capacity *= 2;
    mask_ = capacity - 1;
    keys_.assign(capacity, kEmptyKey);
    vals_.assign(capacity, kNotFound);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::uint64_t key = ids[i].raw();
      GOSSIP_CHECK_MSG(key != kEmptyKey, "the unclustered sentinel is not indexable");
      std::size_t slot = mix64(key) & mask_;
      while (keys_[slot] != kEmptyKey) {
        GOSSIP_CHECK_MSG(keys_[slot] != key, "duplicate ID in index build");
        slot = (slot + 1) & mask_;
      }
      keys_[slot] = key;
      vals_[slot] = static_cast<std::uint32_t>(i);
    }
  }

  /// Index of `key`, or kNotFound. Inline: one mix, then a linear walk of
  /// the key lane (expected < 1.5 probes at load 0.5).
  [[nodiscard]] std::uint32_t find(std::uint64_t key) const {
    if (keys_.empty()) return kNotFound;
    std::size_t slot = mix64(key) & mask_;
    for (;;) {
      const std::uint64_t k = keys_[slot];
      if (k == key) return vals_[slot];
      if (k == kEmptyKey) return kNotFound;
      slot = (slot + 1) & mask_;
    }
  }

  /// Bytes held by the two lanes (capacity accounting, as memory_bytes
  /// elsewhere in the library).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return keys_.capacity() * sizeof(std::uint64_t) +
           vals_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint64_t kEmptyKey = ~0ULL;

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = 0;
};

}  // namespace gossip
