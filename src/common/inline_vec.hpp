// Small-buffer vector for message payloads. Almost every message in the
// paper's algorithms carries O(1) node IDs (Section 2), so the common case
// must not heap-allocate; only ClusterResize responses (footnote 2 of the
// paper) ever spill.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/assert.hpp"

namespace gossip {

template <typename T, std::size_t kInline>
class InlineVec {
 public:
  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  void push_back(const T& v) {
    if (size_ < kInline) {
      inline_[size_] = v;
    } else {
      overflow_.push_back(v);
    }
    ++size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] const T& operator[](std::size_t i) const {
    GOSSIP_CHECK(i < size_);
    return i < kInline ? inline_[i] : overflow_[i - kInline];
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    GOSSIP_CHECK(i < size_);
    return i < kInline ? inline_[i] : overflow_[i - kInline];
  }

  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  void clear() noexcept {
    size_ = 0;
    overflow_.clear();
  }

  /// Copies out to a std::vector (used by the rare large-list consumers).
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn((*this)[i]);
  }

  [[nodiscard]] bool contains(const T& v) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if ((*this)[i] == v) return true;
    }
    return false;
  }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  std::array<T, kInline> inline_{};
  std::size_t size_ = 0;
  std::vector<T> overflow_;
};

}  // namespace gossip
