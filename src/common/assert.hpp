// Contract-checking macros used throughout the library.
//
// GOSSIP_CHECK fires in all build types: model-honesty invariants (e.g. "a
// direct-addressed contact must target a known ID") are part of the paper's
// model and violating them silently would invalidate every measurement, so
// they are never compiled out. Violations throw gossip::ContractViolation,
// which makes them testable with gtest and recoverable in long experiment
// sweeps.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gossip {

/// Thrown when a library precondition or model invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* expr, const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " - " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace gossip

#define GOSSIP_CHECK(expr)                                                   \
  do {                                                                       \
    if (!(expr)) ::gossip::detail::contract_failure(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define GOSSIP_CHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream gossip_check_os_;                                   \
      gossip_check_os_ << msg;                                               \
      ::gossip::detail::contract_failure(#expr, __FILE__, __LINE__,          \
                                         gossip_check_os_.str());            \
    }                                                                        \
  } while (0)
