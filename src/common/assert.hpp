// Contract-checking macros used throughout the library.
//
// Two tiers:
//
// GOSSIP_CHECK fires in all build types: model-honesty invariants (e.g. "a
// direct-addressed contact must target a known ID") are part of the paper's
// model and violating them silently would invalidate every measurement, so
// they are never compiled out. Violations throw gossip::ContractViolation,
// which makes them testable with gtest and recoverable in long experiment
// sweeps.
//
// GOSSIP_DCHECK fires only in audit builds (-DGOSSIP_AUDIT=ON, which defines
// GOSSIP_AUDIT and _GLIBCXX_ASSERTIONS): it arms the documented
// bounds-check-free and order-sensitive hot-path sites - the provenance
// tracer's armed-capacity claim, delivery-bucket ranges, FlatIdIndex probe
// termination, the sharded/bucketed merge preconditions - whose per-contact
// cost is deliberately not paid in Release. Audit failures throw the same
// ContractViolation, so tests/test_contracts.cpp can pin that each planted
// check actually fires. In non-audit builds GOSSIP_DCHECK compiles to
// nothing at all (the condition is not even evaluated); helper state that
// exists only to feed a DCHECK goes inside GOSSIP_AUDIT_ONLY(...), and a
// function whose only throw-site is a DCHECK stays `noexcept` in Release via
// GOSSIP_AUDIT_NOEXCEPT.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gossip {

/// Thrown when a library precondition or model invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* expr, const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " - " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace gossip

#define GOSSIP_CHECK(expr)                                                   \
  do {                                                                       \
    if (!(expr)) ::gossip::detail::contract_failure(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define GOSSIP_CHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream gossip_check_os_;                                   \
      gossip_check_os_ << msg;                                               \
      ::gossip::detail::contract_failure(#expr, __FILE__, __LINE__,          \
                                         gossip_check_os_.str());            \
    }                                                                        \
  } while (0)

// Audit tier (see the header comment). GOSSIP_AUDIT is defined by the CMake
// option GOSSIP_AUDIT=ON; the sanitizer CI legs build with it so the planted
// checks run under ASan/UBSan too.
#if defined(GOSSIP_AUDIT)
#define GOSSIP_DCHECK(expr) GOSSIP_CHECK(expr)
#define GOSSIP_DCHECK_MSG(expr, msg) GOSSIP_CHECK_MSG(expr, msg)
/// Statements that exist only to feed a GOSSIP_DCHECK (probe counters,
/// shadow state). Compiled out with the checks.
#define GOSSIP_AUDIT_ONLY(...) __VA_ARGS__
/// Replaces `noexcept` on functions whose only throw-site is a DCHECK: the
/// audit build must let ContractViolation propagate (std::terminate would
/// make the planted checks untestable), Release keeps the noexcept codegen.
#define GOSSIP_AUDIT_NOEXCEPT
#else
#define GOSSIP_DCHECK(expr) \
  do {                      \
  } while (0)
#define GOSSIP_DCHECK_MSG(expr, msg) \
  do {                               \
  } while (0)
#define GOSSIP_AUDIT_ONLY(...)
#define GOSSIP_AUDIT_NOEXCEPT noexcept
#endif
