// Small integer/real math helpers used by the algorithms' parameter
// schedules (log n, log log n, sqrt(n)/polylog thresholds, ...).
#pragma once

#include <cstdint>

namespace gossip {

/// floor(log2(x)). Precondition: x > 0.
[[nodiscard]] unsigned floor_log2(std::uint64_t x) noexcept;

/// ceil(log2(x)). Precondition: x > 0. ceil_log2(1) == 0.
[[nodiscard]] unsigned ceil_log2(std::uint64_t x) noexcept;

/// Real-valued log2 of x (x > 0).
[[nodiscard]] double log2d(std::uint64_t x) noexcept;

/// Real-valued log2(log2(x)), the paper's ubiquitous `log log n`.
/// Defined for x >= 3 (log2(x) > 1); clamped to >= 1 below that so round
/// schedules stay positive for tiny test networks.
[[nodiscard]] double loglog2d(std::uint64_t x) noexcept;

/// ceil(log2(log2(n))) clamped to >= 1; the integer `Theta(log log n)` used
/// to size round loops.
[[nodiscard]] unsigned ceil_loglog2(std::uint64_t n) noexcept;

/// Integer square root: largest r with r*r <= x.
[[nodiscard]] std::uint64_t isqrt(std::uint64_t x) noexcept;

/// ceil(a / b). Precondition: b > 0.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Saturating multiply guarding the `s <- Theta(s^2)` cluster-size schedule
/// against overflow on 64 bits.
[[nodiscard]] std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace gossip
