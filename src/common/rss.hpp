// Peak resident-set size of the current process, for the memory column in
// reports and bench JSON (bench_check gates regressions on it). Process-
// wide and monotone by definition (getrusage maxrss never decreases), so it
// is a coarse per-run ceiling, not a per-trial delta - and, being a wall-
// clock-class observable, it is NOT part of any determinism contract
// (tools/strip_timing.py strips it before CI diffs).
#pragma once

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace gossip {

/// Peak RSS in bytes, or 0 where the platform offers no getrusage.
[[nodiscard]] inline std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB elsewhere
#endif
#else
  return 0;
#endif
}

}  // namespace gossip
