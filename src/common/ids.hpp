// Node identifiers and the ID space of the random phone call model.
//
// The paper (Section 2) assumes each node carries a unique O(log n)-bit ID
// from a polynomially large space, initially known only to the node itself.
// We model IDs as opaque 64-bit values drawn injectively at random: nothing
// in the algorithms may depend on IDs being dense or ordered like indices
// (several primitives *do* depend on IDs being totally ordered, e.g.
// ClusterResize and merge-to-smallest, which the strong ordering supports).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace gossip {

/// Strongly typed node identifier. The all-ones value is reserved as the
/// "unclustered" sentinel (the paper's follow = infinity).
class NodeId {
 public:
  constexpr NodeId() noexcept : raw_(kUnclusteredRaw) {}
  constexpr explicit NodeId(std::uint64_t raw) noexcept : raw_(raw) {}

  /// The paper's `infinity` follow value: compares greater than any real ID.
  [[nodiscard]] static constexpr NodeId unclustered() noexcept { return NodeId(); }

  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr bool is_unclustered() const noexcept {
    return raw_ == kUnclusteredRaw;
  }
  /// True for any ID that denotes an actual node.
  [[nodiscard]] constexpr bool is_node() const noexcept { return !is_unclustered(); }

  friend constexpr bool operator==(NodeId a, NodeId b) noexcept { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(NodeId a, NodeId b) noexcept { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(NodeId a, NodeId b) noexcept { return a.raw_ < b.raw_; }
  friend constexpr bool operator<=(NodeId a, NodeId b) noexcept { return a.raw_ <= b.raw_; }
  friend constexpr bool operator>(NodeId a, NodeId b) noexcept { return a.raw_ > b.raw_; }
  friend constexpr bool operator>=(NodeId a, NodeId b) noexcept { return a.raw_ >= b.raw_; }

  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::uint64_t kUnclusteredRaw = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t raw_;
};

/// Generates `n` distinct random IDs (none equal to the sentinel).
/// Deterministic in `rng`'s state.
[[nodiscard]] std::vector<NodeId> generate_unique_ids(std::size_t n, Rng& rng);

}  // namespace gossip

template <>
struct std::hash<gossip::NodeId> {
  std::size_t operator()(gossip::NodeId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.raw());
  }
};
