#include "obs/export.hpp"

#include <cstdio>
#include <limits>

#include "runner/json_writer.hpp"

namespace gossip::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void write_timeseries_jsonl(std::ostream& os,
                            const std::vector<const Telemetry*>& trials,
                            const ExportOptions& options) {
  for (std::size_t t = 0; t < trials.size(); ++t) {
    if (trials[t] == nullptr) continue;
    for (const RoundRecord& rec : trials[t]->rounds.records()) {
      runner::JsonWriter w(os, /*compact=*/true);
      w.begin_object();
      if (!options.label.empty()) w.kv("scenario", options.label);
      w.kv("trial", static_cast<std::uint64_t>(t));
      w.kv("round", rec.round);
      if (rec.informed == kNoCount) {
        w.key("informed").value(kNaN);  // JsonWriter prints non-finite as null
      } else {
        w.kv("informed", rec.informed);
      }
      w.kv("alive", rec.alive);
      w.kv("joined", rec.joined);
      w.kv("initiators", rec.initiators);
      w.kv("pushes", rec.pushes);
      w.kv("pull_requests", rec.pull_requests);
      w.kv("pull_responses", rec.pull_responses);
      w.kv("payload_messages", rec.payload_messages);
      w.kv("connections", rec.connections);
      w.kv("bits", rec.bits);
      w.kv("max_involvement", rec.max_involvement);
      w.kv("loss_drops", rec.loss_drops);
      w.kv("corrupt_responses", rec.corrupt_responses);
      w.kv("estimate_n", rec.estimate_n);  // NaN -> null
      if (options.timing) {
        w.kv("phase1_ns", rec.phase1_ns);
        w.kv("phase2_ns", rec.phase2_ns);
        w.kv("phase3_ns", rec.phase3_ns);
      }
      w.end_object();
    }
  }
}

void write_events_jsonl(std::ostream& os,
                        const std::vector<const Telemetry*>& trials,
                        const ExportOptions& options) {
  for (std::size_t t = 0; t < trials.size(); ++t) {
    if (trials[t] == nullptr) continue;
    for (const Event& ev : trials[t]->events.events()) {
      runner::JsonWriter w(os, /*compact=*/true);
      w.begin_object();
      if (!options.label.empty()) w.kv("scenario", options.label);
      w.kv("trial", static_cast<std::uint64_t>(t));
      w.kv("round", ev.round);
      w.kv("kind", event_kind_name(ev.kind));
      if (ev.kind == EventKind::kVerdict) {
        w.kv("leaders", ev.node);
        w.kv("dissolved", ev.a);
        w.kv("resized", ev.b);
      } else {
        w.kv("node", ev.node);
      }
      w.end_object();
    }
  }
}

void write_provenance_jsonl(std::ostream& os,
                            const std::vector<const Telemetry*>& trials,
                            const ExportOptions& options) {
  for (std::size_t t = 0; t < trials.size(); ++t) {
    if (trials[t] == nullptr) continue;
    const ProvenanceTracer& tracer = trials[t]->provenance;
    if (!tracer.enabled()) continue;
    const std::vector<std::uint32_t> depths = spread_depths(tracer);
    const std::vector<ProvenanceTracer::Entry>& entries = tracer.entries();
    for (std::uint32_t v = 0; v < entries.size(); ++v) {
      if (!tracer.informed(v)) continue;
      const ProvenanceTracer::Entry& e = entries[v];
      runner::JsonWriter w(os, /*compact=*/true);
      w.begin_object();
      if (!options.label.empty()) w.kv("scenario", options.label);
      w.kv("trial", static_cast<std::uint64_t>(t));
      w.kv("node", v);
      w.kv("round", std::int64_t{e.round});
      w.kv("informer", e.informer);
      w.kv("channel", channel_name(e.channel));
      w.kv("direct", e.channel != ProvenanceTracer::kChanSeed &&
                         (e.channel & ProvenanceTracer::kDirectBit) != 0);
      w.kv("depth", depths[v]);
      w.end_object();
    }
  }
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<const Telemetry*>& trials,
                        const ExportOptions& options) {
  (void)options;
  runner::JsonWriter w(os, /*compact=*/true);
  w.begin_object();
  w.key("traceEvents").begin_array();
  constexpr const char* kPhaseNames[3] = {"phase1", "phase2", "phase3"};
  for (std::size_t t = 0; t < trials.size(); ++t) {
    if (trials[t] == nullptr) continue;
    char track[32];
    std::snprintf(track, sizeof(track), "trial %zu", t);
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{0});
    w.kv("tid", static_cast<std::uint64_t>(t));
    w.kv("name", "thread_name");
    w.key("args").begin_object().kv("name", track).end_object();
    w.end_object();
    // ts accumulates phase durations per track, so it is monotone
    // non-decreasing within each tid by construction.
    double ts_us = 0.0;
    for (const RoundRecord& rec : trials[t]->rounds.records()) {
      const std::uint64_t ns[3] = {rec.phase1_ns, rec.phase2_ns,
                                   rec.phase3_ns};
      for (int p = 0; p < 3; ++p) {
        const double dur_us = static_cast<double>(ns[p]) * 1e-3;
        w.begin_object();
        w.kv("ph", "X");
        w.kv("pid", std::uint64_t{0});
        w.kv("tid", static_cast<std::uint64_t>(t));
        w.kv("name", kPhaseNames[p]);
        w.kv("cat", "round");
        w.kv("ts", ts_us);
        w.kv("dur", dur_us);
        w.key("args").begin_object().kv("round", rec.round).end_object();
        w.end_object();
        ts_us += dur_us;
      }
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
}

}  // namespace gossip::obs
