// Observability layer: per-round time series, structured event log, and a
// progress heartbeat.
//
// The whole layer hangs off one attachment handle, obs::Telemetry, passed
// around as a raw pointer. A null pointer means "detached": the engine's
// phase loops pay exactly one pointer null-check per round (no virtual
// calls), and the per-contact loss path records drops only on the drop
// branch, which is already off the fast path.
//
// Determinism contract (README "Observability"): for a fixed scenario spec,
// recorded round content and event content are bit-identical across
// TrialRunner worker counts, sharded engine thread counts (>= 1), and
// delivery bucket counts. The wall-clock fields (phase*_ns) are the ONLY
// exception - they are excluded from the contract, and the exporters can
// strip them (ExportOptions::timing / tools/strip_timing.py).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

#include "obs/provenance.hpp"
#include "obs/sample.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace gossip::obs {

/// Sentinel for "this run has no informed-count probe" (e.g. the cluster
/// algorithms, whose informed state lives inside the algorithm object).
inline constexpr std::uint64_t kNoCount = ~std::uint64_t{0};

/// Event round index for events that fire before round 0 (pre-run
/// StaticCrash failures, initial joins observed under telemetry).
inline constexpr std::int64_t kPreRunRound = -1;

/// Accumulated per-phase wall-clock seconds. Shared between sim::Engine
/// (which aliases it as Engine::PhaseTimes) and the bench ReferenceEngine,
/// so reset/accumulate semantics cannot drift between the two.
struct PhaseTimes {
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  double phase3_seconds = 0.0;
};

/// One fixed-width record per engine round. Everything except the *_ns
/// fields is covered by the determinism contract.
struct RoundRecord {
  std::uint64_t round = 0;     ///< Engine fault-clock round index.
  std::uint64_t informed = kNoCount;  ///< From the probe; kNoCount = none.
  std::uint64_t alive = 0;     ///< Alive nodes at end of round.
  std::uint64_t joined = 0;    ///< Nodes ever joined (initial + arrivals).
  // RoundStats counters (sim/metrics.hpp), one column each.
  std::uint64_t pushes = 0;
  std::uint64_t pull_requests = 0;
  std::uint64_t pull_responses = 0;
  std::uint64_t payload_messages = 0;
  std::uint64_t connections = 0;
  std::uint64_t bits = 0;
  std::uint64_t initiators = 0;
  std::uint32_t max_involvement = 0;
  // Fault-layer volume totals (the event log keeps only samples).
  std::uint64_t loss_drops = 0;
  std::uint64_t corrupt_responses = 0;
  /// Membership-service population estimate (mean over alive nodes); NaN
  /// when no estimate probe is installed. Exported as null.
  double estimate_n = std::numeric_limits<double>::quiet_NaN();
  // Wall-clock per-phase nanoseconds. NOT part of the determinism contract.
  std::uint64_t phase1_ns = 0;
  std::uint64_t phase2_ns = 0;
  std::uint64_t phase3_ns = 0;
};

class ProgressMeter;

/// Captures one RoundRecord per engine round into a flat, preallocated
/// buffer, and accumulates PhaseTimes with the same reset semantics the
/// engine's built-in phase timer has.
class RoundRecorder {
 public:
  /// Optional per-round probe, run at end-of-round while the algorithm's
  /// state is still live. Algorithms that track an informed count install
  /// one; the membership service also fills estimate_n.
  struct Probe {
    std::uint64_t informed = kNoCount;
    double estimate_n = std::numeric_limits<double>::quiet_NaN();
  };
  using ProbeFn = std::function<Probe()>;

  void reserve(std::size_t rounds) { records_.reserve(rounds); }

  /// Installs (or clears, with an empty function) the end-of-round probe.
  /// Probes typically capture algorithm locals by reference, so callers
  /// MUST clear the probe before those locals go out of scope.
  void set_probe(ProbeFn probe) { probe_ = std::move(probe); }

  /// Routes per-round heartbeats to a shared ProgressMeter (trial_runner
  /// wiring); `trial` labels this recorder's track.
  void set_progress(ProgressMeter* meter, unsigned trial) {
    progress_ = meter;
    trial_ = trial;
  }

  void on_round_end(std::uint64_t round, const sim::RoundStats& stats,
                    std::uint64_t joined, std::uint64_t alive,
                    std::uint64_t loss_drops, std::uint64_t corrupt_responses,
                    std::uint64_t phase1_ns, std::uint64_t phase2_ns,
                    std::uint64_t phase3_ns);

  [[nodiscard]] const std::vector<RoundRecord>& records() const {
    return records_;
  }

  [[nodiscard]] const PhaseTimes& phase_times() const { return phase_times_; }

  /// Zeroes the accumulated phase clocks only - recorded rounds are kept.
  /// Mirrors sim::Engine::reset_phase_times exactly.
  void reset_phase_times() { phase_times_ = PhaseTimes{}; }

  /// Drops recorded rounds and phase clocks (probe and progress wiring are
  /// kept). Used by benches that reuse one recorder across repeats.
  void clear() {
    records_.clear();
    phase_times_ = PhaseTimes{};
  }

 private:
  std::vector<RoundRecord> records_;
  PhaseTimes phase_times_;
  ProbeFn probe_;
  ProgressMeter* progress_ = nullptr;
  unsigned trial_ = 0;
};

enum class EventKind : std::uint8_t {
  kJoin,             ///< Node joined the network (fault layer or algorithm).
  kCrash,            ///< Node failed (ScheduledCrash / StaticCrash / churn).
  kLossDrop,         ///< Sampled per-contact loss drop (total in RoundRecord).
  kCorruptResponse,  ///< Sampled byzantine corruption (total in RoundRecord).
  kVerdict,          ///< Driver verdict summary for one collect round.
  kReelect,          ///< Recovery supervisor re-elected suspected leaders.
  kFallback,         ///< Recovery supervisor degraded to plain PUSH-PULL.
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

/// One structured event. `node` is the subject index for join/crash/
/// loss_drop/corrupt_response; for verdict events the fields carry the
/// summary counters (node = participating leaders, a = dissolved,
/// b = resized).
struct Event {
  std::int64_t round = kPreRunRound;
  EventKind kind = EventKind::kJoin;
  std::uint64_t node = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Structured event log fed by the fault layer. Joins, crashes, and verdict
/// summaries are recorded unsampled (their volume is bounded by the node
/// population resp. driver phases); per-contact loss drops and byzantine
/// corruptions are counted in full but sampled via the deterministic
/// bottom-k reservoir in obs/sample.hpp.
///
/// Implements sim::NetworkObserver so Network::join()/fail() feed it
/// directly - the fault models need no changes to be observable.
class EventLog final : public sim::NetworkObserver {
 public:
  struct RoundCounts {
    std::uint64_t loss_drops = 0;
    std::uint64_t corrupt_responses = 0;
  };

  /// Starts a round: subsequent events are stamped with `round`.
  void begin_round(std::int64_t round);

  /// Flushes the round's sampled events (sorted by node index, so the
  /// output order is execution-order-free) and returns the full totals.
  RoundCounts end_round();

  /// Serial-engine loss drop (the sharded path records into ShardBuffer
  /// and merges via merge_loss).
  void note_loss_drop(std::uint32_t node) {
    ++loss_count_;
    loss_sample_.offer(
        event_priority(static_cast<std::uint64_t>(round_), node), node);
  }

  /// Folds one shard's loss drops in (called in shard order; the sample
  /// merge is order-insensitive anyway).
  void merge_loss(std::uint64_t count, const TopKSample& sample) {
    loss_count_ += count;
    loss_sample_.merge(sample);
  }

  void note_corruption(std::uint32_t responder) {
    ++corrupt_count_;
    corrupt_sample_.offer(
        event_priority(static_cast<std::uint64_t>(round_), responder),
        responder);
  }

  void note_verdict(std::uint32_t leaders, std::uint64_t dissolved,
                    std::uint64_t resized) {
    events_.push_back(Event{round_, EventKind::kVerdict, leaders, dissolved,
                            resized});
  }

  /// Recovery-supervisor re-election summary for one epoch (node = followers
  /// that suspected their leader, a = of those, the ones promoted to leader,
  /// b = the supervisor epoch index).
  void note_reelect(std::uint64_t suspected, std::uint64_t promoted,
                    std::uint64_t epoch) {
    events_.push_back(Event{round_, EventKind::kReelect, suspected, promoted,
                            epoch});
  }

  /// Recovery-supervisor fallback handoff (node = nodes still uninformed at
  /// the handoff, a = supervisor epochs spent, b = the retry budget).
  void note_fallback(std::uint64_t stranded, std::uint64_t epochs,
                     std::uint64_t budget) {
    events_.push_back(Event{round_, EventKind::kFallback, stranded, epochs,
                            budget});
  }

  // sim::NetworkObserver
  void on_join(std::uint32_t index) override {
    events_.push_back(Event{round_, EventKind::kJoin, index, 0, 0});
  }
  void on_fail(std::uint32_t index) override {
    events_.push_back(Event{round_, EventKind::kCrash, index, 0, 0});
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::int64_t current_round() const { return round_; }

  /// Per-round, per-kind reservoir size (scenario key `event_sample_cap`).
  /// The cap is experiment identity, not execution order, so it may differ
  /// between runs without breaking any determinism contract - but two runs
  /// compared for bit-identity must of course use the same cap.
  void set_sample_cap(std::size_t cap) {
    sample_cap_ = cap == 0 ? 1 : cap;
    loss_sample_.set_cap(sample_cap_);
    corrupt_sample_.set_cap(sample_cap_);
  }
  [[nodiscard]] std::size_t sample_cap() const noexcept { return sample_cap_; }

 private:
  std::int64_t round_ = kPreRunRound;
  std::uint64_t loss_count_ = 0;
  std::uint64_t corrupt_count_ = 0;
  std::size_t sample_cap_ = kEventSampleCap;
  TopKSample loss_sample_;
  TopKSample corrupt_sample_;
  std::vector<Event> events_;
};

/// The single attachment handle: one per trial. Engine, Driver, and the
/// algorithm runners all take an obs::Telemetry* and write into these
/// three. The provenance tracer participates only when armed
/// (ProvenanceTracer::arm); the other two are always live once attached.
struct Telemetry {
  RoundRecorder rounds;
  EventLog events;
  ProvenanceTracer provenance;
};

/// Rate-limited stderr heartbeat for long scenarios (gossip_run
/// --progress). Shared by all trial recorders of one run; thread-safe
/// because TrialRunner workers end rounds concurrently.
class ProgressMeter {
 public:
  explicit ProgressMeter(unsigned trials, unsigned interval_ms = 250)
      : trials_(trials), interval_ms_(interval_ms) {}

  /// Prints "trial T/N round R informed I/A" at most once per interval.
  void on_round_end(unsigned trial, std::uint64_t round,
                    std::uint64_t informed, std::uint64_t alive);

 private:
  unsigned trials_;
  unsigned interval_ms_;
  std::mutex mutex_;
  /// min()/2, not min(): "now - last" must not overflow on the first call.
  std::int64_t last_print_ms_ = std::numeric_limits<std::int64_t>::min() / 2;
};

}  // namespace gossip::obs
