#include "obs/provenance.hpp"

#include "common/assert.hpp"

namespace gossip::obs {

std::vector<std::uint32_t> spread_depths(const ProvenanceTracer& tracer) {
  const std::vector<ProvenanceTracer::Entry>& entries = tracer.entries();
  std::vector<std::uint32_t> depth(entries.size(), kNoDepth);
  std::vector<std::uint32_t> chain;
  for (std::uint32_t v = 0; v < entries.size(); ++v) {
    if (!tracer.informed(v) || depth[v] != kNoDepth) continue;
    // Walk the informer chain until a memoised depth or a root, then unwind.
    // The chain is acyclic because an informer's first-inform strictly
    // precedes the delivery it caused (phase order within a round, round
    // order across rounds); the CHECK is a belt-and-braces guard.
    chain.clear();
    std::uint32_t cur = v;
    while (depth[cur] == kNoDepth) {
      const ProvenanceTracer::Entry& e = entries[cur];
      const bool root = e.channel == ProvenanceTracer::kChanSeed ||
                        e.informer == cur || !tracer.informed(e.informer);
      if (root) {
        depth[cur] = 0;
        break;
      }
      chain.push_back(cur);
      GOSSIP_CHECK(chain.size() <= entries.size());
      cur = e.informer;
    }
    std::uint32_t d = depth[cur];
    while (!chain.empty()) {
      depth[chain.back()] = ++d;
      chain.pop_back();
    }
  }
  return depth;
}

SpreadMetrics spread_metrics(const ProvenanceTracer& tracer) {
  const std::vector<ProvenanceTracer::Entry>& entries = tracer.entries();
  const std::vector<std::uint32_t> depth = spread_depths(tracer);
  SpreadMetrics m;
  std::vector<std::uint32_t> children(entries.size(), 0);
  std::uint64_t non_seed = 0;
  std::uint64_t direct = 0;
  for (std::uint32_t v = 0; v < entries.size(); ++v) {
    if (!tracer.informed(v)) continue;
    ++m.informed;
    if (depth[v] != kNoDepth && depth[v] > m.depth) m.depth = depth[v];
    const ProvenanceTracer::Entry& e = entries[v];
    if (e.channel == ProvenanceTracer::kChanSeed) continue;
    ++non_seed;
    if ((e.channel & ProvenanceTracer::kDirectBit) != 0) ++direct;
    if (e.informer != v && tracer.informed(e.informer)) ++children[e.informer];
  }
  std::uint64_t internal = 0;
  std::uint64_t child_sum = 0;
  for (std::uint32_t v = 0; v < entries.size(); ++v) {
    if (children[v] == 0) continue;
    ++internal;
    child_sum += children[v];
    if (children[v] > m.max_branching) m.max_branching = children[v];
  }
  if (internal > 0) {
    m.mean_branching =
        static_cast<double>(child_sum) / static_cast<double>(internal);
  }
  if (non_seed > 0) {
    m.direct_share = static_cast<double>(direct) / static_cast<double>(non_seed);
  }
  return m;
}

const char* channel_name(std::uint8_t channel) noexcept {
  if (channel == ProvenanceTracer::kChanSeed) return "seed";
  switch (channel & ProvenanceTracer::kKindMask) {
    case ProvenanceTracer::kChanPush: return "push";
    case ProvenanceTracer::kChanPullResponse: return "pull_response";
    case ProvenanceTracer::kChanExchange: return "exchange";
    default: return "unknown";
  }
}

}  // namespace gossip::obs
