#include "obs/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace gossip::obs {

void RoundRecorder::on_round_end(std::uint64_t round,
                                 const sim::RoundStats& stats,
                                 std::uint64_t joined, std::uint64_t alive,
                                 std::uint64_t loss_drops,
                                 std::uint64_t corrupt_responses,
                                 std::uint64_t phase1_ns,
                                 std::uint64_t phase2_ns,
                                 std::uint64_t phase3_ns) {
  RoundRecord rec;
  rec.round = round;
  rec.alive = alive;
  rec.joined = joined;
  rec.pushes = stats.pushes;
  rec.pull_requests = stats.pull_requests;
  rec.pull_responses = stats.pull_responses;
  rec.payload_messages = stats.payload_messages;
  rec.connections = stats.connections;
  rec.bits = stats.bits;
  rec.initiators = stats.initiators;
  rec.max_involvement = stats.max_involvement;
  rec.loss_drops = loss_drops;
  rec.corrupt_responses = corrupt_responses;
  rec.phase1_ns = phase1_ns;
  rec.phase2_ns = phase2_ns;
  rec.phase3_ns = phase3_ns;
  if (probe_) {
    const Probe p = probe_();
    rec.informed = p.informed;
    rec.estimate_n = p.estimate_n;
  }
  records_.push_back(rec);
  phase_times_.phase1_seconds += static_cast<double>(phase1_ns) * 1e-9;
  phase_times_.phase2_seconds += static_cast<double>(phase2_ns) * 1e-9;
  phase_times_.phase3_seconds += static_cast<double>(phase3_ns) * 1e-9;
  if (progress_ != nullptr) {
    progress_->on_round_end(trial_, round, rec.informed, alive);
  }
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kJoin:
      return "join";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kLossDrop:
      return "loss_drop";
    case EventKind::kCorruptResponse:
      return "corrupt_response";
    case EventKind::kVerdict:
      return "verdict";
    case EventKind::kReelect:
      return "reelect";
    case EventKind::kFallback:
      return "fallback";
  }
  return "unknown";
}

void EventLog::begin_round(std::int64_t round) {
  round_ = round;
  loss_count_ = 0;
  corrupt_count_ = 0;
  loss_sample_.clear();
  corrupt_sample_.clear();
}

EventLog::RoundCounts EventLog::end_round() {
  // Emit the survivors sorted by node index: the bottom-k sets are
  // execution-order-free, and sorting removes the last trace of arrival
  // order from the log itself.
  const auto flush = [this](TopKSample& sample, EventKind kind) {
    std::sort(sample.entries.begin(), sample.entries.begin() + sample.count,
              [](const TopKSample::Entry& a, const TopKSample::Entry& b) {
                return a.node < b.node;
              });
    for (std::size_t i = 0; i < sample.count; ++i) {
      events_.push_back(Event{round_, kind, sample.entries[i].node, 0, 0});
    }
    sample.clear();
  };
  flush(loss_sample_, EventKind::kLossDrop);
  flush(corrupt_sample_, EventKind::kCorruptResponse);
  const RoundCounts counts{loss_count_, corrupt_count_};
  loss_count_ = 0;
  corrupt_count_ = 0;
  return counts;
}

void ProgressMeter::on_round_end(unsigned trial, std::uint64_t round,
                                 std::uint64_t informed,
                                 std::uint64_t alive) {
  using Clock = std::chrono::steady_clock;
  const std::int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count();
  char informed_buf[24];
  if (informed == kNoCount) {
    std::snprintf(informed_buf, sizeof(informed_buf), "-");
  } else {
    std::snprintf(informed_buf, sizeof(informed_buf), "%llu",
                  static_cast<unsigned long long>(informed));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (now_ms - last_print_ms_ < static_cast<std::int64_t>(interval_ms_)) {
      return;
    }
    last_print_ms_ = now_ms;
  }
  std::fprintf(stderr, "[progress] trial %u/%u round %llu informed %s/%llu\n",
               trial + 1, trials_, static_cast<unsigned long long>(round),
               informed_buf, static_cast<unsigned long long>(alive));
}

}  // namespace gossip::obs
