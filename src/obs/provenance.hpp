// Spread provenance tracing (PR 8): who informed whom, in which round, over
// which channel. The paper's bounds (Theorems 13/19) are statements about
// the SHAPE of the dispersion process - direct addressing flattens the
// depth-O(log n) blind push-pull tree into a short, wide dispersal - so the
// tracer records, at each node's FIRST-inform moment, the triple
// (informer, round, channel) into a capacity-sized flat array. One store
// per node per run; nothing per delivery after a node is informed.
//
// Determinism: first-inform is receiver-local. The engine's delivery phases
// already fix a per-receiver delivery order that is invariant across
// engine threads and delivery buckets (README "Determinism contracts"), so
// the FIRST rumor-bearing delivery a node sees - and hence the recorded
// triple - is bit-identical across TrialRunner workers x engine threads x
// delivery buckets. The tracer itself is order-insensitive only in the
// trivial sense (first write wins); it relies on the engine replaying
// deliveries in that pinned order.
//
// Cost model: the informed set lives in a separate bitmap (capacity/8
// bytes - LLC-resident even at n = 4M). Push provenance costs one bitmap
// probe per rumor-bearing ENQUEUE in phase 1 (see TraceCandidate below -
// the push wire format and phase 2 replay are untouched); pull-response
// provenance costs one probe per rumor-bearing delivery in phase 3. The
// 9-byte Entry array is touched only on the one first-inform write per
// node, and once every armed slot is informed, active() turns false and
// the engine skips tracing entirely.
//
// Dependency-light on purpose: included from the event-log header (the
// telemetry handle aggregates a tracer) and, transitively, from the sharded
// phase-1 buffers - it must not pull sim/ headers into the shard layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace gossip::obs {

/// First-inform provenance store. Detached (never armed) it is an empty
/// vector and two scalars; armed it is O(capacity) memory and O(1) per
/// rumor-bearing delivery.
class ProvenanceTracer {
 public:
  // Channel encoding: bits 0-1 = contact kind of the informing delivery,
  // bit 2 = direct addressing (the initiator dialled a learned ID instead
  // of drawing uniformly). kChanSeed marks the rumor source itself.
  static constexpr std::uint8_t kChanPush = 0;
  static constexpr std::uint8_t kChanPullResponse = 1;
  static constexpr std::uint8_t kChanExchange = 2;
  static constexpr std::uint8_t kKindMask = 3;
  static constexpr std::uint8_t kDirectBit = 4;
  static constexpr std::uint8_t kChanSeed = 0xFF;

  static constexpr std::uint32_t kNoInformer = 0xFFFFFFFFu;
  /// Seeds are informed "before round 0" - same clock convention as
  /// obs::kPreRunRound.
  static constexpr std::int32_t kSeedRound = -1;

  struct Entry {
    std::uint32_t informer = kNoInformer;
    std::int32_t round = 0;
    std::uint8_t channel = 0;
  };

  /// Arms the tracer for node indices [0, capacity). Clears any previous
  /// trace. Capacity is the network's join ceiling (Network::capacity()),
  /// not the initial n - joiners get slots too.
  void arm(std::uint32_t capacity) {
    capacity_ = capacity;
    remaining_ = capacity;
    enabled_ = capacity > 0;
    entries_.assign(capacity, Entry{});
    words_.assign((static_cast<std::size_t>(capacity) + 63) / 64, 0);
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  /// True while there are still uninformed slots worth tracing. The engine
  /// re-checks this per round and skips the candidate probes and traced
  /// phase-3 path once the trace is complete.
  [[nodiscard]] bool active() const noexcept { return enabled_ && remaining_ != 0; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t informed_count() const noexcept {
    return capacity_ - remaining_;
  }

  [[nodiscard]] bool informed(std::uint32_t node) const noexcept {
    return node < capacity_ &&
           (words_[node >> 6] & (1ULL << (node & 63))) != 0;
  }

  /// Per-node trace, indexed by node. Slots of never-informed nodes keep
  /// informer == kNoInformer.
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Marks the rumor source: informed at kSeedRound by itself.
  void note_seed(std::uint32_t node) noexcept {
    note_first_inform(node, node, kSeedRound, kChanSeed);
  }

  /// First write wins; later calls for an already-informed node are a
  /// single bitmap probe.
  // GOSSIP_HOT
  void note_first_inform(std::uint32_t node, std::uint32_t informer,
                         std::int64_t round, std::uint8_t channel) noexcept {
    if (node >= capacity_) return;
    std::uint64_t& w = words_[node >> 6];
    const std::uint64_t bit = 1ULL << (node & 63);
    if ((w & bit) != 0) return;
    w |= bit;
    entries_[node] = Entry{informer, static_cast<std::int32_t>(round), channel};
    --remaining_;
  }

  /// Serial-executor fast path: claim `node`'s first-inform NOW (bitmap bit
  /// + informed count), deferring only the Entry store to the apply sweep.
  /// Returns true iff this call claimed it. Only valid where writing the
  /// bitmap is safe, i.e. the serial phase-1 sink - whose enqueue order is
  /// already global initiator order - never the parallel shards. Claiming at
  /// enqueue time dedups same-round candidates at the source, so the serial
  /// apply sweep writes exactly one Entry per claim (note_claimed_entry).
  ///
  /// Precondition: node < capacity(). The engine guarantees it by tracing a
  /// round only when the armed capacity covers the network's join ceiling
  /// (every enqueue target is < n <= Network::capacity()); this is the one
  /// per-contact call on the traced hot path, so it skips the bounds
  /// re-check that the cold entry points keep. Audit builds re-arm the check
  /// (GOSSIP_AUDIT; an unarmed tracer has capacity 0, so ANY claim fires).
  // GOSSIP_HOT
  [[nodiscard]] bool try_claim(std::uint32_t node) GOSSIP_AUDIT_NOEXCEPT {
    GOSSIP_DCHECK_MSG(node < capacity_,
                      "try_claim past the armed capacity (unarmed tracer?)");
    std::uint64_t& w = words_[node >> 6];
    const std::uint64_t bit = 1ULL << (node & 63);
    if ((w & bit) != 0) return false;
    w |= bit;
    --remaining_;
    return true;
  }

  /// Entry store for a node previously claimed via try_claim. The bitmap
  /// and count are already settled, so this is one unconditional store.
  // GOSSIP_HOT
  void note_claimed_entry(std::uint32_t node, std::uint32_t informer,
                          std::int64_t round, std::uint8_t channel) GOSSIP_AUDIT_NOEXCEPT {
    GOSSIP_DCHECK_MSG(node < capacity_ && informed(node),
                      "note_claimed_entry without a prior try_claim");
    entries_[node] = Entry{informer, static_cast<std::int32_t>(round), channel};
  }

  /// Prefetches the bitmap word for `node` - the delivery loops issue this
  /// a few entries ahead so the informed probe never stalls on DRAM.
  void prefetch(std::uint32_t node) const noexcept {
    if (node < capacity_) __builtin_prefetch(&words_[node >> 6], 1, 3);
  }

  /// Prefetches just the entry slot - for the serial apply sweep, whose
  /// candidates are pre-claimed (the bitmap is never touched again).
  void prefetch_entry_slot(std::uint32_t node) const noexcept {
    if (node < capacity_) __builtin_prefetch(&entries_[node], 1, 3);
  }

  /// Prefetches the bitmap word AND the entry slot - the candidate apply
  /// loop issues this a lookahead window ahead: unlike the phase-3 probes,
  /// almost every candidate actually writes its entry (it was uninformed at
  /// enqueue time), and the entry array is too big for L2 at large n.
  void prefetch_entry(std::uint32_t node) const noexcept {
    if (node < capacity_) {
      __builtin_prefetch(&words_[node >> 6], 1, 3);
      __builtin_prefetch(&entries_[node], 1, 3);
    }
  }

 private:
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> words_;  ///< informed bitmap, 1 bit per node
  std::uint32_t capacity_ = 0;
  std::uint32_t remaining_ = 0;
  bool enabled_ = false;
};

/// One potential first-inform, recorded by the phase-1 sinks at ENQUEUE
/// time: the engine's delivery phases replay each receiver's pushes in
/// global initiator order, so the first rumor-bearing enqueue a receiver
/// gets IS its first push delivery. The serial sink claims the bitmap bit
/// on the spot (try_claim - its enqueue order is initiator order, and
/// claiming dedups same-round candidates at the source); parallel shards
/// may only READ the bitmap race-free, so they buffer candidates that the
/// engine replays in shard order - equal to initiator order - between
/// phases 1 and 2, where note_first_inform's first-write-wins settles
/// same-round duplicates to the identical result. Either way the push wire
/// format - and phase 2's replay cost - stays untouched by tracing.
struct TraceCandidate {
  std::uint32_t to;
  std::uint32_t src;
  std::uint8_t chan;
};

/// Dispersion-tree shape of one trial's trace. Every field is a pure
/// function of the trace content, so it inherits the trace's bit-identical
/// determinism across all parallelism axes.
struct SpreadMetrics {
  std::uint64_t informed = 0;       ///< nodes with a trace entry (seeds included)
  std::uint32_t depth = 0;          ///< max hops from a seed
  std::uint32_t max_branching = 0;  ///< most first-informs credited to one node
  double mean_branching = 0.0;      ///< mean children over internal nodes
  double direct_share = 0.0;        ///< non-seed entries delivered via a dialled ID
};

/// Sentinel depth for nodes that were never informed.
inline constexpr std::uint32_t kNoDepth = 0xFFFFFFFFu;

/// Hop distance from the nearest seed for every node (kNoDepth when never
/// informed). An informer that is itself uninformed - possible only for
/// byzantine-forged payloads - roots its subtree at depth 0.
[[nodiscard]] std::vector<std::uint32_t> spread_depths(const ProvenanceTracer& tracer);

[[nodiscard]] SpreadMetrics spread_metrics(const ProvenanceTracer& tracer);

/// "seed" | "push" | "pull_response" | "exchange" (direct bit ignored).
[[nodiscard]] const char* channel_name(std::uint8_t channel) noexcept;

}  // namespace gossip::obs
