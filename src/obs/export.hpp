// Exporters for the observability layer: per-round JSONL time series,
// event JSONL, and Chrome trace_event JSON (chrome://tracing / Perfetto).
// All output is routed through runner::JsonWriter (compact mode), so string
// escaping and double formatting match the main scenario reports.
//
// Each exporter takes the per-trial Telemetry handles in trial order (the
// order TrialRunner stores them), which makes the output independent of the
// worker count that produced it.
#pragma once

#include <ostream>
#include <string_view>
#include <vector>

#include "obs/recorder.hpp"

namespace gossip::obs {

struct ExportOptions {
  /// Emit the wall-clock phase*_ns fields. The golden-content determinism
  /// test turns this off; CI strips them post-hoc with
  /// tools/strip_timing.py instead so the shipped files keep their timing.
  bool timing = true;
  /// Optional scenario label prepended to every line (bench_churn writes
  /// many scenarios into one file). Empty = omitted.
  std::string_view label = {};
};

/// One JSON object per recorded round:
///   {"trial":0,"round":3,"informed":41,"alive":255,"joined":258,
///    "initiators":258,"pushes":38,"pull_requests":217,...,
///    "loss_drops":12,"corrupt_responses":0,"estimate_n":null,
///    "phase1_ns":...,"phase2_ns":...,"phase3_ns":...}
/// `informed` and `estimate_n` are null when no probe supplied them.
void write_timeseries_jsonl(std::ostream& os,
                            const std::vector<const Telemetry*>& trials,
                            const ExportOptions& options = {});

/// One JSON object per event:
///   {"trial":0,"round":-1,"kind":"crash","node":17}
///   {"trial":0,"round":4,"kind":"loss_drop","node":12}
///   {"trial":2,"round":7,"kind":"verdict","leaders":12,"dissolved":3,
///    "resized":1}
/// round -1 marks pre-run events (StaticCrash, initial joins). Event
/// content carries no wall-clock fields, so the whole file is covered by
/// the determinism contract.
void write_events_jsonl(std::ostream& os,
                        const std::vector<const Telemetry*>& trials,
                        const ExportOptions& options = {});

/// One JSON object per informed node, in node order within each trial:
///   {"trial":0,"node":17,"round":4,"informer":3,"channel":"push",
///    "direct":false,"depth":2}
///   {"trial":0,"node":3,"round":-1,"informer":3,"channel":"seed",
///    "direct":false,"depth":0}
/// Only nodes the tracer saw informed are emitted; `depth` is the
/// informer-chain distance from the seed (obs::spread_depths). Content is
/// receiver-local and delivery-order-invariant, so the whole file is
/// covered by the workers x engine-threads x buckets determinism contract.
void write_provenance_jsonl(std::ostream& os,
                            const std::vector<const Telemetry*>& trials,
                            const ExportOptions& options = {});

/// Chrome trace_event JSON: one "X" (complete) span per phase per round,
/// one track (tid) per trial, pid 0. Timestamps are built by accumulating
/// phase durations per track, so `ts` is monotone within each tid and the
/// trace shows the phase budget of each round back-to-back.
void write_chrome_trace(std::ostream& os,
                        const std::vector<const Telemetry*>& trials,
                        const ExportOptions& options = {});

}  // namespace gossip::obs
