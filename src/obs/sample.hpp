// Deterministic reservoir sampling for high-volume telemetry events.
//
// Per-contact loss drops (and byzantine corruptions) can number in the
// millions per round; the event log keeps at most kEventSampleCap of them
// per round. The sample must be part of the determinism contract - the SAME
// events must survive for every engine thread count and delivery bucket
// count - so a classic streaming reservoir (whose survivors depend on
// arrival order) is out. Instead each candidate gets a priority that is a
// pure function of (round key, node), and the sample is the k candidates
// with the SMALLEST priorities. Priorities are iid-uniform hashes, so the
// survivors are a uniform k-subset; selection by order statistics is
// insensitive to arrival order and merges associatively, so per-shard
// samples folded in shard order equal the serial sample bit-for-bit.
//
// This header is dependency-light on purpose: it is included from the
// sharded phase-1 buffers (sim/parallel/shard.hpp) as well as from the
// event log, and must not pull sim/ headers into the shard layer.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace gossip::obs {

/// Default sampled events of one kind kept per round (scenario key
/// `event_sample_cap` overrides). Small: the samples are for "which nodes
/// were hit" spot checks; totals ride the round record.
inline constexpr std::size_t kEventSampleCap = 8;

/// Priority of one candidate event: a pure function of the round key and
/// the node, never of execution order. Distinct (round, node) pairs give
/// independent hash values, so the k smallest form a uniform k-subset.
[[nodiscard]] inline std::uint64_t event_priority(std::uint64_t round_key,
                                                  std::uint64_t node) noexcept {
  return mix64((round_key + 1) * 0x9e3779b97f4a7c15ULL ^
               (node + 1) * 0xbf58476d1ce4e5b9ULL);
}

/// Bottom-k (by priority) candidate set with O(k) insertion. Ties break on
/// the node index, so the selection is a total order even under (vanishingly
/// unlikely) hash collisions.
struct TopKSample {
  struct Entry {
    std::uint64_t priority = 0;
    std::uint32_t node = 0;
  };

  std::vector<Entry> entries = std::vector<Entry>(kEventSampleCap);
  std::size_t count = 0;
  std::size_t cap = kEventSampleCap;

  /// Resizes the reservoir. The cap is part of the experiment identity
  /// (smaller caps keep a different k-subset), never of the execution
  /// order, so determinism is unaffected. Callers set it between rounds;
  /// an in-flight sample is cut down to the new cap's bottom-k.
  void set_cap(std::size_t new_cap) {
    cap = new_cap == 0 ? 1 : new_cap;
    if (entries.size() < cap) entries.resize(cap);
    if (count > cap) {
      std::nth_element(entries.begin(), entries.begin() + cap,
                       entries.begin() + count, before);
      count = cap;
    }
  }

  void clear() noexcept { count = 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count; }

  static bool before(const Entry& a, const Entry& b) noexcept {
    return a.priority != b.priority ? a.priority < b.priority : a.node < b.node;
  }

  void offer(std::uint64_t priority, std::uint32_t node) noexcept {
    const Entry e{priority, node};
    if (count < cap) {
      entries[count++] = e;
      return;
    }
    std::size_t worst = 0;
    for (std::size_t i = 1; i < cap; ++i) {
      if (before(entries[worst], entries[i])) worst = i;
    }
    if (before(e, entries[worst])) entries[worst] = e;
  }

  /// Folds another candidate set in. Associative and commutative (pure
  /// order statistics), so any merge order yields the same sample.
  void merge(const TopKSample& other) noexcept {
    for (std::size_t i = 0; i < other.count; ++i) {
      offer(other.entries[i].priority, other.entries[i].node);
    }
  }
};

}  // namespace gossip::obs
