#include "runner/trial_runner.hpp"

#include <memory>

#include "common/rng.hpp"
#include "common/rss.hpp"
#include "obs/provenance.hpp"
#include "runner/registry.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::runner {

std::vector<const obs::Telemetry*> ScenarioResult::telemetry_views() const {
  std::vector<const obs::Telemetry*> views;
  views.reserve(telemetry.size());
  for (const auto& t : telemetry) views.push_back(t.get());
  return views;
}

TrialRunner::TrialRunner(unsigned workers) : pool_(workers == 0 ? 1 : workers) {}

core::BroadcastReport TrialRunner::run_trial(const ScenarioSpec& spec,
                                             unsigned trial,
                                             obs::Telemetry* telemetry) {
  const AlgorithmEntry& algo = require_algorithm(spec.algorithm);
  Rng trial_rng = Rng(spec.seed).fork(trial);
  const std::uint64_t network_seed = trial_rng.next_u64();
  const std::uint64_t adversary_seed = trial_rng.next_u64();

  sim::NetworkOptions net_opts;
  net_opts.n = spec.n;
  net_opts.seed = network_seed;
  net_opts.rumor_bits = spec.rumor_bits;
  // Join headroom for churn scenarios (== n when churn is off, so join-free
  // specs build byte-identical networks).
  net_opts.max_nodes = spec.max_nodes();
  sim::Network net(net_opts);

  // Event observer BEFORE the fault model runs: a StaticCrash fails its set
  // below, and those crashes must land at obs::kPreRunRound (the EventLog's
  // initial round). The algorithm's Engine::set_telemetry re-installs the
  // same observer later, which is idempotent. The provenance tracer is armed
  // over the full join-headroom capacity so mid-run joiners get slots too.
  if (telemetry != nullptr) {
    net.set_observer(&telemetry->events);
    telemetry->events.set_sample_cap(spec.event_sample_cap);
    telemetry->provenance.arm(net.capacity());
  }

  // Fault setup before any algorithm randomness (obliviousness): a
  // StaticCrash fails its set here; a ScheduledCrash only commits to its
  // victims and fires later on the engine's round timeline. Legacy
  // fault_fraction/fault_strategy specs map to StaticCrash and consume the
  // adversary stream exactly as the old choose_failures recipe did.
  const std::unique_ptr<sim::FaultModel> fault = spec.make_fault_model();
  if (fault) {
    Rng adversary(adversary_seed);  // oblivious: independent of the run's seed
    fault->on_run_begin(net, adversary);
  }

  auto source = static_cast<std::uint32_t>(trial_rng.uniform_below(spec.n));
  while (!net.alive(source)) source = (source + 1) % spec.n;
  if (telemetry != nullptr) telemetry->provenance.note_seed(source);

  core::BroadcastReport report = algo.run(net, source, spec, fault.get(), telemetry);
  if (telemetry != nullptr) {
    // Dispersion-tree shape of this trial's spread (obs/provenance.hpp).
    // Derived from the tracer's first-inform records, which are receiver-
    // local and delivery-order-invariant, so these two metrics inherit the
    // full workers x engine-threads x buckets determinism contract.
    const obs::SpreadMetrics sm = obs::spread_metrics(telemetry->provenance);
    report.spread_depth = static_cast<double>(sm.depth);
    report.direct_share = sm.direct_share;
  }
  return report;
}

ScenarioResult TrialRunner::run(const ScenarioSpec& spec) {
  spec.validate();
  (void)require_algorithm(spec.algorithm);  // fail fast, before any trial runs

  ScenarioResult result;
  result.spec = spec;
  result.reports.resize(spec.trials);

  // Telemetry handles are attached to EVERY trial: the spread metrics
  // (spread_depth / direct_share) ride the provenance tracer, and the report
  // carries them unconditionally. Telemetry consumes no randomness and never
  // alters trajectories, so always-attaching keeps every historical
  // trajectory bit-identical. The handles are only KEPT in the result when
  // an output path (or --progress) asked for them.
  const bool keep = spec.wants_telemetry() || spec.progress;
  std::unique_ptr<obs::ProgressMeter> meter;
  if (spec.progress) meter = std::make_unique<obs::ProgressMeter>(spec.trials);
  result.telemetry.resize(spec.trials);
  for (unsigned t = 0; t < spec.trials; ++t) {
    auto telemetry = std::make_shared<obs::Telemetry>();
    telemetry->rounds.reserve(512);
    if (meter) telemetry->rounds.set_progress(meter.get(), t);
    result.telemetry[t] = std::move(telemetry);
  }

  pool_.parallel_for(spec.trials, [&](std::size_t t) {
    result.reports[t] = run_trial(spec, static_cast<unsigned>(t),
                                  result.telemetry[t].get());
  });
  // The meter dies with this frame; recorders outlive it in the result.
  if (meter) {
    for (auto& t : result.telemetry) t->rounds.set_progress(nullptr, 0);
  }
  if (!keep) result.telemetry.clear();
  // Trial-order merge: the aggregate never sees completion order, so it is
  // bit-identical for every worker count.
  for (const core::BroadcastReport& r : result.reports) result.aggregate.add(r);
  result.peak_rss_bytes = peak_rss_bytes();
  return result;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return TrialRunner(spec.threads).run(spec);
}

}  // namespace gossip::runner
