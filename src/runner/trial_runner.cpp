#include "runner/trial_runner.hpp"

#include <memory>

#include "common/rng.hpp"
#include "runner/registry.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::runner {

TrialRunner::TrialRunner(unsigned workers) : pool_(workers == 0 ? 1 : workers) {}

core::BroadcastReport TrialRunner::run_trial(const ScenarioSpec& spec,
                                             unsigned trial) {
  const AlgorithmEntry& algo = require_algorithm(spec.algorithm);
  Rng trial_rng = Rng(spec.seed).fork(trial);
  const std::uint64_t network_seed = trial_rng.next_u64();
  const std::uint64_t adversary_seed = trial_rng.next_u64();

  sim::NetworkOptions net_opts;
  net_opts.n = spec.n;
  net_opts.seed = network_seed;
  net_opts.rumor_bits = spec.rumor_bits;
  // Join headroom for churn scenarios (== n when churn is off, so join-free
  // specs build byte-identical networks).
  net_opts.max_nodes = spec.max_nodes();
  sim::Network net(net_opts);

  // Fault setup before any algorithm randomness (obliviousness): a
  // StaticCrash fails its set here; a ScheduledCrash only commits to its
  // victims and fires later on the engine's round timeline. Legacy
  // fault_fraction/fault_strategy specs map to StaticCrash and consume the
  // adversary stream exactly as the old choose_failures recipe did.
  const std::unique_ptr<sim::FaultModel> fault = spec.make_fault_model();
  if (fault) {
    Rng adversary(adversary_seed);  // oblivious: independent of the run's seed
    fault->on_run_begin(net, adversary);
  }

  auto source = static_cast<std::uint32_t>(trial_rng.uniform_below(spec.n));
  while (!net.alive(source)) source = (source + 1) % spec.n;

  return algo.run(net, source, spec, fault.get());
}

ScenarioResult TrialRunner::run(const ScenarioSpec& spec) {
  spec.validate();
  (void)require_algorithm(spec.algorithm);  // fail fast, before any trial runs

  ScenarioResult result;
  result.spec = spec;
  result.reports.resize(spec.trials);
  pool_.parallel_for(spec.trials, [&](std::size_t t) {
    result.reports[t] = run_trial(spec, static_cast<unsigned>(t));
  });
  // Trial-order merge: the aggregate never sees completion order, so it is
  // bit-identical for every worker count.
  for (const core::BroadcastReport& r : result.reports) result.aggregate.add(r);
  return result;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return TrialRunner(spec.threads).run(spec);
}

}  // namespace gossip::runner
