#include "runner/json_report.hpp"

#include "analysis/experiment.hpp"

namespace gossip::runner {

namespace {

void write_metric(JsonWriter& w, std::string_view name,
                  const analysis::MetricStat& m) {
  constexpr double kQs[] = {0.50, 0.90, 0.99};
  const std::vector<double> qs = m.quantiles(kQs);  // one sort for all three
  w.key(name).begin_object();
  w.kv("count", std::uint64_t{m.count()});
  w.kv("mean", m.mean());
  w.kv("stddev", m.stddev());
  w.kv("min", m.min());
  w.kv("max", m.max());
  w.kv("p50", qs[0]);
  w.kv("p90", qs[1]);
  w.kv("p99", qs[2]);
  w.end_object();
}

}  // namespace

void write_scenario_members(JsonWriter& w, const ScenarioResult& result) {
  const ScenarioSpec& s = result.spec;
  w.key("scenario").begin_object();
  w.kv("name", s.name);
  w.kv("algorithm", s.algorithm);
  w.kv("n", s.n);
  w.kv("trials", std::uint64_t{s.trials});
  w.kv("seed", s.seed);
  w.kv("engine_threads", std::uint64_t{s.engine_threads});
  // shard_size is identity when sharded (it re-keys the shard draw
  // streams); delivery_buckets is deliberately NOT echoed - see
  // runner/scenario.hpp.
  w.kv("shard_size", std::uint64_t{s.shard_size});
  w.kv("rumor_bits", s.rumor_bits);
  w.kv("delta", s.delta);
  w.kv("max_rounds", std::uint64_t{s.max_rounds});
  w.kv("fault_fraction", s.fault_fraction);
  w.kv("fault_strategy", strategy_key(s.fault_strategy));
  w.kv("fault_count", s.fault_count());
  w.kv("fault_model", s.fault_model_name());
  w.kv("crash_round", std::int64_t{s.crash_round});
  w.kv("loss_prob", s.loss_prob);
  w.kv("join_rate", s.join_rate);
  w.kv("crash_rate", s.crash_rate);
  w.kv("churn_schedule", s.churn_schedule.empty() ? "none" : s.churn_schedule);
  w.kv("loss_schedule", s.loss_schedule.empty() ? "none" : s.loss_schedule);
  w.kv("byzantine_fraction", s.byzantine_fraction);
  w.kv("recovery", s.recovery);
  w.kv("retry_budget", std::uint64_t{s.retry_budget != 0 ? s.retry_budget : 3});
  w.kv("partition_round", std::int64_t{s.partition_round});
  w.kv("heal_round", std::int64_t{s.heal_round});
  w.kv("partition_parts",
       std::uint64_t{s.partition_parts != 0 ? s.partition_parts : 2});
  w.kv("max_nodes", s.max_nodes());
  w.end_object();

  const analysis::ReportAggregate& a = result.aggregate;
  w.kv("runs", a.runs);
  w.kv("failures", a.failures);
  w.key("metrics").begin_object();
  write_metric(w, "rounds", a.rounds);
  write_metric(w, "payload_messages_per_node", a.payload_per_node);
  write_metric(w, "connections_per_node", a.connections_per_node);
  write_metric(w, "bits_per_node", a.bits_per_node);
  write_metric(w, "total_bits", a.total_bits);
  write_metric(w, "max_delta", a.max_delta);
  write_metric(w, "informed_fraction", a.informed_fraction);
  write_metric(w, "uninformed", a.uninformed);
  write_metric(w, "estimate_error", a.estimate_error);
  write_metric(w, "spread_depth", a.spread_depth);
  write_metric(w, "direct_share", a.direct_share);
  w.end_object();
  // Wall-clock-class (process-wide, machine-dependent): strip_timing.py
  // removes it before determinism diffs.
  w.kv("peak_rss_bytes", result.peak_rss_bytes);
}

void write_scenario_json(std::ostream& os, const ScenarioResult& result) {
  JsonWriter w(os);
  w.begin_object();
  write_scenario_members(w, result);
  w.end_object();
}

void write_scenarios_json(std::ostream& os, std::string_view bench_name,
                          const std::vector<ScenarioResult>& results) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("bench", bench_name);
  w.key("scenarios").begin_array();
  for (const ScenarioResult& r : results) {
    w.begin_object();
    write_scenario_members(w, r);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace gossip::runner
