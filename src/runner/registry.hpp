// Algorithm registry: string id -> runnable broadcast algorithm.
//
// One table covers the paper's broadcast cores (core::broadcast), the
// cluster-based Avin-Elsasser baseline and the uniform / RRS baselines, so
// the scenario runner (and any bench built on it) selects algorithms by
// data. Every entry runs on a caller-provided Network - fault-model setup
// and seeding are the TrialRunner's job; the entry installs the (nullable)
// FaultModel on its engine's round timeline - and honours the spec's
// delta / max_rounds / engine_threads knobs where the underlying algorithm
// exposes them.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "core/report.hpp"
#include "obs/recorder.hpp"
#include "runner/scenario.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::runner {

struct AlgorithmEntry {
  const char* id;       ///< scenario-file / CLI name (e.g. "cluster2")
  const char* display;  ///< table/report label (e.g. "Cluster2")
  const char* summary;  ///< one-line description for --list
  /// Runs the algorithm. `fault` (nullable, non-owning, on_run_begin already
  /// invoked by the caller) is installed on the run's engine. `telemetry`
  /// (nullable, non-owning) attaches the observability layer; entries whose
  /// algorithm exposes an informed count also install a round probe.
  std::function<core::BroadcastReport(sim::Network&, std::uint32_t source,
                                      const ScenarioSpec&, sim::FaultModel* fault,
                                      obs::Telemetry* telemetry)>
      run;
};

/// The full registry, in canonical comparison order (paper algorithms
/// first, then baselines by decreasing sophistication).
[[nodiscard]] const std::vector<AlgorithmEntry>& algorithms();

/// Looks up an entry by id; nullptr when unknown.
[[nodiscard]] const AlgorithmEntry* find_algorithm(std::string_view id);

/// find_algorithm that throws ScenarioError listing the known ids.
[[nodiscard]] const AlgorithmEntry& require_algorithm(std::string_view id);

}  // namespace gossip::runner
