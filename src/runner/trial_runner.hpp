// Cross-trial parallel execution of a ScenarioSpec.
//
// A scenario's trials are independent by construction - trial t builds its
// own Network (and Engine) from a seed derived as Rng(spec.seed).fork(t), so
// no state is shared between trials and WHICH worker runs a trial can never
// influence WHAT the trial computes. TrialRunner fans the trials across a
// parallel::ThreadPool and then merges the per-trial reports IN TRIAL ORDER,
// which makes the aggregate (every moment and every quantile) bit-identical
// for every worker count >= 1. That is the determinism contract CI enforces
// by diffing --threads=1 against --threads=4 JSON reports.
//
// Per-trial derivation (all from the trial's forked stream, so independent
// of both the worker count and the other trials):
//   trial_rng   = Rng(spec.seed).fork(t)
//   network seed, adversary seed, source draw <- successive trial_rng draws
// The trial's sim::FaultModel (spec.make_fault_model()) gets its
// on_run_begin BEFORE the algorithm runs, with an adversary stream from its
// own seed (obliviousness); scheduled crashes then fire on the engine's
// round timeline, and loss decisions come from (network seed, round,
// initiator) counter streams - so the whole fault trajectory is independent
// of the worker count AND of the per-trial engine thread count. The source
// is a uniform draw advanced to the next alive node.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/report.hpp"
#include "obs/recorder.hpp"
#include "runner/scenario.hpp"
#include "sim/parallel/thread_pool.hpp"

namespace gossip::runner {

/// Everything a scenario execution produces: the per-trial reports (in trial
/// order) and their aggregate. When the spec configures telemetry output
/// (spec.wants_telemetry()), `telemetry` holds one recorder per trial, in
/// trial order - each filled by exactly one trial, so collection inherits
/// the worker-count invariance of the reports (wall-clock phase_ns fields
/// excepted; exporters can strip them, see obs/export.hpp).
struct ScenarioResult {
  ScenarioSpec spec;
  std::vector<core::BroadcastReport> reports;  ///< indexed by trial
  analysis::ReportAggregate aggregate;         ///< merged in trial order
  /// Per-trial telemetry (empty unless collection was armed). shared_ptr so
  /// results are copyable; each trial's handle is exclusively owned here.
  std::vector<std::shared_ptr<obs::Telemetry>> telemetry;
  /// Peak RSS of the whole process after the trials ran (common/rss.hpp).
  /// Wall-clock-class: echoed in reports but stripped before CI diffs.
  std::uint64_t peak_rss_bytes = 0;

  /// Borrowed per-trial views in trial order, the shape the obs exporters
  /// take. Empty when telemetry was not collected.
  [[nodiscard]] std::vector<const obs::Telemetry*> telemetry_views() const;
};

class TrialRunner {
 public:
  /// `workers` counts the caller (ThreadPool convention); 0 is normalised
  /// to 1 (serial execution on the caller).
  explicit TrialRunner(unsigned workers);

  [[nodiscard]] unsigned workers() const noexcept { return pool_.size(); }

  /// Runs every trial of `spec` across the pool. Throws ScenarioError on an
  /// invalid spec or unknown algorithm id; exceptions thrown by a trial
  /// propagate (first trial index deterministically, see ThreadPool).
  /// spec.threads is ignored here - the pool size was fixed at construction
  /// (run_scenario() below is the one-shot convenience that honours it).
  [[nodiscard]] ScenarioResult run(const ScenarioSpec& spec);

  /// Runs ONE trial of `spec` serially. Exposed so tests can pin the
  /// trial <-> report mapping independently of the pool. `telemetry`
  /// (nullable) is attached for the trial's whole lifetime - its event
  /// observer is installed on the network BEFORE the fault model's
  /// on_run_begin, so pre-run crashes land at obs::kPreRunRound.
  [[nodiscard]] static core::BroadcastReport run_trial(const ScenarioSpec& spec,
                                                       unsigned trial,
                                                       obs::Telemetry* telemetry = nullptr);

 private:
  sim::parallel::ThreadPool pool_;
};

/// One-shot convenience: builds a TrialRunner with spec.threads workers.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

}  // namespace gossip::runner
