// Declarative experiment specification for the scenario runner.
//
// A ScenarioSpec describes ONE experiment - which algorithm (by registry id,
// see runner/registry.hpp), network size, fault model, delta bound, trial
// count and seeding - as plain data. Specs are built from `key = value`
// scenario files and/or `--key=value` CLI flags (flags override the file),
// so new workloads are data, not new binaries:
//
//   # scenarios/smoke.scn
//   algorithm = push_pull
//   n         = 512
//   trials    = 6
//   seed      = 42
//   fault_fraction = 0.05
//   fault_strategy = random
//
// The `threads` key controls CROSS-TRIAL parallelism (TrialRunner workers)
// and is deliberately excluded from the experiment's identity: the runner's
// determinism contract is that aggregate output is bit-identical for every
// worker count >= 1, so `threads` never appears in the JSON report.
// `engine_threads` opts each trial's engine into sharded phase-1 execution
// (a different trajectory universe - see sim/engine.hpp); it IS part of the
// experiment identity and is echoed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/fault.hpp"

namespace gossip::runner {

/// Thrown on malformed scenario input (unknown key, bad value, bad file).
/// gossip_run turns this into usage + exit(2); tests assert on it.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ScenarioSpec {
  std::string name = "scenario";   ///< label echoed in reports
  std::string algorithm = "cluster2";  ///< registry id (runner/registry.hpp)
  std::uint32_t n = 1024;          ///< network size
  unsigned trials = 5;             ///< independent seeded runs
  std::uint64_t seed = 1;          ///< base seed; trial t runs off Rng(seed).fork(t)
  unsigned threads = 1;            ///< TrialRunner workers (not part of identity)
  unsigned engine_threads = 0;     ///< sharded phase-1 threads per trial (0 = serial)
  std::uint32_t rumor_bits = 256;  ///< payload size b
  std::uint64_t delta = 1024;      ///< communication bound (cluster3_push_pull)
  unsigned max_rounds = 0;         ///< round-schedule cap for uniform/rrs (0 = auto)
  double fault_fraction = 0.0;     ///< F/n, oblivious failures per trial
  sim::FaultStrategy fault_strategy = sim::FaultStrategy::kRandomSubset;

  /// Number of failed nodes per trial (round(fault_fraction * n)).
  [[nodiscard]] std::uint32_t fault_count() const noexcept;

  /// Applies one `key = value` assignment. Throws ScenarioError on an
  /// unknown key or a value that does not parse / violates a bound.
  void apply(std::string_view key, std::string_view value);

  /// Validates cross-field constraints (n >= 2, trials >= 1, ...).
  /// Called by TrialRunner::run; throws ScenarioError.
  void validate() const;

  /// Parses a scenario file: `key = value` lines, `#` comments, blank lines.
  static ScenarioSpec from_file(const std::string& path);

  /// Applies `--key=value` CLI flags on top of this spec. Non-spec flags
  /// (anything not matching a spec key) throw ScenarioError.
  void apply_cli(const std::vector<std::string>& flags);

  /// The keys apply() understands, for usage/help output.
  [[nodiscard]] static const std::vector<std::string>& keys();
};

/// Canonical name for a fault strategy as accepted by apply("fault_strategy").
[[nodiscard]] const char* strategy_key(sim::FaultStrategy s) noexcept;

/// Strict non-negative integer parsing, shared by the scenario keys and the
/// bench harness flags so every CLI accepts the same syntax: plain digits
/// (exact over the full uint64 range) or decimal/scientific notation
/// ("1e6"; exact-integer up to 2^53). Throws ScenarioError on malformed
/// input or a value outside [min, max]; `key` names the flag in the error.
[[nodiscard]] std::uint64_t parse_count(std::string_view key, std::string_view value,
                                        std::uint64_t min, std::uint64_t max);

}  // namespace gossip::runner
