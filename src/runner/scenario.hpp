// Declarative experiment specification for the scenario runner.
//
// A ScenarioSpec describes ONE experiment - which algorithm (by registry id,
// see runner/registry.hpp), network size, fault model, delta bound, trial
// count and seeding - as plain data. Specs are built from `key = value`
// scenario files and/or `--key=value` CLI flags (flags override the file),
// so new workloads are data, not new binaries:
//
//   # scenarios/smoke.scn
//   algorithm = push_pull
//   n         = 512
//   trials    = 6
//   seed      = 42
//   fault_fraction = 0.05
//   fault_strategy = random
//   crash_round    = 4     # crash the set mid-run instead of pre-run
//   loss_prob      = 0.2   # drop each contact's payload w.p. 0.2
//
// Fault keys build a sim::FaultModel per trial (make_fault_model):
//   fault_fraction + fault_strategy  choose the oblivious crash set;
//   crash_round (default: pre-run)   defers the crash to the start of that
//                                    engine round (ScheduledCrash) - the
//                                    source may die mid-broadcast;
//   loss_prob                        arms a per-contact LossyChannel;
//   fault_model                      auto (compose from the keys above,
//                                    the default) | none (off-switch) | an
//                                    explicit kind that validates the shape.
// Legacy scenarios (fault_fraction/fault_strategy only) map to StaticCrash
// and reproduce the PR 3 trial trajectories bit-for-bit.
//
// Churn keys (PR 6) compose additional fault parts under fault_model = auto
// (the explicit legacy kinds reject them; none silences them):
//   join_rate / crash_rate     Poisson mean joins/crashes per round
//                              (sim::ChurnSchedule); joins draw fresh IDs,
//                              crashes pick uniformly among the alive;
//   churn_schedule             "round:joins:crashes,..." scripts exact churn
//                              events instead of Poisson arrivals;
//   loss_schedule              round-varying loss curve, one of
//                              "burst:p:from:until" | "ramp:p0:p1:rounds" |
//                              "periodic:p:period:duty" (sim::LossSchedule,
//                              composes with a flat loss_prob);
//   byzantine_fraction         fraction of nodes answering pulls with
//                              poisoned ID lists (sim::ByzantineResponder).
// Joins need headroom: the runner pre-reserves max_nodes() slots per trial
// network, derived deterministically from the churn keys; Poisson joins
// beyond the reservation are silently dropped (the schedule caps there).
//
// The `threads` key controls CROSS-TRIAL parallelism (TrialRunner workers)
// and is deliberately excluded from the experiment's identity: the runner's
// determinism contract is that aggregate output is bit-identical for every
// worker count >= 1, so `threads` never appears in the JSON report.
// `engine_threads` opts each trial's engine into sharded phase-1 execution
// (a different trajectory universe - see sim/engine.hpp); it IS part of the
// experiment identity and is echoed.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/fault.hpp"

namespace gossip::runner {

/// Thrown on malformed scenario input (unknown key, bad value, bad file).
/// gossip_run turns this into usage + exit(2); tests assert on it.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How the spec's fault keys combine into a sim::FaultModel. kAuto composes
/// whatever is configured; the explicit kinds additionally validate that
/// exactly the matching keys are set (validate() throws otherwise).
enum class FaultModelKind {
  kAuto,            ///< derive from fault_fraction / crash_round / loss_prob
  kNone,            ///< off-switch: run fault-free regardless of other keys
  kStaticCrash,     ///< pre-run oblivious crash set (the Section 8 adversary)
  kScheduledCrash,  ///< crash the set at the start of round `crash_round`
  kLossy,           ///< per-contact payload loss only
  kComposite,       ///< crash component + lossy channel together
};

/// Canonical key for a kind as accepted by apply("fault_model").
[[nodiscard]] const char* fault_model_key(FaultModelKind kind) noexcept;

struct ScenarioSpec {
  std::string name = "scenario";   ///< label echoed in reports
  std::string algorithm = "cluster2";  ///< registry id (runner/registry.hpp)
  std::uint32_t n = 1024;          ///< network size
  unsigned trials = 5;             ///< independent seeded runs
  std::uint64_t seed = 1;          ///< base seed; trial t runs off Rng(seed).fork(t)
  unsigned threads = 1;            ///< TrialRunner workers (not part of identity)
  unsigned engine_threads = 0;     ///< sharded phase-1 threads per trial (0 = serial)
  /// Initiators per phase-1 shard when engine_threads >= 1 (0 = default
  /// width). Part of the experiment identity when sharded (it re-keys the
  /// shard draw streams) and echoed in the report.
  std::uint32_t shard_size = 0;
  /// Receiver buckets for the engine's delivery phases (0 = engine auto,
  /// 1 = flat, <= sim::kMaxDeliveryBuckets). Like `threads`, deliberately
  /// NOT part of the experiment identity and never echoed in the JSON
  /// report: delivery content is bucket-invariant, and CI diffs bucketed
  /// vs. flat runs byte-for-byte to enforce exactly that.
  std::uint32_t delivery_buckets = 0;
  std::uint32_t rumor_bits = 256;  ///< payload size b
  std::uint64_t delta = 1024;      ///< communication bound (cluster3_push_pull)
  unsigned max_rounds = 0;         ///< round-schedule cap for uniform/rrs (0 = auto)
  double fault_fraction = 0.0;     ///< F/n, oblivious failures per trial
  sim::FaultStrategy fault_strategy = sim::FaultStrategy::kRandomSubset;
  /// Engine round (0-based) at which the crash set fires; kCrashPreRun (the
  /// default) keeps the legacy pre-run crash (applied before the source is
  /// chosen, so the source never starts dead). apply() accepts "pre_run" or
  /// "-1" to restore the default over a scenario file's value.
  static constexpr std::int64_t kCrashPreRun = -1;
  std::int64_t crash_round = kCrashPreRun;
  double loss_prob = 0.0;          ///< per-contact payload-drop probability
  FaultModelKind fault_model = FaultModelKind::kAuto;
  // Churn keys (see the header comment). Empty strings = feature off.
  double join_rate = 0.0;          ///< Poisson mean joins per round
  double crash_rate = 0.0;         ///< Poisson mean mid-run crashes per round
  std::string churn_schedule;      ///< "round:joins:crashes,..." script
  std::string loss_schedule;       ///< burst:... | ramp:... | periodic:...
  double byzantine_fraction = 0.0; ///< poisoned pull responders, F/n
  // Recovery keys (PR 10). `recovery` arms the self-healing supervisor
  // (core/recovery.hpp) on the cluster algorithms: when the primary run ends
  // with uninformed alive nodes it re-elects suspected-dead leaders, retries
  // the spread under a progress watchdog with bounded backoff, and degrades
  // to plain PUSH-PULL once `retry_budget` epochs are spent. The partition
  // keys add a sim::PartitionFault under fault_model = auto: the alive set
  // splits into `partition_parts` components for rounds
  // [partition_round, heal_round) and cross-component contacts lose their
  // payload (the connection is still metered).
  bool recovery = false;           ///< arm the recovery supervisor
  unsigned retry_budget = 0;       ///< supervisor epochs (0 = default 3)
  std::int64_t partition_round = -1;  ///< partition onset round (-1 = off)
  std::int64_t heal_round = -1;    ///< first healed round (-1 = off)
  unsigned partition_parts = 0;    ///< partition components (0 = default 2)
  // Observability keys (src/obs/): output paths arm per-trial telemetry
  // collection; gossip_run writes the files after the run. Like `threads`,
  // these describe HOW a run is observed, not WHAT it computes - they are
  // not part of the experiment identity and never appear in the JSON
  // report. Empty string = off.
  std::string timeseries;          ///< per-round JSONL time series path
  std::string trace;               ///< Chrome trace_event JSON path
  std::string events;              ///< structured event JSONL path
  std::string provenance;          ///< per-node first-inform JSONL path
  bool progress = false;           ///< rate-limited stderr heartbeat
  /// Per-round, per-kind bottom-k reservoir size of the event log
  /// (obs/sample.hpp). Unlike the paths above this IS part of the
  /// experiment's observable output (a different cap keeps a different
  /// k-subset), but it never alters trajectories. Must be >= 1.
  unsigned event_sample_cap = 8;

  /// Any telemetry output configured (timeseries / trace / events /
  /// provenance)?
  [[nodiscard]] bool wants_telemetry() const noexcept;

  /// Number of failed nodes per trial (round(fault_fraction * n)).
  [[nodiscard]] std::uint32_t fault_count() const noexcept;

  /// Any churn part configured (joins or mid-run Poisson/scripted crashes)?
  [[nodiscard]] bool has_churn() const noexcept;

  /// Per-trial network capacity: n plus deterministic join headroom derived
  /// from the churn keys (n when churn is off, so join-free scenarios are
  /// unchanged). Poisson joins beyond this pre-reservation are dropped.
  [[nodiscard]] std::uint32_t max_nodes() const;

  /// Builds the trial's fault model from the fault keys (see the header
  /// comment), or null when the spec is effectively fault-free. The caller
  /// owns the model and invokes on_run_begin with the trial's adversary
  /// stream (TrialRunner does both).
  [[nodiscard]] std::unique_ptr<sim::FaultModel> make_fault_model() const;

  /// Resolved fault composition for reports: "none", "static_crash",
  /// "scheduled_crash", "lossy", "static_crash+lossy", ...
  [[nodiscard]] std::string fault_model_name() const;

  /// Applies one `key = value` assignment. Throws ScenarioError on an
  /// unknown key or a value that does not parse / violates a bound.
  void apply(std::string_view key, std::string_view value);

  /// Validates cross-field constraints (n >= 2, trials >= 1, ...).
  /// Called by TrialRunner::run; throws ScenarioError.
  void validate() const;

  /// Parses a scenario file: `key = value` lines, `#` comments, blank lines.
  static ScenarioSpec from_file(const std::string& path);

  /// Applies `--key=value` CLI flags on top of this spec. Non-spec flags
  /// (anything not matching a spec key) throw ScenarioError.
  void apply_cli(const std::vector<std::string>& flags);

  /// The keys apply() understands, for usage/help output.
  [[nodiscard]] static const std::vector<std::string>& keys();
};

/// Canonical name for a fault strategy as accepted by apply("fault_strategy").
[[nodiscard]] const char* strategy_key(sim::FaultStrategy s) noexcept;

/// Strict non-negative integer parsing, shared by the scenario keys and the
/// bench harness flags so every CLI accepts the same syntax: plain digits
/// (exact over the full uint64 range) or decimal/scientific notation
/// ("1e6"; exact-integer up to 2^53). Throws ScenarioError on malformed
/// input or a value outside [min, max]; `key` names the flag in the error.
[[nodiscard]] std::uint64_t parse_count(std::string_view key, std::string_view value,
                                        std::uint64_t min, std::uint64_t max);

/// Strict probability/fraction parsing shared with the bench flags: a finite
/// real in [0, 1). Throws ScenarioError otherwise; `key` names the flag.
[[nodiscard]] double parse_fraction(std::string_view key, std::string_view value);

}  // namespace gossip::runner
