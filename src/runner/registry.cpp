#include "runner/registry.hpp"

#include <sstream>

#include "baselines/avin_elsasser.hpp"
#include "baselines/rrs.hpp"
#include "baselines/uniform.hpp"
#include "core/broadcast.hpp"
#include "membership/membership.hpp"
#include "sim/engine.hpp"

namespace gossip::runner {

namespace {

core::BroadcastReport run_core(sim::Network& net, std::uint32_t source,
                               const ScenarioSpec& spec, sim::FaultModel* fault,
                               obs::Telemetry* telemetry, core::Algorithm which) {
  core::BroadcastOptions o;
  o.algorithm = which;
  o.source = source;
  o.delta = spec.delta;
  o.threads = spec.engine_threads;
  o.shard_size = spec.shard_size;
  o.delivery_buckets = spec.delivery_buckets;
  o.fault_model = fault;
  o.telemetry = telemetry;
  o.recovery.enabled = spec.recovery;
  if (spec.retry_budget != 0) o.recovery.retry_budget = spec.retry_budget;
  return core::broadcast(net, o);
}

baselines::UniformOptions uniform_opts(const ScenarioSpec& spec, sim::FaultModel* fault,
                                       obs::Telemetry* telemetry) {
  baselines::UniformOptions o;
  o.max_rounds = spec.max_rounds;
  o.threads = spec.engine_threads;
  o.shard_size = spec.shard_size;
  o.delivery_buckets = spec.delivery_buckets;
  o.fault = fault;
  o.telemetry = telemetry;
  return o;
}

}  // namespace

const std::vector<AlgorithmEntry>& algorithms() {
  static const std::vector<AlgorithmEntry> kRegistry = {
      {"cluster1", "Cluster1",
       "Algorithm 1: round-optimal O(log log n) broadcast",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         return run_core(net, source, spec, fault, telemetry,
                         core::Algorithm::kCluster1);
       }},
      {"cluster2", "Cluster2",
       "Algorithm 2: round-, message- and bit-optimal broadcast",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         return run_core(net, source, spec, fault, telemetry,
                         core::Algorithm::kCluster2);
       }},
      {"cluster3_push_pull", "C3+CPP",
       "Algorithms 4+3: Delta-bounded broadcast (uses the spec's delta)",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         return run_core(net, source, spec, fault, telemetry,
                         core::Algorithm::kCluster3PushPull);
       }},
      {"avin_elsasser", "AvinElsasser",
       "DISC'13 baseline: O(sqrt(log n)) rounds via geometric merge phases",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         sim::Engine engine(net);
         engine.set_fault_model(fault);
         cluster::DriverOptions driver_opts;
         driver_opts.threads = spec.engine_threads;
         driver_opts.shard_size = spec.shard_size;
         driver_opts.delivery_buckets = spec.delivery_buckets;
         driver_opts.telemetry = telemetry;
         baselines::AvinElsasser algo(engine, baselines::AvinElsasserOptions(),
                                      driver_opts);
         return algo.run(source);
       }},
      {"rrs", "RRS[10]",
       "Karp et al. min-counter push-pull: O(log n) rounds, O(log log n) "
       "transmissions per node",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         baselines::RrsOptions o;
         o.max_rounds = spec.max_rounds;
         o.fault = fault;
         o.delivery_buckets = spec.delivery_buckets;
         o.telemetry = telemetry;
         return baselines::run_rrs(net, source, o);
       }},
      {"push_pull", "PUSH-PULL",
       "uniform baseline: informed push, uninformed pull",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         return baselines::run_push_pull(net, source,
                                         uniform_opts(spec, fault, telemetry));
       }},
      {"push", "PUSH", "uniform baseline: every informed node pushes",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         return baselines::run_push(net, source,
                                    uniform_opts(spec, fault, telemetry));
       }},
      {"pull", "PULL", "uniform baseline: every uninformed node pulls",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         return baselines::run_pull(net, source,
                                    uniform_opts(spec, fault, telemetry));
       }},
      {"membership", "Membership",
       "heartbeat/suspicion service over exchange gossip; reports estimate_n "
       "accuracy (see membership/membership.hpp)",
       [](sim::Network& net, std::uint32_t source, const ScenarioSpec& spec,
          sim::FaultModel* fault, obs::Telemetry* telemetry) {
         membership::MembershipOptions o;
         o.rounds = spec.max_rounds;  // 0 = auto horizon
         o.threads = spec.engine_threads;
         o.shard_size = spec.shard_size;
         o.delivery_buckets = spec.delivery_buckets;
         o.fault = fault;
         o.telemetry = telemetry;
         return membership::run_membership(net, source, o);
       }},
  };
  return kRegistry;
}

const AlgorithmEntry* find_algorithm(std::string_view id) {
  for (const AlgorithmEntry& e : algorithms()) {
    if (id == e.id) return &e;
  }
  return nullptr;
}

const AlgorithmEntry& require_algorithm(std::string_view id) {
  if (const AlgorithmEntry* e = find_algorithm(id)) return *e;
  std::ostringstream os;
  os << "unknown algorithm '" << id << "' (known:";
  for (const AlgorithmEntry& e : algorithms()) os << " " << e.id;
  os << ")";
  throw ScenarioError(os.str());
}

}  // namespace gossip::runner
