// Minimal streaming JSON writer for the BENCH_*.json / gossip_run reports.
//
// Every bench used to hand-roll its `os << "{\n ..."` emitter; this is the
// one shared implementation. Output is pretty-printed (2-space indent, keys
// in insertion order) so reports diff cleanly - the scenario runner's
// determinism CI check literally diffs two of these files. Doubles are
// printed with max_digits10 precision ("%.17g"), so bit-identical values
// always serialize to identical text.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace gossip::runner {

class JsonWriter {
 public:
  /// `compact` drops all pretty-printing whitespace (no newlines or indent
  /// inside containers). A top-level value is still newline-terminated, so
  /// one compact JsonWriter per record yields valid JSONL - that is how the
  /// obs/ exporters emit their time-series and event streams.
  explicit JsonWriter(std::ostream& os, bool compact = false)
      : os_(os), compact_(compact) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Writes the member name; must be followed by a value or begin_*().
  JsonWriter& key(std::string_view name) {
    separate();
    quote(name);
    os_ << (compact_ ? ":" : ": ");
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    separate();
    if (!std::isfinite(v)) {
      os_ << "null";  // bare nan/inf tokens are not valid JSON
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }

  template <class T>
  JsonWriter& kv(std::string_view name, const T& v) {
    return key(name).value(v);
  }

 private:
  JsonWriter& open(char c) {
    separate();
    os_ << c;
    had_member_.push_back(false);
    return *this;
  }

  JsonWriter& close(char c) {
    const bool empty = !had_member_.back();
    had_member_.pop_back();
    if (!empty && !compact_) {
      os_ << '\n';
      indent();
    }
    os_ << c;
    if (had_member_.empty()) os_ << '\n';  // top-level value: newline-terminate
    return *this;
  }

  /// Emits the comma/newline/indent that precedes a new member or element.
  void separate() {
    if (pending_key_) {  // value completing a "key": pair - no separator
      pending_key_ = false;
      return;
    }
    if (had_member_.empty()) return;  // top-level value
    if (had_member_.back()) os_ << ',';
    had_member_.back() = true;
    if (compact_) return;
    os_ << '\n';
    indent();
  }

  void indent() {
    for (std::size_t i = 0; i < had_member_.size(); ++i) os_ << "  ";
  }

  void quote(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  bool compact_ = false;
  std::vector<bool> had_member_;  ///< per open container: wrote a member yet?
  bool pending_key_ = false;
};

}  // namespace gossip::runner
