// The one JSON report schema for scenario executions (gossip_run and the
// benches built on TrialRunner all emit this, via the shared JsonWriter).
//
// Per scenario:
//   {
//     "scenario": { name, algorithm, n, trials, seed, engine_threads,
//                   shard_size, rumor_bits, delta, max_rounds,
//                   fault_fraction, fault_strategy, fault_count,
//                   fault_model (resolved composition, e.g.
//                   "scheduled_crash+lossy"), crash_round (-1 = pre-run),
//                   loss_prob },
//     "runs": N, "failures": M,
//     "metrics": { "<metric>": { count, mean, stddev, min, max,
//                                p50, p90, p99 }, ... },
//     "peak_rss_bytes": B
//   }
//
// The metrics include the dispersion-tree pair derived from the provenance
// tracer (obs/provenance.hpp): "spread_depth" (max informer-chain depth)
// and "direct_share" (direct-addressed fraction of first-informs).
//
// The spec's `threads` (TrialRunner worker count) and `delivery_buckets`
// (receiver-bucketed delivery decomposition) are deliberately NOT echoed:
// the runner's contract is that this report is bit-identical for every
// worker count AND every bucket count, and CI enforces both by diffing
// runs. "peak_rss_bytes" is the one wall-clock-class exception - it is
// process-wide and machine-dependent, so tools/strip_timing.py removes it
// (together with every *_ns field) before those diffs.
#pragma once

#include <ostream>
#include <string_view>
#include <vector>

#include "runner/json_writer.hpp"
#include "runner/trial_runner.hpp"

namespace gossip::runner {

/// Writes one scenario result as a standalone JSON document.
void write_scenario_json(std::ostream& os, const ScenarioResult& result);

/// Writes a bench-style document: {"bench": <name>, "scenarios": [...]}.
void write_scenarios_json(std::ostream& os, std::string_view bench_name,
                          const std::vector<ScenarioResult>& results);

/// Emits the scenario + runs/failures + metrics members of one result into
/// an already-open JSON object (for callers composing larger documents).
void write_scenario_members(JsonWriter& w, const ScenarioResult& result);

}  // namespace gossip::runner
