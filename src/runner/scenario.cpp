#include "runner/scenario.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "sim/push_queue.hpp"  // kMaxDeliveryBuckets

namespace gossip::runner {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void bad_value(std::string_view key, std::string_view value,
                            const char* want) {
  std::ostringstream os;
  os << "bad value for '" << key << "': '" << value << "' (want " << want << ")";
  throw ScenarioError(os.str());
}

sim::FaultStrategy parse_strategy(std::string_view key, std::string_view value) {
  if (value == "random" || value == "random_subset") {
    return sim::FaultStrategy::kRandomSubset;
  }
  if (value == "smallest" || value == "smallest_ids") {
    return sim::FaultStrategy::kSmallestIds;
  }
  if (value == "stride" || value == "index_stride") {
    return sim::FaultStrategy::kIndexStride;
  }
  bad_value(key, value, "one of: random | smallest | stride");
}

/// Finite non-negative real (a per-round arrival rate; values >= 1 are
/// legitimate, e.g. "4 joins per round on average").
double parse_rate(std::string_view key, std::string_view value) {
  double d = 0.0;
  try {
    std::size_t used = 0;
    const std::string s(value);
    d = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
  } catch (const std::exception&) {
    bad_value(key, value, "a non-negative real");
  }
  if (!std::isfinite(d) || d < 0.0 || d > 1e6) {
    bad_value(key, value, "a non-negative real (at most 1e6)");
  }
  return d;
}

/// Splits `s` on `sep` into trimmed non-owning pieces (empty pieces kept).
std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const auto pos = s.find(sep);
    out.push_back(trim(s.substr(0, pos)));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

/// "round:joins:crashes,..." -> events. Throws ScenarioError on shape
/// errors; shared by apply() (fail early) and make_fault_model().
std::vector<sim::ChurnEvent> parse_churn_script(std::string_view key,
                                                std::string_view value) {
  std::vector<sim::ChurnEvent> events;
  for (const std::string_view entry : split(value, ',')) {
    const std::vector<std::string_view> f = split(entry, ':');
    if (f.size() != 3) {
      bad_value(key, value, "a comma list of round:joins:crashes triples");
    }
    sim::ChurnEvent e;
    e.round = parse_count(key, f[0], 0, 1ull << 40);
    e.joins = static_cast<std::uint32_t>(parse_count(key, f[1], 0, 1u << 20));
    e.crashes = static_cast<std::uint32_t>(parse_count(key, f[2], 0, 1u << 20));
    if (e.joins == 0 && e.crashes == 0) {
      bad_value(key, value, "each triple to join or crash at least one node");
    }
    events.push_back(e);
  }
  if (events.empty()) bad_value(key, value, "at least one round:joins:crashes triple");
  return events;
}

/// "burst:p:from:until" | "ramp:p0:p1:rounds" | "periodic:p:period:duty".
/// The LossSchedule factories enforce the numeric constraints; their
/// ContractViolation is rethrown as a ScenarioError naming the key.
sim::LossSchedule parse_loss_schedule(std::string_view key, std::string_view value) {
  const std::vector<std::string_view> f = split(value, ':');
  try {
    if (f.size() == 4 && f[0] == "burst") {
      return sim::LossSchedule::burst(parse_fraction(key, f[1]),
                                      parse_count(key, f[2], 0, 1ull << 40),
                                      parse_count(key, f[3], 0, 1ull << 40));
    }
    if (f.size() == 4 && f[0] == "ramp") {
      return sim::LossSchedule::ramp(parse_fraction(key, f[1]),
                                     parse_fraction(key, f[2]),
                                     parse_count(key, f[3], 0, 1ull << 40));
    }
    if (f.size() == 4 && f[0] == "periodic") {
      return sim::LossSchedule::periodic(parse_fraction(key, f[1]),
                                         parse_count(key, f[2], 1, 1ull << 40),
                                         parse_count(key, f[3], 1, 1ull << 40));
    }
  } catch (const gossip::ContractViolation& e) {
    std::ostringstream os;
    os << "bad value for '" << key << "': " << e.what();
    throw ScenarioError(os.str());
  }
  bad_value(key, value,
            "burst:p:from:until | ramp:p0:p1:rounds | periodic:p:period:duty");
}

FaultModelKind parse_fault_model(std::string_view key, std::string_view value) {
  if (value == "auto") return FaultModelKind::kAuto;
  if (value == "none") return FaultModelKind::kNone;
  if (value == "static_crash" || value == "static") return FaultModelKind::kStaticCrash;
  if (value == "scheduled_crash" || value == "scheduled") {
    return FaultModelKind::kScheduledCrash;
  }
  if (value == "lossy") return FaultModelKind::kLossy;
  if (value == "composite") return FaultModelKind::kComposite;
  bad_value(key, value,
            "one of: auto | none | static_crash | scheduled_crash | lossy | composite");
}

}  // namespace

double parse_fraction(std::string_view key, std::string_view value) {
  double d = 0.0;
  try {
    std::size_t used = 0;
    const std::string s(value);
    d = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
  } catch (const std::exception&) {
    bad_value(key, value, "a real number in [0, 1)");
  }
  // The range comparison alone would let NaN through (all comparisons false).
  if (!std::isfinite(d) || d < 0.0 || d >= 1.0) {
    bad_value(key, value, "a real number in [0, 1)");
  }
  return d;
}

std::uint64_t parse_count(std::string_view key, std::string_view value,
                        std::uint64_t min, std::uint64_t max) {
  std::uint64_t out = 0;
  try {
    std::size_t used = 0;
    const std::string s(value);
    if (s.empty() || s.front() == '-' || s.front() == '+') {
      throw std::invalid_argument(s);
    }
    if (s.find_first_of("eE.") != std::string::npos) {
      // Scientific/decimal notation (n = 1e6). Doubles are exact only up to
      // 2^53, and a value rounding up to exactly 2^64 would pass a
      // <= UINT64_MAX check (the max rounds UP in double) and then hit UB in
      // the cast - so bound by 2^53, plenty for any count written in e-form.
      const double d = std::stod(s, &used);
      if (used != s.size() || d < 0 || d != std::floor(d) ||
          d > 9007199254740992.0 /* 2^53 */) {
        throw std::invalid_argument(s);
      }
      out = static_cast<std::uint64_t>(d);
    } else {
      out = std::stoull(s, &used);  // exact for the full uint64 range
      if (used != s.size()) throw std::invalid_argument(s);
    }
  } catch (const std::exception&) {
    bad_value(key, value, "a non-negative integer");
  }
  if (out < min || out > max) {
    std::ostringstream os;
    os << "an integer in [" << min << ", " << max << "]";
    bad_value(key, value, os.str().c_str());
  }
  return out;
}

const char* strategy_key(sim::FaultStrategy s) noexcept {
  switch (s) {
    case sim::FaultStrategy::kRandomSubset: return "random";
    case sim::FaultStrategy::kSmallestIds: return "smallest";
    case sim::FaultStrategy::kIndexStride: return "stride";
  }
  return "?";
}

const char* fault_model_key(FaultModelKind kind) noexcept {
  switch (kind) {
    case FaultModelKind::kAuto: return "auto";
    case FaultModelKind::kNone: return "none";
    case FaultModelKind::kStaticCrash: return "static_crash";
    case FaultModelKind::kScheduledCrash: return "scheduled_crash";
    case FaultModelKind::kLossy: return "lossy";
    case FaultModelKind::kComposite: return "composite";
  }
  return "?";
}

std::uint32_t ScenarioSpec::fault_count() const noexcept {
  return static_cast<std::uint32_t>(
      std::llround(fault_fraction * static_cast<double>(n)));
}

bool ScenarioSpec::wants_telemetry() const noexcept {
  return !timeseries.empty() || !trace.empty() || !events.empty() ||
         !provenance.empty();
}

bool ScenarioSpec::has_churn() const noexcept {
  return join_rate > 0.0 || crash_rate > 0.0 || !churn_schedule.empty();
}

std::uint32_t ScenarioSpec::max_nodes() const {
  if (!has_churn()) return n;
  std::uint64_t joins = 0;
  if (!churn_schedule.empty()) {
    for (const sim::ChurnEvent& e : parse_churn_script("churn_schedule", churn_schedule)) {
      joins += e.joins;
    }
  } else if (join_rate > 0.0) {
    // Poisson arrivals: reserve twice the expectation over the run horizon
    // plus slack, so capacity exhaustion (joins silently dropped) is a tail
    // event, not the common case. Deterministic in the spec alone.
    const std::uint64_t horizon =
        max_rounds != 0 ? max_rounds : 10ull * ceil_log2(n) + 50;
    joins = static_cast<std::uint64_t>(
                std::ceil(2.0 * join_rate * static_cast<double>(horizon))) +
            16;
  }
  const std::uint64_t cap = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(n) + joins,
      std::numeric_limits<std::uint32_t>::max());
  return static_cast<std::uint32_t>(cap);
}

void ScenarioSpec::apply(std::string_view key, std::string_view value) {
  if (key == "name") {
    name = std::string(value);
  } else if (key == "algorithm") {
    algorithm = std::string(value);
  } else if (key == "n") {
    n = static_cast<std::uint32_t>(
        parse_count(key, value, 2, std::numeric_limits<std::uint32_t>::max()));
  } else if (key == "trials") {
    trials = static_cast<unsigned>(parse_count(key, value, 1, 1u << 20));
  } else if (key == "seed") {
    seed = parse_count(key, value, 0, std::numeric_limits<std::uint64_t>::max());
  } else if (key == "threads") {
    threads = static_cast<unsigned>(parse_count(key, value, 1, 256));
  } else if (key == "engine_threads") {
    engine_threads = static_cast<unsigned>(parse_count(key, value, 0, 256));
  } else if (key == "shard_size") {
    shard_size = static_cast<std::uint32_t>(parse_count(key, value, 0, 1u << 20));
  } else if (key == "delivery_buckets") {
    delivery_buckets = static_cast<std::uint32_t>(
        parse_count(key, value, 0, sim::kMaxDeliveryBuckets));
  } else if (key == "rumor_bits") {
    rumor_bits = static_cast<std::uint32_t>(parse_count(key, value, 1, 1u << 30));
  } else if (key == "delta") {
    delta = parse_count(key, value, 16, std::numeric_limits<std::uint64_t>::max());
  } else if (key == "max_rounds") {
    max_rounds = static_cast<unsigned>(parse_count(key, value, 0, 1u << 30));
  } else if (key == "fault_fraction") {
    fault_fraction = parse_fraction(key, value);
  } else if (key == "fault_strategy") {
    fault_strategy = parse_strategy(key, value);
  } else if (key == "crash_round") {
    // "pre_run" (or -1) restores the default, so a CLI flag can override a
    // scenario file's mid-run crash back to the legacy pre-run one.
    if (value == "pre_run" || value == "-1") {
      crash_round = kCrashPreRun;
    } else {
      crash_round = static_cast<std::int64_t>(parse_count(key, value, 0, 1u << 30));
    }
  } else if (key == "loss_prob") {
    loss_prob = parse_fraction(key, value);
  } else if (key == "fault_model") {
    fault_model = parse_fault_model(key, value);
  } else if (key == "join_rate") {
    join_rate = parse_rate(key, value);
  } else if (key == "crash_rate") {
    crash_rate = parse_rate(key, value);
  } else if (key == "churn_schedule") {
    if (value == "none" || value.empty()) {
      churn_schedule.clear();
    } else {
      (void)parse_churn_script(key, value);  // fail at parse time, not run time
      churn_schedule = std::string(value);
    }
  } else if (key == "loss_schedule") {
    if (value == "none" || value.empty()) {
      loss_schedule.clear();
    } else {
      (void)parse_loss_schedule(key, value);
      loss_schedule = std::string(value);
    }
  } else if (key == "byzantine_fraction") {
    byzantine_fraction = parse_fraction(key, value);
  } else if (key == "timeseries") {
    timeseries = value == "none" ? std::string() : std::string(value);
  } else if (key == "trace") {
    trace = value == "none" ? std::string() : std::string(value);
  } else if (key == "events") {
    events = value == "none" ? std::string() : std::string(value);
  } else if (key == "provenance") {
    provenance = value == "none" ? std::string() : std::string(value);
  } else if (key == "event_sample_cap") {
    // Zero would keep no samples at all while still counting totals - a
    // silent lie in the event log - so the floor is 1 (parse_count errors
    // on 0 and on anything non-numeric via the ScenarioError path).
    event_sample_cap = static_cast<unsigned>(parse_count(key, value, 1, 1u << 20));
  } else if (key == "progress") {
    if (value == "true" || value == "1") {
      progress = true;
    } else if (value == "false" || value == "0") {
      progress = false;
    } else {
      bad_value(key, value, "true | false | 1 | 0");
    }
  } else if (key == "recovery") {
    if (value == "true" || value == "1") {
      recovery = true;
    } else if (value == "false" || value == "0") {
      recovery = false;
    } else {
      bad_value(key, value, "true | false | 1 | 0");
    }
  } else if (key == "retry_budget") {
    retry_budget = static_cast<unsigned>(parse_count(key, value, 1, 64));
  } else if (key == "partition_round") {
    // "none" (or -1) restores the default, so a CLI flag can switch a
    // scenario file's partition back off.
    if (value == "none" || value == "-1") {
      partition_round = -1;
    } else {
      partition_round =
          static_cast<std::int64_t>(parse_count(key, value, 0, 1u << 30));
    }
  } else if (key == "heal_round") {
    if (value == "none" || value == "-1") {
      heal_round = -1;
    } else {
      heal_round = static_cast<std::int64_t>(parse_count(key, value, 1, 1u << 30));
    }
  } else if (key == "partition_parts") {
    partition_parts = static_cast<unsigned>(parse_count(key, value, 2, 1u << 20));
  } else {
    std::ostringstream os;
    os << "unknown scenario key: '" << key << "'";
    throw ScenarioError(os.str());
  }
}

void ScenarioSpec::validate() const {
  if (algorithm.empty()) throw ScenarioError("scenario has no algorithm");
  if (n < 2) throw ScenarioError("scenario needs n >= 2");
  if (trials < 1) throw ScenarioError("scenario needs trials >= 1");
  if (fault_count() >= n) {
    throw ScenarioError("fault_fraction leaves no alive node");
  }
  if (!(loss_prob >= 0.0 && loss_prob < 1.0)) {
    throw ScenarioError("loss_prob must be in [0, 1)");
  }
  const bool has_crash = fault_count() > 0;
  const bool has_loss = loss_prob > 0.0;
  const bool scheduled = crash_round != kCrashPreRun;
  const bool has_churn_keys =
      has_churn() || byzantine_fraction > 0.0 || !loss_schedule.empty();
  if (!churn_schedule.empty() && (join_rate > 0.0 || crash_rate > 0.0)) {
    throw ScenarioError(
        "churn_schedule scripts exact events; it excludes join_rate/crash_rate");
  }
  if (has_churn_keys && fault_model != FaultModelKind::kAuto &&
      fault_model != FaultModelKind::kNone) {
    throw ScenarioError(
        "churn keys (join_rate/crash_rate/churn_schedule/loss_schedule/"
        "byzantine_fraction) compose only under fault_model = auto "
        "(or are silenced by none)");
  }
  const bool has_partition = partition_round >= 0 || heal_round >= 0;
  if (has_partition) {
    if (partition_round < 0 || heal_round < 0) {
      throw ScenarioError(
          "partition_round and heal_round must be set together "
          "(the partition window is [partition_round, heal_round))");
    }
    if (heal_round <= partition_round) {
      throw ScenarioError(
          "heal_round must be greater than partition_round "
          "(the window [partition_round, heal_round) would be empty)");
    }
    if (max_rounds != 0 && heal_round >= static_cast<std::int64_t>(max_rounds)) {
      throw ScenarioError(
          "heal_round must be below max_rounds, or the partition never heals "
          "within the run");
    }
    if (fault_model != FaultModelKind::kAuto && fault_model != FaultModelKind::kNone) {
      throw ScenarioError(
          "partition keys (partition_round/heal_round/partition_parts) compose "
          "only under fault_model = auto (or are silenced by none)");
    }
  } else if (partition_parts != 0) {
    throw ScenarioError(
        "partition_parts needs a partition window "
        "(set partition_round and heal_round)");
  }
  if (retry_budget != 0 && !recovery) {
    throw ScenarioError(
        "retry_budget configures the recovery supervisor; set recovery = true");
  }
  if (recovery && algorithm != "cluster1" && algorithm != "cluster2" &&
      algorithm != "cluster3_push_pull") {
    throw ScenarioError(
        "recovery = true needs a supervised cluster algorithm "
        "(one of: cluster1 | cluster2 | cluster3_push_pull); '" +
        algorithm + "' has no recovery hook");
  }
  switch (fault_model) {
    case FaultModelKind::kAuto:
      if (scheduled && !has_crash) {
        throw ScenarioError("crash_round is set but fault_fraction = 0 crashes nobody");
      }
      break;
    case FaultModelKind::kNone:
      break;  // explicit off-switch: other fault keys are deliberately inert
    case FaultModelKind::kStaticCrash:
      if (!has_crash) {
        throw ScenarioError("fault_model = static_crash needs fault_fraction > 0");
      }
      if (scheduled || has_loss) {
        throw ScenarioError(
            "fault_model = static_crash excludes crash_round/loss_prob "
            "(use scheduled_crash, lossy or composite)");
      }
      break;
    case FaultModelKind::kScheduledCrash:
      if (!has_crash || !scheduled) {
        throw ScenarioError(
            "fault_model = scheduled_crash needs fault_fraction > 0 and crash_round");
      }
      if (has_loss) {
        throw ScenarioError("fault_model = scheduled_crash excludes loss_prob "
                            "(use composite)");
      }
      break;
    case FaultModelKind::kLossy:
      if (!has_loss) throw ScenarioError("fault_model = lossy needs loss_prob > 0");
      if (has_crash || scheduled) {
        throw ScenarioError(
            "fault_model = lossy excludes fault_fraction/crash_round (use composite)");
      }
      break;
    case FaultModelKind::kComposite:
      if (!has_crash || !has_loss) {
        throw ScenarioError(
            "fault_model = composite needs both a crash component "
            "(fault_fraction > 0) and loss_prob > 0");
      }
      break;
  }
}

std::unique_ptr<sim::FaultModel> ScenarioSpec::make_fault_model() const {
  if (fault_model == FaultModelKind::kNone) return nullptr;
  // Parts compose in a fixed order (crash, churn, partition, flat loss, loss
  // schedule, byzantine) so the adversary stream is consumed identically no
  // matter which keys configured them.
  std::vector<std::unique_ptr<sim::FaultModel>> parts;
  if (const std::uint32_t f = fault_count(); f > 0) {
    if (crash_round != kCrashPreRun) {
      parts.push_back(std::make_unique<sim::ScheduledCrash>(
          static_cast<std::uint64_t>(crash_round), f, fault_strategy));
    } else {
      parts.push_back(std::make_unique<sim::StaticCrash>(f, fault_strategy));
    }
  }
  if (!churn_schedule.empty()) {
    parts.push_back(std::make_unique<sim::ChurnSchedule>(
        parse_churn_script("churn_schedule", churn_schedule)));
  } else if (join_rate > 0.0 || crash_rate > 0.0) {
    parts.push_back(std::make_unique<sim::ChurnSchedule>(join_rate, crash_rate));
  }
  if (partition_round >= 0 && heal_round > partition_round) {
    parts.push_back(std::make_unique<sim::PartitionFault>(
        static_cast<std::uint64_t>(partition_round),
        static_cast<std::uint64_t>(heal_round),
        partition_parts != 0 ? partition_parts : 2));
  }
  if (loss_prob > 0.0) parts.push_back(std::make_unique<sim::LossyChannel>(loss_prob));
  if (!loss_schedule.empty()) {
    parts.push_back(std::make_unique<sim::LossSchedule>(
        parse_loss_schedule("loss_schedule", loss_schedule)));
  }
  if (byzantine_fraction > 0.0) {
    parts.push_back(std::make_unique<sim::ByzantineResponder>(byzantine_fraction));
  }
  if (parts.empty()) return nullptr;
  if (parts.size() == 1) return std::move(parts.front());
  auto composite = std::make_unique<sim::CompositeFault>();
  for (auto& part : parts) composite->add(std::move(part));
  return composite;
}

std::string ScenarioSpec::fault_model_name() const {
  if (fault_model == FaultModelKind::kNone) return "none";
  std::string out;
  const auto append = [&out](std::string_view part) {
    if (!out.empty()) out += "+";
    out += part;
  };
  if (fault_count() > 0) {
    append(crash_round != kCrashPreRun ? "scheduled_crash" : "static_crash");
  }
  if (has_churn()) append("churn");
  if (partition_round >= 0 && heal_round > partition_round) append("partition");
  if (loss_prob > 0.0) append("lossy");
  if (!loss_schedule.empty()) {
    const std::string_view sv(loss_schedule);
    append(std::string("loss_") + std::string(sv.substr(0, sv.find(':'))));
  }
  if (byzantine_fraction > 0.0) append("byzantine");
  return out.empty() ? "none" : out;
}

ScenarioSpec ScenarioSpec::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("cannot open scenario file: " + path);
  ScenarioSpec spec;
  std::string line;
  unsigned line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv(line);
    if (const auto hash = sv.find('#'); hash != std::string_view::npos) {
      sv = sv.substr(0, hash);
    }
    sv = trim(sv);
    if (sv.empty()) continue;
    const auto eq = sv.find('=');
    if (eq == std::string_view::npos) {
      std::ostringstream os;
      os << path << ":" << line_no << ": expected 'key = value', got '" << sv << "'";
      throw ScenarioError(os.str());
    }
    try {
      spec.apply(trim(sv.substr(0, eq)), trim(sv.substr(eq + 1)));
    } catch (const ScenarioError& e) {
      std::ostringstream os;
      os << path << ":" << line_no << ": " << e.what();
      throw ScenarioError(os.str());
    }
  }
  return spec;
}

void ScenarioSpec::apply_cli(const std::vector<std::string>& flags) {
  for (const std::string& flag : flags) {
    std::string_view sv(flag);
    if (sv.rfind("--", 0) != 0) {
      throw ScenarioError("expected --key=value, got '" + flag + "'");
    }
    sv.remove_prefix(2);
    const auto eq = sv.find('=');
    if (eq == std::string_view::npos) {
      throw ScenarioError("expected --key=value, got '" + flag + "'");
    }
    apply(trim(sv.substr(0, eq)), trim(sv.substr(eq + 1)));
  }
}

const std::vector<std::string>& ScenarioSpec::keys() {
  static const std::vector<std::string> kKeys = {
      "name",       "algorithm",  "n",          "trials",
      "seed",       "threads",    "engine_threads", "shard_size",
      "delivery_buckets", "rumor_bits",
      "delta",      "max_rounds", "fault_fraction", "fault_strategy",
      "crash_round", "loss_prob", "fault_model",
      "join_rate",  "crash_rate", "churn_schedule", "loss_schedule",
      "byzantine_fraction",
      "recovery",   "retry_budget", "partition_round", "heal_round",
      "partition_parts",
      "timeseries", "trace",      "events",         "provenance",
      "event_sample_cap", "progress",
  };
  return kKeys;
}

}  // namespace gossip::runner
