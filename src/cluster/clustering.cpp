#include "cluster/clustering.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gossip::cluster {

Clustering::Clustering(sim::Network& net)
    : net_(net),
      // Capacity-sized so joiners (valid receivers mid-run under churn) have
      // clustering state - they start unclustered, like everyone else.
      follow_(net.capacity(), NodeId::unclustered()),
      active_(net.capacity(), 0),
      size_(net.capacity(), 0),
      prev_size_(net.capacity(), 0) {}

void Clustering::reset() {
  std::fill(follow_.begin(), follow_.end(), NodeId::unclustered());
  std::fill(active_.begin(), active_.end(), 0);
  std::fill(size_.begin(), size_.end(), 0);
  std::fill(prev_size_.begin(), prev_size_.end(), 0);
}

bool Clustering::is_flat() const {
  for (std::uint32_t v = 0; v < n(); ++v) {
    if (!net_.alive(v) || !is_follower(v)) continue;
    const auto target = net_.find(follow_[v]);
    if (!target) return false;
    if (!net_.alive(*target)) continue;  // leader failed: tolerated, measured elsewhere
    if (follow_[*target] != follow_[v]) return false;
  }
  return true;
}

std::map<std::uint32_t, std::uint64_t> Clustering::cluster_sizes() const {
  std::map<std::uint32_t, std::uint64_t> sizes;
  for (std::uint32_t v = 0; v < n(); ++v) {
    if (!net_.alive(v) || is_unclustered(v)) continue;
    const auto leader = net_.find(follow_[v]);
    GOSSIP_CHECK_MSG(leader.has_value(), "follow target not in network");
    ++sizes[*leader];
  }
  return sizes;
}

ClusteringStats Clustering::stats() const {
  ClusteringStats s;
  const auto sizes = cluster_sizes();
  s.clusters = sizes.size();
  for (std::uint32_t v = 0; v < n(); ++v) {
    if (!net_.alive(v)) continue;
    if (is_unclustered(v)) {
      ++s.unclustered_nodes;
    } else {
      ++s.clustered_nodes;
    }
  }
  if (!sizes.empty()) {
    s.min_size = sizes.begin()->second;
    s.max_size = sizes.begin()->second;
    for (const auto& [leader, size] : sizes) {
      s.min_size = std::min(s.min_size, size);
      s.max_size = std::max(s.max_size, size);
    }
    s.mean_size = static_cast<double>(s.clustered_nodes) / static_cast<double>(s.clusters);
  }
  return s;
}

std::vector<std::uint32_t> Clustering::members_of(NodeId leader_id) const {
  std::vector<std::uint32_t> members;
  for (std::uint32_t v = 0; v < n(); ++v) {
    if (net_.alive(v) && follow_[v] == leader_id) members.push_back(v);
  }
  return members;
}

}  // namespace gossip::cluster
