#include "cluster/driver.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::cluster {

using sim::Contact;
using sim::Message;
using sim::make_hooks;
using sim::no_hook;

namespace {
// Verdict wire encoding (a count field plus an optional ID list):
//   bit 0: activation flag, bit 1: dissolve, bits 2..: size hint.
constexpr std::uint64_t kActiveBit = 1;
constexpr std::uint64_t kDissolveBit = 2;

std::uint64_t encode_verdict(const Driver::Verdict& v) {
  return (v.active ? kActiveBit : 0) | (v.dissolve ? kDissolveBit : 0) | (v.size_hint << 2);
}
}  // namespace

Driver::Driver(sim::Engine& engine, Options opts)
    : engine_(engine),
      net_(engine.network()),
      cl_(engine.network()),
      opts_(opts),
      scratch_rng_(net_.rng().fork(0x5eedca5cade5ULL)),
      // Sized to the network's pre-reserved capacity (== n without joins):
      // under churn, joiners can become push/pull receivers mid-primitive.
      candidate_(net_.capacity(), NodeId::unclustered()),
      cand_seen_(net_.capacity(), 0),
      inbox_(net_.capacity(), NodeId::unclustered()),
      inbox_seen_(net_.capacity(), 0),
      collect_count_(net_.capacity(), 0),
      collected_ids_(net_.capacity()) {
  // Opt-in parallel execution for every primitive this driver runs. All
  // driver initiate hooks only read clustering state, which is what the
  // sharded phase 1 requires of them. An engine already sharded at the
  // requested width is left untouched, so a caller-pinned shard_size (and
  // its trajectory) survives.
  if (opts_.threads && engine_.threads() != opts_.threads) {
    engine_.set_threads(opts_.threads, opts_.shard_size);
  }
  if (opts_.delivery_buckets) {
    engine_.set_delivery_buckets(opts_.delivery_buckets);
  }
  if (opts_.telemetry != nullptr) {
    engine_.set_telemetry(opts_.telemetry);
  }
}

void Driver::validate_flat(const char* where) const {
  if (!opts_.validate) return;
  GOSSIP_CHECK_MSG(cl_.is_flat(), "clustering not flat in " << where);
}

// ---------------------------------------------------------------------------
// ClusterActivate(p)
// ---------------------------------------------------------------------------
void Driver::activate(double p) {
  validate_flat("activate");
  const std::uint64_t salt = ++op_salt_;
  // Leaders flip their coins locally before the round.
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (!net_.alive(v) || !cl_.is_leader(v)) continue;
    Rng coin = net_.node_rng(v, salt);
    cl_.set_active(v, coin.bernoulli(p));
  }
  engine_.run_round(make_hooks(
      [this](std::uint32_t v) -> std::optional<Contact> {
        if (!cl_.is_follower(v)) return std::nullopt;
        return Contact::pull_direct(cl_.follow(v));
      },
      [this](std::uint32_t v) { return Message::count(cl_.active(v) ? 1 : 0); },
      no_hook,
      [this](std::uint32_t q, const Message& m) {
        if (m.has_count()) cl_.set_active(q, m.count_value() != 0);
      }));
}

void Driver::set_all_active(bool active) {
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (cl_.is_clustered(v)) cl_.set_active(v, active);
  }
}

// ---------------------------------------------------------------------------
// collect + verdict skeleton (ClusterSize / Dissolve / Resize / growth rules)
// ---------------------------------------------------------------------------
void Driver::collect_and_verdict(bool only_active, bool with_ids, const DecideFn& decide) {
  validate_flat("collect_and_verdict");
  std::fill(collect_count_.begin(), collect_count_.end(), 0);
  for (std::vector<NodeId>& ids : collected_ids_) ids.clear();

  const auto participates = [&](std::uint32_t v) {
    return cl_.is_clustered(v) && (!only_active || cl_.active(v));
  };

  // Round 1: followers push their own ID to the leader.
  engine_.run_round(make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (!cl_.is_follower(v) || !participates(v)) return std::nullopt;
        return Contact::push_direct(cl_.follow(v), Message::single_id(net_.id_of(v)));
      },
      no_hook,
      [&](std::uint32_t leader, const Message& m) {
        ++collect_count_[leader];
        if (with_ids && !m.ids().empty()) collected_ids_[leader].push_back(m.ids().front());
      }));

  // Leaders decide; decisions are stored as encoded responses and applied to
  // the leader's own state immediately.
  // Appended in ascending leader order (the decision loop walks v upward),
  // so lookups below binary-search it; a hash map here would be harmless
  // today (keyed access only) but is banned from the verdict path outright -
  // one hash-ordered container is how order nondeterminism creeps back in.
  std::vector<std::pair<std::uint32_t, std::vector<NodeId>>> response_ids;
  std::vector<std::uint64_t> encoded(net_.capacity(), 0);
  std::vector<std::uint8_t> decided(net_.capacity(), 0);
  std::uint32_t verdict_leaders = 0;
  std::uint64_t verdict_dissolved = 0;
  std::uint64_t verdict_resized = 0;
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (!net_.alive(v) || !cl_.is_leader(v) || !participates(v)) continue;
    const std::uint64_t size = collect_count_[v] + 1;  // leader included
    std::vector<NodeId> members;
    if (with_ids) {
      members = std::move(collected_ids_[v]);
      members.push_back(net_.id_of(v));
      std::sort(members.begin(), members.end());
    }
    Verdict verdict = decide(v, size, members);
    std::sort(verdict.new_leaders.begin(), verdict.new_leaders.end());
    encoded[v] = encode_verdict(verdict);
    decided[v] = 1;
    ++verdict_leaders;
    if (verdict.dissolve) {
      ++verdict_dissolved;
    } else if (!verdict.new_leaders.empty()) {
      ++verdict_resized;
    }

    // Apply to the leader itself.
    cl_.set_prev_size_estimate(v, cl_.size_estimate(v));
    if (verdict.dissolve) {
      cl_.make_unclustered(v);
    } else {
      cl_.set_active(v, verdict.active);
      cl_.set_size_estimate(v, verdict.size_hint ? verdict.size_hint : size);
      if (!verdict.new_leaders.empty()) {
        const NodeId own = net_.id_of(v);
        const auto it = std::lower_bound(verdict.new_leaders.begin(),
                                         verdict.new_leaders.end(), own);
        GOSSIP_CHECK_MSG(it != verdict.new_leaders.end(),
                         "resize left the old leader without a group");
        cl_.set_follow(v, *it);
      }
    }
    if (!verdict.new_leaders.empty()) {
      response_ids.emplace_back(v, std::move(verdict.new_leaders));
    }
  }

  if (obs::EventLog* log = engine_.event_log()) {
    // One summary event per invocation: a per-leader event would scale with
    // n (every node starts out as a leader).
    log->note_verdict(verdict_leaders, verdict_dissolved, verdict_resized);
  }

  // Round 2: followers pull the verdict and decode it.
  const auto distribute_initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (!cl_.is_follower(v) || !participates(v)) return std::nullopt;
    return Contact::pull_direct(cl_.follow(v));
  };
  const auto distribute_respond = [&](std::uint32_t leader) {
    if (!decided[leader]) return Message::empty();
    Message m = Message::count(encoded[leader]);
    const auto it = std::lower_bound(
        response_ids.begin(), response_ids.end(), leader,
        [](const auto& entry, std::uint32_t v) { return entry.first < v; });
    if (it != response_ids.end() && it->first == leader) {
      Message::IdList ids;
      for (NodeId id : it->second) ids.push_back(id);
      m = Message::id_list(std::move(ids)).and_count(encoded[leader]);
    }
    return m;
  };
  const auto distribute_reply = [&](std::uint32_t q, const Message& m) {
    if (!m.has_count()) return;  // leader had no verdict (e.g. already merged away)
    const std::uint64_t code = m.count_value();
    cl_.set_prev_size_estimate(q, cl_.size_estimate(q));
    if (code & kDissolveBit) {
      cl_.make_unclustered(q);
      return;
    }
    cl_.set_active(q, (code & kActiveBit) != 0);
    const std::uint64_t hint = code >> 2;
    if (hint) cl_.set_size_estimate(q, hint);
    if (!m.ids().empty()) {
      // ClusterResize rule: re-follow the smallest new-leader ID >= own ID.
      const NodeId own = net_.id_of(q);
      NodeId chosen = m.ids().back();  // fallback: largest (cannot trigger for members)
      for (std::size_t i = 0; i < m.ids().size(); ++i) {
        if (m.ids()[i] >= own) {
          chosen = m.ids()[i];
          break;
        }
      }
      cl_.set_follow(q, chosen);
    }
  };
  engine_.run_round(
      make_hooks(distribute_initiate, distribute_respond, no_hook, distribute_reply));
}

void Driver::compute_sizes(bool only_active) {
  collect_and_verdict(only_active, /*with_ids=*/false,
                      [](std::uint32_t, std::uint64_t size, std::vector<NodeId>&) {
                        Verdict v;
                        v.size_hint = size;
                        return v;
                      });
}

void Driver::dissolve_below(std::uint64_t min_size) {
  collect_and_verdict(/*only_active=*/false, /*with_ids=*/false,
                      [min_size](std::uint32_t, std::uint64_t size, std::vector<NodeId>&) {
                        Verdict v;
                        v.dissolve = size < min_size;
                        v.size_hint = size;
                        return v;
                      });
}

void Driver::resize(std::uint64_t target, bool only_active) {
  GOSSIP_CHECK(target >= 1);
  collect_and_verdict(
      only_active, /*with_ids=*/true,
      [target](std::uint32_t, std::uint64_t size, std::vector<NodeId>& members) {
        Verdict v;
        const std::uint64_t groups = std::max<std::uint64_t>(1, size / target);
        v.size_hint = size / groups;
        if (groups == 1) return v;  // keep the current leader; sizes < 2*target
        // Contiguous equal split (up to one) of the sorted member IDs; the
        // largest ID of each group becomes its leader.
        const std::uint64_t base = size / groups;
        const std::uint64_t extra = size % groups;
        std::size_t idx = 0;
        for (std::uint64_t g = 0; g < groups; ++g) {
          const std::uint64_t len = base + (g < extra ? 1 : 0);
          idx += len;
          v.new_leaders.push_back(members[idx - 1]);
        }
        return v;
      });
}

// ---------------------------------------------------------------------------
// ClusterPUSH: push half
// ---------------------------------------------------------------------------
void Driver::stash_candidate(std::uint32_t node, NodeId id, RelayPolicy policy) {
  ++cand_seen_[node];
  switch (policy) {
    case RelayPolicy::kSmallest:
      if (candidate_[node].is_unclustered() || id < candidate_[node]) candidate_[node] = id;
      break;
    case RelayPolicy::kRandom:
      if (scratch_rng_.uniform_below(cand_seen_[node]) == 0) candidate_[node] = id;
      break;
  }
}

void Driver::stash_inbox(std::uint32_t leader, NodeId id, RelayPolicy policy) {
  ++inbox_seen_[leader];
  switch (policy) {
    case RelayPolicy::kSmallest:
      if (inbox_[leader].is_unclustered() || id < inbox_[leader]) inbox_[leader] = id;
      break;
    case RelayPolicy::kRandom:
      if (scratch_rng_.uniform_below(inbox_seen_[leader]) == 0) inbox_[leader] = id;
      break;
  }
}

void Driver::clear_candidates() {
  std::fill(candidate_.begin(), candidate_.end(), NodeId::unclustered());
  std::fill(cand_seen_.begin(), cand_seen_.end(), 0);
  std::fill(inbox_.begin(), inbox_.end(), NodeId::unclustered());
  std::fill(inbox_seen_.begin(), inbox_seen_.end(), 0);
}

Driver::PushOutcome Driver::push_cluster_id(bool only_active, bool recruit_unclustered,
                                            RelayPolicy policy) {
  PushOutcome outcome;
  const auto initiate = [&](std::uint32_t v) -> std::optional<Contact> {
    if (!cl_.is_clustered(v)) return std::nullopt;
    if (only_active && !cl_.active(v)) return std::nullopt;
    return Contact::push_random(Message::single_id(cluster_id_of(v)));
  };
  const auto on_push = [&](std::uint32_t r, const Message& m) {
    if (m.ids().empty()) return;
    const NodeId id = m.ids().front();
    if (cl_.is_unclustered(r)) {
      if (recruit_unclustered) {
        // "set follow to any received ID": first delivery wins. A recruit
        // joins a cluster that pushed while (only) active clusters push, so
        // it knows its new cluster is active.
        cl_.set_follow(r, id);
        cl_.set_active(r, true);
        ++outcome.recruited;
      }
    } else {
      stash_candidate(r, id, policy);
    }
  };
  engine_.run_round(make_hooks(initiate, no_hook, on_push));
  return outcome;
}

// ---------------------------------------------------------------------------
// ClusterPUSH: relay half
// ---------------------------------------------------------------------------
void Driver::relay_candidates(RelayPolicy policy, bool only_inactive_relayers) {
  // Leaders deposit their own candidate locally (no self-message).
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (!net_.alive(v) || candidate_[v].is_unclustered()) continue;
    if (!cl_.is_leader(v)) continue;
    if (only_inactive_relayers && cl_.active(v)) continue;
    stash_inbox(v, candidate_[v], policy);
  }
  engine_.run_round(make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (!cl_.is_follower(v) || candidate_[v].is_unclustered()) return std::nullopt;
        if (only_inactive_relayers && cl_.active(v)) return std::nullopt;
        return Contact::push_direct(cl_.follow(v), Message::single_id(candidate_[v]));
      },
      no_hook,
      [&](std::uint32_t leader, const Message& m) {
        if (m.ids().empty()) return;
        // Relays reaching a non-leader (stale follow after races) are dropped;
        // the second push/merge repetition recovers such clusters.
        if (!cl_.is_leader(leader)) return;
        stash_inbox(leader, m.ids().front(), policy);
      }));
  // Candidates are consumed.
  std::fill(candidate_.begin(), candidate_.end(), NodeId::unclustered());
  std::fill(cand_seen_.begin(), cand_seen_.end(), 0);
}

// ---------------------------------------------------------------------------
// ClusterMerge + settle rounds
// ---------------------------------------------------------------------------
void Driver::run_settle_round() {
  engine_.run_round(make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (!cl_.is_follower(v)) return std::nullopt;
        return Contact::pull_direct(cl_.follow(v));
      },
      [&](std::uint32_t v) {
        if (cl_.is_unclustered(v)) return Message::empty();
        return Message::single_id(cl_.follow(v)).and_count(cl_.active(v) ? 1 : 0);
      },
      no_hook,
      [&](std::uint32_t q, const Message& m) {
        if (m.ids().empty()) return;  // target unclustered or gone: keep state
        cl_.set_follow(q, m.ids().front());
        if (m.has_count()) cl_.set_active(q, m.count_value() != 0);
      }));
}

void Driver::merge_from_inbox(RelayPolicy policy, bool only_inactive) {
  // Leaders decide from their inbox before the round.
  for (std::uint32_t v = 0; v < net_.n(); ++v) {
    if (!net_.alive(v) || !cl_.is_leader(v)) continue;
    if (only_inactive && cl_.active(v)) continue;
    if (inbox_[v].is_unclustered()) continue;  // "(if any)"
    NodeId target = inbox_[v];
    // SquareClusters-style merges (only_inactive) are unconditional: the
    // paper's "ClusterMerge(smallest received ID)" makes an inactive cluster
    // join the pushing (active) cluster even when its own ID is smaller.
    // All-cluster merges (MergeAllClusters) treat the own ID as a candidate,
    // so the globally smallest cluster stays put and recruits the rest.
    if (!only_inactive && policy == RelayPolicy::kSmallest) {
      target = std::min(target, net_.id_of(v));
    }
    if (target == net_.id_of(v)) continue;  // own cluster won; stay leader
    cl_.set_follow(v, target);
    // Merging into a cluster that pushed while only active clusters push
    // means the new cluster is active; in all-cluster merges the flag is
    // maintained by the settle adoption below.
    cl_.set_active(v, true);
  }
  run_settle_round();
  std::fill(inbox_.begin(), inbox_.end(), NodeId::unclustered());
  std::fill(inbox_seen_.begin(), inbox_seen_.end(), 0);
}

void Driver::settle(unsigned rounds) {
  for (unsigned i = 0; i < rounds; ++i) run_settle_round();
}

// ---------------------------------------------------------------------------
// Unclustered PULL
// ---------------------------------------------------------------------------
std::uint64_t Driver::unclustered_pull_round() {
  std::uint64_t joined = 0;
  engine_.run_round(make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (!cl_.is_unclustered(v)) return std::nullopt;
        return Contact::pull_random();
      },
      [&](std::uint32_t v) {
        if (cl_.is_unclustered(v)) return Message::empty();
        return Message::single_id(cluster_id_of(v));
      },
      no_hook,
      [&](std::uint32_t q, const Message& m) {
        if (m.ids().empty()) return;
        if (cl_.is_unclustered(q)) {
          cl_.set_follow(q, m.ids().front());
          ++joined;
        }
      }));
  return joined;
}

// ---------------------------------------------------------------------------
// ClusterShare(rumor)
// ---------------------------------------------------------------------------
void Driver::share_rumor(std::vector<std::uint8_t>& informed, bool collect_first) {
  // Per-node state is capacity-sized so mid-run joins never reallocate it
  // (see sim/network.hpp); n() may grow past the initial size but never
  // past capacity.
  GOSSIP_CHECK(informed.size() == net_.capacity());
  validate_flat("share_rumor");
  if (collect_first) {
    engine_.run_round(make_hooks(
        [&](std::uint32_t v) -> std::optional<Contact> {
          if (!informed[v] || !cl_.is_follower(v)) return std::nullopt;
          return Contact::push_direct(cl_.follow(v), Message::rumor());
        },
        no_hook,
        [&](std::uint32_t leader, const Message& m) {
          if (m.has_rumor()) informed[leader] = 1;
        }));
  }
  engine_.run_round(make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (informed[v] || !cl_.is_follower(v)) return std::nullopt;
        return Contact::pull_direct(cl_.follow(v));
      },
      [&](std::uint32_t v) {
        return informed[v] ? Message::rumor() : Message::empty();
      },
      no_hook,
      [&](std::uint32_t q, const Message& m) {
        if (m.has_rumor()) informed[q] = 1;
      }));
}

}  // namespace gossip::cluster
