// Executable cluster coordination primitives (paper Section 3.2).
//
// Each method runs a constant number of honest rounds on the Engine:
// followers PULL directives from their leader, members direct-PUSH collected
// IDs/relays to their leader, and cluster-level pushes contact uniformly
// random nodes. All responses are address-oblivious (one response per node
// per round, enforced by the engine). Because simultaneous merges can create
// follow-chains of constant length, the merge round doubles as a
// path-compression ("settle") round: a pulled node always answers with its
// *post-decision* follow value, so every extra settle round shortens chains.
// See DESIGN.md section 1.2.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/clustering.hpp"
#include "sim/engine.hpp"

namespace gossip::cluster {

/// How a node chooses among multiple received/relayed cluster IDs.
/// Cluster1 merges to the smallest received ID; Cluster2/3 merge to a
/// uniformly random received ID (paper Algorithms 1, 2, 4).
enum class RelayPolicy : std::uint8_t { kSmallest, kRandom };

struct DriverOptions {
  /// Run O(n) structural invariant checks after primitives that assume a
  /// flat clustering. Used by tests; off for large benchmark runs.
  bool validate = false;
  /// 0 = leave the engine's execution mode alone (the default). >= 1 = opt
  /// the engine into sharded phase-1 execution across this many threads
  /// before the first primitive runs (Engine::set_threads; see the
  /// Threading model notes in sim/engine.hpp for the determinism contract).
  unsigned threads = 0;
  /// Initiators per phase-1 shard when threads >= 1 (0 = the default width;
  /// part of the sharded determinism contract - see sim/parallel/shard.hpp).
  std::uint32_t shard_size = 0;
  /// Receiver buckets for the delivery phases (0 = leave the engine's
  /// decomposition alone; Engine::set_delivery_buckets).
  /// Trajectory-invariant.
  std::uint32_t delivery_buckets = 0;
  /// Observability handle attached to the engine before the first primitive
  /// runs (Engine::set_telemetry; null = leave the engine's attachment
  /// alone). The driver additionally posts one verdict-summary event per
  /// collect_and_verdict invocation. Non-owning.
  obs::Telemetry* telemetry = nullptr;
};

class Driver {
 public:
  using Options = DriverOptions;

  explicit Driver(sim::Engine& engine, Options opts = Options());

  [[nodiscard]] Clustering& clustering() noexcept { return cl_; }
  [[nodiscard]] const Clustering& clustering() const noexcept { return cl_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] sim::Network& network() noexcept { return net_; }

  // --- ClusterActivate(p): 1 round -----------------------------------------
  /// Leaders flip an independent p-biased coin; followers pull the outcome.
  void activate(double p);

  /// Sets every clustered node's activation flag locally. Zero rounds: the
  /// paper's ClusterActivate(1) / explicit deactivation outcomes are program
  /// constants known to every node without communication.
  void set_all_active(bool active);

  // --- ClusterSize: 2 rounds -------------------------------------------------
  /// Followers push their ID to the leader; everyone pulls the count.
  /// Updates size estimates (and shifts the previous one into prev_size).
  void compute_sizes(bool only_active);

  // --- ClusterDissolve(s): 2 rounds --------------------------------------------
  void dissolve_below(std::uint64_t min_size);

  // --- ClusterResize(s): 2 rounds -------------------------------------------------
  /// Splits every (active, if only_active) cluster of size s' into
  /// floor(s'/target) contiguous-ID groups (>= 1) whose leaders are the
  /// largest IDs per group; members re-follow the smallest new-leader ID
  /// >= their own ID.
  void resize(std::uint64_t target, bool only_active);

  // --- generic collect+verdict: 2 rounds ---------------------------------------------
  /// The shared skeleton behind size/dissolve/resize and the growth-control
  /// rules of Cluster2/Cluster3: a collect round (members push their IDs to
  /// the leader) followed by a verdict round (members pull the leader's
  /// decision). `decide` runs once per participating leader with the
  /// measured size (including the leader) and, if `with_ids`, the sorted
  /// member IDs (leader's own included).
  struct Verdict {
    bool dissolve = false;             ///< cluster disbands; members go unclustered
    bool active = true;                ///< activation flag distributed to members
    std::vector<NodeId> new_leaders;   ///< non-empty: re-follow (ClusterResize rule)
    std::uint64_t size_hint = 0;       ///< distributed to members' size estimates
  };
  using DecideFn = std::function<Verdict(std::uint32_t leader, std::uint64_t size,
                                         std::vector<NodeId>& member_ids)>;
  void collect_and_verdict(bool only_active, bool with_ids, const DecideFn& decide);

  // --- ClusterPUSH (push half): 1 round ----------------------------------------------
  /// Members of (active, if only_active) clusters push their cluster ID to a
  /// uniformly random node. Unclustered receivers adopt the first received
  /// ID when `recruit_unclustered` (the recruiting pushes of
  /// GrowInitialClusters / BoundedClusterPush); clustered receivers stash a
  /// relay candidate chosen per `policy`.
  struct PushOutcome {
    std::uint64_t recruited = 0;  ///< unclustered nodes that joined this round
  };
  PushOutcome push_cluster_id(bool only_active, bool recruit_unclustered, RelayPolicy policy);

  // --- ClusterPUSH (relay half): 1 round ---------------------------------------------
  /// Every clustered node holding a relay candidate forwards it to its
  /// leader ("all messages received ... get relayed to their cluster
  /// leader"). With `only_inactive_relayers`, members of active clusters
  /// stay silent (their leader ignores merge candidates anyway).
  void relay_candidates(RelayPolicy policy, bool only_inactive_relayers);

  // --- ClusterMerge: 1 round ------------------------------------------------------------
  /// Leaders (inactive-only, or all) adopt a new leader from their relay
  /// inbox: kSmallest takes min(own ID, inbox); kRandom takes the reservoir
  /// sample. Then every follower pulls its follow target and adopts the
  /// target's post-decision follow + activation. Clears the inboxes.
  void merge_from_inbox(RelayPolicy policy, bool only_inactive);

  /// Pure path-compression rounds (the merge round without new decisions).
  void settle(unsigned rounds);

  /// Wipes relay candidates/inboxes (between independent push phases).
  void clear_candidates();

  // --- unclustered PULL: 1 round -----------------------------------------------------------
  /// Every unclustered node pulls a uniformly random node and joins its
  /// cluster if it has one. Returns the number of nodes that joined.
  std::uint64_t unclustered_pull_round();

  // --- ClusterShare(rumor): 1-2 rounds --------------------------------------------------------
  /// Spreads the rumor within every cluster: optionally a collect round
  /// (informed followers push the rumor to their leader), then a
  /// distribution round (uninformed followers pull the leader).
  /// `informed` is the broadcast-task state, indexed by node.
  void share_rumor(std::vector<std::uint8_t>& informed, bool collect_first);

  /// ID of the cluster containing node v (its leader's ID), or infinity.
  [[nodiscard]] NodeId cluster_id_of(std::uint32_t v) const {
    return cl_.is_leader(v) ? net_.id_of(v) : cl_.follow(v);
  }

 private:
  void run_settle_round();
  void validate_flat(const char* where) const;
  void stash_candidate(std::uint32_t node, NodeId id, RelayPolicy policy);
  void stash_inbox(std::uint32_t leader, NodeId id, RelayPolicy policy);

  sim::Engine& engine_;
  sim::Network& net_;
  Clustering cl_;
  Options opts_;
  Rng scratch_rng_;            ///< reservoir decisions (node-coin equivalent)
  std::uint64_t op_salt_ = 0;  ///< per-primitive salt for node RNG streams

  // Reusable scratch, all indexed by node.
  std::vector<NodeId> candidate_;        ///< relay candidate received this phase
  std::vector<std::uint32_t> cand_seen_; ///< reservoir counters for candidates
  std::vector<NodeId> inbox_;            ///< per-leader merge candidate
  std::vector<std::uint32_t> inbox_seen_;
  std::vector<std::uint64_t> collect_count_;
  /// Collected member IDs, indexed by leader like every other scratch array
  /// (a hash map here would be the only hash-ordered state in the driver;
  /// see tools/gossip_lint.py). Entries are cleared per collect call.
  std::vector<std::vector<NodeId>> collected_ids_;
};

}  // namespace gossip::cluster
