// Clusterings (paper Section 3.1).
//
// A clustering partitions the nodes into leader-rooted clusters plus a set of
// unclustered nodes. It is implemented exactly as in the paper: every node v
// carries a `follow` variable holding the ID of its cluster leader (its own
// ID if it *is* the leader) or infinity if unclustered. A node decides its
// role by comparing `follow` to its own ID - there is no global state.
//
// This class stores the per-node follow/active/size variables and offers
// global *read-only* views (statistics, invariant checks) that exist for
// validation and measurement only - algorithms never consult them.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "sim/network.hpp"

namespace gossip::cluster {

/// Aggregate view of a clustering, used by tests and benchmarks.
struct ClusteringStats {
  std::uint64_t clusters = 0;
  std::uint64_t clustered_nodes = 0;    ///< leaders + followers (alive only)
  std::uint64_t unclustered_nodes = 0;  ///< alive nodes with follow == infinity
  std::uint64_t min_size = 0;
  std::uint64_t max_size = 0;
  double mean_size = 0.0;
};

class Clustering {
 public:
  explicit Clustering(sim::Network& net);

  [[nodiscard]] sim::Network& network() noexcept { return net_; }
  [[nodiscard]] const sim::Network& network() const noexcept { return net_; }
  [[nodiscard]] std::uint32_t n() const noexcept { return static_cast<std::uint32_t>(follow_.size()); }

  // --- per-node state (node-local; algorithms may use these freely) -------
  [[nodiscard]] NodeId follow(std::uint32_t v) const { return follow_[v]; }
  void set_follow(std::uint32_t v, NodeId target) { follow_[v] = target; }

  [[nodiscard]] bool active(std::uint32_t v) const { return active_[v] != 0; }
  void set_active(std::uint32_t v, bool a) { active_[v] = a ? 1 : 0; }

  /// Latest size estimate this node holds for its cluster (from the last
  /// ClusterSize-style exchange); 0 if never measured.
  [[nodiscard]] std::uint64_t size_estimate(std::uint32_t v) const { return size_[v]; }
  void set_size_estimate(std::uint32_t v, std::uint64_t s) { size_[v] = s; }
  [[nodiscard]] std::uint64_t prev_size_estimate(std::uint32_t v) const { return prev_size_[v]; }
  void set_prev_size_estimate(std::uint32_t v, std::uint64_t s) { prev_size_[v] = s; }

  [[nodiscard]] bool is_unclustered(std::uint32_t v) const {
    return follow_[v].is_unclustered();
  }
  [[nodiscard]] bool is_clustered(std::uint32_t v) const { return !is_unclustered(v); }
  [[nodiscard]] bool is_leader(std::uint32_t v) const {
    return follow_[v] == net_.id_of(v);
  }
  [[nodiscard]] bool is_follower(std::uint32_t v) const {
    return is_clustered(v) && !is_leader(v);
  }

  /// Makes node v a singleton cluster leader.
  void make_leader(std::uint32_t v) { follow_[v] = net_.id_of(v); }
  void make_unclustered(std::uint32_t v) {
    follow_[v] = NodeId::unclustered();
    active_[v] = 0;
    size_[v] = 0;
  }

  /// Resets every node to unclustered/inactive.
  void reset();

  // --- global read-only views (validation & measurement only) -------------
  /// True if every alive follower's follow target is an alive leader
  /// (i.e. no chains: target.follow == target's own ID).
  [[nodiscard]] bool is_flat() const;

  /// Cluster statistics over alive nodes. Requires a flat clustering for
  /// meaningful sizes (chained followers are attributed to their direct
  /// target's cluster).
  [[nodiscard]] ClusteringStats stats() const;

  /// leader index -> cluster size (leaders counted; alive nodes only).
  /// Ordered map on purpose: callers iterate it for reports and stats, and
  /// iteration order must not depend on a hash function (determinism
  /// contract; enforced by tools/gossip_lint.py).
  [[nodiscard]] std::map<std::uint32_t, std::uint64_t> cluster_sizes() const;

  /// Alive member indices of the cluster led by `leader_id` (test helper).
  [[nodiscard]] std::vector<std::uint32_t> members_of(NodeId leader_id) const;

 private:
  sim::Network& net_;
  std::vector<NodeId> follow_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint64_t> size_;
  std::vector<std::uint64_t> prev_size_;
};

}  // namespace gossip::cluster
