// Memory accounting for the flat KnowledgeTracker vs. the previous
// vector<unordered_set> design, measured on the knowledge graph produced by
// a real uniform-gossip (PUSH-PULL) run. The flat tracker must use at most
// half the bytes the unordered_set layout would allocate for the same
// learned-ID sets (the acceptance bar is 2x at n = 1e6; the ratio is
// size-stable, and the full-size run is enabled by default in Release -
// set GOSSIP_SMALL_TESTS=1, as the sanitizer CI job does, to shrink it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "baselines/uniform.hpp"
#include "sim/knowledge.hpp"
#include "sim/network.hpp"

namespace gossip::sim {
namespace {

/// Allocator that tracks the peak resident bytes of its container (current
/// allocations minus deallocations, high-water-marked), so rehash-discarded
/// bucket arrays do not inflate the measured footprint.
struct AllocWatermark {
  std::size_t current = 0;
  std::size_t peak = 0;
};

template <typename T>
struct CountingAllocator {
  using value_type = T;
  AllocWatermark* mark;

  explicit CountingAllocator(AllocWatermark* m) noexcept : mark(m) {}
  template <typename U>
  CountingAllocator(const CountingAllocator<U>& other) noexcept : mark(other.mark) {}

  T* allocate(std::size_t n) {
    mark->current += n * sizeof(T);
    mark->peak = std::max(mark->peak, mark->current);
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    mark->current -= n * sizeof(T);
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const CountingAllocator<U>& other) const noexcept {
    return mark == other.mark;
  }
};

using CountingSet =
    std::unordered_set<std::uint64_t, std::hash<std::uint64_t>,
                       std::equal_to<std::uint64_t>, CountingAllocator<std::uint64_t>>;

/// Bytes the seed's vector<unordered_set<uint64_t>> layout would hold for
/// this knowledge graph: per-node set headers plus, per node, the peak
/// resident bytes of its bucket array and element nodes. Nodes are replayed
/// one at a time so the measurement itself never holds n sets alive.
std::size_t legacy_layout_bytes(const Network& net) {
  const KnowledgeTracker& tracker = *net.knowledge();
  std::size_t total = static_cast<std::size_t>(net.n()) * sizeof(std::unordered_set<std::uint64_t>);
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    AllocWatermark mark;
    {
      CountingSet set{CountingAllocator<std::uint64_t>(&mark)};
      for (const NodeId id : tracker.known_ids(v)) set.insert(id.raw());
    }
    total += mark.peak;
  }
  return total;
}

TEST(KnowledgeMemory, FlatTrackerHalvesUniformGossipFootprint) {
  const bool small = std::getenv("GOSSIP_SMALL_TESTS") != nullptr;
  const std::uint32_t n = small ? (1u << 15) : (1u << 20);  // default ~1e6

  NetworkOptions o;
  o.n = n;
  o.seed = 7;
  o.track_knowledge = true;
  Network net(o);
  const auto report = baselines::run_push_pull(net, 0, {});
  ASSERT_TRUE(report.all_informed);

  const KnowledgeTracker& tracker = *net.knowledge();
  ASSERT_GT(tracker.total_knowledge(), static_cast<std::uint64_t>(n));  // sanity

  const std::size_t flat_bytes = tracker.memory_bytes();
  const std::size_t legacy_bytes = legacy_layout_bytes(net);
  const double ratio = static_cast<double>(legacy_bytes) / static_cast<double>(flat_bytes);

  RecordProperty("n", static_cast<int>(n));
  RecordProperty("total_knowledge", static_cast<int>(tracker.total_knowledge()));
  RecordProperty("flat_bytes", static_cast<int>(flat_bytes / 1024));
  RecordProperty("legacy_bytes", static_cast<int>(legacy_bytes / 1024));
  std::printf("n=%u total_knowledge=%llu flat=%.1f MiB legacy=%.1f MiB ratio=%.2fx\n", n,
              static_cast<unsigned long long>(tracker.total_knowledge()),
              flat_bytes / 1048576.0, legacy_bytes / 1048576.0, ratio);

  EXPECT_GE(ratio, 2.0) << "flat tracker must at least halve the unordered_set layout";
  // Normalised view: bytes per learned ID.
  const double flat_per_id =
      static_cast<double>(flat_bytes) / static_cast<double>(tracker.total_knowledge());
  EXPECT_LT(flat_per_id, 24.0) << "flat tracker should stay within ~3 words per edge";
}

}  // namespace
}  // namespace gossip::sim
