// Tests for ClusterPushPull (paper Algorithm 3, Lemma 17): broadcast over a
// Delta-clustering in O(log n / log Delta) rounds with O(n) payload
// messages, respecting the Delta communication bound end to end.
#include "core/cluster_push_pull.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "core/cluster3.hpp"
#include "sim/engine.hpp"

namespace gossip::core {
namespace {

struct Case {
  std::uint32_t n;
  std::uint64_t delta;
  std::uint64_t seed;
};

class ClusterPushPullSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ClusterPushPullSweep, BroadcastsOverTheClustering) {
  const auto [n, delta, seed] = GetParam();
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  sim::Network net(o);
  sim::Engine engine(net);
  Cluster3 builder(engine, delta);
  (void)builder.run();

  ClusterPushPull spread(builder.driver());
  const auto report =
      spread.run(/*source=*/n / 3, builder.cluster_target(), /*reset_metrics=*/true);
  EXPECT_TRUE(report.all_informed) << report.informed << "/" << report.alive;
  // The Delta bound holds during the broadcast too (Theorem 4).
  EXPECT_LE(report.max_delta(), delta);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterPushPullSweep,
    ::testing::Values(Case{1024, 64, 1}, Case{1024, 128, 2}, Case{4096, 64, 1},
                      Case{4096, 256, 2}, Case{16384, 256, 1}, Case{65536, 512, 1},
                      Case{65536, 4096, 1}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_d" + std::to_string(info.param.delta) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(ClusterPushPull, RoundsTrackLogNOverLogDelta) {
  // Lemma 17: O(log n / log Delta) rounds once the clustering exists.
  // With 3 rounds per spread iteration plus the constant final phase, the
  // measured rounds must be within a constant of the bound.
  sim::NetworkOptions o;
  o.n = 65536;
  o.seed = 17;
  for (std::uint64_t delta : {64ull, 1024ull, 16384ull}) {
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster3 builder(engine, delta);
    (void)builder.run();
    ClusterPushPull spread(builder.driver());
    const auto report = spread.run(0, builder.cluster_target(), /*reset_metrics=*/true);
    ASSERT_TRUE(report.all_informed) << "delta=" << delta;
    const double d = static_cast<double>(builder.cluster_target());
    const double bound = 3.0 * std::ceil(log2d(o.n) / std::log2(std::max(2.0, d))) + 20.0;
    EXPECT_LE(static_cast<double>(report.rounds), bound) << "delta=" << delta;
  }
}

TEST(ClusterPushPull, PayloadMessagesAreLinear) {
  // Lemma 17: O(n) messages (payload accounting; the polling pulls are
  // connections - see the metering convention).
  for (std::uint32_t n : {4096u, 65536u}) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 19;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster3 builder(engine, 256);
    (void)builder.run();
    ClusterPushPull spread(builder.driver());
    const auto report = spread.run(0, builder.cluster_target(), /*reset_metrics=*/true);
    ASSERT_TRUE(report.all_informed);
    EXPECT_LT(report.payload_messages_per_node(), 6.0) << "n=" << n;
  }
}

TEST(ClusterPushPull, LargerDeltaFewerRounds) {
  // The Section 7 trade-off: more communication per node, fewer rounds.
  sim::NetworkOptions o;
  o.n = 65536;
  o.seed = 23;
  std::uint64_t rounds_small = 0, rounds_large = 0;
  {
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster3 builder(engine, 64);
    (void)builder.run();
    ClusterPushPull spread(builder.driver());
    const auto r = spread.run(0, builder.cluster_target(), true);
    ASSERT_TRUE(r.all_informed);
    rounds_small = r.rounds;
  }
  {
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster3 builder(engine, 8192);
    (void)builder.run();
    ClusterPushPull spread(builder.driver());
    const auto r = spread.run(0, builder.cluster_target(), true);
    ASSERT_TRUE(r.all_informed);
    rounds_large = r.rounds;
  }
  EXPECT_LT(rounds_large, rounds_small);
}

TEST(ClusterPushPull, MetricsResetIsolatesTheBroadcast) {
  sim::NetworkOptions o;
  o.n = 4096;
  o.seed = 29;
  sim::Network net(o);
  sim::Engine engine(net);
  Cluster3 builder(engine, 128);
  (void)builder.run();
  const std::uint64_t construction_rounds = engine.rounds();
  ClusterPushPull spread(builder.driver());
  const auto report = spread.run(0, builder.cluster_target(), /*reset_metrics=*/true);
  EXPECT_LT(report.rounds, construction_rounds + 60);
  EXPECT_EQ(report.rounds, report.stats.rounds);  // reset => stats cover run only
}

TEST(ClusterPushPull, SourceInsideAnyClusterWorks) {
  sim::NetworkOptions o;
  o.n = 4096;
  o.seed = 31;
  for (std::uint32_t source : {0u, 1u, 4095u, 2048u}) {
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster3 builder(engine, 128);
    (void)builder.run();
    ClusterPushPull spread(builder.driver());
    EXPECT_TRUE(spread.run(source, builder.cluster_target(), true).all_informed)
        << "source=" << source;
  }
}

}  // namespace
}  // namespace gossip::core
