// Observability golden-content determinism (PR 7): the per-round time
// series and the structured event log collected on a churn + loss burst +
// byzantine scenario must be BIT-IDENTICAL - as serialised by the obs
// exporters, wall-clock fields excluded - across TrialRunner worker counts
// {1, 2, 8} x sharded engine thread counts {1, 2, 8} x delivery bucket
// counts {1, 64}. Plus: the Chrome trace exporter must emit valid JSON with
// monotone per-track timestamps.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "runner/trial_runner.hpp"

namespace gossip::runner {
namespace {

ScenarioSpec telemetry_spec() {
  ScenarioSpec spec;
  spec.name = "obs-golden";
  spec.algorithm = "push_pull";
  spec.n = 256;
  spec.trials = 4;
  spec.seed = 11;
  spec.rumor_bits = 128;
  spec.join_rate = 0.8;                  // fresh arrivals most rounds
  spec.crash_rate = 0.4;                 // mid-run departures
  spec.loss_schedule = "burst:0.2:2:6";  // on a flaky fabric
  spec.byzantine_fraction = 0.05;        // with poisoned pull responses
  spec.timeseries = "armed";  // any non-empty path arms collection
  return spec;
}

/// The determinism-covered serialisation: time series without the
/// wall-clock *_ns fields, plus the full event log.
std::string golden(const ScenarioResult& result) {
  obs::ExportOptions opt;
  opt.timing = false;
  const auto views = result.telemetry_views();
  std::ostringstream os;
  obs::write_timeseries_jsonl(os, views, opt);
  obs::write_events_jsonl(os, views, opt);
  return os.str();
}

TEST(ChurnTelemetryGolden, CollectsEveryEventKindAndEveryRound) {
  const ScenarioResult result = TrialRunner(1).run(telemetry_spec());
  ASSERT_EQ(result.telemetry.size(), result.reports.size());
  for (std::size_t t = 0; t < result.telemetry.size(); ++t) {
    // One record per engine round, in round order.
    const auto& records = result.telemetry[t]->rounds.records();
    ASSERT_EQ(records.size(), result.reports[t].rounds) << "trial " << t;
    for (std::size_t r = 0; r < records.size(); ++r) {
      EXPECT_EQ(records[r].round, r) << "trial " << t;
    }
    // The push_pull baseline installs an informed-count probe; the final
    // record's count matches the report (the report re-counts alive-only,
    // so it can only be <= the raw counter).
    EXPECT_NE(records.back().informed, obs::kNoCount) << "trial " << t;
    EXPECT_GE(records.back().informed, result.reports[t].informed)
        << "trial " << t;
  }
  // The fault layer actually fed the log: every kind shows up somewhere.
  std::map<obs::EventKind, std::size_t> kinds;
  for (const auto& telemetry : result.telemetry) {
    for (const obs::Event& e : telemetry->events.events()) ++kinds[e.kind];
  }
  EXPECT_GT(kinds[obs::EventKind::kJoin], 0u);
  EXPECT_GT(kinds[obs::EventKind::kCrash], 0u);
  EXPECT_GT(kinds[obs::EventKind::kLossDrop], 0u);
  EXPECT_GT(kinds[obs::EventKind::kCorruptResponse], 0u);
}

TEST(ChurnTelemetryGolden, BitIdenticalAcrossWorkersThreadsAndBuckets) {
  ScenarioSpec spec = telemetry_spec();
  spec.engine_threads = 1;
  spec.delivery_buckets = 1;
  const std::string base = golden(TrialRunner(1).run(spec));
  ASSERT_FALSE(base.empty());
  for (const unsigned workers : {1u, 2u, 8u}) {
    for (const unsigned engine_threads : {1u, 2u, 8u}) {
      for (const unsigned buckets : {1u, 64u}) {
        ScenarioSpec alt = telemetry_spec();
        alt.engine_threads = engine_threads;
        alt.delivery_buckets = buckets;
        EXPECT_EQ(golden(TrialRunner(workers).run(alt)), base)
            << "workers=" << workers << " engine_threads=" << engine_threads
            << " delivery_buckets=" << buckets;
      }
    }
  }
}

TEST(ChurnTelemetryGolden, PreRunCrashesLandAtRoundMinusOne) {
  ScenarioSpec spec;
  spec.name = "obs-prerun";
  spec.algorithm = "push_pull";
  spec.n = 128;
  spec.trials = 2;
  spec.seed = 5;
  spec.fault_fraction = 0.1;  // legacy pre-run StaticCrash
  spec.events = "armed";
  const ScenarioResult result = TrialRunner(1).run(spec);
  std::size_t prerun_crashes = 0;
  for (const auto& telemetry : result.telemetry) {
    for (const obs::Event& e : telemetry->events.events()) {
      ASSERT_EQ(e.kind, obs::EventKind::kCrash);
      EXPECT_EQ(e.round, obs::kPreRunRound);
      ++prerun_crashes;
    }
  }
  EXPECT_EQ(prerun_crashes, 2u * spec.fault_count());
}

// ---------------------------------------------------------------------------
// Chrome trace: valid JSON, monotone per-track timestamps.

/// Minimal recursive-descent JSON validator (structure only; enough to
/// guarantee chrome://tracing / Perfetto can parse the file).
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      pos_ += s_[pos_] == '\\' ? 2 : 1;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TraceExport, EmitsValidJsonWithMonotoneTimestampsPerTrack) {
  ScenarioSpec spec = telemetry_spec();
  spec.trials = 3;
  const ScenarioResult result = TrialRunner(2).run(spec);
  std::ostringstream os;
  obs::write_chrome_trace(os, result.telemetry_views());
  const std::string trace = os.str();
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(JsonScanner(trace).valid()) << trace.substr(0, 200);

  // Every complete ("X") span carries its track in `tid` BEFORE `ts` (the
  // writer's fixed key order), so a forward scan pairs them up. Timestamps
  // must be monotone non-decreasing within each track.
  std::map<long, double> last_ts;
  std::size_t spans = 0;
  std::size_t pos = 0;
  while ((pos = trace.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    const std::size_t tid_pos = trace.find("\"tid\":", pos);
    const std::size_t ts_pos = trace.find("\"ts\":", pos);
    ASSERT_NE(tid_pos, std::string::npos);
    ASSERT_NE(ts_pos, std::string::npos);
    ASSERT_LT(tid_pos, ts_pos) << "tid must precede ts in the span object";
    const long tid = std::stol(trace.substr(tid_pos + 6));
    const double ts = std::stod(trace.substr(ts_pos + 5));
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "track " << tid;
    }
    last_ts[tid] = ts;
    ++spans;
    pos = ts_pos;
  }
  // 3 phase spans per recorded round, one track per trial.
  std::size_t expected = 0;
  for (const auto& telemetry : result.telemetry) {
    expected += 3 * telemetry->rounds.records().size();
  }
  EXPECT_EQ(spans, expected);
  EXPECT_EQ(last_ts.size(), result.telemetry.size());
}

}  // namespace
}  // namespace gossip::runner
