// Unit tests for the deterministic RNG (common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace gossip {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    hit_lo |= v == 5;
    hit_hi |= v == 8;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(31);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkIsDeterministic) {
  Rng base(37);
  Rng a = base.fork(99);
  Rng b = base.fork(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(41), b(41);
  (void)a.fork(5);
  (void)a.fork(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(43);
  std::shuffle(v.begin(), v.end(), rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);  // a permutation
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
}

TEST(Rng, FillUniformBelowMatchesScalarStream) {
  // The bulk fill must be bit-identical to repeated uniform_below calls so
  // batched engines reproduce unbatched seeded runs.
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000003ull, (1ull << 33) + 5}) {
    Rng scalar(99);
    Rng bulk(99);
    std::vector<std::uint64_t> expected(257);
    for (auto& v : expected) v = scalar.uniform_below(bound);
    std::vector<std::uint64_t> got(257);
    bulk.fill_uniform_below(bound, got);
    EXPECT_EQ(got, expected) << "bound " << bound;
    // And the generators end in the same state.
    EXPECT_EQ(scalar.next_u64(), bulk.next_u64());
  }
}

TEST(Rng, FillUniformBelow32BitMatchesScalarStream) {
  Rng scalar(7);
  Rng bulk(7);
  const std::uint64_t bound = 999983;
  std::vector<std::uint32_t> expected(100);
  for (auto& v : expected) v = static_cast<std::uint32_t>(scalar.uniform_below(bound));
  std::vector<std::uint32_t> got(100);
  bulk.fill_uniform_below(bound, got);
  EXPECT_EQ(got, expected);
}

TEST(Rng, FillUniformBelowStaysInRange) {
  Rng rng(3);
  std::vector<std::uint64_t> out(10000);
  rng.fill_uniform_below(13, out);
  for (const std::uint64_t v : out) EXPECT_LT(v, 13u);
}

TEST(Rng, FillUniformBelowEmptySpanIsNoOp) {
  Rng a(5);
  Rng b(5);
  a.fill_uniform_below(10, std::span<std::uint64_t>{});
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Mix64, StatelessAndStable) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 5;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace gossip
