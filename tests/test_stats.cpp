// Unit tests for the statistics helpers (common/stats.hpp).
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

namespace gossip {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);

  RunningStat c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 3.0);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), ContractViolation);
}

TEST(Summarize, Basics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace gossip
