// Tests for Cluster2 (paper Algorithm 2, Theorem 2): correctness sweep plus
// the message- and bit-complexity bounds that make it the main result.
#include "core/cluster2.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "core/cluster1.hpp"
#include "sim/engine.hpp"

namespace gossip::core {
namespace {

struct Case {
  std::uint32_t n;
  std::uint64_t seed;
};

class Cluster2Sweep : public ::testing::TestWithParam<Case> {};

TEST_P(Cluster2Sweep, InformsEveryNode) {
  const auto [n, seed] = GetParam();
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  o.track_knowledge = n <= 4096;
  sim::Network net(o);
  sim::Engine engine(net);
  cluster::DriverOptions d;
  d.validate = true;
  Cluster2 algo(engine, Cluster2Options{}, d);
  const auto report = algo.run(/*source=*/seed % n);
  EXPECT_TRUE(report.all_informed) << report.informed << "/" << report.alive;
  EXPECT_TRUE(algo.driver().clustering().is_flat());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Cluster2Sweep,
    ::testing::Values(Case{64, 1}, Case{256, 1}, Case{256, 2}, Case{1024, 1},
                      Case{1024, 2}, Case{1024, 3}, Case{4096, 1}, Case{4096, 2},
                      Case{16384, 1}, Case{65536, 1}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_s" + std::to_string(info.param.seed);
    });

TEST(Cluster2, MessageComplexityStaysBoundedAcrossScale) {
  // Theorem 2: O(1) messages per node on average. The per-node payload
  // count must stay below one constant across three orders of magnitude
  // (any log n term would push it past the bound at the top end).
  for (std::uint32_t n : {1024u, 8192u, 65536u, 262144u}) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 21;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster2 algo(engine);
    const auto report = algo.run(0);
    ASSERT_TRUE(report.all_informed) << "n=" << n;
    EXPECT_LT(report.payload_messages_per_node(), 25.0) << "n=" << n;
  }
}

TEST(Cluster2, BitComplexityIsLinearInRumorSize) {
  // Theorem 2: O(nb) bits total. Per node: O(b) once b dominates log n.
  for (std::uint32_t b : {256u, 1024u, 4096u}) {
    sim::NetworkOptions o;
    o.n = 16384;
    o.seed = 4;
    o.rumor_bits = b;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster2 algo(engine);
    const auto report = algo.run(0);
    ASSERT_TRUE(report.all_informed);
    // Every node receives the rumor at least once => >= b bits/node; the
    // O(nb) bound allows a small constant multiple plus O(log n) ID traffic.
    EXPECT_GE(report.bits_per_node(), static_cast<double>(b));
    EXPECT_LT(report.bits_per_node(), 4.0 * b + 2000.0) << "b=" << b;
  }
}

TEST(Cluster2, RoundComplexityScalesAsLogLog) {
  for (std::uint32_t n : {256u, 4096u, 65536u, 262144u}) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 8;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster2 algo(engine);
    const auto report = algo.run(0);
    ASSERT_TRUE(report.all_informed) << "n=" << n;
    EXPECT_LE(report.rounds, 30.0 * loglog2d(n)) << "n=" << n;
  }
}

TEST(Cluster2, OnlyAFractionOfNodesClusteredMidway) {
  // Lemma 11/12: through grow and square, only Theta(n / log n) nodes are
  // clustered (within the calibration's constant). Observed via the phase
  // observer's clustering statistics.
  sim::NetworkOptions o;
  o.n = 65536;
  o.seed = 2;
  sim::Network net(o);
  sim::Engine engine(net);
  std::uint64_t max_clustered_during_square = 0;
  Cluster2 algo(engine, Cluster2Options{}, cluster::DriverOptions{},
                [&](const PhaseSnapshot& s) {
                  if (s.phase == "square" || s.phase == "grow") {
                    max_clustered_during_square =
                        std::max(max_clustered_during_square, s.clustering.clustered_nodes);
                  }
                });
  ASSERT_TRUE(algo.run(0).all_informed);
  EXPECT_LT(max_clustered_during_square, 65536u / 4) << "clustered mass out of control";
  EXPECT_GT(max_clustered_during_square, 65536u / 200) << "clustered mass collapsed";
}

TEST(Cluster2, PhaseBreakdownNamesAndCoverage) {
  sim::NetworkOptions o;
  o.n = 4096;
  o.seed = 10;
  sim::Network net(o);
  sim::Engine engine(net);
  Cluster2 algo(engine);
  const auto report = algo.run(0);
  std::vector<std::string> names;
  std::uint64_t sum = 0;
  for (const auto& p : report.phases) {
    names.push_back(p.name);
    sum += p.rounds;
  }
  EXPECT_EQ(names, (std::vector<std::string>{"grow", "square", "merge_all", "bounded_push",
                                             "pull", "share"}));
  EXPECT_EQ(sum, report.rounds);
}

TEST(Cluster2, DeterministicInSeed) {
  auto run_once = [] {
    sim::NetworkOptions o;
    o.n = 4096;
    o.seed = 31;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster2 algo(engine);
    return algo.run(7);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.stats.total.bits, b.stats.total.bits);
}

TEST(Cluster2, FewerMessagesThanCluster1AtScale) {
  // The whole point of Cluster2 over Cluster1 (paper Section 5).
  sim::NetworkOptions o;
  o.n = 262144;
  o.seed = 6;
  sim::Network net1(o);
  sim::Engine e1(net1);
  Cluster1 c1(e1);
  const auto r1 = c1.run(0);

  sim::Network net2(o);
  sim::Engine e2(net2);
  Cluster2 c2(e2);
  const auto r2 = c2.run(0);

  ASSERT_TRUE(r1.all_informed);
  ASSERT_TRUE(r2.all_informed);
  EXPECT_LT(r2.payload_messages_per_node(), r1.payload_messages_per_node());
}

}  // namespace
}  // namespace gossip::core
