// Unit tests for the network substrate (sim/network.hpp).
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/assert.hpp"

namespace gossip::sim {
namespace {

NetworkOptions opts(std::uint32_t n, std::uint64_t seed = 1) {
  NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return o;
}

TEST(Network, IdIndexRoundTrip) {
  Network net(opts(100));
  std::unordered_set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < net.n(); ++i) {
    const NodeId id = net.id_of(i);
    EXPECT_TRUE(id.is_node());
    EXPECT_TRUE(seen.insert(id.raw()).second);
    EXPECT_EQ(net.index_of(id), i);
    EXPECT_EQ(net.find(id), std::optional<std::uint32_t>(i));
  }
}

TEST(Network, UnknownIdHandling) {
  Network net(opts(16));
  // An ID almost surely not in a 16-node network.
  const NodeId bogus(0x1234567890abcdefULL);
  if (!net.find(bogus)) {
    EXPECT_THROW((void)net.index_of(bogus), ContractViolation);
    EXPECT_EQ(net.find(bogus), std::nullopt);
  }
}

// The flat open-addressing index must behave exactly like the old
// unordered_map probe: every real ID resolves, misses miss, and the
// unclustered sentinel (which doubles as the index's empty-slot key) indexes
// nothing.
TEST(Network, FlatIndexLargeRoundTrip) {
  Network net(opts(50000, 3));
  for (std::uint32_t i = 0; i < net.n(); ++i) {
    ASSERT_EQ(net.find(net.id_of(i)), std::optional<std::uint32_t>(i)) << i;
  }
}

TEST(Network, FindUnclusteredSentinelMisses) {
  Network net(opts(64));
  EXPECT_EQ(net.find(NodeId::unclustered()), std::nullopt);
  EXPECT_THROW((void)net.index_of(NodeId::unclustered()), ContractViolation);
}

TEST(Network, FindMissesNearExistingKeys) {
  Network net(opts(1024, 11));
  // Probe perturbed copies of real IDs: same hash neighbourhood, absent key.
  for (std::uint32_t i = 0; i < net.n(); i += 37) {
    const NodeId near(net.id_of(i).raw() ^ 1ULL);
    if (!net.find(near)) {
      EXPECT_EQ(net.find(near), std::nullopt);
    } else {
      // Astronomically unlikely (the perturbed ID is another real node), but
      // if so index_of must agree.
      EXPECT_EQ(net.id_of(*net.find(near)), near);
    }
  }
}

TEST(Network, FindSurvivesFailures) {
  Network net(opts(32));
  net.fail(5);
  // Failed nodes stay addressable (contacts to them are lost, not invalid).
  EXPECT_EQ(net.find(net.id_of(5)), std::optional<std::uint32_t>(5));
}

TEST(Network, DeterministicInSeed) {
  Network a(opts(64, 9)), b(opts(64, 9));
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(a.id_of(i), b.id_of(i));
}

TEST(Network, DifferentSeedsGiveDifferentIds) {
  Network a(opts(64, 1)), b(opts(64, 2));
  int same = 0;
  for (std::uint32_t i = 0; i < 64; ++i) same += a.id_of(i) == b.id_of(i) ? 1 : 0;
  EXPECT_LE(same, 2);
}

TEST(Network, TooSmallThrows) {
  EXPECT_THROW(Network net(opts(1)), ContractViolation);
}

TEST(Network, FailuresTracked) {
  Network net(opts(10));
  EXPECT_EQ(net.alive_count(), 10u);
  net.fail(3);
  net.fail(7);
  // Double-failing is a contract violation (a fault-schedule bug), not a
  // silent no-op - and it must not disturb the bookkeeping.
  EXPECT_THROW(net.fail(3), ContractViolation);
  EXPECT_EQ(net.alive_count(), 8u);
  EXPECT_EQ(net.failed_count(), 2u);
  EXPECT_FALSE(net.alive(3));
  EXPECT_FALSE(net.alive(7));
  EXPECT_TRUE(net.alive(0));
}

TEST(Network, NodeRngDeterministicPerSaltAndIndex) {
  Network net(opts(8, 5));
  Rng a = net.node_rng(3, 100);
  Rng b = net.node_rng(3, 100);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Network, NodeRngDiffersAcrossNodesAndSalts) {
  Network net(opts(8, 5));
  Rng a = net.node_rng(3, 100);
  Rng b = net.node_rng(4, 100);
  Rng c = net.node_rng(3, 101);
  int same_ab = 0, same_ac = 0;
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next_u64();
    same_ab += x == b.next_u64() ? 1 : 0;
    same_ac += x == c.next_u64() ? 1 : 0;
  }
  EXPECT_LE(same_ab, 1);
  EXPECT_LE(same_ac, 1);
}

TEST(Network, KnowledgeTrackerOptional) {
  Network without(opts(8));
  EXPECT_EQ(without.knowledge(), nullptr);
  NetworkOptions o = opts(8);
  o.track_knowledge = true;
  Network with(o);
  EXPECT_NE(with.knowledge(), nullptr);
}

TEST(Network, CostsDerivedFromN) {
  NetworkOptions o = opts(1 << 16);
  o.rumor_bits = 512;
  Network net(o);
  EXPECT_EQ(net.costs().rumor_bits, 512u);
  EXPECT_EQ(net.costs().id_bits, 48u);  // 3 * log2(2^16)
}

}  // namespace
}  // namespace gossip::sim
