// Tests for the Avin-Elsasser reconstruction (baselines/avin_elsasser.hpp):
// correctness plus the Theorem 1 complexity shapes (O(sqrt(log n)) rounds
// and messages per node).
#include "baselines/avin_elsasser.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "sim/engine.hpp"

namespace gossip::baselines {
namespace {

sim::NetworkOptions opts(std::uint32_t n, std::uint64_t seed = 1) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return o;
}

struct Case {
  std::uint32_t n;
  std::uint64_t seed;
};

class AvinElsasserSweep : public ::testing::TestWithParam<Case> {};

TEST_P(AvinElsasserSweep, InformsEveryone) {
  const auto [n, seed] = GetParam();
  sim::Network net(opts(n, seed));
  sim::Engine engine(net);
  cluster::DriverOptions d;
  d.validate = true;
  AvinElsasser algo(engine, AvinElsasserOptions{}, d);
  const auto report = algo.run(0);
  EXPECT_TRUE(report.all_informed) << report.informed << "/" << report.alive;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AvinElsasserSweep,
                         ::testing::Values(Case{256, 1}, Case{1024, 1}, Case{1024, 2},
                                           Case{4096, 1}, Case{16384, 1}, Case{65536, 1}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(AvinElsasser, RoundsScaleAsSqrtLog) {
  // Theorem 1 shape: O(sqrt(log n)) rounds with one constant across scale.
  for (std::uint32_t n : {1024u, 16384u, 262144u}) {
    sim::Network net(opts(n, 3));
    sim::Engine engine(net);
    AvinElsasser algo(engine);
    const auto report = algo.run(0);
    ASSERT_TRUE(report.all_informed) << "n=" << n;
    EXPECT_LE(static_cast<double>(report.rounds),
              22.0 * std::sqrt(log2d(n)) + 30.0)
        << "n=" << n;
  }
}

TEST(AvinElsasser, MessagesPerNodeScaleAsSqrtLog) {
  for (std::uint32_t n : {4096u, 65536u}) {
    sim::Network net(opts(n, 5));
    sim::Engine engine(net);
    AvinElsasser algo(engine);
    const auto report = algo.run(0);
    ASSERT_TRUE(report.all_informed) << "n=" << n;
    EXPECT_LE(report.payload_messages_per_node(), 12.0 * std::sqrt(log2d(n)))
        << "n=" << n;
  }
}

TEST(AvinElsasser, PhaseBreakdownCoversRun) {
  sim::Network net(opts(4096, 7));
  sim::Engine engine(net);
  AvinElsasser algo(engine);
  const auto report = algo.run(0);
  std::uint64_t sum = 0;
  for (const auto& p : report.phases) sum += p.rounds;
  EXPECT_EQ(sum, report.rounds);
  ASSERT_EQ(report.phases.size(), 5u);
  EXPECT_EQ(report.phases[1].name, "merge_phases");
}

TEST(AvinElsasser, DeterministicInSeed) {
  auto once = [] {
    sim::Network net(opts(4096, 9));
    sim::Engine engine(net);
    AvinElsasser algo(engine);
    return algo.run(0);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.stats.total.payload_messages, b.stats.total.payload_messages);
}

}  // namespace
}  // namespace gossip::baselines
