// Unit tests for the small-buffer vector (common/inline_vec.hpp).
#include "common/inline_vec.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/ids.hpp"

namespace gossip {
namespace {

using Vec = InlineVec<int, 3>;

TEST(InlineVec, StartsEmpty) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(InlineVec, InlineStorage) {
  Vec v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
}

TEST(InlineVec, SpillsToOverflow) {
  Vec v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  EXPECT_EQ(v.back(), 99);
}

TEST(InlineVec, OutOfBoundsThrows) {
  Vec v{1};
  EXPECT_THROW((void)v[1], ContractViolation);
  EXPECT_THROW((void)v[100], ContractViolation);
}

TEST(InlineVec, ClearResetsEverything) {
  Vec v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 42);
}

TEST(InlineVec, Contains) {
  Vec v{1, 2, 3};
  v.push_back(50);  // spilled
  EXPECT_TRUE(v.contains(2));
  EXPECT_TRUE(v.contains(50));
  EXPECT_FALSE(v.contains(7));
}

TEST(InlineVec, ToVector) {
  Vec v;
  for (int i = 0; i < 7; ++i) v.push_back(i * i);
  const auto out = v.to_vector();
  ASSERT_EQ(out.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(InlineVec, ForEachVisitsAllInOrder) {
  Vec v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  int expected = 0;
  v.for_each([&](int x) { EXPECT_EQ(x, expected++); });
  EXPECT_EQ(expected, 6);
}

TEST(InlineVec, Equality) {
  Vec a{1, 2}, b{1, 2}, c{1, 3}, d{1, 2, 3};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(InlineVec, WorksWithNodeId) {
  InlineVec<NodeId, 3> v;
  v.push_back(NodeId(5));
  v.push_back(NodeId::unclustered());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], NodeId(5));
  EXPECT_TRUE(v[1].is_unclustered());
}

TEST(InlineVec, MutableIndexing) {
  Vec v{1, 2, 3};
  v.push_back(4);
  v[0] = 10;
  v[3] = 40;
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[3], 40);
}

}  // namespace
}  // namespace gossip
