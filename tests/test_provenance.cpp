// Spread provenance tracing (PR 8): the per-node first-inform trace - as
// serialised by obs::write_provenance_jsonl - must be BIT-IDENTICAL across
// TrialRunner worker counts {1, 2, 8} x sharded engine thread counts
// {1, 2, 8} x delivery bucket counts {1, 64} on a churn + loss burst +
// byzantine scenario, including mid-run joiners. Plus: the tracer's
// first-write-wins/bitmap semantics, the dispersion-tree metrics, the
// spread_depth/direct_share report metrics, and the event_sample_cap
// scenario key.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/provenance.hpp"
#include "runner/json_report.hpp"
#include "runner/trial_runner.hpp"

namespace gossip::runner {
namespace {

using obs::ProvenanceTracer;

ScenarioSpec provenance_spec() {
  ScenarioSpec spec;
  spec.name = "prov-golden";
  spec.algorithm = "push_pull";
  spec.n = 256;
  spec.trials = 4;
  spec.seed = 11;
  spec.rumor_bits = 128;
  spec.join_rate = 0.8;                  // fresh arrivals most rounds
  spec.crash_rate = 0.4;                 // mid-run departures
  spec.loss_schedule = "burst:0.2:2:6";  // on a flaky fabric
  spec.byzantine_fraction = 0.05;        // with poisoned pull responses
  spec.provenance = "armed";  // any non-empty path arms collection
  return spec;
}

std::string golden(const ScenarioResult& result) {
  std::ostringstream os;
  obs::write_provenance_jsonl(os, result.telemetry_views());
  return os.str();
}

// ---------------------------------------------------------------------------
// Tracer unit semantics.

TEST(ProvenanceTracer, FirstWriteWinsAndSeedsSitAtRoundMinusOne) {
  ProvenanceTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.active());
  tracer.arm(8);
  EXPECT_TRUE(tracer.active());

  tracer.note_seed(3);
  EXPECT_TRUE(tracer.informed(3));
  EXPECT_EQ(tracer.entries()[3].round, ProvenanceTracer::kSeedRound);
  EXPECT_EQ(tracer.entries()[3].channel, ProvenanceTracer::kChanSeed);
  EXPECT_EQ(tracer.entries()[3].informer, 3u);

  tracer.note_first_inform(5, 3, 0, ProvenanceTracer::kChanPush);
  tracer.note_first_inform(5, 7, 1, ProvenanceTracer::kChanExchange);  // loses
  EXPECT_EQ(tracer.entries()[5].informer, 3u);
  EXPECT_EQ(tracer.entries()[5].round, 0);
  EXPECT_EQ(tracer.entries()[5].channel, ProvenanceTracer::kChanPush);

  // Out-of-range nodes are ignored, never recorded.
  tracer.note_first_inform(8, 0, 0, ProvenanceTracer::kChanPush);
  EXPECT_FALSE(tracer.informed(8));
  EXPECT_EQ(tracer.informed_count(), 2u);

  // Once every slot is informed, active() turns false (the engine's cue to
  // drop back to the untraced delivery loops).
  for (std::uint32_t v = 0; v < 8; ++v) {
    tracer.note_first_inform(v, 3, 2, ProvenanceTracer::kChanPullResponse);
  }
  EXPECT_EQ(tracer.informed_count(), 8u);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_FALSE(tracer.active());
}

TEST(ProvenanceTracer, SpreadMetricsOnHandBuiltTree) {
  // seed 0 -> {1 (push), 2 (direct pull)} ; 1 -> 3 ; uninformed 4.
  ProvenanceTracer tracer;
  tracer.arm(5);
  tracer.note_seed(0);
  tracer.note_first_inform(1, 0, 0, ProvenanceTracer::kChanPush);
  tracer.note_first_inform(
      2, 0, 0,
      ProvenanceTracer::kChanPullResponse | ProvenanceTracer::kDirectBit);
  tracer.note_first_inform(3, 1, 1, ProvenanceTracer::kChanPush);

  const std::vector<std::uint32_t> depths = obs::spread_depths(tracer);
  EXPECT_EQ(depths[0], 0u);
  EXPECT_EQ(depths[1], 1u);
  EXPECT_EQ(depths[2], 1u);
  EXPECT_EQ(depths[3], 2u);
  EXPECT_EQ(depths[4], obs::kNoDepth);

  const obs::SpreadMetrics m = obs::spread_metrics(tracer);
  EXPECT_EQ(m.informed, 4u);
  EXPECT_EQ(m.depth, 2u);
  EXPECT_EQ(m.max_branching, 2u);   // the seed informed two nodes
  EXPECT_DOUBLE_EQ(m.mean_branching, 1.5);  // internal nodes 0 and 1
  EXPECT_DOUBLE_EQ(m.direct_share, 1.0 / 3.0);  // one of three non-seed
}

// ---------------------------------------------------------------------------
// The golden determinism contract.

TEST(ProvenanceGolden, BitIdenticalAcrossWorkersThreadsAndBuckets) {
  ScenarioSpec spec = provenance_spec();
  spec.engine_threads = 1;
  spec.delivery_buckets = 1;
  const std::string base = golden(TrialRunner(1).run(spec));
  ASSERT_FALSE(base.empty());
  for (const unsigned workers : {1u, 2u, 8u}) {
    for (const unsigned engine_threads : {1u, 2u, 8u}) {
      for (const unsigned buckets : {1u, 64u}) {
        ScenarioSpec alt = provenance_spec();
        alt.engine_threads = engine_threads;
        alt.delivery_buckets = buckets;
        EXPECT_EQ(golden(TrialRunner(workers).run(alt)), base)
            << "workers=" << workers << " engine_threads=" << engine_threads
            << " delivery_buckets=" << buckets;
      }
    }
  }
}

TEST(ProvenanceGolden, TracesSeedsAndMidRunJoiners) {
  const ScenarioSpec spec = provenance_spec();
  const ScenarioResult result = TrialRunner(2).run(spec);
  ASSERT_EQ(result.telemetry.size(), spec.trials);
  bool joiner_informed = false;
  for (unsigned t = 0; t < spec.trials; ++t) {
    const ProvenanceTracer& tracer = result.telemetry[t]->provenance;
    ASSERT_TRUE(tracer.enabled()) << "trial " << t;
    // Exactly one seed, at round -1, crediting itself.
    std::size_t seeds = 0;
    for (std::uint32_t v = 0; v < tracer.capacity(); ++v) {
      if (!tracer.informed(v)) continue;
      const ProvenanceTracer::Entry& e = tracer.entries()[v];
      if (e.channel == ProvenanceTracer::kChanSeed) {
        ++seeds;
        EXPECT_EQ(e.round, ProvenanceTracer::kSeedRound);
        EXPECT_EQ(e.informer, v);
      } else {
        EXPECT_GE(e.round, 0) << "trial " << t << " node " << v;
        // A mid-run joiner (index >= n) got the rumor: its ID can only
        // have been learned from gossiped membership, then dialled or
        // drawn - either way the trace must cover it.
        if (v >= spec.n) joiner_informed = true;
      }
    }
    EXPECT_EQ(seeds, 1u) << "trial " << t;
    // The tracer saw at least as many informs as the report's alive-only
    // count (crashed-after-inform nodes stay in the trace).
    EXPECT_GE(tracer.informed_count(), result.reports[t].informed)
        << "trial " << t;
  }
  EXPECT_TRUE(joiner_informed)
      << "no trial informed any joined node (index >= n)";
}

// ---------------------------------------------------------------------------
// Report metrics.

TEST(ProvenanceReport, SpreadMetricsAppearInAggregateAndJson) {
  // push_pull draws every contact uniformly, so its first-informs can never
  // carry the direct bit; cluster2 dials learned IDs.
  ScenarioSpec spec;
  spec.name = "prov-report";
  spec.algorithm = "push_pull";
  spec.n = 256;
  spec.trials = 3;
  spec.seed = 9;
  const ScenarioResult uniform = TrialRunner(2).run(spec);
  EXPECT_GT(uniform.aggregate.spread_depth.mean(), 0.0);
  EXPECT_EQ(uniform.aggregate.direct_share.mean(), 0.0);
  EXPECT_EQ(uniform.aggregate.spread_depth.count(), spec.trials);
  for (const core::BroadcastReport& r : uniform.reports) {
    EXPECT_GT(r.spread_depth, 0.0);
    EXPECT_LT(r.spread_depth, static_cast<double>(spec.n));
  }
  // Telemetry was not requested, so the handles were dropped after the
  // metrics were derived.
  EXPECT_TRUE(uniform.telemetry.empty());
  EXPECT_GT(uniform.peak_rss_bytes, 0u);

  spec.algorithm = "cluster2";
  const ScenarioResult clustered = TrialRunner(2).run(spec);
  EXPECT_GT(clustered.aggregate.spread_depth.mean(), 0.0);
  EXPECT_GT(clustered.aggregate.direct_share.mean(), 0.0);

  for (const ScenarioResult* result : {&uniform, &clustered}) {
    std::ostringstream os;
    write_scenario_json(os, *result);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"spread_depth\""), std::string::npos);
    EXPECT_NE(json.find("\"direct_share\""), std::string::npos);
    EXPECT_NE(json.find("\"peak_rss_bytes\""), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The event_sample_cap scenario key.

TEST(EventSampleCap, RejectsZeroAndGarbage) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.apply("event_sample_cap", "0"), ScenarioError);
  EXPECT_THROW(spec.apply("event_sample_cap", "lots"), ScenarioError);
  EXPECT_THROW(spec.apply("event_sample_cap", "-3"), ScenarioError);
  spec.apply("event_sample_cap", "4");
  EXPECT_EQ(spec.event_sample_cap, 4u);
}

TEST(EventSampleCap, BoundsPerRoundPerKindEvents) {
  ScenarioSpec spec = provenance_spec();
  spec.events = "armed";
  spec.event_sample_cap = 2;
  const ScenarioResult result = TrialRunner(1).run(spec);
  std::map<std::pair<std::int64_t, int>, std::size_t> sampled;  // (round, kind)
  std::size_t loss_drops = 0;
  for (const auto& telemetry : result.telemetry) {
    sampled.clear();
    for (const obs::Event& e : telemetry->events.events()) {
      if (e.kind != obs::EventKind::kLossDrop &&
          e.kind != obs::EventKind::kCorruptResponse) {
        continue;  // joins/crashes are never sampled
      }
      ++sampled[{e.round, static_cast<int>(e.kind)}];
      loss_drops += e.kind == obs::EventKind::kLossDrop;
    }
    for (const auto& [key, count] : sampled) {
      EXPECT_LE(count, 2u) << "round " << key.first << " kind " << key.second;
    }
  }
  EXPECT_GT(loss_drops, 0u);  // the burst actually produced samples
}

}  // namespace
}  // namespace gossip::runner
