// Parity suite for the receiver-bucketed delivery phases (PR 5): delivery
// CONTENT must be bit-identical for EVERY bucket count - per-round
// RoundStats, learned knowledge sets, every per-node hook-observable tally -
// on both the serial and the sharded executor, with and without the opt-in
// pool execution of phases 2-3, and with fault models dropping payloads.
// Only the cross-receiver interleaving of on_push/respond calls may change,
// which no per-node hook can observe (see the bucketing notes in
// sim/engine.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "sim/fault.hpp"
#include "sim/parallel/parallel_engine.hpp"
#include "sim/push_queue.hpp"

namespace gossip::sim {
namespace {

NetworkOptions opts(std::uint32_t n, std::uint64_t seed, bool track) {
  NetworkOptions o;
  o.n = n;
  o.seed = seed;
  o.track_knowledge = track;
  return o;
}

void expect_round_stats_equal(const RoundStats& a, const RoundStats& b,
                              const char* where) {
  EXPECT_EQ(a.pushes, b.pushes) << where;
  EXPECT_EQ(a.pull_requests, b.pull_requests) << where;
  EXPECT_EQ(a.pull_responses, b.pull_responses) << where;
  EXPECT_EQ(a.payload_messages, b.payload_messages) << where;
  EXPECT_EQ(a.connections, b.connections) << where;
  EXPECT_EQ(a.bits, b.bits) << where;
  EXPECT_EQ(a.initiators, b.initiators) << where;
  EXPECT_EQ(a.max_involvement, b.max_involvement) << where;
}

void expect_runs_equal(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  expect_round_stats_equal(a.total, b.total, "totals");
  ASSERT_EQ(a.per_round.size(), b.per_round.size());
  for (std::size_t r = 0; r < a.per_round.size(); ++r) {
    expect_round_stats_equal(a.per_round[r], b.per_round[r], "per-round");
  }
}

// The three bench workload shapes, instrumented with per-node tallies so any
// delivery difference (content, per-receiver order, drops) compounds into a
// visible divergence. Every hook touches ONLY the addressed node's slot -
// the contract pool delivery requires - and respond() answers from the
// responder's own state so reply content is state-dependent.
enum class Shape { kPush, kPushPull, kExchange };

struct TallyWorkload {
  Shape shape;
  std::vector<std::uint64_t> pushes_seen;   ///< per receiver
  std::vector<std::uint64_t> replies_seen;  ///< per requester
  std::vector<std::uint64_t> responded;     ///< per responder

  TallyWorkload(Shape s, std::uint32_t n)
      : shape(s), pushes_seen(n, 0), replies_seen(n, 0), responded(n, 0) {}

  std::optional<Contact> initiate(std::uint32_t v) {
    switch (shape) {
      case Shape::kPush:
        return Contact::push_random(Message::rumor());
      case Shape::kPushPull:
        if ((v & 1) == 0) return Contact::push_random(Message::rumor());
        return Contact::pull_random();
      case Shape::kExchange:
        return Contact::exchange_random(Message::count(v));
    }
    return std::nullopt;
  }
  Message respond(std::uint32_t v) {
    ++responded[v];
    // State-dependent payload: a reply reflects how often v was pushed to
    // in EARLIER rounds (phase-2 deliveries of the current round included -
    // snapshot semantics make this well-defined under any bucket count).
    return Message::count(pushes_seen[v]);
  }
  void on_push(std::uint32_t r, const Message& m) {
    pushes_seen[r] += 1 + m.ids().size() + (m.has_rumor() ? 1 : 0);
  }
  void on_pull_reply(std::uint32_t q, const Message& m) {
    replies_seen[q] += m.has_count() ? m.count_value() % 97 : 31;
  }
};

struct RunResult {
  RunStats stats;
  std::vector<std::uint64_t> pushes_seen, replies_seen, responded;
  std::uint64_t knowledge = 0;
};

RunResult run_workload(Network& net, Engine& eng, Shape shape, unsigned rounds) {
  TallyWorkload w(shape, net.n());
  for (unsigned r = 0; r < rounds; ++r) eng.run_round(w);
  RunResult res{eng.metrics().run(), std::move(w.pushes_seen),
                std::move(w.replies_seen), std::move(w.responded),
                net.knowledge() ? net.knowledge()->total_knowledge() : 0};
  return res;
}

void expect_results_equal(const RunResult& a, const RunResult& b, const char* what) {
  expect_runs_equal(a.stats, b.stats);
  EXPECT_EQ(a.pushes_seen, b.pushes_seen) << what;
  EXPECT_EQ(a.replies_seen, b.replies_seen) << what;
  EXPECT_EQ(a.responded, b.responded) << what;
  EXPECT_EQ(a.knowledge, b.knowledge) << what;
}

// ---------------------------------------------------------------------------
// Serial engine: trajectories are invariant in the bucket count.
// ---------------------------------------------------------------------------

class DeliveryBucketParity
    : public ::testing::TestWithParam<std::tuple<Shape, bool>> {};

TEST_P(DeliveryBucketParity, SerialBitIdenticalAcrossBucketCounts) {
  const auto [shape, track] = GetParam();
  constexpr std::uint32_t kN = 1500;
  constexpr unsigned kRounds = 12;

  const auto run = [&](std::uint32_t buckets) {
    Network net(opts(kN, 77, track));
    Engine eng(net, /*keep_history=*/true);
    eng.set_delivery_buckets(buckets);
    return run_workload(net, eng, shape, kRounds);
  };
  const RunResult flat = run(1);
  for (const std::uint32_t buckets : {4u, 64u}) {
    const RunResult bucketed = run(buckets);
    expect_results_equal(flat, bucketed, "serial buckets");
  }
  // The engine's auto decomposition is also content-invariant by the same
  // contract (it resolves to flat below the auto width, but pin it anyway).
  expect_results_equal(flat, run(0), "serial auto");
}

// ---------------------------------------------------------------------------
// Sharded engine: buckets x threads x pool-delivery, all bit-identical.
// ---------------------------------------------------------------------------

TEST_P(DeliveryBucketParity, ShardedBitIdenticalAcrossBucketAndThreadCounts) {
  const auto [shape, track] = GetParam();
  constexpr std::uint32_t kN = 1024;
  constexpr unsigned kRounds = 10;
  constexpr std::uint32_t kShard = 128;  // 8 shards: the merge order matters

  const auto run = [&](std::uint32_t buckets, unsigned threads, bool pool_delivery) {
    Network net(opts(kN, 9, track));
    parallel::ParallelEngine eng(net, {.threads = threads,
                                       .shard_size = kShard,
                                       .delivery_buckets = buckets,
                                       .parallel_delivery = pool_delivery,
                                       .keep_history = true});
    return run_workload(net, eng, shape, kRounds);
  };
  const RunResult reference = run(1, 1, false);
  for (const std::uint32_t buckets : {1u, 4u, 64u}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      const RunResult serial_delivery = run(buckets, threads, false);
      expect_results_equal(reference, serial_delivery, "sharded serial-delivery");
      // Pool-executed phases 2-3 (a no-op re-route when tracking is on -
      // the tracker is not thread-safe - but pinned here either way).
      const RunResult pool_delivery = run(buckets, threads, true);
      expect_results_equal(reference, pool_delivery, "sharded pool-delivery");
    }
  }
}

std::string parity_param_name(
    const ::testing::TestParamInfo<std::tuple<Shape, bool>>& info) {
  const Shape shape = std::get<0>(info.param);
  std::string name = shape == Shape::kPush       ? "push"
                     : shape == Shape::kPushPull ? "push_pull"
                                                 : "exchange";
  return name + (std::get<1>(info.param) ? "_tracked" : "");
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DeliveryBucketParity,
    ::testing::Combine(::testing::Values(Shape::kPush, Shape::kPushPull,
                                         Shape::kExchange),
                       ::testing::Values(false, true)),
    parity_param_name);

// ---------------------------------------------------------------------------
// Fault rounds: per-contact drops agree under every bucket/thread count.
// ---------------------------------------------------------------------------

TEST(DeliveryBucketFaults, LossyScheduledCrashDropsAgreePerContact) {
  constexpr std::uint32_t kN = 900;
  constexpr unsigned kRounds = 12;

  const auto run = [&](std::uint32_t buckets, unsigned threads, bool pool_delivery) {
    Network net(opts(kN, 31, /*track=*/false));
    auto fault = std::make_unique<CompositeFault>();
    fault->add(std::make_unique<ScheduledCrash>(/*crash_round=*/3, /*count=*/90,
                                                FaultStrategy::kRandomSubset))
        .add(std::make_unique<LossyChannel>(0.25));
    Rng adversary(net.rng().fork(0xadbead));
    fault->on_run_begin(net, adversary);
    std::unique_ptr<Engine> eng;
    if (threads == 0) {
      eng = std::make_unique<Engine>(net, /*keep_history=*/true);
      eng->set_delivery_buckets(buckets);
    } else {
      eng = std::make_unique<parallel::ParallelEngine>(
          net, parallel::ParallelOptions{.threads = threads,
                                         .shard_size = 64,
                                         .delivery_buckets = buckets,
                                         .parallel_delivery = pool_delivery,
                                         .keep_history = true});
    }
    eng->set_fault_model(fault.get());
    return run_workload(net, *eng, Shape::kExchange, kRounds);
  };

  // Serial family: every bucket count reproduces the flat fault trajectory -
  // the same contacts connect, the same payloads drop, per contact.
  const RunResult serial_flat = run(1, 0, false);
  EXPECT_GT(serial_flat.stats.total.pushes, 0u);
  for (const std::uint32_t buckets : {4u, 64u}) {
    expect_results_equal(serial_flat, run(buckets, 0, false), "serial fault buckets");
  }

  // Sharded family (its own draw universe): buckets x threads x delivery
  // mode all agree with the 1-bucket 1-thread sharded reference.
  const RunResult sharded_ref = run(1, 1, false);
  for (const std::uint32_t buckets : {4u, 64u}) {
    for (const unsigned threads : {2u, 8u}) {
      expect_results_equal(sharded_ref, run(buckets, threads, false),
                           "sharded fault buckets");
      expect_results_equal(sharded_ref, run(buckets, threads, true),
                           "sharded fault pool delivery");
    }
  }
}

// ---------------------------------------------------------------------------
// BucketMap resolution + ResponseStore wire format.
// ---------------------------------------------------------------------------

TEST(DeliveryBucketMap, ResolvesRequestAgainstNetworkSize) {
  // requested == 1: always the flat map.
  for (const std::uint32_t n : {2u, 100u, 1u << 20}) {
    const BucketMap flat = make_bucket_map(n, 1);
    EXPECT_EQ(flat.count, 1u) << n;
    EXPECT_EQ(flat.bucket_of(n - 1), 0u) << n;
  }
  // requested == 4 at n = 1000: width 256, buckets 0..3 cover every node.
  const BucketMap four = make_bucket_map(1000, 4);
  EXPECT_EQ(four.count, 4u);
  EXPECT_EQ(four.bucket_of(0), 0u);
  EXPECT_EQ(four.bucket_of(999), 3u);
  // A request beyond the node count degrades to one node per bucket.
  const BucketMap wide = make_bucket_map(8, kMaxDeliveryBuckets);
  EXPECT_EQ(wide.count, 8u);
  EXPECT_EQ(wide.bucket_of(7), 7u);
  // Auto resolves to the flat sweep (see make_bucket_map) at every size.
  EXPECT_EQ(make_bucket_map(1u << 20, 0).count, 1u);
  EXPECT_EQ(make_bucket_map(std::numeric_limits<std::uint32_t>::max(), 0).count, 1u);
  // Degenerate single-node map: bucket_of is still well-defined.
  EXPECT_EQ(make_bucket_map(1, 0).bucket_of(0), 0u);
}

TEST(DeliveryResponseStore, RoundTripsMeteringAndContent) {
  const MessageCosts costs = MessageCosts::for_network(1 << 16, 256);
  ResponseStore store;

  Message::IdList three;
  for (std::uint32_t i = 0; i < 3; ++i) three.push_back(NodeId(1000 + i));
  Message::IdList big;
  for (std::uint32_t i = 0; i < PushQueue::kInlineIds + 4; ++i) {
    big.push_back(NodeId(5000 + i));
  }
  std::vector<Message> originals;
  originals.push_back(Message::empty());
  originals.push_back(Message::rumor());
  originals.push_back(Message::count(42));
  originals.push_back(Message::rumor().and_count(7).and_id(NodeId(9)));
  originals.push_back(Message::id_list(three));
  originals.push_back(Message::id_list(big));  // spills

  std::vector<std::uint32_t> offsets;
  for (const Message& m : originals) {
    Message copy = m;
    offsets.push_back(store.append(std::move(copy)));
  }
  for (std::size_t i = 0; i < originals.size(); ++i) {
    const Message& want = originals[i];
    const ResponseStore::Meter meter = store.meter_at(offsets[i], costs);
    EXPECT_EQ(meter.bits, want.bits(costs)) << i;
    EXPECT_EQ(meter.has_payload, !want.is_empty()) << i;
    store.with_message(offsets[i], [&](const Message& got) {
      EXPECT_EQ(got.has_rumor(), want.has_rumor()) << i;
      EXPECT_EQ(got.has_count(), want.has_count()) << i;
      if (want.has_count()) EXPECT_EQ(got.count_value(), want.count_value()) << i;
      ASSERT_EQ(got.ids().size(), want.ids().size()) << i;
      for (std::size_t k = 0; k < want.ids().size(); ++k) {
        EXPECT_EQ(got.ids()[k], want.ids()[k]) << i;
      }
    });
  }
}

}  // namespace
}  // namespace gossip::sim
