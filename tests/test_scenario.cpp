// ScenarioSpec parsing: key=value files, CLI flag overrides, strict errors
// (unknown keys / bad values throw ScenarioError), and the registry lookup.
#include "runner/scenario.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "runner/registry.hpp"

namespace gossip::runner {
namespace {

std::string write_temp(const std::string& name, const std::string& contents) {
  const std::string path = testing::TempDir() + name;
  std::ofstream f(path);
  f << contents;
  return path;
}

TEST(ScenarioSpec, ParsesFileWithCommentsAndWhitespace) {
  const std::string path = write_temp("scenario_parse.scn",
                                      "# full-line comment\n"
                                      "algorithm = cluster2\n"
                                      "\n"
                                      "n=4096   # trailing comment\n"
                                      "trials = 12\n"
                                      "seed\t=\t99\n"
                                      "fault_fraction = 0.25\n"
                                      "fault_strategy = smallest\n");
  const ScenarioSpec spec = ScenarioSpec::from_file(path);
  EXPECT_EQ(spec.algorithm, "cluster2");
  EXPECT_EQ(spec.n, 4096u);
  EXPECT_EQ(spec.trials, 12u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.fault_fraction, 0.25);
  EXPECT_EQ(spec.fault_strategy, sim::FaultStrategy::kSmallestIds);
  EXPECT_EQ(spec.fault_count(), 1024u);
}

TEST(ScenarioSpec, CliFlagsOverrideFile) {
  const std::string path =
      write_temp("scenario_override.scn", "algorithm = push\nn = 512\ntrials = 4\n");
  ScenarioSpec spec = ScenarioSpec::from_file(path);
  spec.apply_cli({"--n=2048", "--threads=8"});
  EXPECT_EQ(spec.algorithm, "push");  // from the file
  EXPECT_EQ(spec.n, 2048u);           // overridden
  EXPECT_EQ(spec.threads, 8u);
  EXPECT_EQ(spec.trials, 4u);
}

TEST(ScenarioSpec, ScientificNotationCounts) {
  ScenarioSpec spec;
  spec.apply("n", "1e6");
  EXPECT_EQ(spec.n, 1000000u);
}

TEST(ScenarioSpec, PlainIntegersAreExactForTheFullSeedRange) {
  ScenarioSpec spec;
  // Values above 2^53 must not round-trip through double.
  spec.apply("seed", "18446744073709551615");
  EXPECT_EQ(spec.seed, 18446744073709551615ULL);
  spec.apply("seed", "9007199254740993");  // 2^53 + 1
  EXPECT_EQ(spec.seed, 9007199254740993ULL);
  // Scientific notation beyond double's exact-integer range is rejected
  // instead of silently rounded.
  EXPECT_THROW(spec.apply("seed", "1e19"), ScenarioError);
}

TEST(ScenarioSpec, UnknownKeyThrows) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.apply("algorthm", "cluster2"), ScenarioError);
  EXPECT_THROW(spec.apply_cli({"--not-a-key=1"}), ScenarioError);
  EXPECT_THROW(spec.apply_cli({"--n"}), ScenarioError);      // missing =value
  EXPECT_THROW(spec.apply_cli({"n=1024"}), ScenarioError);   // missing --
}

TEST(ScenarioSpec, BadValuesThrow) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.apply("n", "abc"), ScenarioError);
  EXPECT_THROW(spec.apply("n", "1"), ScenarioError);          // n >= 2
  EXPECT_THROW(spec.apply("n", "1.5"), ScenarioError);        // not integral
  EXPECT_THROW(spec.apply("n", "-4"), ScenarioError);         // negative
  EXPECT_THROW(spec.apply("n", "64x"), ScenarioError);        // trailing junk
  EXPECT_THROW(spec.apply("trials", "0"), ScenarioError);
  EXPECT_THROW(spec.apply("threads", "0"), ScenarioError);
  EXPECT_THROW(spec.apply("delta", "8"), ScenarioError);      // delta >= 16
  EXPECT_THROW(spec.apply("fault_fraction", "1.0"), ScenarioError);
  EXPECT_THROW(spec.apply("fault_fraction", "-0.1"), ScenarioError);
  EXPECT_THROW(spec.apply("fault_fraction", "nan"), ScenarioError);
  EXPECT_THROW(spec.apply("fault_fraction", "inf"), ScenarioError);
  EXPECT_THROW(spec.apply("fault_strategy", "malicious"), ScenarioError);
}

TEST(ScenarioSpec, DeliveryBucketsAndShardSizeKeys) {
  ScenarioSpec spec;
  spec.apply("delivery_buckets", "64");
  EXPECT_EQ(spec.delivery_buckets, 64u);
  spec.apply("delivery_buckets", "0");  // 0 = engine auto, the default
  EXPECT_EQ(spec.delivery_buckets, 0u);
  spec.apply("shard_size", "4096");
  EXPECT_EQ(spec.shard_size, 4096u);
  spec.apply_cli({"--delivery_buckets=4", "--shard_size=128"});
  EXPECT_EQ(spec.delivery_buckets, 4u);
  EXPECT_EQ(spec.shard_size, 128u);

  // Out-of-range values name the valid range in the error.
  try {
    spec.apply("delivery_buckets", "4097");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("[0, 4096]"), std::string::npos) << e.what();
  }
  EXPECT_THROW(spec.apply("delivery_buckets", "-1"), ScenarioError);
  EXPECT_THROW(spec.apply("delivery_buckets", "many"), ScenarioError);
  EXPECT_THROW(spec.apply("shard_size", "2e6"), ScenarioError);  // > 2^20
}

TEST(ScenarioSpec, MalformedFileLineReportsLineNumber) {
  const std::string path =
      write_temp("scenario_bad.scn", "algorithm = push\nthis line has no equals\n");
  try {
    (void)ScenarioSpec::from_file(path);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos) << e.what();
  }
}

TEST(ScenarioSpec, MissingFileThrows) {
  EXPECT_THROW((void)ScenarioSpec::from_file("/nonexistent/path.scn"), ScenarioError);
}

TEST(ScenarioSpec, ParsesFaultModelKeys) {
  const std::string path = write_temp("scenario_fault.scn",
                                      "algorithm = push_pull\n"
                                      "n = 512\n"
                                      "fault_fraction = 0.1\n"
                                      "crash_round = 4\n"
                                      "loss_prob = 0.2\n"
                                      "fault_model = auto\n");
  ScenarioSpec spec = ScenarioSpec::from_file(path);
  EXPECT_EQ(spec.crash_round, 4);
  EXPECT_DOUBLE_EQ(spec.loss_prob, 0.2);
  EXPECT_EQ(spec.fault_model, FaultModelKind::kAuto);
  spec.apply_cli({"--crash_round=7", "--loss_prob=0.05"});  // flags override
  EXPECT_EQ(spec.crash_round, 7);
  EXPECT_DOUBLE_EQ(spec.loss_prob, 0.05);
}

TEST(ScenarioSpec, FaultModelValueSpellings) {
  ScenarioSpec spec;
  spec.apply("fault_model", "none");
  EXPECT_EQ(spec.fault_model, FaultModelKind::kNone);
  spec.apply("fault_model", "static_crash");
  EXPECT_EQ(spec.fault_model, FaultModelKind::kStaticCrash);
  spec.apply("fault_model", "static");
  EXPECT_EQ(spec.fault_model, FaultModelKind::kStaticCrash);
  spec.apply("fault_model", "scheduled_crash");
  EXPECT_EQ(spec.fault_model, FaultModelKind::kScheduledCrash);
  spec.apply("fault_model", "lossy");
  EXPECT_EQ(spec.fault_model, FaultModelKind::kLossy);
  spec.apply("fault_model", "composite");
  EXPECT_EQ(spec.fault_model, FaultModelKind::kComposite);
  for (const auto kind :
       {FaultModelKind::kAuto, FaultModelKind::kNone, FaultModelKind::kStaticCrash,
        FaultModelKind::kScheduledCrash, FaultModelKind::kLossy,
        FaultModelKind::kComposite}) {
    spec.apply("fault_model", fault_model_key(kind));
    EXPECT_EQ(spec.fault_model, kind);
  }
}

TEST(ScenarioSpec, UnknownFaultModelListsTheValidChoices) {
  ScenarioSpec spec;
  try {
    spec.apply("fault_model", "byzantine");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    for (const char* choice :
         {"auto", "none", "static_crash", "scheduled_crash", "lossy", "composite"}) {
      EXPECT_NE(msg.find(choice), std::string::npos)
          << "'" << choice << "' missing from: " << msg;
    }
    EXPECT_NE(msg.find("byzantine"), std::string::npos) << msg;
  }
}

TEST(ScenarioSpec, UnknownFaultStrategyListsTheValidChoices) {
  ScenarioSpec spec;
  try {
    spec.apply("fault_strategy", "malicious");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    for (const char* choice : {"random", "smallest", "stride"}) {
      EXPECT_NE(msg.find(choice), std::string::npos)
          << "'" << choice << "' missing from: " << msg;
    }
    EXPECT_NE(msg.find("malicious"), std::string::npos) << msg;
  }
}

TEST(ScenarioSpec, BadFaultValuesThrow) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.apply("loss_prob", "1.0"), ScenarioError);
  EXPECT_THROW(spec.apply("loss_prob", "-0.1"), ScenarioError);
  EXPECT_THROW(spec.apply("loss_prob", "nan"), ScenarioError);
  EXPECT_THROW(spec.apply("crash_round", "-2"), ScenarioError);
  EXPECT_THROW(spec.apply("crash_round", "abc"), ScenarioError);
}

TEST(ScenarioSpec, CrashRoundCanBeResetToPreRunByAFlag) {
  // Flags win over the scenario file for every key - including restoring
  // crash_round's pre-run default over a file that set a mid-run crash.
  ScenarioSpec spec;
  spec.apply("crash_round", "4");
  EXPECT_EQ(spec.crash_round, 4);
  spec.apply_cli({"--crash_round=pre_run"});
  EXPECT_EQ(spec.crash_round, ScenarioSpec::kCrashPreRun);
  spec.apply("crash_round", "4");
  spec.apply("crash_round", "-1");  // spelled as the echoed JSON value
  EXPECT_EQ(spec.crash_round, ScenarioSpec::kCrashPreRun);
}

TEST(ScenarioSpec, ValidateEnforcesFaultModelShapes) {
  const auto valid_base = [] {
    ScenarioSpec spec;
    spec.algorithm = "push_pull";
    spec.n = 256;
    return spec;
  };
  {
    ScenarioSpec spec = valid_base();
    spec.crash_round = 3;  // crash_round without a crash set
    EXPECT_THROW(spec.validate(), ScenarioError);
    spec.fault_fraction = 0.1;
    EXPECT_NO_THROW(spec.validate());
  }
  {
    ScenarioSpec spec = valid_base();
    spec.fault_model = FaultModelKind::kStaticCrash;
    EXPECT_THROW(spec.validate(), ScenarioError);  // needs fault_fraction
    spec.fault_fraction = 0.1;
    EXPECT_NO_THROW(spec.validate());
    spec.loss_prob = 0.2;  // static_crash excludes loss
    EXPECT_THROW(spec.validate(), ScenarioError);
  }
  {
    ScenarioSpec spec = valid_base();
    spec.fault_model = FaultModelKind::kScheduledCrash;
    spec.fault_fraction = 0.1;
    EXPECT_THROW(spec.validate(), ScenarioError);  // needs crash_round
    spec.crash_round = 2;
    EXPECT_NO_THROW(spec.validate());
  }
  {
    ScenarioSpec spec = valid_base();
    spec.fault_model = FaultModelKind::kLossy;
    EXPECT_THROW(spec.validate(), ScenarioError);  // needs loss_prob
    spec.loss_prob = 0.3;
    EXPECT_NO_THROW(spec.validate());
    spec.fault_fraction = 0.1;  // lossy excludes a crash component
    EXPECT_THROW(spec.validate(), ScenarioError);
  }
  {
    ScenarioSpec spec = valid_base();
    spec.fault_model = FaultModelKind::kComposite;
    spec.fault_fraction = 0.1;
    EXPECT_THROW(spec.validate(), ScenarioError);  // needs loss too
    spec.loss_prob = 0.3;
    EXPECT_NO_THROW(spec.validate());
  }
  {
    ScenarioSpec spec = valid_base();  // kNone ignores the other fault keys
    spec.fault_model = FaultModelKind::kNone;
    spec.fault_fraction = 0.1;
    spec.crash_round = 2;
    spec.loss_prob = 0.5;
    EXPECT_NO_THROW(spec.validate());
  }
}

TEST(ScenarioSpec, FaultModelNameResolvesTheComposition) {
  ScenarioSpec spec;
  EXPECT_EQ(spec.fault_model_name(), "none");
  spec.fault_fraction = 0.1;
  spec.n = 512;
  EXPECT_EQ(spec.fault_model_name(), "static_crash");
  spec.crash_round = 4;
  EXPECT_EQ(spec.fault_model_name(), "scheduled_crash");
  spec.loss_prob = 0.2;
  EXPECT_EQ(spec.fault_model_name(), "scheduled_crash+lossy");
  spec.fault_fraction = 0.0;
  spec.crash_round = ScenarioSpec::kCrashPreRun;
  EXPECT_EQ(spec.fault_model_name(), "lossy");
  spec.fault_model = FaultModelKind::kNone;
  EXPECT_EQ(spec.fault_model_name(), "none");
}

TEST(ScenarioSpec, MakeFaultModelBuildsTheRightShape) {
  ScenarioSpec spec;
  spec.n = 512;
  EXPECT_EQ(spec.make_fault_model(), nullptr);  // fault-free

  spec.fault_fraction = 0.1;
  auto static_model = spec.make_fault_model();
  ASSERT_NE(static_model, nullptr);
  EXPECT_NE(static_model->describe().find("static_crash"), std::string::npos);

  spec.crash_round = 3;
  spec.loss_prob = 0.25;
  auto combo = spec.make_fault_model();
  ASSERT_NE(combo, nullptr);
  EXPECT_NE(combo->describe().find("scheduled_crash"), std::string::npos);
  EXPECT_NE(combo->describe().find("lossy"), std::string::npos);
  EXPECT_DOUBLE_EQ(combo->loss_probability(0), 0.25);

  spec.fault_model = FaultModelKind::kNone;  // off-switch wins
  EXPECT_EQ(spec.make_fault_model(), nullptr);
}

TEST(ScenarioSpec, ParsesRecoveryAndPartitionKeys) {
  ScenarioSpec spec;
  spec.apply("recovery", "true");
  spec.apply("retry_budget", "5");
  spec.apply("partition_round", "10");
  spec.apply("heal_round", "40");
  spec.apply("partition_parts", "3");
  EXPECT_TRUE(spec.recovery);
  EXPECT_EQ(spec.retry_budget, 5u);
  EXPECT_EQ(spec.partition_round, 10);
  EXPECT_EQ(spec.heal_round, 40);
  EXPECT_EQ(spec.partition_parts, 3u);
  // Flag-style resets mirror crash_round: "none" (or -1) re-disarms.
  spec.apply("partition_round", "none");
  spec.apply("heal_round", "-1");
  spec.apply("recovery", "0");
  EXPECT_EQ(spec.partition_round, -1);
  EXPECT_EQ(spec.heal_round, -1);
  EXPECT_FALSE(spec.recovery);
  EXPECT_THROW(spec.apply("partition_parts", "1"), ScenarioError);  // min 2
  EXPECT_THROW(spec.apply("retry_budget", "0"), ScenarioError);
  EXPECT_THROW(spec.apply("recovery", "maybe"), ScenarioError);
}

TEST(ScenarioSpec, ValidateCrossChecksTheRecoveryKeys) {
  const auto valid_base = [] {
    ScenarioSpec spec;
    spec.algorithm = "cluster1";
    spec.n = 256;
    return spec;
  };
  {
    ScenarioSpec spec = valid_base();  // a partition window must be a pair
    spec.partition_round = 10;
    EXPECT_THROW(spec.validate(), ScenarioError);
    spec.heal_round = 40;
    EXPECT_NO_THROW(spec.validate());
  }
  {
    ScenarioSpec spec = valid_base();
    spec.heal_round = 40;  // heal without a split
    EXPECT_THROW(spec.validate(), ScenarioError);
  }
  {
    ScenarioSpec spec = valid_base();  // the window must be non-empty
    spec.partition_round = 40;
    spec.heal_round = 40;
    EXPECT_THROW(spec.validate(), ScenarioError);
  }
  {
    ScenarioSpec spec = valid_base();  // ... and must heal before the cap
    spec.partition_round = 10;
    spec.heal_round = 40;
    spec.max_rounds = 40;
    EXPECT_THROW(spec.validate(), ScenarioError);
    spec.max_rounds = 41;
    EXPECT_NO_THROW(spec.validate());
  }
  {
    ScenarioSpec spec = valid_base();  // parts need a window to act on
    spec.partition_parts = 4;
    EXPECT_THROW(spec.validate(), ScenarioError);
  }
  {
    ScenarioSpec spec = valid_base();  // a budget needs a supervisor
    spec.retry_budget = 2;
    EXPECT_THROW(spec.validate(), ScenarioError);
    spec.recovery = true;
    EXPECT_NO_THROW(spec.validate());
  }
  {
    ScenarioSpec spec = valid_base();  // supervisor needs a cluster algorithm
    spec.algorithm = "push_pull";
    spec.recovery = true;
    try {
      spec.validate();
      FAIL() << "expected ScenarioError";
    } catch (const ScenarioError& e) {
      // The message lists the supervised choices, fault_model-style.
      EXPECT_NE(std::string(e.what()).find("cluster1"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("cluster3_push_pull"), std::string::npos);
    }
    spec.algorithm = "cluster2";
    EXPECT_NO_THROW(spec.validate());
  }
  {
    ScenarioSpec spec = valid_base();  // partitions ride the auto composition
    spec.partition_round = 10;
    spec.heal_round = 40;
    spec.fault_model = FaultModelKind::kLossy;
    spec.loss_prob = 0.1;
    EXPECT_THROW(spec.validate(), ScenarioError);
  }
}

TEST(ScenarioSpec, PartitionJoinsTheFaultComposition) {
  ScenarioSpec spec;
  spec.n = 256;
  spec.partition_round = 10;
  spec.heal_round = 40;
  EXPECT_EQ(spec.fault_model_name(), "partition");
  auto model = spec.make_fault_model();
  ASSERT_NE(model, nullptr);
  EXPECT_NE(model->describe().find("partition(parts=2"), std::string::npos);

  spec.fault_fraction = 0.1;
  spec.crash_round = 4;
  spec.partition_parts = 3;
  EXPECT_EQ(spec.fault_model_name(), "scheduled_crash+partition");
  auto combo = spec.make_fault_model();
  ASSERT_NE(combo, nullptr);
  EXPECT_NE(combo->describe().find("partition(parts=3"), std::string::npos);
  EXPECT_NE(combo->describe().find("scheduled_crash"), std::string::npos);
}

TEST(ScenarioSpec, StrategyKeysRoundTrip) {
  for (const auto s :
       {sim::FaultStrategy::kRandomSubset, sim::FaultStrategy::kSmallestIds,
        sim::FaultStrategy::kIndexStride}) {
    ScenarioSpec spec;
    spec.apply("fault_strategy", strategy_key(s));
    EXPECT_EQ(spec.fault_strategy, s);
  }
}

TEST(Registry, FindsEveryIdAndRejectsUnknown) {
  EXPECT_GE(algorithms().size(), 8u);
  for (const AlgorithmEntry& e : algorithms()) {
    EXPECT_EQ(find_algorithm(e.id), &e);
  }
  EXPECT_EQ(find_algorithm("nope"), nullptr);
  EXPECT_THROW((void)require_algorithm("nope"), ScenarioError);
}

}  // namespace
}  // namespace gossip::runner
