// ScenarioSpec parsing: key=value files, CLI flag overrides, strict errors
// (unknown keys / bad values throw ScenarioError), and the registry lookup.
#include "runner/scenario.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "runner/registry.hpp"

namespace gossip::runner {
namespace {

std::string write_temp(const std::string& name, const std::string& contents) {
  const std::string path = testing::TempDir() + name;
  std::ofstream f(path);
  f << contents;
  return path;
}

TEST(ScenarioSpec, ParsesFileWithCommentsAndWhitespace) {
  const std::string path = write_temp("scenario_parse.scn",
                                      "# full-line comment\n"
                                      "algorithm = cluster2\n"
                                      "\n"
                                      "n=4096   # trailing comment\n"
                                      "trials = 12\n"
                                      "seed\t=\t99\n"
                                      "fault_fraction = 0.25\n"
                                      "fault_strategy = smallest\n");
  const ScenarioSpec spec = ScenarioSpec::from_file(path);
  EXPECT_EQ(spec.algorithm, "cluster2");
  EXPECT_EQ(spec.n, 4096u);
  EXPECT_EQ(spec.trials, 12u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.fault_fraction, 0.25);
  EXPECT_EQ(spec.fault_strategy, sim::FaultStrategy::kSmallestIds);
  EXPECT_EQ(spec.fault_count(), 1024u);
}

TEST(ScenarioSpec, CliFlagsOverrideFile) {
  const std::string path =
      write_temp("scenario_override.scn", "algorithm = push\nn = 512\ntrials = 4\n");
  ScenarioSpec spec = ScenarioSpec::from_file(path);
  spec.apply_cli({"--n=2048", "--threads=8"});
  EXPECT_EQ(spec.algorithm, "push");  // from the file
  EXPECT_EQ(spec.n, 2048u);           // overridden
  EXPECT_EQ(spec.threads, 8u);
  EXPECT_EQ(spec.trials, 4u);
}

TEST(ScenarioSpec, ScientificNotationCounts) {
  ScenarioSpec spec;
  spec.apply("n", "1e6");
  EXPECT_EQ(spec.n, 1000000u);
}

TEST(ScenarioSpec, PlainIntegersAreExactForTheFullSeedRange) {
  ScenarioSpec spec;
  // Values above 2^53 must not round-trip through double.
  spec.apply("seed", "18446744073709551615");
  EXPECT_EQ(spec.seed, 18446744073709551615ULL);
  spec.apply("seed", "9007199254740993");  // 2^53 + 1
  EXPECT_EQ(spec.seed, 9007199254740993ULL);
  // Scientific notation beyond double's exact-integer range is rejected
  // instead of silently rounded.
  EXPECT_THROW(spec.apply("seed", "1e19"), ScenarioError);
}

TEST(ScenarioSpec, UnknownKeyThrows) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.apply("algorthm", "cluster2"), ScenarioError);
  EXPECT_THROW(spec.apply_cli({"--not-a-key=1"}), ScenarioError);
  EXPECT_THROW(spec.apply_cli({"--n"}), ScenarioError);      // missing =value
  EXPECT_THROW(spec.apply_cli({"n=1024"}), ScenarioError);   // missing --
}

TEST(ScenarioSpec, BadValuesThrow) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.apply("n", "abc"), ScenarioError);
  EXPECT_THROW(spec.apply("n", "1"), ScenarioError);          // n >= 2
  EXPECT_THROW(spec.apply("n", "1.5"), ScenarioError);        // not integral
  EXPECT_THROW(spec.apply("n", "-4"), ScenarioError);         // negative
  EXPECT_THROW(spec.apply("n", "64x"), ScenarioError);        // trailing junk
  EXPECT_THROW(spec.apply("trials", "0"), ScenarioError);
  EXPECT_THROW(spec.apply("threads", "0"), ScenarioError);
  EXPECT_THROW(spec.apply("delta", "8"), ScenarioError);      // delta >= 16
  EXPECT_THROW(spec.apply("fault_fraction", "1.0"), ScenarioError);
  EXPECT_THROW(spec.apply("fault_fraction", "-0.1"), ScenarioError);
  EXPECT_THROW(spec.apply("fault_fraction", "nan"), ScenarioError);
  EXPECT_THROW(spec.apply("fault_fraction", "inf"), ScenarioError);
  EXPECT_THROW(spec.apply("fault_strategy", "malicious"), ScenarioError);
}

TEST(ScenarioSpec, MalformedFileLineReportsLineNumber) {
  const std::string path =
      write_temp("scenario_bad.scn", "algorithm = push\nthis line has no equals\n");
  try {
    (void)ScenarioSpec::from_file(path);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos) << e.what();
  }
}

TEST(ScenarioSpec, MissingFileThrows) {
  EXPECT_THROW((void)ScenarioSpec::from_file("/nonexistent/path.scn"), ScenarioError);
}

TEST(ScenarioSpec, StrategyKeysRoundTrip) {
  for (const auto s :
       {sim::FaultStrategy::kRandomSubset, sim::FaultStrategy::kSmallestIds,
        sim::FaultStrategy::kIndexStride}) {
    ScenarioSpec spec;
    spec.apply("fault_strategy", strategy_key(s));
    EXPECT_EQ(spec.fault_strategy, s);
  }
}

TEST(Registry, FindsEveryIdAndRejectsUnknown) {
  EXPECT_GE(algorithms().size(), 8u);
  for (const AlgorithmEntry& e : algorithms()) {
    EXPECT_EQ(find_algorithm(e.id), &e);
  }
  EXPECT_EQ(find_algorithm("nope"), nullptr);
  EXPECT_THROW((void)require_algorithm("nope"), ScenarioError);
}

}  // namespace
}  // namespace gossip::runner
