// Unit tests for the clustering state and views (cluster/clustering.hpp).
#include "cluster/clustering.hpp"

#include <gtest/gtest.h>

namespace gossip::cluster {
namespace {

sim::NetworkOptions opts(std::uint32_t n) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = 3;
  return o;
}

TEST(Clustering, InitiallyAllUnclustered) {
  sim::Network net(opts(8));
  Clustering cl(net);
  for (std::uint32_t v = 0; v < 8; ++v) {
    EXPECT_TRUE(cl.is_unclustered(v));
    EXPECT_FALSE(cl.is_leader(v));
    EXPECT_FALSE(cl.is_follower(v));
    EXPECT_FALSE(cl.active(v));
  }
  const auto s = cl.stats();
  EXPECT_EQ(s.clusters, 0u);
  EXPECT_EQ(s.unclustered_nodes, 8u);
}

TEST(Clustering, RolesFollowTheFollowVariable) {
  sim::Network net(opts(8));
  Clustering cl(net);
  cl.make_leader(0);
  cl.set_follow(1, net.id_of(0));
  cl.set_follow(2, net.id_of(0));
  EXPECT_TRUE(cl.is_leader(0));
  EXPECT_FALSE(cl.is_follower(0));
  EXPECT_TRUE(cl.is_follower(1));
  EXPECT_TRUE(cl.is_clustered(2));
  EXPECT_TRUE(cl.is_unclustered(3));
}

TEST(Clustering, StatsCountClustersAndSizes) {
  sim::Network net(opts(10));
  Clustering cl(net);
  cl.make_leader(0);
  cl.set_follow(1, net.id_of(0));
  cl.set_follow(2, net.id_of(0));
  cl.make_leader(5);
  cl.set_follow(6, net.id_of(5));
  const auto s = cl.stats();
  EXPECT_EQ(s.clusters, 2u);
  EXPECT_EQ(s.clustered_nodes, 5u);
  EXPECT_EQ(s.unclustered_nodes, 5u);
  EXPECT_EQ(s.min_size, 2u);
  EXPECT_EQ(s.max_size, 3u);
  EXPECT_DOUBLE_EQ(s.mean_size, 2.5);
}

TEST(Clustering, FlatnessDetectsChains) {
  sim::Network net(opts(6));
  Clustering cl(net);
  cl.make_leader(0);
  cl.set_follow(1, net.id_of(0));
  EXPECT_TRUE(cl.is_flat());
  // Chain: 2 follows 1, but 1 is itself a follower.
  cl.set_follow(2, net.id_of(1));
  EXPECT_FALSE(cl.is_flat());
}

TEST(Clustering, MembersOf) {
  sim::Network net(opts(6));
  Clustering cl(net);
  cl.make_leader(3);
  cl.set_follow(0, net.id_of(3));
  cl.set_follow(5, net.id_of(3));
  const auto members = cl.members_of(net.id_of(3));
  EXPECT_EQ(members.size(), 3u);  // leader + 2 followers
}

TEST(Clustering, FailedNodesExcludedFromStats) {
  sim::Network net(opts(6));
  Clustering cl(net);
  cl.make_leader(0);
  cl.set_follow(1, net.id_of(0));
  cl.set_follow(2, net.id_of(0));
  net.fail(2);
  const auto s = cl.stats();
  EXPECT_EQ(s.clustered_nodes, 2u);
  EXPECT_EQ(s.max_size, 2u);
}

TEST(Clustering, MakeUnclusteredClearsState) {
  sim::Network net(opts(4));
  Clustering cl(net);
  cl.make_leader(0);
  cl.set_active(0, true);
  cl.set_size_estimate(0, 5);
  cl.make_unclustered(0);
  EXPECT_TRUE(cl.is_unclustered(0));
  EXPECT_FALSE(cl.active(0));
  EXPECT_EQ(cl.size_estimate(0), 0u);
}

TEST(Clustering, ResetRestoresInitialState) {
  sim::Network net(opts(4));
  Clustering cl(net);
  cl.make_leader(0);
  cl.set_follow(1, net.id_of(0));
  cl.set_active(1, true);
  cl.reset();
  for (std::uint32_t v = 0; v < 4; ++v) {
    EXPECT_TRUE(cl.is_unclustered(v));
    EXPECT_FALSE(cl.active(v));
  }
}

TEST(Clustering, SizeEstimates) {
  sim::Network net(opts(4));
  Clustering cl(net);
  cl.set_size_estimate(2, 17);
  cl.set_prev_size_estimate(2, 8);
  EXPECT_EQ(cl.size_estimate(2), 17u);
  EXPECT_EQ(cl.prev_size_estimate(2), 8u);
}

}  // namespace
}  // namespace gossip::cluster
