// Unit tests for node IDs and the random ID space (common/ids.hpp).
#include "common/ids.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace gossip {
namespace {

TEST(NodeId, DefaultIsUnclustered) {
  NodeId id;
  EXPECT_TRUE(id.is_unclustered());
  EXPECT_FALSE(id.is_node());
  EXPECT_EQ(id, NodeId::unclustered());
}

TEST(NodeId, ExplicitValueIsNode) {
  NodeId id(12345);
  EXPECT_FALSE(id.is_unclustered());
  EXPECT_TRUE(id.is_node());
  EXPECT_EQ(id.raw(), 12345u);
}

TEST(NodeId, UnclusteredComparesGreaterThanAnyNode) {
  // The paper's follow = infinity semantics: infinity beats every real ID in
  // smallest-ID merges.
  EXPECT_LT(NodeId(0), NodeId::unclustered());
  EXPECT_LT(NodeId(~0ULL - 1), NodeId::unclustered());
}

TEST(NodeId, TotalOrder) {
  NodeId a(1), b(2), c(2);
  EXPECT_LT(a, b);
  EXPECT_LE(a, b);
  EXPECT_GT(b, a);
  EXPECT_GE(b, c);
  EXPECT_EQ(b, c);
  EXPECT_NE(a, b);
}

TEST(NodeId, ToString) {
  EXPECT_EQ(NodeId(77).to_string(), "77");
  EXPECT_EQ(NodeId::unclustered().to_string(), "<unclustered>");
}

TEST(NodeId, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId(1));
  set.insert(NodeId(2));
  set.insert(NodeId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(NodeId(1)));
  EXPECT_FALSE(set.contains(NodeId(3)));
}

TEST(GenerateUniqueIds, ProducesDistinctNodeIds) {
  Rng rng(1);
  const auto ids = generate_unique_ids(10000, rng);
  ASSERT_EQ(ids.size(), 10000u);
  std::unordered_set<std::uint64_t> raw;
  for (NodeId id : ids) {
    EXPECT_TRUE(id.is_node());
    EXPECT_TRUE(raw.insert(id.raw()).second) << "duplicate ID";
  }
}

TEST(GenerateUniqueIds, DeterministicInRng) {
  Rng a(5), b(5);
  EXPECT_EQ(generate_unique_ids(100, a), generate_unique_ids(100, b));
}

TEST(GenerateUniqueIds, DifferentSeedsDiffer) {
  Rng a(5), b(6);
  EXPECT_NE(generate_unique_ids(100, a), generate_unique_ids(100, b));
}

TEST(GenerateUniqueIds, IdsLookUniform) {
  // IDs must not be dense/sequential: the algorithms are only allowed to
  // rely on a total order, not on index-like structure.
  Rng rng(7);
  const auto ids = generate_unique_ids(1000, rng);
  std::uint64_t above_half = 0;
  for (NodeId id : ids) {
    if (id.raw() > (~0ULL) / 2) ++above_half;
  }
  EXPECT_GT(above_half, 400u);
  EXPECT_LT(above_half, 600u);
}

}  // namespace
}  // namespace gossip
