// Unit tests for the deterministic parameter schedules (core/schedules.hpp).
#include "core/schedules.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace gossip::core {
namespace {

class Cluster2ScheduleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Cluster2ScheduleTest, InternallyConsistent) {
  const std::uint64_t n = GetParam();
  const auto s = compute_cluster2_schedule(n, Cluster2Options{});
  EXPECT_GE(s.threshold, 8u);
  EXPECT_GE(s.seeds, 4u);
  EXPECT_GT(s.seed_prob, 0.0);
  EXPECT_LE(s.seed_prob, 1.0);
  EXPECT_GE(s.s0, 4u);
  EXPECT_LE(s.s0, s.threshold);
  EXPECT_GE(s.s_target, s.threshold);
  EXPECT_GE(s.grow_rounds, 3u);
  EXPECT_GE(s.bounded_push_iters, 3u);
  EXPECT_GE(s.pull_rounds, ceil_loglog2(n));
}

TEST_P(Cluster2ScheduleTest, MassRelationshipHolds) {
  // seeds * threshold tracks n / log n within a small constant factor -
  // the paper's Lemma 11 invariant, which is what bounds the clustered mass
  // and hence the message complexity.
  const std::uint64_t n = GetParam();
  const auto s = compute_cluster2_schedule(n, Cluster2Options{});
  const double mass = static_cast<double>(s.seeds) * static_cast<double>(s.threshold);
  const double target = static_cast<double>(n) / log2d(n);
  if (n >= 4096) {  // below that the seed floor (4) dominates
    EXPECT_GT(mass, 0.3 * target) << "n=" << n;
    EXPECT_LT(mass, 4.0 * target) << "n=" << n;
  }
}

TEST_P(Cluster2ScheduleTest, GrowRoundsAreThetaLogLogN) {
  const std::uint64_t n = GetParam();
  const auto s = compute_cluster2_schedule(n, Cluster2Options{});
  // threshold ~ log^2 n / 4 => log2(threshold) ~ 2 log log n.
  EXPECT_LE(s.grow_rounds, 4 * ceil_loglog2(n) + 6u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Cluster2ScheduleTest,
                         ::testing::Values(64, 256, 1024, 4096, 1 << 14, 1 << 16,
                                           1 << 18, 1 << 20, 1ULL << 24, 1ULL << 30),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Cluster2Schedule, RejectsTinyNetworks) {
  EXPECT_THROW((void)compute_cluster2_schedule(8, Cluster2Options{}), ContractViolation);
}

TEST(Cluster2Schedule, MonotoneThreshold) {
  std::uint64_t prev = 0;
  for (std::uint64_t n = 64; n <= (1ULL << 30); n <<= 2) {
    const auto s = compute_cluster2_schedule(n, Cluster2Options{});
    EXPECT_GE(s.threshold, prev) << "n=" << n;
    prev = s.threshold;
  }
}

struct DeltaCase {
  std::uint64_t n;
  std::uint64_t delta;
};

class Cluster3ScheduleTest : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(Cluster3ScheduleTest, TargetsStayBelowDelta) {
  const auto [n, delta] = GetParam();
  const auto s = compute_cluster3_schedule(n, delta, Cluster3Options{});
  EXPECT_GE(s.cluster_target, 4u);
  // D = Delta / C'' with the default slack 4.
  EXPECT_LE(s.cluster_target, delta / 2);
  EXPECT_LE(s.grow.threshold, std::max<std::uint64_t>(4, s.cluster_target / 4) + 1);
  EXPECT_LE(s.grow.s_target, std::max<std::uint64_t>(s.grow.s0, s.cluster_target / 2));
  // s_target may fall below s0: the squaring loop then skips entirely (the
  // active-count floor at simulable scale; see schedules.cpp).
  EXPECT_GE(s.grow.s_target, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Cluster3ScheduleTest,
    ::testing::Values(DeltaCase{1 << 12, 64}, DeltaCase{1 << 12, 256},
                      DeltaCase{1 << 16, 64}, DeltaCase{1 << 16, 1024},
                      DeltaCase{1 << 20, 4096}, DeltaCase{1 << 16, 16},
                      DeltaCase{1 << 16, 1 << 16}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_d" + std::to_string(info.param.delta);
    });

TEST(Cluster3Schedule, RejectsInvalidDelta) {
  EXPECT_THROW((void)compute_cluster3_schedule(1 << 12, 8, Cluster3Options{}),
               ContractViolation);
  EXPECT_THROW((void)compute_cluster3_schedule(1 << 12, 1 << 13, Cluster3Options{}),
               ContractViolation);
}

}  // namespace
}  // namespace gossip::core
