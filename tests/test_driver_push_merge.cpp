// Unit tests for the push / relay / merge / settle / pull primitives
// (cluster/driver.hpp) - the recruiting and merging machinery of paper
// Section 3.2 - including an organic-formation test with direct-addressing
// honesty enforcement enabled.
#include <gtest/gtest.h>

#include "cluster/driver.hpp"

namespace gossip::cluster {
namespace {

struct Fixture {
  explicit Fixture(std::uint32_t n, std::uint64_t seed = 1, bool knowledge = false)
      : net(make_opts(n, seed, knowledge)), engine(net), driver(engine, make_driver_opts()) {}

  static sim::NetworkOptions make_opts(std::uint32_t n, std::uint64_t seed, bool knowledge) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = seed;
    o.track_knowledge = knowledge;
    return o;
  }
  static DriverOptions make_driver_opts() {
    DriverOptions d;
    d.validate = true;
    return d;
  }

  void stage_cluster(std::uint32_t leader, std::vector<std::uint32_t> followers) {
    auto& cl = driver.clustering();
    cl.make_leader(leader);
    for (std::uint32_t f : followers) cl.set_follow(f, net.id_of(leader));
  }

  sim::Network net;
  sim::Engine engine;
  Driver driver;
};

TEST(DriverPush, RecruitsUnclusteredNodes) {
  Fixture fx(64);
  // 8 singleton leaders pushing for a few rounds must recruit most nodes.
  for (std::uint32_t v = 0; v < 64; v += 8) fx.driver.clustering().make_leader(v);
  std::uint64_t recruited = 0;
  for (int round = 0; round < 8; ++round) {
    recruited +=
        fx.driver.push_cluster_id(false, /*recruit=*/true, RelayPolicy::kSmallest).recruited;
  }
  const auto stats = fx.driver.clustering().stats();
  EXPECT_EQ(stats.clustered_nodes, 8 + recruited);
  EXPECT_GT(stats.clustered_nodes, 48u);
  EXPECT_TRUE(fx.driver.clustering().is_flat());
}

TEST(DriverPush, RecruitsBecomeActive) {
  Fixture fx(32);
  fx.driver.clustering().make_leader(0);
  fx.driver.clustering().set_active(0, true);
  std::uint64_t recruited = 0;
  for (int round = 0; round < 6 && recruited == 0; ++round) {
    recruited += fx.driver.push_cluster_id(true, true, RelayPolicy::kRandom).recruited;
  }
  ASSERT_GT(recruited, 0u);
  const auto& cl = fx.driver.clustering();
  for (std::uint32_t v = 1; v < 32; ++v) {
    if (cl.is_clustered(v)) EXPECT_TRUE(cl.active(v)) << v;
  }
}

TEST(DriverPush, NoRecruitingWhenDisabled) {
  Fixture fx(32);
  fx.driver.clustering().make_leader(0);
  for (int round = 0; round < 5; ++round) {
    const auto out = fx.driver.push_cluster_id(false, /*recruit=*/false, RelayPolicy::kSmallest);
    EXPECT_EQ(out.recruited, 0u);
  }
  EXPECT_EQ(fx.driver.clustering().stats().clustered_nodes, 1u);
}

TEST(DriverPush, OnlyActiveClustersPush) {
  Fixture fx(32);
  fx.driver.clustering().make_leader(0);  // inactive
  for (int round = 0; round < 5; ++round) {
    fx.driver.push_cluster_id(/*only_active=*/true, true, RelayPolicy::kSmallest);
  }
  // The inactive singleton never pushed: nothing recruited, no messages.
  EXPECT_EQ(fx.driver.clustering().stats().clustered_nodes, 1u);
  EXPECT_EQ(fx.engine.metrics().run().total.payload_messages, 0u);
}

TEST(DriverMerge, InactiveClustersJoinActiveOnes) {
  Fixture fx(128, /*seed=*/5);
  // 4 active clusters of 8, 12 inactive clusters of 8.
  for (std::uint32_t c = 0; c < 16; ++c) {
    const std::uint32_t base = c * 8;
    std::vector<std::uint32_t> followers;
    for (std::uint32_t i = 1; i < 8; ++i) followers.push_back(base + i);
    fx.stage_cluster(base, followers);
    for (std::uint32_t i = 0; i < 8; ++i) {
      fx.driver.clustering().set_active(base + i, c < 4);
    }
  }
  // ClusterPUSH + ClusterMerge repetitions, as in SquareClusters (three of
  // them: with only 32 active pushers per repetition, one of the 12 inactive
  // clusters stays unhit after two repetitions with noticeable probability).
  for (int rep = 0; rep < 3; ++rep) {
    fx.driver.push_cluster_id(true, false, RelayPolicy::kSmallest);
    fx.driver.relay_candidates(RelayPolicy::kSmallest, true);
    fx.driver.merge_from_inbox(RelayPolicy::kSmallest, true);
  }
  fx.driver.settle(2);
  const auto& cl = fx.driver.clustering();
  EXPECT_TRUE(cl.is_flat());
  // Every surviving cluster is led by one of the 4 active leaders.
  const auto sizes = cl.cluster_sizes();
  EXPECT_LE(sizes.size(), 4u);
  for (const auto& [leader, size] : sizes) {
    EXPECT_LT(leader, 32u);  // leaders of the 4 active clusters are nodes 0,8,16,24
  }
  // All 128 nodes remain clustered.
  EXPECT_EQ(cl.stats().clustered_nodes, 128u);
}

TEST(DriverMerge, MergeToSmallestUnifiesEverything) {
  Fixture fx(64, /*seed=*/7);
  // 8 clusters of 8; everyone pushes; merge-to-smallest, twice + settle
  // (MergeAllClusters).
  for (std::uint32_t c = 0; c < 8; ++c) {
    const std::uint32_t base = c * 8;
    std::vector<std::uint32_t> followers;
    for (std::uint32_t i = 1; i < 8; ++i) followers.push_back(base + i);
    fx.stage_cluster(base, followers);
  }
  NodeId smallest = fx.net.id_of(0);
  for (std::uint32_t c = 1; c < 8; ++c) smallest = std::min(smallest, fx.net.id_of(c * 8));

  for (int rep = 0; rep < 2; ++rep) {
    fx.driver.push_cluster_id(false, false, RelayPolicy::kSmallest);
    fx.driver.relay_candidates(RelayPolicy::kSmallest, false);
    fx.driver.merge_from_inbox(RelayPolicy::kSmallest, false);
  }
  fx.driver.settle(3);
  const auto& cl = fx.driver.clustering();
  EXPECT_TRUE(cl.is_flat());
  const auto sizes = cl.cluster_sizes();
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes.begin()->second, 64u);
  EXPECT_EQ(fx.net.id_of(sizes.begin()->first), smallest);
}

TEST(DriverMerge, EmptyInboxKeepsCluster) {
  Fixture fx(16);
  fx.stage_cluster(0, {1, 2});
  fx.driver.merge_from_inbox(RelayPolicy::kSmallest, false);
  EXPECT_TRUE(fx.driver.clustering().is_leader(0));
  EXPECT_EQ(fx.driver.clustering().cluster_sizes().size(), 1u);
}

TEST(DriverSettle, CompressesChains) {
  Fixture fx(8);
  auto& cl = fx.driver.clustering();
  // Build an artificial 3-chain: 3 -> 2 -> 1 -> 0 (0 is the leader).
  cl.make_leader(0);
  cl.set_follow(1, fx.net.id_of(0));
  cl.set_follow(2, fx.net.id_of(1));
  cl.set_follow(3, fx.net.id_of(2));
  EXPECT_FALSE(cl.is_flat());
  fx.driver.settle(2);
  EXPECT_TRUE(cl.is_flat());
  for (std::uint32_t v : {1u, 2u, 3u}) EXPECT_EQ(cl.follow(v), fx.net.id_of(0)) << v;
}

TEST(DriverPull, UnclusteredJoinClusters) {
  Fixture fx(64, /*seed=*/3);
  std::vector<std::uint32_t> followers;
  for (std::uint32_t v = 1; v < 48; ++v) followers.push_back(v);
  fx.stage_cluster(0, followers);  // 48 clustered, 16 unclustered
  std::uint64_t joined = 0;
  for (int round = 0; round < 10; ++round) joined += fx.driver.unclustered_pull_round();
  const auto stats = fx.driver.clustering().stats();
  EXPECT_EQ(stats.clustered_nodes, 48 + joined);
  EXPECT_EQ(stats.unclustered_nodes, 16 - joined);
  EXPECT_GE(joined, 14u);  // 10 rounds at >= 75% hit rate miss w.p. < 1e-6 each
  EXPECT_TRUE(fx.driver.clustering().is_flat());
}

TEST(DriverPull, NoClustersMeansNoJoins) {
  Fixture fx(16);
  EXPECT_EQ(fx.driver.unclustered_pull_round(), 0u);
  EXPECT_EQ(fx.driver.clustering().stats().clustered_nodes, 0u);
}

TEST(DriverOrganic, FullPipelineUnderKnowledgeEnforcement) {
  // Seeds -> recruiting pushes -> merge-all -> pull -> share, with the
  // engine rejecting any direct contact to an unlearned ID. This proves the
  // primitives only ever use honestly learned addresses.
  Fixture fx(256, /*seed=*/11, /*knowledge=*/true);
  auto& cl = fx.driver.clustering();
  for (std::uint32_t v = 0; v < 256; v += 32) cl.make_leader(v);
  for (int round = 0; round < 8; ++round) {
    fx.driver.push_cluster_id(false, true, RelayPolicy::kSmallest);
  }
  fx.driver.clear_candidates();
  for (int rep = 0; rep < 2; ++rep) {
    fx.driver.push_cluster_id(false, false, RelayPolicy::kSmallest);
    fx.driver.relay_candidates(RelayPolicy::kSmallest, false);
    fx.driver.merge_from_inbox(RelayPolicy::kSmallest, false);
  }
  fx.driver.settle(3);
  for (int round = 0; round < 8; ++round) fx.driver.unclustered_pull_round();
  std::vector<std::uint8_t> informed(256, 0);
  informed[17] = 1;
  fx.driver.share_rumor(informed, true);

  EXPECT_TRUE(cl.is_flat());
  const auto stats = cl.stats();
  EXPECT_EQ(stats.unclustered_nodes, 0u);
  EXPECT_EQ(stats.clusters, 1u);
  std::uint64_t informed_count = 0;
  for (auto b : informed) informed_count += b;
  EXPECT_EQ(informed_count, 256u);
}

TEST(DriverRelay, SmallestPolicyDeliversMinimum) {
  Fixture fx(64, /*seed=*/13);
  // One inactive cluster receives pushes from several active singletons;
  // after relay+merge it must follow the smallest pushing cluster ID it saw.
  std::vector<std::uint32_t> followers;
  for (std::uint32_t v = 1; v < 32; ++v) followers.push_back(v);
  fx.stage_cluster(0, followers);
  NodeId smallest_active = NodeId::unclustered();
  for (std::uint32_t v = 32; v < 64; ++v) {
    fx.driver.clustering().make_leader(v);
    fx.driver.clustering().set_active(v, true);
    smallest_active = std::min(smallest_active, fx.net.id_of(v));
  }
  fx.driver.push_cluster_id(true, false, RelayPolicy::kSmallest);
  fx.driver.relay_candidates(RelayPolicy::kSmallest, true);
  fx.driver.merge_from_inbox(RelayPolicy::kSmallest, true);
  // With 32 active singletons pushing into a 32-node cluster, the smallest
  // active ID reaches the leader with overwhelming probability only if it
  // hit the cluster; we assert the weaker, deterministic property: the
  // new leader is one of the active singletons (or unchanged if none hit).
  const NodeId target = fx.driver.clustering().follow(0);
  if (target != fx.net.id_of(0)) {
    bool is_active_singleton = false;
    for (std::uint32_t v = 32; v < 64; ++v) {
      if (fx.net.id_of(v) == target) is_active_singleton = true;
    }
    EXPECT_TRUE(is_active_singleton);
  }
}

TEST(DriverClearCandidates, DropsStaleState) {
  Fixture fx(32);
  fx.stage_cluster(0, {1, 2, 3});
  for (std::uint32_t v = 16; v < 32; ++v) {
    fx.driver.clustering().make_leader(v);
    fx.driver.clustering().set_active(v, true);
  }
  fx.driver.push_cluster_id(true, false, RelayPolicy::kSmallest);
  fx.driver.clear_candidates();
  fx.driver.relay_candidates(RelayPolicy::kSmallest, true);
  fx.driver.merge_from_inbox(RelayPolicy::kSmallest, true);
  // All candidates were wiped, so no merge happened.
  EXPECT_TRUE(fx.driver.clustering().is_leader(0));
}

}  // namespace
}  // namespace gossip::cluster
