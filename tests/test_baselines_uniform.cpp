// Tests for the uniform gossip baselines (baselines/uniform.hpp):
// correctness and the classical complexity shapes used as comparison points.
#include "baselines/uniform.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"

namespace gossip::baselines {
namespace {

sim::NetworkOptions opts(std::uint32_t n, std::uint64_t seed = 1) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return o;
}

using Runner = core::BroadcastReport (*)(sim::Network&, std::uint32_t, UniformOptions);

struct Case {
  const char* name;
  Runner runner;
};

class UniformBaselines : public ::testing::TestWithParam<Case> {};

TEST_P(UniformBaselines, InformsEveryone) {
  for (std::uint32_t n : {64u, 1024u, 16384u}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      sim::Network net(opts(n, seed));
      const auto report = GetParam().runner(net, 0, UniformOptions{});
      EXPECT_TRUE(report.all_informed) << GetParam().name << " n=" << n << " seed=" << seed;
      EXPECT_EQ(report.rounds, report.stats.rounds);
    }
  }
}

TEST_P(UniformBaselines, RoundsAreThetaLogN) {
  // Classical: log n up to constants - and at least log_3 n (informed count
  // can at most triple per round via one push and all pulls... conservatively
  // we assert >= log_4 n and <= 8 log n).
  sim::Network net(opts(65536, 3));
  const auto report = GetParam().runner(net, 0, UniformOptions{});
  ASSERT_TRUE(report.all_informed);
  const double log_n = log2d(65536);
  EXPECT_GE(static_cast<double>(report.rounds), log_n / 2.0) << GetParam().name;
  EXPECT_LE(static_cast<double>(report.rounds), 8.0 * log_n) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(All, UniformBaselines,
                         ::testing::Values(Case{"push", &run_push}, Case{"pull", &run_pull},
                                           Case{"push_pull", &run_push_pull}),
                         [](const auto& info) { return info.param.name; });

TEST(UniformBaselines, PushMessagesAreSuperlinear) {
  // PUSH keeps every informed node transmitting: Theta(n log n) payload
  // messages, i.e. messages/node grows with n (what [10] improves on).
  sim::Network small(opts(1024, 5));
  const auto rs = run_push(small, 0, {});
  sim::Network big(opts(262144, 5));
  const auto rb = run_push(big, 0, {});
  ASSERT_TRUE(rs.all_informed);
  ASSERT_TRUE(rb.all_informed);
  EXPECT_GT(rb.payload_messages_per_node(), rs.payload_messages_per_node() + 2.0);
}

TEST(UniformBaselines, PushPullCheaperThanPush) {
  sim::Network a(opts(65536, 7));
  const auto push = run_push(a, 0, {});
  sim::Network b(opts(65536, 7));
  const auto pp = run_push_pull(b, 0, {});
  ASSERT_TRUE(push.all_informed);
  ASSERT_TRUE(pp.all_informed);
  EXPECT_LT(pp.rounds, push.rounds);
  EXPECT_LT(pp.payload_messages_per_node(), push.payload_messages_per_node());
}

TEST(UniformBaselines, RoundCapRespected) {
  sim::Network net(opts(4096, 9));
  UniformOptions o;
  o.max_rounds = 3;  // way too few to finish
  const auto report = run_push(net, 0, o);
  EXPECT_FALSE(report.all_informed);
  EXPECT_EQ(report.rounds, 3u);
}

TEST(UniformBaselines, DeadSourceRejected) {
  sim::Network net(opts(64));
  net.fail(0);
  EXPECT_THROW((void)run_push(net, 0, {}), ContractViolation);
}

TEST(UniformBaselines, SurvivesFailures) {
  // With 10% oblivious failures the protocols still inform all survivors
  // (complete graph: failures only slow things down).
  sim::Network net(opts(4096, 11));
  for (std::uint32_t v = 0; v < 4096; v += 10) net.fail(v);
  const auto report = run_push_pull(net, 1, {});
  EXPECT_TRUE(report.all_informed);
  EXPECT_EQ(report.alive, net.alive_count());
}

TEST(UniformBaselines, SmallDeltaForUniformGossip) {
  // Uniform gossip needs no fan-in: max involvement is the balls-in-bins
  // maximum, far below n (contrast with Cluster1/2 - paper Section 7).
  sim::Network net(opts(65536, 13));
  const auto report = run_push_pull(net, 0, {});
  ASSERT_TRUE(report.all_informed);
  EXPECT_LE(report.max_delta(), 40u);
}

}  // namespace
}  // namespace gossip::baselines
