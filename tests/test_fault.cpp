// Unit tests for the fault models (sim/fault.hpp): the oblivious failure
// adversary, the round-timeline FaultModel API (StaticCrash/ScheduledCrash/
// LossyChannel/CompositeFault) and the counter-keyed LossChannel.
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/assert.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace gossip::sim {
namespace {

Network make_net(std::uint32_t n, std::uint64_t seed = 1) {
  NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return Network(o);
}

class FaultStrategyTest : public ::testing::TestWithParam<FaultStrategy> {};

TEST_P(FaultStrategyTest, ProducesExactlyFDistinctNodes) {
  Network net = make_net(100);
  Rng rng(7);
  for (std::uint32_t f : {0u, 1u, 10u, 50u, 99u}) {
    const auto failures = choose_failures(net, f, GetParam(), rng);
    EXPECT_EQ(failures.size(), f);
    std::set<std::uint32_t> unique(failures.begin(), failures.end());
    EXPECT_EQ(unique.size(), f) << "duplicates in failure set";
    for (std::uint32_t v : failures) EXPECT_LT(v, net.n());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FaultStrategyTest,
                         ::testing::Values(FaultStrategy::kRandomSubset,
                                           FaultStrategy::kSmallestIds,
                                           FaultStrategy::kIndexStride),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Fault, CannotFailAllNodes) {
  Network net = make_net(10);
  Rng rng(1);
  EXPECT_THROW((void)choose_failures(net, 10, FaultStrategy::kRandomSubset, rng),
               ContractViolation);
}

TEST(Fault, SmallestIdsReallyAreSmallest) {
  Network net = make_net(50);
  Rng rng(1);
  const auto failures = choose_failures(net, 10, FaultStrategy::kSmallestIds, rng);
  NodeId max_failed(0);
  for (std::uint32_t v : failures) max_failed = std::max(max_failed, net.id_of(v));
  std::set<std::uint32_t> failed(failures.begin(), failures.end());
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (!failed.contains(v)) EXPECT_GT(net.id_of(v), max_failed);
  }
}

TEST(Fault, RandomSubsetVariesWithRng) {
  Network net = make_net(1000);
  Rng a(1), b(2);
  const auto fa = choose_failures(net, 100, FaultStrategy::kRandomSubset, a);
  const auto fb = choose_failures(net, 100, FaultStrategy::kRandomSubset, b);
  EXPECT_NE(fa, fb);
}

TEST(Fault, StrideSpreadsAcrossIndexRange) {
  Network net = make_net(100);
  Rng rng(1);
  const auto failures = choose_failures(net, 10, FaultStrategy::kIndexStride, rng);
  ASSERT_EQ(failures.size(), 10u);
  // Stride of 10: expect one failure per decade of the index range.
  std::set<std::uint32_t> deciles;
  for (std::uint32_t v : failures) deciles.insert(v / 10);
  EXPECT_GE(deciles.size(), 9u);
}

TEST(Fault, StringNames) {
  EXPECT_STREQ(to_string(FaultStrategy::kRandomSubset), "random");
  EXPECT_STREQ(to_string(FaultStrategy::kSmallestIds), "smallest-ids");
  EXPECT_STREQ(to_string(FaultStrategy::kIndexStride), "stride");
}

// ---------------------------------------------------------------------------
// FaultModel API.
// ---------------------------------------------------------------------------

/// A round in which nobody initiates (drives the timeline without traffic).
inline auto silent_hooks() {
  return make_hooks([](std::uint32_t) { return std::nullopt; });
}

TEST(StaticCrash, MatchesTheLegacyChooseFailuresRecipe) {
  Network via_model = make_net(200, 5);
  Rng model_rng(42);
  StaticCrash model(20, FaultStrategy::kRandomSubset);
  model.on_run_begin(via_model, model_rng);

  Network via_recipe = make_net(200, 5);
  Rng recipe_rng(42);
  for (std::uint32_t v :
       choose_failures(via_recipe, 20, FaultStrategy::kRandomSubset, recipe_rng)) {
    via_recipe.fail(v);
  }

  EXPECT_EQ(via_model.alive_count(), via_recipe.alive_count());
  for (std::uint32_t v = 0; v < via_model.n(); ++v) {
    EXPECT_EQ(via_model.alive(v), via_recipe.alive(v)) << "node " << v;
  }
  // Bit-compatible adversary-stream consumption (PR 3 trial trajectories
  // depend on it).
  EXPECT_EQ(model_rng.next_u64(), recipe_rng.next_u64());
}

TEST(StaticCrash, ZeroCountConsumesNothing) {
  Network net = make_net(50);
  Rng a(9), b(9);
  StaticCrash model(0, FaultStrategy::kRandomSubset);
  model.on_run_begin(net, a);
  EXPECT_EQ(net.alive_count(), 50u);
  EXPECT_EQ(a.next_u64(), b.next_u64());  // stream untouched, like legacy f == 0
}

TEST(ScheduledCrash, FiresExactlyAtItsRound) {
  Network net = make_net(16);
  Engine engine(net);
  ScheduledCrash model(3, std::vector<std::uint32_t>{1, 2, 5});
  engine.set_fault_model(&model);
  auto hooks = silent_hooks();
  for (int r = 0; r < 3; ++r) {
    engine.run_round(hooks);  // on_round_begin(0..2): before the crash round
    EXPECT_EQ(net.alive_count(), 16u) << "after round " << r;
  }
  engine.run_round(hooks);  // on_round_begin(3): the set crashes
  EXPECT_EQ(net.alive_count(), 13u);
  EXPECT_FALSE(net.alive(1));
  EXPECT_FALSE(net.alive(2));
  EXPECT_FALSE(net.alive(5));
  engine.run_round(hooks);  // monotone: fires once, nobody else dies
  EXPECT_EQ(net.alive_count(), 13u);
}

TEST(ScheduledCrash, ObliviousSetMatchesStaticCrashChoice) {
  Network net = make_net(100, 3);
  Rng scheduled_rng(7), reference_rng(7);
  ScheduledCrash model(5, 10, FaultStrategy::kSmallestIds);
  model.on_run_begin(net, scheduled_rng);
  EXPECT_EQ(net.alive_count(), 100u);  // deferred: nothing crashed yet
  const auto expected =
      choose_failures(net, 10, FaultStrategy::kSmallestIds, reference_rng);
  EXPECT_EQ(model.victims(), expected);
}

TEST(LossChannel, DeterministicAndKeyedByRoundAndInitiator) {
  const LossChannel a(123, /*round=*/4, 0.5);
  const LossChannel b(123, /*round=*/4, 0.5);
  const LossChannel other_round(123, /*round=*/5, 0.5);
  bool any_differs_across_rounds = false;
  for (std::uint32_t v = 0; v < 512; ++v) {
    EXPECT_EQ(a.drop(v), b.drop(v)) << "initiator " << v;
    any_differs_across_rounds |= a.drop(v) != other_round.drop(v);
  }
  EXPECT_TRUE(any_differs_across_rounds) << "round key ignored";
}

TEST(LossChannel, DropFrequencyTracksProbability) {
  const LossChannel channel(99, 0, 0.3);
  std::uint32_t drops = 0;
  constexpr std::uint32_t kSamples = 20000;
  for (std::uint32_t v = 0; v < kSamples; ++v) drops += channel.drop(v) ? 1 : 0;
  const double rate = static_cast<double>(drops) / kSamples;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(LossChannel, InactiveAtZeroProbability) {
  EXPECT_FALSE(LossChannel(1, 0, 0.0).active());
  EXPECT_TRUE(LossChannel(1, 0, 0.25).active());
  EXPECT_FALSE(LossChannel().active());
}

TEST(CompositeFault, ComposesIndependentLossAndForwardsHooks) {
  CompositeFault composite;
  composite.add(std::make_unique<LossyChannel>(0.5))
      .add(std::make_unique<LossyChannel>(0.5));
  EXPECT_DOUBLE_EQ(composite.loss_probability(0), 0.75);

  composite.add(std::make_unique<ScheduledCrash>(1, std::vector<std::uint32_t>{0}));
  Network net = make_net(8);
  composite.on_round_begin(0, net);
  EXPECT_EQ(net.alive_count(), 8u);
  composite.on_round_begin(1, net);
  EXPECT_EQ(net.alive_count(), 7u);
  EXPECT_FALSE(net.alive(0));
}

TEST(FaultModel, DescribeStrings) {
  EXPECT_EQ(StaticCrash(32, FaultStrategy::kRandomSubset).describe(),
            "static_crash(f=32, strategy=random)");
  EXPECT_EQ(ScheduledCrash(4, 10, FaultStrategy::kIndexStride).describe(),
            "scheduled_crash(round=4, f=10, strategy=stride)");
  EXPECT_EQ(ScheduledCrash(2, std::vector<std::uint32_t>{0, 1}).describe(),
            "scheduled_crash(round=2, victims=2)");
  EXPECT_EQ(LossyChannel(0.25).describe(), "lossy(p=0.25)");
}

// ---------------------------------------------------------------------------
// Engine integration: lossy rounds.
// ---------------------------------------------------------------------------

/// Drops (nearly) every payload: p = 1 maps to threshold 2^64 - 1, so only
/// an all-ones draw survives - never observed in a small test.
struct TotalLoss final : FaultModel {
  double loss_probability(std::uint64_t) const override { return 1.0; }
  std::string describe() const override { return "total_loss"; }
};

TEST(EngineFaults, LossDropsPayloadsButMetersConnections) {
  Network net = make_net(16, 11);
  Engine engine(net);
  TotalLoss model;
  engine.set_fault_model(&model);
  std::vector<std::uint8_t> informed(net.n(), 0);
  informed[0] = 1;
  auto hooks = make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (!informed[v]) return std::nullopt;
        return Contact::push_random(Message::rumor());
      },
      no_hook,
      [&](std::uint32_t r, const Message&) { informed[r] = 1; });
  for (int r = 0; r < 5; ++r) engine.run_round(hooks);
  // The sender still pays for its transmissions...
  EXPECT_EQ(engine.metrics().run().total.payload_messages, 5u);
  EXPECT_EQ(engine.metrics().run().total.connections, 5u);
  // ...but nothing ever arrives.
  std::uint32_t informed_count = 0;
  for (std::uint8_t b : informed) informed_count += b;
  EXPECT_EQ(informed_count, 1u);
}

/// Direct-addressed ring pushes consume no engine randomness, so the serial
/// and sharded executors must agree bit-for-bit - including every loss
/// decision (keyed by (seed, round, initiator), not by the draw path).
std::vector<std::uint8_t> run_lossy_ring(unsigned threads) {
  NetworkOptions o;
  o.n = 64;
  o.seed = 21;
  Network net(o);
  Engine engine(net);
  if (threads) engine.set_threads(threads, /*shard_size=*/8);
  LossyChannel model(0.5);
  engine.set_fault_model(&model);
  std::vector<std::uint8_t> got(net.n(), 0);
  auto hooks = make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        return Contact::push_direct(net.id_of((v + 1) % net.n()), Message::rumor());
      },
      no_hook, [&](std::uint32_t r, const Message&) { got[r] = 1; });
  for (int r = 0; r < 4; ++r) {
    std::fill(got.begin(), got.end(), 0);
    engine.run_round(hooks);
  }
  return got;
}

TEST(EngineFaults, LossDecisionsAgreeAcrossSerialAndShardedExecutors) {
  const std::vector<std::uint8_t> serial = run_lossy_ring(0);
  // ~50% of the final round's pushes dropped: the pattern is non-trivial.
  const auto received = static_cast<std::uint32_t>(
      std::count(serial.begin(), serial.end(), std::uint8_t{1}));
  EXPECT_GT(received, 16u);
  EXPECT_LT(received, 48u);
  for (const unsigned threads : {1u, 2u, 8u}) {
    EXPECT_EQ(run_lossy_ring(threads), serial) << "threads " << threads;
  }
}

}  // namespace
}  // namespace gossip::sim
