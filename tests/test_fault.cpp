// Unit tests for the oblivious failure adversary (sim/fault.hpp).
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/assert.hpp"
#include "sim/network.hpp"

namespace gossip::sim {
namespace {

Network make_net(std::uint32_t n, std::uint64_t seed = 1) {
  NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return Network(o);
}

class FaultStrategyTest : public ::testing::TestWithParam<FaultStrategy> {};

TEST_P(FaultStrategyTest, ProducesExactlyFDistinctNodes) {
  Network net = make_net(100);
  Rng rng(7);
  for (std::uint32_t f : {0u, 1u, 10u, 50u, 99u}) {
    const auto failures = choose_failures(net, f, GetParam(), rng);
    EXPECT_EQ(failures.size(), f);
    std::set<std::uint32_t> unique(failures.begin(), failures.end());
    EXPECT_EQ(unique.size(), f) << "duplicates in failure set";
    for (std::uint32_t v : failures) EXPECT_LT(v, net.n());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FaultStrategyTest,
                         ::testing::Values(FaultStrategy::kRandomSubset,
                                           FaultStrategy::kSmallestIds,
                                           FaultStrategy::kIndexStride),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Fault, CannotFailAllNodes) {
  Network net = make_net(10);
  Rng rng(1);
  EXPECT_THROW((void)choose_failures(net, 10, FaultStrategy::kRandomSubset, rng),
               ContractViolation);
}

TEST(Fault, SmallestIdsReallyAreSmallest) {
  Network net = make_net(50);
  Rng rng(1);
  const auto failures = choose_failures(net, 10, FaultStrategy::kSmallestIds, rng);
  NodeId max_failed(0);
  for (std::uint32_t v : failures) max_failed = std::max(max_failed, net.id_of(v));
  std::set<std::uint32_t> failed(failures.begin(), failures.end());
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    if (!failed.contains(v)) EXPECT_GT(net.id_of(v), max_failed);
  }
}

TEST(Fault, RandomSubsetVariesWithRng) {
  Network net = make_net(1000);
  Rng a(1), b(2);
  const auto fa = choose_failures(net, 100, FaultStrategy::kRandomSubset, a);
  const auto fb = choose_failures(net, 100, FaultStrategy::kRandomSubset, b);
  EXPECT_NE(fa, fb);
}

TEST(Fault, StrideSpreadsAcrossIndexRange) {
  Network net = make_net(100);
  Rng rng(1);
  const auto failures = choose_failures(net, 10, FaultStrategy::kIndexStride, rng);
  ASSERT_EQ(failures.size(), 10u);
  // Stride of 10: expect one failure per decade of the index range.
  std::set<std::uint32_t> deciles;
  for (std::uint32_t v : failures) deciles.insert(v / 10);
  EXPECT_GE(deciles.size(), 9u);
}

TEST(Fault, StringNames) {
  EXPECT_STREQ(to_string(FaultStrategy::kRandomSubset), "random");
  EXPECT_STREQ(to_string(FaultStrategy::kSmallestIds), "smallest-ids");
  EXPECT_STREQ(to_string(FaultStrategy::kIndexStride), "stride");
}

}  // namespace
}  // namespace gossip::sim
