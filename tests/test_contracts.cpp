// Contract-tier tests (PR 9): pins the two-tier macro semantics in
// common/assert.hpp and proves the planted GOSSIP_DCHECK sites actually
// fire in audit builds. The suite compiles in BOTH configurations - CI runs
// it plain (DCHECK disarmed: the checks must cost nothing and evaluate
// nothing) and under -DGOSSIP_AUDIT=ON (the checks must throw a catchable
// ContractViolation, which is what makes them testable at all - see
// GOSSIP_AUDIT_NOEXCEPT).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_index.hpp"
#include "obs/provenance.hpp"
#include "sim/push_queue.hpp"

namespace {

using gossip::ContractViolation;

TEST(Contracts, CheckFiresInEveryBuild) {
  EXPECT_THROW(GOSSIP_CHECK(false), ContractViolation);
  EXPECT_THROW(GOSSIP_CHECK_MSG(false, "reason " << 42), ContractViolation);
  EXPECT_NO_THROW(GOSSIP_CHECK(true));
}

TEST(Contracts, DcheckArmedOnlyUnderAudit) {
#if defined(GOSSIP_AUDIT)
  EXPECT_THROW(GOSSIP_DCHECK(false), ContractViolation);
  EXPECT_THROW(GOSSIP_DCHECK_MSG(false, "audit " << 7), ContractViolation);
#else
  EXPECT_NO_THROW(GOSSIP_DCHECK(false));
  EXPECT_NO_THROW(GOSSIP_DCHECK_MSG(false, "disarmed"));
#endif
  EXPECT_NO_THROW(GOSSIP_DCHECK(true));
}

TEST(Contracts, DisarmedDcheckDoesNotEvaluateItsCondition) {
#if defined(GOSSIP_AUDIT)
  GTEST_SKIP() << "audit builds evaluate DCHECK conditions by design";
#else
  int evaluations = 0;
  [[maybe_unused]] const auto probe = [&evaluations]() {
    ++evaluations;
    return false;
  };
  GOSSIP_DCHECK(probe());
  GOSSIP_DCHECK_MSG(probe(), "never built");
  EXPECT_EQ(evaluations, 0) << "disarmed GOSSIP_DCHECK must compile to nothing";
#endif
}

// ISSUE site 1: BucketMap::bucket_of past the bucketed index space. The
// Release body is one shift with no table access, so calling it out of
// range is safe in both builds; only the audit build may reject it.
TEST(Contracts, BucketOfOutOfRangeFiresUnderAudit) {
  const gossip::sim::BucketMap map = gossip::sim::make_bucket_map(1024, 16);
  ASSERT_EQ(map.count, 16u);
  EXPECT_EQ(map.bucket_of(0), 0u);
  EXPECT_EQ(map.bucket_of(1023), map.count - 1);
#if defined(GOSSIP_AUDIT)
  EXPECT_THROW((void)map.bucket_of(2048), ContractViolation);
#else
  EXPECT_EQ(map.bucket_of(2048), 32u);  // nonsense bucket, silently
#endif
}

// ISSUE site 2: ProvenanceTracer::try_claim documents `node < capacity()`
// as a caller-guaranteed precondition (the engine arms the tracer at the
// network's join ceiling before tracing). An unarmed tracer has capacity 0,
// so ANY claim violates it; in Release that read would be out of bounds,
// which is exactly why the audit check exists - so the call is only made
// under GOSSIP_AUDIT, where the DCHECK rejects it before the access.
TEST(Contracts, UnarmedTracerClaimFiresUnderAudit) {
  gossip::obs::ProvenanceTracer tracer;
  ASSERT_EQ(tracer.capacity(), 0u);
#if defined(GOSSIP_AUDIT)
  EXPECT_THROW((void)tracer.try_claim(0), ContractViolation);
#else
  GTEST_SKIP() << "precondition violation is undefined behaviour when disarmed";
#endif
}

TEST(Contracts, ArmedTracerClaimPastCapacityFiresUnderAudit) {
  gossip::obs::ProvenanceTracer tracer;
  tracer.arm(64);
  EXPECT_TRUE(tracer.try_claim(3));
  EXPECT_FALSE(tracer.try_claim(3)) << "second claim of the same node";
#if defined(GOSSIP_AUDIT)
  EXPECT_THROW((void)tracer.try_claim(64), ContractViolation);
  EXPECT_THROW(tracer.note_claimed_entry(7, 0, 0, 0), ContractViolation)
      << "entry store without a prior claim";
#endif
  // The claimed node's entry store is valid in every build.
  EXPECT_NO_THROW(tracer.note_claimed_entry(3, 1, 2, 0));
  EXPECT_EQ(tracer.entries()[3].informer, 1u);
}

// The audit tier must not reject correct fast-path usage: a FlatIdIndex at
// its contractual load factor resolves hits and misses without tripping the
// probe-termination counter.
TEST(Contracts, AuditedFlatIndexAcceptsValidProbes) {
  gossip::FlatIdIndex index;
  std::vector<gossip::NodeId> ids;
  ids.reserve(256);
  for (std::uint32_t i = 0; i < 256; ++i) {
    ids.push_back(gossip::NodeId{0x9E3779B97F4A7C15ULL * (i + 1)});
  }
  index.build(std::span<const gossip::NodeId>(ids));
  for (std::uint32_t i = 0; i < 256; ++i) {
    EXPECT_EQ(index.find(ids[i].raw()), i);
  }
  EXPECT_EQ(index.find(0xDEADBEEFULL), gossip::FlatIdIndex::kNotFound);
}

}  // namespace
