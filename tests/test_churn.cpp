// Churn primitives (PR 6): the Network join API and capacity
// pre-reservation, scripted/Poisson ChurnSchedules, round-varying
// LossSchedules and their composition law, and the ByzantineResponder's
// pure corrupt_response stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::sim {
namespace {

NetworkOptions opts(std::uint32_t n, std::uint32_t max_nodes,
                    std::uint64_t seed = 42) {
  NetworkOptions o;
  o.n = n;
  o.seed = seed;
  o.max_nodes = max_nodes;
  return o;
}

// --- Network::join -------------------------------------------------------

TEST(ChurnNetwork, JoinGrowsDenselyUpToCapacity) {
  Network net(opts(8, 12));
  EXPECT_EQ(net.n(), 8u);
  EXPECT_EQ(net.capacity(), 12u);
  for (std::uint32_t expected = 8; expected < 12; ++expected) {
    ASSERT_TRUE(net.can_join());
    const std::uint32_t v = net.join();
    EXPECT_EQ(v, expected);       // dense indices, in join order
    EXPECT_TRUE(net.alive(v));
    EXPECT_EQ(net.find(net.id_of(v)), v);  // immediately resolvable
  }
  EXPECT_EQ(net.n(), 12u);
  EXPECT_FALSE(net.can_join());
  EXPECT_THROW(net.join(), ContractViolation);  // capacity is a hard ceiling
}

TEST(ChurnNetwork, NoMaxNodesMeansNoJoins) {
  Network net(opts(8, 0));
  EXPECT_EQ(net.capacity(), 8u);  // capacity == n: the monotone world
  EXPECT_FALSE(net.can_join());
  EXPECT_THROW(net.join(), ContractViolation);
}

TEST(ChurnNetwork, JoinIdsAreFreshAndDeterministic) {
  Network a(opts(8, 16));
  Network b(opts(8, 16));
  for (int k = 0; k < 8; ++k) {
    const std::uint32_t va = a.join();
    const std::uint32_t vb = b.join();
    // Same seed + same join order -> the same ID stream.
    EXPECT_EQ(a.id_of(va).raw(), b.id_of(vb).raw());
    // Fresh: distinct from every earlier node's ID.
    for (std::uint32_t w = 0; w < va; ++w) {
      EXPECT_NE(a.id_of(va).raw(), a.id_of(w).raw());
    }
  }
}

TEST(ChurnNetwork, FailedCountIsExplicitUnderJoins) {
  Network net(opts(6, 10));
  net.fail(1);
  net.fail(4);
  EXPECT_EQ(net.failed_count(), 2u);
  EXPECT_EQ(net.alive_count(), 4u);
  // Joins move n but not the failure ledger.
  net.join();
  net.join();
  EXPECT_EQ(net.n(), 8u);
  EXPECT_EQ(net.failed_count(), 2u);
  EXPECT_EQ(net.alive_count(), 6u);
  // Double-failing is a contract violation, not silent bookkeeping.
  EXPECT_THROW(net.fail(1), ContractViolation);
  EXPECT_EQ(net.failed_count(), 2u);
  // A joiner can fail like any other node.
  net.fail(7);
  EXPECT_EQ(net.failed_count(), 3u);
  EXPECT_EQ(net.alive_count(), 5u);
}

// --- ChurnSchedule -------------------------------------------------------

TEST(ChurnSchedule_, ScriptedEventsFireOnTheirRounds) {
  Network net(opts(8, 16));
  ChurnSchedule churn(std::vector<ChurnEvent>{
      {2, 3, 0},   // +3 at round 2
      {5, 0, 2},   // -2 at round 5
      {2, 1, 1},   // rounds may repeat: +1/-1 also at round 2
  });
  for (std::uint64_t r = 0; r < 8; ++r) {
    churn.on_round_begin(r, net);
    if (r < 2) {
      EXPECT_EQ(net.n(), 8u) << "round " << r;
    } else if (r < 5) {
      EXPECT_EQ(net.n(), 12u) << "round " << r;  // 3 + 1 joins
      EXPECT_EQ(net.failed_count(), 1u) << "round " << r;
    } else {
      EXPECT_EQ(net.failed_count(), 3u) << "round " << r;
    }
  }
  EXPECT_EQ(churn.joins_applied(), 4u);
  EXPECT_EQ(churn.crashes_applied(), 3u);
}

TEST(ChurnSchedule_, ScriptedJoinsStopSilentlyAtCapacity) {
  Network net(opts(4, 6));
  ChurnSchedule churn(std::vector<ChurnEvent>{{0, 10, 0}});
  churn.on_round_begin(0, net);
  EXPECT_EQ(net.n(), 6u);  // capped, not thrown
  EXPECT_EQ(churn.joins_applied(), 2u);
}

TEST(ChurnSchedule_, CrashesNeverTakeAliveBelowTwo) {
  Network net(opts(4, 4));
  ChurnSchedule churn(std::vector<ChurnEvent>{{0, 0, 100}});
  churn.on_round_begin(0, net);
  EXPECT_EQ(net.alive_count(), 2u);
  EXPECT_EQ(churn.crashes_applied(), 2u);
}

TEST(ChurnSchedule_, PoissonTrajectoryIsSeedDeterministic) {
  // Two networks with the same seed must see the identical churn timeline -
  // arrival counts AND crash victims come from (seed, round) streams.
  const auto run = [](std::uint64_t seed) {
    Network net(opts(64, 128, seed));
    ChurnSchedule churn(/*join_rate=*/0.7, /*crash_rate=*/0.4);
    std::vector<std::uint64_t> trace;
    for (std::uint64_t r = 0; r < 32; ++r) {
      churn.on_round_begin(r, net);
      trace.push_back(net.n());
      trace.push_back(net.failed_count());
      for (std::uint32_t v = 0; v < net.n(); ++v) trace.push_back(net.alive(v));
    }
    return trace;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));  // and the timeline really is seed-keyed
}

TEST(ChurnSchedule_, PoissonWindowGatesArrivals) {
  Network net(opts(32, 256, 5));
  ChurnSchedule churn(/*join_rate=*/2.0, /*crash_rate=*/0.0,
                      /*start_round=*/4, /*end_round=*/8);
  for (std::uint64_t r = 0; r < 16; ++r) {
    const std::uint32_t before = net.n();
    churn.on_round_begin(r, net);
    if (r < 4 || r >= 8) EXPECT_EQ(net.n(), before) << "round " << r;
  }
  // ~2 joins/round over 4 windowed rounds; the exact count is the seed's,
  // but the window means it is positive and far below 16 rounds' worth.
  EXPECT_GT(churn.joins_applied(), 0u);
  EXPECT_LE(churn.joins_applied(), 24u);
}

// --- LossSchedule --------------------------------------------------------

TEST(LossSchedule_, BurstIsZeroOutsideItsWindow) {
  const auto ls = LossSchedule::burst(0.4, 3, 7);
  EXPECT_DOUBLE_EQ(ls.loss_probability(2), 0.0);
  EXPECT_DOUBLE_EQ(ls.loss_probability(3), 0.4);
  EXPECT_DOUBLE_EQ(ls.loss_probability(6), 0.4);
  EXPECT_DOUBLE_EQ(ls.loss_probability(7), 0.0);  // [from, until)
}

TEST(LossSchedule_, RampInterpolatesAndHolds) {
  const auto ls = LossSchedule::ramp(0.1, 0.5, 8);
  EXPECT_DOUBLE_EQ(ls.loss_probability(0), 0.1);
  EXPECT_DOUBLE_EQ(ls.loss_probability(4), 0.3);  // midpoint
  EXPECT_DOUBLE_EQ(ls.loss_probability(8), 0.5);
  EXPECT_DOUBLE_EQ(ls.loss_probability(100), 0.5);  // holds p1 after
}

TEST(LossSchedule_, PeriodicRepeatsItsDutyCycle) {
  const auto ls = LossSchedule::periodic(0.25, 5, 2);
  for (const std::uint64_t base : {0ULL, 5ULL, 50ULL}) {
    EXPECT_DOUBLE_EQ(ls.loss_probability(base + 0), 0.25);
    EXPECT_DOUBLE_EQ(ls.loss_probability(base + 1), 0.25);
    EXPECT_DOUBLE_EQ(ls.loss_probability(base + 2), 0.0);
    EXPECT_DOUBLE_EQ(ls.loss_probability(base + 4), 0.0);
  }
}

// --- CompositeFault loss composition -------------------------------------

TEST(CompositeLoss, ComposesAsIndependentFailures) {
  // The regression the header promises: 1 - prod(1 - p_i), re-queried per
  // round so round-varying parts compose correctly.
  CompositeFault fault;
  fault.add(std::make_unique<LossyChannel>(0.2));
  fault.add(std::make_unique<LossSchedule>(LossSchedule::burst(0.5, 2, 4)));
  EXPECT_DOUBLE_EQ(fault.loss_probability(0), 0.2);  // burst inactive
  EXPECT_DOUBLE_EQ(fault.loss_probability(2), 1.0 - (1.0 - 0.2) * (1.0 - 0.5));
  EXPECT_DOUBLE_EQ(fault.loss_probability(4), 0.2);
}

TEST(CompositeLoss, StableNearZeroAndNearOne) {
  // Near 0: tiny probabilities must add, not vanish to rounding.
  CompositeFault tiny;
  tiny.add(std::make_unique<LossyChannel>(1e-12));
  tiny.add(std::make_unique<LossyChannel>(3e-12));
  EXPECT_DOUBLE_EQ(tiny.loss_probability(0),
                   1.0 - (1.0 - 1e-12) * (1.0 - 3e-12));
  EXPECT_GT(tiny.loss_probability(0), 3.9e-12);
  EXPECT_LT(tiny.loss_probability(0), 4.1e-12);
  // Near 1: the survivor product keeps precision where 'sum and clamp'
  // would saturate.
  CompositeFault heavy;
  heavy.add(std::make_unique<LossyChannel>(0.999));
  heavy.add(std::make_unique<LossyChannel>(0.9));
  EXPECT_DOUBLE_EQ(heavy.loss_probability(7), 1.0 - 0.001 * 0.1);
  EXPECT_LT(heavy.loss_probability(7), 1.0);
}

// --- ByzantineResponder --------------------------------------------------

TEST(Byzantine, TraitorSetIsObliviousAndSized) {
  Network net(opts(100, 150, 3));
  ByzantineResponder byz(0.2);
  Rng adversary(77);
  byz.on_run_begin(net, adversary);
  EXPECT_TRUE(byz.has_byzantine());
  EXPECT_EQ(byz.traitor_count(), 20u);
  std::uint32_t flagged = 0;
  for (std::uint32_t v = 0; v < net.n(); ++v) flagged += byz.byzantine(v);
  EXPECT_EQ(flagged, 20u);
  // Joiners are never traitors: the set was fixed before they existed.
  const std::uint32_t joiner = net.join();
  EXPECT_FALSE(byz.byzantine(joiner));
}

TEST(Byzantine, CorruptResponseIsPurePerRoundAndResponder) {
  Network net(opts(32, 32, 8));
  ByzantineResponder byz(0.25);
  Rng adversary(5);
  byz.on_run_begin(net, adversary);

  Message::IdList honest_ids;
  honest_ids.push_back(net.id_of(1));
  honest_ids.push_back(net.id_of(2));
  honest_ids.push_back(net.id_of(3));
  const Message honest = Message::id_list(std::move(honest_ids));

  const auto raw_ids = [](const Message& m) {
    std::vector<std::uint64_t> out;
    m.ids().for_each([&](NodeId id) { out.push_back(id.raw()); });
    return out;
  };

  const Message a = byz.corrupt_response(6, 4, net, honest);
  const Message b = byz.corrupt_response(6, 4, net, honest);
  EXPECT_EQ(raw_ids(a), raw_ids(b));  // pure in (seed, round, responder)
  EXPECT_EQ(a.bits(net.costs()), b.bits(net.costs()));
  // The detectable payload is stripped; the poisoned list matches the
  // honest slot count.
  EXPECT_FALSE(a.has_rumor());
  EXPECT_EQ(raw_ids(a).size(), 3u);
  // Different rounds / responders draw different poison.
  EXPECT_NE(raw_ids(a), raw_ids(byz.corrupt_response(7, 4, net, honest)));
  EXPECT_NE(raw_ids(a), raw_ids(byz.corrupt_response(6, 9, net, honest)));
}

}  // namespace
}  // namespace gossip::sim
