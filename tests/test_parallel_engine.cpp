// Parity and determinism suite for the sharded parallel executor
// (sim/parallel): for a fixed seed and shard size, ParallelEngine must be
// bit-identical to itself for every thread count >= 1 - metrics, knowledge
// graphs and every hook-observed delivery - and bit-identical to the serial
// Engine on rounds that consume no engine randomness (direct addressing
// only). Uniform rounds intentionally diverge from the serial stream; that
// divergence is documented in CHANGES.md, not tested here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/uniform.hpp"
#include "cluster/driver.hpp"
#include "sim/parallel/parallel_engine.hpp"
#include "sim/parallel/thread_pool.hpp"

namespace gossip::sim {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests.
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  parallel::ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<std::uint32_t>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1u);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  parallel::ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(17, [&](std::size_t i) { sum.fetch_add(i + 1); });
  }
  EXPECT_EQ(sum.load(), 50u * (17u * 18u / 2u));
}

TEST(ThreadPool, ZeroAndSingleItemJobs) {
  parallel::ThreadPool pool(8);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no items to run"; });
  int ran = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, MoreThreadsThanItems) {
  parallel::ThreadPool pool(16);
  std::vector<std::atomic<std::uint32_t>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  parallel::ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, SizeCountsCallerAndNormalisesZero) {
  EXPECT_EQ(parallel::ThreadPool(4).size(), 4u);
  EXPECT_EQ(parallel::ThreadPool(1).size(), 1u);
  EXPECT_EQ(parallel::ThreadPool(0).size(), 1u);  // 0 normalised to inline
}

TEST(ThreadPool, PropagatesLowestIndexExceptionDeterministically) {
  // Many items throw concurrently; the pool must always rethrow the
  // LOWEST-index exception AND still run every item, independent of both
  // the thread schedule and the worker count (the inline single-thread
  // path shares the contract). Repeat to give a schedule-dependent
  // implementation a chance to fail.
  for (const unsigned threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    for (int rep = 0; rep < (threads == 1 ? 1 : 25); ++rep) {
      std::atomic<std::uint32_t> executed{0};
      std::string caught;
      try {
        pool.parallel_for(200, [&](std::size_t i) {
          executed.fetch_add(1);
          if (i >= 7) throw std::runtime_error(std::to_string(i));
        });
        FAIL() << "expected an exception";
      } catch (const std::runtime_error& e) {
        caught = e.what();
      }
      EXPECT_EQ(caught, "7") << "threads " << threads << " rep " << rep;
      EXPECT_EQ(executed.load(), 200u) << "threads " << threads << " rep " << rep;
    }
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  parallel::ThreadPool pool(4);
  std::atomic<std::uint32_t> executed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          executed.fetch_add(1);
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Every item still ran (no cancellation) - the pool stays usable.
  EXPECT_EQ(executed.load(), 64u);
  std::atomic<std::uint32_t> after{0};
  pool.parallel_for(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8u);
}

// ---------------------------------------------------------------------------
// Shared comparison helpers (mirrors test_engine_parity.cpp).
// ---------------------------------------------------------------------------

NetworkOptions opts(std::uint32_t n, std::uint64_t seed, bool track = true) {
  NetworkOptions o;
  o.n = n;
  o.seed = seed;
  o.track_knowledge = track;
  return o;
}

void expect_round_stats_equal(const RoundStats& a, const RoundStats& b,
                              const char* where) {
  EXPECT_EQ(a.pushes, b.pushes) << where;
  EXPECT_EQ(a.pull_requests, b.pull_requests) << where;
  EXPECT_EQ(a.pull_responses, b.pull_responses) << where;
  EXPECT_EQ(a.payload_messages, b.payload_messages) << where;
  EXPECT_EQ(a.connections, b.connections) << where;
  EXPECT_EQ(a.bits, b.bits) << where;
  EXPECT_EQ(a.initiators, b.initiators) << where;
  EXPECT_EQ(a.max_involvement, b.max_involvement) << where;
}

void expect_runs_equal(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  expect_round_stats_equal(a.total, b.total, "totals");
  ASSERT_EQ(a.per_round.size(), b.per_round.size());
  for (std::size_t r = 0; r < a.per_round.size(); ++r) {
    expect_round_stats_equal(a.per_round[r], b.per_round[r], "per-round");
  }
}

void expect_knowledge_equal(const Network& a, const Network& b) {
  ASSERT_NE(a.knowledge(), nullptr);
  ASSERT_NE(b.knowledge(), nullptr);
  EXPECT_EQ(a.knowledge()->total_knowledge(), b.knowledge()->total_knowledge());
  for (std::uint32_t v = 0; v < a.n(); ++v) {
    EXPECT_EQ(a.knowledge()->known_ids(v), b.knowledge()->known_ids(v))
        << "knowledge of node " << v << " diverged";
  }
}

// Mixed-kind workload driven purely by hook-visible state (tokens), so any
// trajectory difference between runs compounds and becomes visible. initiate
// is read-only over shared state, as the sharded executor requires. Unlike
// the serial-parity Workload in test_engine_parity.cpp it does NOT read the
// knowledge tracker inside initiate: mid-phase-1 knowledge reads are exactly
// where sharded and serial semantics legitimately differ (see the Threading
// model notes in sim/engine.hpp), and direct addressing is covered by the
// direct-only suites below.
struct MixedWorkload {
  Network& net;
  std::vector<std::uint32_t> tokens;

  explicit MixedWorkload(Network& n) : net(n), tokens(n.n(), 0) { tokens[0] = 1; }

  std::optional<Contact> initiate(std::uint32_t v) {
    switch ((tokens[v] + v) % 4) {
      case 0:
        return std::nullopt;
      case 1:
        return Contact::push_random(Message::rumor().and_id(net.id_of(v)));
      case 2:
        return Contact::pull_random();
      default:
        return Contact::exchange_random(Message::count(tokens[v]).and_id(net.id_of(v)));
    }
  }
  Message respond(std::uint32_t v) {
    if (tokens[v] == 0) return Message::empty();
    return Message::count(tokens[v]).and_id(net.id_of(v));
  }
  void on_push(std::uint32_t r, const Message& m) {
    tokens[r] += 1 + static_cast<std::uint32_t>(m.ids().size());
  }
  void on_pull_reply(std::uint32_t q, const Message& m) {
    if (m.has_count()) tokens[q] += static_cast<std::uint32_t>(m.count_value() % 7);
  }
};

struct MixedRunResult {
  RunStats stats;
  std::vector<std::uint32_t> tokens;
};

MixedRunResult run_mixed(Network& net, Engine& eng, unsigned rounds) {
  MixedWorkload w(net);
  for (unsigned r = 0; r < rounds; ++r) eng.run_round(w);
  return MixedRunResult{eng.metrics().run(), std::move(w.tokens)};
}

// ---------------------------------------------------------------------------
// Thread-count determinism: the tentpole acceptance criterion.
// ---------------------------------------------------------------------------

class ParallelDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDeterminism, MixedWorkloadBitIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 512;
  constexpr unsigned kRounds = 25;
  // Small shards force a multi-shard decomposition (8 shards at n=512) so
  // the merge order actually matters.
  constexpr std::uint32_t kShard = 64;

  Network reference_net(opts(kN, seed));
  parallel::ParallelEngine reference_eng(
      reference_net, {.threads = 1, .shard_size = kShard, .keep_history = true});
  const MixedRunResult reference = run_mixed(reference_net, reference_eng, kRounds);

  for (const unsigned threads : {2u, 8u}) {
    Network net(opts(kN, seed));
    parallel::ParallelEngine eng(net,
                                 {.threads = threads, .shard_size = kShard,
                                  .keep_history = true});
    const MixedRunResult result = run_mixed(net, eng, kRounds);
    expect_runs_equal(reference.stats, result.stats);
    EXPECT_EQ(reference.tokens, result.tokens) << "threads=" << threads;
    expect_knowledge_equal(reference_net, net);
  }
}

TEST_P(ParallelDeterminism, WithFailedNodesAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 384;

  const auto run = [&](unsigned threads) {
    Network net(opts(kN, seed));
    for (std::uint32_t v = 5; v < kN; v += 9) net.fail(v);
    parallel::ParallelEngine eng(net,
                                 {.threads = threads, .shard_size = 48,
                                  .keep_history = true});
    MixedRunResult r = run_mixed(net, eng, 20);
    std::uint64_t know = net.knowledge()->total_knowledge();
    return std::tuple<RunStats, std::vector<std::uint32_t>, std::uint64_t>(
        std::move(r.stats), std::move(r.tokens), know);
  };

  auto [stats_1, tokens_1, know_1] = run(1);
  auto [stats_2, tokens_2, know_2] = run(2);
  auto [stats_8, tokens_8, know_8] = run(8);
  expect_runs_equal(stats_1, stats_2);
  expect_runs_equal(stats_1, stats_8);
  EXPECT_EQ(tokens_1, tokens_2);
  EXPECT_EQ(tokens_1, tokens_8);
  EXPECT_EQ(know_1, know_2);
  EXPECT_EQ(know_1, know_8);
}

// Payloads longer than PushQueue::kInlineIds exercise the per-shard spill
// vectors (ClusterResize-style lists) and the bulk learn_all merge path.
TEST_P(ParallelDeterminism, SpilledPayloadsAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 256;
  constexpr std::size_t kListLen = PushQueue::kInlineIds + 5;

  const auto run = [&](unsigned threads) {
    Network net(opts(kN, seed));
    parallel::ParallelEngine eng(net,
                                 {.threads = threads, .shard_size = 32,
                                  .keep_history = true});
    std::vector<std::uint64_t> received(kN, 0);
    auto hooks = make_hooks(
        [&net](std::uint32_t v) -> std::optional<Contact> {
          Message::IdList ids;
          for (std::size_t i = 0; i < kListLen; ++i) {
            ids.push_back(net.id_of((v + static_cast<std::uint32_t>(i) + 1) % net.n()));
          }
          return Contact::push_random(Message::id_list(std::move(ids)));
        },
        no_hook,
        [&received](std::uint32_t r, const Message& m) {
          received[r] += m.ids().size();
        });
    for (unsigned r = 0; r < 8; ++r) eng.run_round(hooks);
    return std::tuple<RunStats, std::vector<std::uint64_t>, std::uint64_t>(
        eng.metrics().run(), received, net.knowledge()->total_knowledge());
  };

  auto [stats_1, recv_1, know_1] = run(1);
  auto [stats_8, recv_8, know_8] = run(8);
  expect_runs_equal(stats_1, stats_8);
  EXPECT_EQ(recv_1, recv_8);
  EXPECT_EQ(know_1, know_8);
}

// The legacy std::function surface must ride the sharded path unchanged.
TEST_P(ParallelDeterminism, LegacyRoundHooksAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 200;

  const auto run = [&](unsigned threads) {
    Network net(opts(kN, seed, /*track=*/false));
    parallel::ParallelEngine eng(net,
                                 {.threads = threads, .shard_size = 32,
                                  .keep_history = true});
    std::vector<std::uint32_t> hits(kN, 0);
    RoundHooks h;
    h.initiate = [](std::uint32_t v) -> std::optional<Contact> {
      if (v % 3 == 0) return Contact::pull_random();
      return Contact::push_random(Message::rumor());
    };
    h.respond = [](std::uint32_t v) { return Message::count(v); };
    h.on_push = [&hits](std::uint32_t r, const Message&) { ++hits[r]; };
    h.on_pull_reply = [&hits](std::uint32_t q, const Message&) { ++hits[q]; };
    for (unsigned r = 0; r < 15; ++r) eng.run_round(h);
    return std::pair<RunStats, std::vector<std::uint32_t>>(eng.metrics().run(), hits);
  };

  auto [stats_1, hits_1] = run(1);
  auto [stats_2, hits_2] = run(2);
  expect_runs_equal(stats_1, stats_2);
  EXPECT_EQ(hits_1, hits_2);
}

TEST_P(ParallelDeterminism, InitiatorSubsetAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  constexpr std::uint32_t kN = 300;
  std::vector<std::uint32_t> subset;
  for (std::uint32_t v = 0; v < kN; v += 3) subset.push_back(v);

  const auto run = [&](unsigned threads) {
    Network net(opts(kN, seed, /*track=*/false));
    parallel::ParallelEngine eng(net,
                                 {.threads = threads, .shard_size = 16,
                                  .keep_history = true});
    std::vector<std::uint32_t> hits(kN, 0);
    auto hooks = make_hooks(
        [](std::uint32_t v) -> std::optional<Contact> {
          return Contact::push_random(Message::count(v));
        },
        no_hook, [&hits](std::uint32_t t, const Message&) { ++hits[t]; });
    for (unsigned r = 0; r < 12; ++r) eng.run_round(hooks, subset);
    return std::pair<RunStats, std::vector<std::uint32_t>>(eng.metrics().run(), hits);
  };

  auto [stats_1, hits_1] = run(1);
  auto [stats_8, hits_8] = run(8);
  expect_runs_equal(stats_1, stats_8);
  EXPECT_EQ(hits_1, hits_8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism, ::testing::Values(1u, 7u, 1234u));

// ---------------------------------------------------------------------------
// Serial parity where trajectories are shared: rounds that consume no
// engine randomness (direct addressing only) must match the serial Engine
// bit for bit - same metrics, same knowledge graph, same deliveries.
// ---------------------------------------------------------------------------

// Star workload: every non-hub node direct-pushes its ID to the hub or
// direct-pulls the hub's state, alternating by round parity; the hub
// responds with a count. All addressing is via IDs learned at setup.
struct StarRunResult {
  RunStats stats;
  std::vector<std::uint64_t> state;
  std::uint64_t knowledge;
};

StarRunResult run_star(Network& net, Engine& eng, unsigned rounds) {
  const NodeId hub_id = net.id_of(0);
  // Teach everyone the hub (and the hub everyone) so direct contacts are
  // legal from round one.
  if (auto* k = net.knowledge()) {
    for (std::uint32_t v = 1; v < net.n(); ++v) {
      k->learn(v, hub_id, net.id_of(v));
      k->learn(0, net.id_of(v), hub_id);
    }
  }
  std::vector<std::uint64_t> state(net.n(), 0);
  unsigned round = 0;
  auto hooks = make_hooks(
      [&](std::uint32_t v) -> std::optional<Contact> {
        if (v == 0) return std::nullopt;
        if (round % 2 == 0) {
          return Contact::push_direct(hub_id, Message::single_id(net.id_of(v)));
        }
        return Contact::pull_direct(hub_id);
      },
      [&](std::uint32_t v) { return Message::count(state[v]); },
      [&](std::uint32_t r, const Message& m) { state[r] += m.ids().size(); },
      [&](std::uint32_t q, const Message& m) {
        if (m.has_count()) state[q] += m.count_value() % 11;
      });
  for (; round < rounds; ++round) eng.run_round(hooks);
  return StarRunResult{eng.metrics().run(), std::move(state),
                       net.knowledge() ? net.knowledge()->total_knowledge() : 0};
}

TEST(ParallelSerialParity, DirectOnlyRoundsMatchSerialEngine) {
  constexpr std::uint32_t kN = 320;
  constexpr unsigned kRounds = 12;

  Network net_serial(opts(kN, 99));
  Engine serial(net_serial, /*keep_history=*/true);
  const StarRunResult serial_result = run_star(net_serial, serial, kRounds);

  for (const unsigned threads : {1u, 3u}) {
    Network net_par(opts(kN, 99));
    parallel::ParallelEngine par(net_par,
                                 {.threads = threads, .shard_size = 64,
                                  .keep_history = true});
    const StarRunResult par_result = run_star(net_par, par, kRounds);
    expect_runs_equal(serial_result.stats, par_result.stats);
    EXPECT_EQ(serial_result.state, par_result.state) << "threads=" << threads;
    EXPECT_EQ(serial_result.knowledge, par_result.knowledge);
    expect_knowledge_equal(net_serial, net_par);
  }
}

// The model's honesty rules still fire from worker threads: a direct
// contact to an unlearned ID is rejected (the pool propagates the
// ContractViolation to the caller).
TEST(ParallelSerialParity, DirectAddressingViolationPropagates) {
  constexpr std::uint32_t kN = 64;
  Network net(opts(kN, 4));
  parallel::ParallelEngine eng(net, {.threads = 4, .shard_size = 8});
  const NodeId stranger = net.id_of(kN - 1);
  auto hooks = make_hooks([&](std::uint32_t v) -> std::optional<Contact> {
    if (v == 7) return Contact::push_direct(stranger, Message::rumor());
    return std::nullopt;
  });
  EXPECT_THROW(eng.run_round(hooks), ContractViolation);
}

// ---------------------------------------------------------------------------
// Opt-in surfaces: run-option threads fields.
// ---------------------------------------------------------------------------

TEST(ParallelOptIn, UniformBaselineThreadsFieldIsDeterministic) {
  const auto run = [](unsigned threads) {
    NetworkOptions o;
    o.n = 4096;
    o.seed = 21;
    Network net(o);
    baselines::UniformOptions uo;
    uo.threads = threads;
    return baselines::run_push_pull(net, 0, uo);
  };
  const auto a = run(1);
  const auto b = run(2);
  const auto c = run(8);
  EXPECT_TRUE(a.all_informed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.rounds, c.rounds);
  EXPECT_EQ(a.stats.total.connections, b.stats.total.connections);
  EXPECT_EQ(a.stats.total.connections, c.stats.total.connections);
  EXPECT_EQ(a.stats.total.payload_messages, b.stats.total.payload_messages);
  EXPECT_EQ(a.stats.total.bits, c.stats.total.bits);
  EXPECT_EQ(a.stats.total.max_involvement, c.stats.total.max_involvement);
}

TEST(ParallelOptIn, DriverThreadsFieldIsDeterministic) {
  const auto run = [](unsigned threads) {
    NetworkOptions o;
    o.n = 512;
    o.seed = 13;
    Network net(o);
    Engine eng(net, /*keep_history=*/true);
    cluster::DriverOptions d;
    d.validate = true;
    d.threads = threads;
    cluster::Driver driver(eng, d);
    // Elect every 16th node a leader, then run uniform-heavy primitives.
    for (std::uint32_t v = 0; v < net.n(); ++v) {
      if (v % 16 == 0) {
        driver.clustering().make_leader(v);
      } else {
        driver.clustering().set_follow(v, net.id_of((v / 16) * 16));
      }
    }
    driver.set_all_active(true);
    driver.push_cluster_id(/*only_active=*/true, /*recruit_unclustered=*/true,
                           cluster::RelayPolicy::kSmallest);
    driver.relay_candidates(cluster::RelayPolicy::kSmallest,
                            /*only_inactive_relayers=*/false);
    driver.compute_sizes(/*only_active=*/false);
    (void)driver.unclustered_pull_round();
    std::vector<NodeId> follows;
    follows.reserve(net.n());
    for (std::uint32_t v = 0; v < net.n(); ++v) follows.push_back(driver.clustering().follow(v));
    return std::pair<RunStats, std::vector<NodeId>>(eng.metrics().run(), follows);
  };
  auto [stats_1, follows_1] = run(1);
  auto [stats_4, follows_4] = run(4);
  expect_runs_equal(stats_1, stats_4);
  EXPECT_EQ(follows_1, follows_4);
}

// Consecutive sharded engines over ONE network must run independent
// trajectories (each enable consumes a master-stream draw to seed its shard
// streams), mirroring how consecutive serial engines advance the shared
// master stream. A replayed contact graph would silently correlate
// "independent" phases and trials.
TEST(ParallelOptIn, ConsecutiveShardedEnginesAreIndependent) {
  constexpr std::uint32_t kN = 2048;
  Network net(opts(kN, 5, /*track=*/false));
  const auto hit_pattern = [&net] {
    parallel::ParallelEngine eng(net, {.threads = 2});
    std::vector<std::uint32_t> hits(net.n(), 0);
    auto hooks = make_hooks(
        [](std::uint32_t) -> std::optional<Contact> {
          return Contact::push_random(Message::rumor());
        },
        no_hook, [&hits](std::uint32_t r, const Message&) { ++hits[r]; });
    for (unsigned r = 0; r < 3; ++r) eng.run_round(hooks);
    return hits;
  };
  const auto first = hit_pattern();
  const auto second = hit_pattern();
  EXPECT_NE(first, second);

  // Determinism is unharmed: a fresh same-seed network reproduces both.
  Network net2(opts(kN, 5, /*track=*/false));
  const auto replay = [&net2] {
    parallel::ParallelEngine eng(net2, {.threads = 8});
    std::vector<std::uint32_t> hits(net2.n(), 0);
    auto hooks = make_hooks(
        [](std::uint32_t) -> std::optional<Contact> {
          return Contact::push_random(Message::rumor());
        },
        no_hook, [&hits](std::uint32_t r, const Message&) { ++hits[r]; });
    for (unsigned r = 0; r < 3; ++r) eng.run_round(hooks);
    return hits;
  };
  EXPECT_EQ(first, replay());
  EXPECT_EQ(second, replay());
}

// Serial default stays serial: threads=0 leaves the engine untouched, so the
// baselines' default trajectories are unchanged from PR 1.
TEST(ParallelOptIn, DefaultRemainsSerialTrajectory) {
  const auto run = [](unsigned threads) {
    NetworkOptions o;
    o.n = 2048;
    o.seed = 77;
    Network net(o);
    baselines::UniformOptions uo;
    uo.threads = threads;
    return baselines::run_push(net, 0, uo);
  };
  const auto serial_a = run(0);
  const auto serial_b = run(0);
  EXPECT_EQ(serial_a.rounds, serial_b.rounds);
  EXPECT_EQ(serial_a.stats.total.connections, serial_b.stats.total.connections);
}

}  // namespace
}  // namespace gossip::sim
