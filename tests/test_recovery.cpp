// Recovery supervisor + PartitionFault (PR 10): the self-healing layer must
// (a) actually heal - supervised decapitation + partition runs reach
// informed_fraction 1.0 where the brittle baseline strands ~80% of the
// network - and (b) heal DETERMINISTICALLY: recovery trajectories and the
// re-election/fallback EventLog entries are bit-identical across TrialRunner
// workers {1,2,8} x sharded engine threads {1,2,8} x delivery buckets
// {1,64}. Plus unit coverage for the PartitionFault window/component
// semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "runner/trial_runner.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip::runner {
namespace {

// Decapitation (smallest-ID crash wave at round 4 beheads the merge
// leaders) + a partition window across the whole primary run. Seed 507 is
// chosen so the source survives the crash set on both trials: recovery is
// then information-theoretically possible, and the supervisor must deliver
// re-election (epoch 1) AND the push-pull fallback (budget 1 exhausts while
// the partition still stands; the fallback outlives the heal at round 80).
ScenarioSpec recovery_spec() {
  ScenarioSpec spec;
  spec.name = "recovery-golden";
  spec.algorithm = "cluster1";
  spec.n = 256;
  spec.trials = 2;
  spec.seed = 507;
  spec.fault_fraction = 0.2;
  spec.fault_strategy = sim::FaultStrategy::kSmallestIds;
  spec.crash_round = 4;
  spec.partition_round = 0;
  spec.heal_round = 80;
  spec.recovery = true;
  spec.retry_budget = 1;
  spec.events = "armed";  // any non-empty path arms EventLog collection
  return spec;
}

/// The determinism-covered serialisation: a per-trial report digest plus
/// the full event log (which carries every kReelect/kFallback handoff).
/// The scenario echo is deliberately excluded - `engine_threads` is part
/// of the experiment identity and differs across the matrix by design.
std::string golden(const ScenarioResult& result) {
  std::ostringstream os;
  for (const core::BroadcastReport& r : result.reports) {
    os << r.rounds << ' ' << r.informed << ' ' << r.alive << ' '
       << r.stats.total.bits << ' ' << r.stats.total.payload_messages << '\n';
  }
  obs::ExportOptions opt;
  opt.timing = false;
  obs::write_events_jsonl(os, result.telemetry_views(), opt);
  return os.str();
}

std::map<obs::EventKind, std::size_t> event_counts(const ScenarioResult& result) {
  std::map<obs::EventKind, std::size_t> kinds;
  for (const auto& telemetry : result.telemetry) {
    for (const obs::Event& e : telemetry->events.events()) ++kinds[e.kind];
  }
  return kinds;
}

TEST(RecoverySupervisor, HealsWhatStrandsTheBrittleBaseline) {
  ScenarioSpec brittle = recovery_spec();
  brittle.recovery = false;
  brittle.retry_budget = 0;
  const ScenarioResult stranded = TrialRunner(1).run(brittle);
  // The crash wave beheads the merge leaders and the partition blocks the
  // survivors: without a supervisor most of the network never hears the
  // rumor (seed 507: ~20% mean informed fraction).
  EXPECT_LT(stranded.aggregate.informed_fraction.mean(), 0.5);

  const ScenarioResult healed = TrialRunner(1).run(recovery_spec());
  EXPECT_EQ(healed.aggregate.failures, 0u);
  EXPECT_DOUBLE_EQ(healed.aggregate.informed_fraction.min(), 1.0);

  // Both recovery paths actually ran: re-election in epoch 1, then the
  // budget-exhausted fallback to plain PUSH-PULL.
  const auto kinds = event_counts(healed);
  EXPECT_GT(kinds.at(obs::EventKind::kReelect), 0u);
  EXPECT_GT(kinds.at(obs::EventKind::kFallback), 0u);
}

TEST(RecoverySupervisor, GoldenAcrossWorkersAndBuckets) {
  // Serial-engine universe: TrialRunner worker count and delivery bucket
  // count are pure scheduling choices - reports AND the event log must be
  // bit-identical.
  const std::string base = golden(TrialRunner(1).run(recovery_spec()));
  ASSERT_FALSE(base.empty());
  EXPECT_NE(base.find("\"kind\":\"reelect\""), std::string::npos);
  EXPECT_NE(base.find("\"kind\":\"fallback\""), std::string::npos);
  for (const unsigned workers : {2u, 8u}) {
    for (const unsigned buckets : {1u, 64u}) {
      ScenarioSpec alt = recovery_spec();
      alt.delivery_buckets = buckets;
      EXPECT_EQ(golden(TrialRunner(workers).run(alt)), base)
          << "workers=" << workers << " delivery_buckets=" << buckets;
    }
  }
}

TEST(RecoverySupervisor, GoldenAcrossEngineThreadsAndBuckets) {
  // Sharded-engine universe (a different trajectory family than serial - the
  // shard draw streams re-key): with shard_size pinned, the engine thread
  // count is pure scheduling and must not move a single bit.
  const auto sharded_spec = [](unsigned engine_threads, unsigned buckets) {
    ScenarioSpec spec = recovery_spec();
    spec.engine_threads = engine_threads;
    spec.shard_size = 64;  // pinned: shard geometry is identity, threads are not
    spec.delivery_buckets = buckets;
    return spec;
  };
  const std::string base = golden(TrialRunner(1).run(sharded_spec(1, 0)));
  ASSERT_FALSE(base.empty());
  EXPECT_NE(base.find("\"kind\":\"fallback\""), std::string::npos);
  for (const unsigned engine_threads : {1u, 2u, 8u}) {
    for (const unsigned buckets : {1u, 64u}) {
      EXPECT_EQ(golden(TrialRunner(2).run(sharded_spec(engine_threads, buckets))),
                base)
          << "engine_threads=" << engine_threads << " delivery_buckets=" << buckets;
    }
  }
}

TEST(RecoverySupervisor, RecoveryOffIsUntouchedByTheNewKnobs) {
  // The acceptance bar for PR 9 compatibility: recovery=false must not
  // consume any randomness or rounds - two identical brittle runs and a
  // brittle run from a spec that never heard of recovery keys agree bit
  // for bit.
  ScenarioSpec plain;
  plain.name = "recovery-off";
  plain.algorithm = "cluster1";
  plain.n = 256;
  plain.trials = 2;
  plain.seed = 507;
  plain.fault_fraction = 0.2;
  plain.fault_strategy = sim::FaultStrategy::kSmallestIds;
  plain.crash_round = 4;
  ScenarioSpec with_defaults = plain;
  with_defaults.recovery = false;
  with_defaults.retry_budget = 0;
  const ScenarioResult a = TrialRunner(1).run(plain);
  const ScenarioResult b = TrialRunner(1).run(with_defaults);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t t = 0; t < a.reports.size(); ++t) {
    EXPECT_EQ(a.reports[t].rounds, b.reports[t].rounds);
    EXPECT_EQ(a.reports[t].informed, b.reports[t].informed);
    EXPECT_EQ(a.reports[t].stats.total.bits, b.reports[t].stats.total.bits);
  }
}

TEST(RecoverySupervisor, ReportsTheRecoveryPhase) {
  const ScenarioResult healed = TrialRunner(1).run(recovery_spec());
  for (const core::BroadcastReport& r : healed.reports) {
    bool saw_recovery = false;
    for (const core::PhaseBreakdown& p : r.phases) {
      if (p.name == "recovery") {
        saw_recovery = true;
        EXPECT_GT(p.rounds, 0u);
      }
    }
    EXPECT_TRUE(saw_recovery) << "supervised run missing the recovery phase";
  }
}

// ---------------------------------------------------------------------------
// PartitionFault unit semantics
// ---------------------------------------------------------------------------

sim::Network partition_net(std::uint32_t n = 128, std::uint64_t seed = 21) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return sim::Network(o);
}

TEST(PartitionFault, WindowGatesTheComponentView) {
  sim::Network net = partition_net();
  Rng adversary(3);
  sim::PartitionFault fault(5, 10, 4);
  fault.on_run_begin(net, adversary);
  EXPECT_EQ(fault.partition_components(4), nullptr);   // before the split
  EXPECT_EQ(fault.partition_components(10), nullptr);  // healed (half-open)
  const std::uint32_t* labels = fault.partition_components(5);
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels, fault.partition_components(9));  // stable across the window
  std::map<std::uint32_t, std::uint32_t> sizes;
  for (std::uint32_t v = 0; v < net.n(); ++v) {
    ASSERT_LT(labels[v], 4u);
    ++sizes[labels[v]];
  }
  // Uniform labels over n=128, 4 parts: every component is non-empty with
  // overwhelming probability - an empty one would make the "split" vacuous.
  EXPECT_EQ(sizes.size(), 4u);
}

TEST(PartitionFault, ComponentsAreAPureFunctionOfTheNetworkSeed) {
  // The labels must NOT depend on the adversary stream (its consumption
  // order varies with the fault-model composition): same network seed =>
  // same components, different adversary seeds notwithstanding.
  sim::Network net_a = partition_net(128, 21);
  sim::Network net_b = partition_net(128, 21);
  Rng adv_a(3), adv_b(999);
  sim::PartitionFault fault_a(0, 8, 3), fault_b(0, 8, 3);
  fault_a.on_run_begin(net_a, adv_a);
  fault_b.on_run_begin(net_b, adv_b);
  for (std::uint32_t v = 0; v < net_a.n(); ++v) {
    EXPECT_EQ(fault_a.component_of(v), fault_b.component_of(v)) << "node " << v;
  }
  // ... and a different network seed re-deals them.
  sim::Network net_c = partition_net(128, 22);
  sim::PartitionFault fault_c(0, 8, 3);
  fault_c.on_run_begin(net_c, adv_a);
  bool any_differ = false;
  for (std::uint32_t v = 0; v < net_c.n(); ++v) {
    any_differ |= fault_c.component_of(v) != fault_a.component_of(v);
  }
  EXPECT_TRUE(any_differ);
}

TEST(PartitionFault, RejectsDegenerateShapes) {
  EXPECT_THROW(sim::PartitionFault(10, 10, 2), ContractViolation);  // empty window
  EXPECT_THROW(sim::PartitionFault(12, 10, 2), ContractViolation);  // inverted
  EXPECT_THROW(sim::PartitionFault(0, 10, 1), ContractViolation);   // one "part"
}

TEST(PartitionFault, CompositeForwardsThePartitionView) {
  sim::CompositeFault composite;
  composite.add(std::make_unique<sim::PartitionFault>(2, 6, 2));
  sim::Network net = partition_net();
  Rng adversary(3);
  composite.on_run_begin(net, adversary);
  EXPECT_EQ(composite.partition_components(1), nullptr);
  EXPECT_NE(composite.partition_components(2), nullptr);
  EXPECT_NE(composite.describe().find("partition"), std::string::npos);
}

TEST(PartitionFault, CrossComponentContactsDropAsLoss) {
  // Scenario-level check of the engine wiring: a partition with no heal
  // before the round cap pins push_pull below full spread (only the
  // source's component can hear the rumor), and the blocked contacts land
  // in the EventLog as loss drops even though loss_prob = 0.
  ScenarioSpec walled;
  walled.name = "walled";
  walled.algorithm = "push_pull";
  walled.n = 256;
  walled.trials = 2;
  walled.seed = 13;
  walled.max_rounds = 30;
  walled.partition_round = 0;
  walled.heal_round = 29;  // heals with one round left: too late to finish
  walled.events = "armed";
  const ScenarioResult blocked = TrialRunner(1).run(walled);
  EXPECT_LT(blocked.aggregate.informed_fraction.max(), 1.0);
  EXPECT_GT(event_counts(blocked)[obs::EventKind::kLossDrop], 0u);

  ScenarioSpec healed = walled;
  healed.max_rounds = 0;  // auto horizon: the heal at 29 leaves time to finish
  const ScenarioResult done = TrialRunner(1).run(healed);
  EXPECT_DOUBLE_EQ(done.aggregate.informed_fraction.min(), 1.0);
}

}  // namespace
}  // namespace gossip::runner
