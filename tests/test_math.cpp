// Unit tests for the math helpers (common/math.hpp).
#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace gossip {
namespace {

TEST(FloorLog2, PowersOfTwo) {
  for (unsigned e = 0; e < 63; ++e) {
    EXPECT_EQ(floor_log2(1ULL << e), e);
  }
}

TEST(FloorLog2, BetweenPowers) {
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(5), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1025), 10u);
}

TEST(CeilLog2, ExhaustiveSmall) {
  EXPECT_EQ(ceil_log2(1), 0u);
  for (std::uint64_t x = 2; x <= 4096; ++x) {
    const auto expected =
        static_cast<unsigned>(std::ceil(std::log2(static_cast<double>(x))));
    EXPECT_EQ(ceil_log2(x), expected) << "x=" << x;
  }
}

TEST(Log2d, MatchesStd) {
  EXPECT_DOUBLE_EQ(log2d(1024), 10.0);
  EXPECT_NEAR(log2d(1000), std::log2(1000.0), 1e-12);
}

TEST(LogLog2d, KnownValues) {
  EXPECT_DOUBLE_EQ(loglog2d(1ULL << 16), 4.0);
  EXPECT_DOUBLE_EQ(loglog2d(1ULL << 32), 5.0);
  EXPECT_NEAR(loglog2d(1ULL << 20), std::log2(20.0), 1e-12);
}

TEST(LogLog2d, ClampedForTinyInputs) {
  EXPECT_GE(loglog2d(2), 1.0);
  EXPECT_GE(loglog2d(3), 1.0);
  EXPECT_GE(loglog2d(4), 1.0);
}

TEST(CeilLogLog2, GrowsVerySlowly) {
  EXPECT_EQ(ceil_loglog2(1ULL << 16), 4u);
  EXPECT_EQ(ceil_loglog2(1ULL << 17), 5u);  // ceil(log2(17))
  EXPECT_LE(ceil_loglog2(1ULL << 62), 6u);
}

TEST(Isqrt, ExhaustiveSmall) {
  for (std::uint64_t x = 0; x <= 10000; ++x) {
    const std::uint64_t r = isqrt(x);
    EXPECT_LE(r * r, x) << "x=" << x;
    EXPECT_GT((r + 1) * (r + 1), x) << "x=" << x;
  }
}

TEST(Isqrt, PerfectSquares) {
  for (std::uint64_t r : {1ULL, 7ULL, 1000ULL, 1ULL << 20, (1ULL << 31) - 1}) {
    EXPECT_EQ(isqrt(r * r), r);
    EXPECT_EQ(isqrt(r * r + 1), r);
    if (r > 1) EXPECT_EQ(isqrt(r * r - 1), r - 1);
  }
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
}

TEST(SaturatingMul, NoOverflow) {
  EXPECT_EQ(saturating_mul(3, 4), 12u);
  EXPECT_EQ(saturating_mul(1ULL << 31, 1ULL << 31), 1ULL << 62);
}

TEST(SaturatingMul, SaturatesAtMax) {
  const auto max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(saturating_mul(1ULL << 32, 1ULL << 33), max);
  EXPECT_EQ(saturating_mul(max, 2), max);
  EXPECT_EQ(saturating_mul(max, max), max);
}

}  // namespace
}  // namespace gossip
