// Membership/suspicion service (PR 6): estimate_n accuracy fault-free,
// degradation under churn and byzantine poisoning, and the report plumbing
// (estimate_n_error -> ReportAggregate::estimate_error).
#include <gtest/gtest.h>

#include "membership/membership.hpp"
#include "runner/trial_runner.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"

namespace gossip {
namespace {

runner::ScenarioSpec membership_spec(std::uint32_t n = 256) {
  runner::ScenarioSpec spec;
  spec.name = "membership";
  spec.algorithm = "membership";
  spec.n = n;
  spec.trials = 3;
  spec.seed = 33;
  return spec;
}

TEST(Membership, FaultFreeEstimatesConverge) {
  const runner::ScenarioResult result = runner::TrialRunner(1).run(membership_spec());
  const auto& agg = result.aggregate;
  // With no churn the directory is a fixed target: the mean relative error
  // of estimate_n settles at the suspicion window's sampling miss rate (a
  // few percent at most) and every node lands within the 10% threshold.
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_LT(agg.estimate_error.mean(), 0.05);
  EXPECT_DOUBLE_EQ(agg.informed_fraction.mean(), 1.0);
}

TEST(Membership, ChurnRaisesTheErrorButStaysBounded) {
  runner::ScenarioSpec calm = membership_spec();
  runner::ScenarioSpec churny = membership_spec();
  churny.join_rate = 1.0;
  churny.crash_rate = 1.0;
  const double calm_err =
      runner::TrialRunner(1).run(calm).aggregate.estimate_error.mean();
  const double churn_err =
      runner::TrialRunner(1).run(churny).aggregate.estimate_error.mean();
  // Crashed nodes linger for up to suspicion_after rounds and joiners are
  // invisible until their first digest ride - the error must rise with
  // churn, but the service keeps tracking (it never diverges).
  EXPECT_GT(churn_err, calm_err);
  EXPECT_LT(churn_err, 0.5);
}

TEST(Membership, ByzantinePoisoningInflatesEstimates) {
  runner::ScenarioSpec honest = membership_spec();
  runner::ScenarioSpec poisoned = membership_spec();
  poisoned.byzantine_fraction = 0.3;
  const double honest_err =
      runner::TrialRunner(1).run(honest).aggregate.estimate_error.mean();
  const double poisoned_err =
      runner::TrialRunner(1).run(poisoned).aggregate.estimate_error.mean();
  // ID-list poisoning is NOT detectable: ghosts enter the tables and count
  // toward estimate_n until suspicion ages them out, so a heavily poisoned
  // run reads clearly worse than the honest one.
  EXPECT_GT(poisoned_err, honest_err + 0.02);
}

TEST(Membership, DirectApiRespectsExplicitKnobs) {
  sim::NetworkOptions no;
  no.n = 64;
  no.seed = 9;
  sim::Network net(no);
  membership::MembershipOptions mo;
  mo.rounds = 40;
  mo.gossip_ttl = 8;
  mo.suspicion_after = 24;
  const core::BroadcastReport r = membership::run_membership(net, 0, mo);
  EXPECT_EQ(r.rounds, 40u);
  EXPECT_EQ(r.n, 64u);
  EXPECT_EQ(r.alive, 64u);
  EXPECT_LE(r.informed, r.alive);
  EXPECT_GE(r.estimate_n_error, 0.0);
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_EQ(r.phases.front().name, "membership");
  EXPECT_EQ(r.phases.front().rounds, 40u);
}

TEST(Membership, RunsPastTheOldDenseTableCap) {
  // The table used to be a dense capacity^2 stamp matrix hard-capped at
  // n = 8192; the sparse per-listener rows lift that. A capacity over the
  // old cap must run (memory now tracks actual knowledge, not capacity^2).
  sim::NetworkOptions no;
  no.n = 64;
  no.max_nodes = 1u << 14;  // capacity over the old 8192 dense-table guard
  no.seed = 5;
  sim::Network net(no);
  membership::MembershipOptions mo;
  mo.rounds = 30;
  mo.gossip_ttl = 8;
  mo.suspicion_after = 20;
  const core::BroadcastReport r = membership::run_membership(net, 0, mo);
  EXPECT_EQ(r.rounds, 30u);
  EXPECT_EQ(r.alive, 64u);
}

TEST(Membership, RerunsAreBitIdentical) {
  const runner::ScenarioSpec spec = [] {
    runner::ScenarioSpec s = membership_spec(128);
    s.join_rate = 0.5;
    s.crash_rate = 0.5;
    return s;
  }();
  const runner::ScenarioResult a = runner::TrialRunner(1).run(spec);
  const runner::ScenarioResult b = runner::TrialRunner(1).run(spec);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t t = 0; t < a.reports.size(); ++t) {
    EXPECT_EQ(a.reports[t].informed, b.reports[t].informed);
    EXPECT_EQ(a.reports[t].alive, b.reports[t].alive);
    EXPECT_DOUBLE_EQ(a.reports[t].estimate_n_error, b.reports[t].estimate_n_error);
    EXPECT_EQ(a.reports[t].stats.total.bits, b.reports[t].stats.total.bits);
  }
}

}  // namespace
}  // namespace gossip
