// Cross-algorithm integration and metering-invariant tests: every algorithm
// (paper's and baselines) across a (n, seed) grid must complete and satisfy
// the structural relationships between the metered quantities.
#include <gtest/gtest.h>

#include "baselines/avin_elsasser.hpp"
#include "baselines/rrs.hpp"
#include "baselines/uniform.hpp"
#include "core/broadcast.hpp"
#include "sim/engine.hpp"

namespace gossip {
namespace {

enum class Algo { kC1, kC2, kC3, kPush, kPull, kPushPull, kRrs, kAe };

const char* name_of(Algo a) {
  switch (a) {
    case Algo::kC1: return "Cluster1";
    case Algo::kC2: return "Cluster2";
    case Algo::kC3: return "Cluster3PushPull";
    case Algo::kPush: return "Push";
    case Algo::kPull: return "Pull";
    case Algo::kPushPull: return "PushPull";
    case Algo::kRrs: return "Rrs";
    case Algo::kAe: return "AvinElsasser";
  }
  return "?";
}

core::BroadcastReport run_algo(Algo a, sim::Network& net, std::uint32_t source) {
  switch (a) {
    case Algo::kC1: {
      core::BroadcastOptions o;
      o.algorithm = core::Algorithm::kCluster1;
      o.source = source;
      return core::broadcast(net, o);
    }
    case Algo::kC2: {
      core::BroadcastOptions o;
      o.algorithm = core::Algorithm::kCluster2;
      o.source = source;
      return core::broadcast(net, o);
    }
    case Algo::kC3: {
      core::BroadcastOptions o;
      o.algorithm = core::Algorithm::kCluster3PushPull;
      o.delta = 128;
      o.source = source;
      return core::broadcast(net, o);
    }
    case Algo::kPush: return baselines::run_push(net, source, {});
    case Algo::kPull: return baselines::run_pull(net, source, {});
    case Algo::kPushPull: return baselines::run_push_pull(net, source, {});
    case Algo::kRrs: return baselines::run_rrs(net, source, {});
    case Algo::kAe: {
      sim::Engine engine(net);
      baselines::AvinElsasser algo(engine);
      return algo.run(source);
    }
  }
  return {};
}

struct Case {
  Algo algo;
  std::uint32_t n;
  std::uint64_t seed;
};

class AllAlgorithms : public ::testing::TestWithParam<Case> {};

TEST_P(AllAlgorithms, CompletesAndMetersConsistently) {
  const auto [algo, n, seed] = GetParam();
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  sim::Network net(o);
  const auto r = run_algo(algo, net, seed % n);

  EXPECT_TRUE(r.all_informed) << name_of(algo);
  EXPECT_EQ(r.n, n);
  EXPECT_EQ(r.alive, n);
  EXPECT_EQ(r.informed, n);
  EXPECT_GT(r.rounds, 0u);

  // Metering invariants that hold for every protocol on this engine:
  const auto& t = r.stats.total;
  EXPECT_EQ(t.connections, t.pushes + t.pull_requests);
  EXPECT_LE(t.payload_messages, t.pushes + t.pull_responses);
  EXPECT_GE(t.bits, t.payload_messages * 3);  // every payload has a header
  EXPECT_GE(t.max_involvement, 1u);
  EXPECT_LE(t.max_involvement, n);
  EXPECT_EQ(r.stats.rounds, r.rounds);
  // Everyone must receive the rumor at least once: n-1 payload deliveries
  // minimum across the run.
  EXPECT_GE(t.payload_messages, static_cast<std::uint64_t>(n) - 1);
}

std::vector<Case> make_grid() {
  std::vector<Case> cases;
  for (Algo a : {Algo::kC1, Algo::kC2, Algo::kC3, Algo::kPush, Algo::kPull,
                 Algo::kPushPull, Algo::kRrs, Algo::kAe}) {
    for (std::uint32_t n : {1024u, 4096u}) {
      for (std::uint64_t seed : {1ull, 2ull}) cases.push_back({a, n, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, AllAlgorithms, ::testing::ValuesIn(make_grid()),
                         [](const auto& info) {
                           return std::string(name_of(info.param.algo)) + "_n" +
                                  std::to_string(info.param.n) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(Integration, RoundShapeOrderingAtScale) {
  // The paper's headline comparison, as growth ratios across a 256x size
  // range: Cluster2's rounds grow like log log n (ratio < 1.6), the uniform
  // baselines like log n (ratio > 1.5).
  auto rounds_at = [](Algo a, std::uint32_t n) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 17;
    sim::Network net(o);
    const auto r = run_algo(a, net, 0);
    EXPECT_TRUE(r.all_informed);
    return static_cast<double>(r.rounds);
  };
  const double c2_ratio = rounds_at(Algo::kC2, 262144) / rounds_at(Algo::kC2, 1024);
  const double push_ratio = rounds_at(Algo::kPush, 262144) / rounds_at(Algo::kPush, 1024);
  EXPECT_LT(c2_ratio, 1.6);
  EXPECT_GT(push_ratio, 1.5);
  EXPECT_LT(c2_ratio, push_ratio);
}

TEST(Integration, KnowledgeHonestyAcrossClusterAlgorithms) {
  // Everything the paper's algorithms do must survive strict direct-
  // addressing enforcement.
  for (Algo a : {Algo::kC1, Algo::kC2, Algo::kC3}) {
    sim::NetworkOptions o;
    o.n = 1024;
    o.seed = 23;
    o.track_knowledge = true;
    sim::Network net(o);
    EXPECT_NO_THROW({
      const auto r = run_algo(a, net, 0);
      EXPECT_TRUE(r.all_informed) << name_of(a);
    }) << name_of(a);
  }
}

}  // namespace
}  // namespace gossip
