// Tests for the Theorem 3 lower-bound machinery
// (analysis/knowledge_graph.hpp).
#include "analysis/knowledge_graph.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"

namespace gossip::analysis {
namespace {

TEST(UnionContactGraphs, EveryNodeDrawsTContacts) {
  Rng rng(1);
  const unsigned t = 3;
  const Graph g = union_contact_graphs(100, t, rng);
  // n * t draws, each adding one undirected edge (parallel edges counted).
  EXPECT_EQ(g.num_edges(), 100u * t);
  for (std::uint32_t v = 0; v < 100; ++v) {
    EXPECT_GE(g.neighbors(v).size(), t);  // own draws; plus others' draws onto v
  }
}

TEST(UnionContactGraphs, NoSelfLoops) {
  Rng rng(2);
  const Graph g = union_contact_graphs(10, 5, rng);
  for (std::uint32_t v = 0; v < 10; ++v) {
    for (std::uint32_t u : g.neighbors(v)) EXPECT_NE(u, v);
  }
}

TEST(Feasibility, ZeroRoundsNeverWork) {
  // With t = 1 on a non-trivial network the union graph has average degree
  // 2 and is almost surely disconnected or of large diameter: reach 2^1 = 2
  // fails for n >= 64.
  Rng rng(3);
  const auto res = check_feasibility(256, 1, rng);
  EXPECT_FALSE(res.feasible);
}

TEST(Feasibility, ManyRoundsAlwaysWork) {
  Rng rng(4);
  const auto res = check_feasibility(256, 8, rng);
  EXPECT_TRUE(res.connected);
  EXPECT_TRUE(res.feasible);  // diameter ~ log n / log(16) << 2^8
  EXPECT_LE(res.diameter_upper, 256u);
}

TEST(Feasibility, ReportsDegreeStatistics) {
  Rng rng(5);
  const auto res = check_feasibility(1024, 4, rng);
  // Max degree concentrates around t + Theta(log n / log log n) << log^2 n.
  EXPECT_GE(res.max_degree, 4u);
  EXPECT_LE(res.max_degree, 60u);
}

class MinFeasibleRounds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MinFeasibleRounds, TracksLogLogN) {
  // Theorem 3: any algorithm needs ~log log n rounds; the empirical minimum
  // must sit in a narrow band around it (and never below the 0.99 log log n
  // bound by more than the additive slack of the theorem).
  const std::uint32_t n = GetParam();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const unsigned t = min_feasible_rounds(n, seed);
    const double ll = loglog2d(n);
    EXPECT_GE(static_cast<double>(t), ll - 2.0) << "n=" << n << " seed=" << seed;
    EXPECT_LE(static_cast<double>(t), ll + 3.0) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MinFeasibleRounds,
                         ::testing::Values(256, 1024, 4096, 16384, 65536),
                         [](const auto& info) { return "n" + std::to_string(info.param); });

TEST(MinFeasibleRounds, MonotoneInNOnAverage) {
  // Averaged over seeds, bigger networks need at least as many rounds.
  double small = 0, large = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    small += min_feasible_rounds(256, seed);
    large += min_feasible_rounds(65536, seed);
  }
  EXPECT_LE(small, large + 1.0);
}

TEST(MinFeasibleRounds, DeterministicInSeed) {
  EXPECT_EQ(min_feasible_rounds(4096, 7), min_feasible_rounds(4096, 7));
}

}  // namespace
}  // namespace gossip::analysis
