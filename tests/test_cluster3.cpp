// Tests for Cluster3(Delta) (paper Algorithm 4, Theorem 18): the
// Delta-clustering postconditions - every node clustered, sizes Theta(D),
// and no node involved in more than Delta communications per round.
#include "core/cluster3.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "sim/engine.hpp"

namespace gossip::core {
namespace {

struct Case {
  std::uint32_t n;
  std::uint64_t delta;
  std::uint64_t seed;
};

class Cluster3Sweep : public ::testing::TestWithParam<Case> {};

TEST_P(Cluster3Sweep, ProducesAThetaDeltaClustering) {
  const auto [n, delta, seed] = GetParam();
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  sim::Network net(o);
  sim::Engine engine(net);
  cluster::DriverOptions d;
  d.validate = true;
  Cluster3 algo(engine, delta, Cluster3Options{}, d);
  const auto report = algo.run();

  auto& cl = algo.driver().clustering();
  EXPECT_TRUE(cl.is_flat());
  const auto stats = cl.stats();
  // Theorem 18: a clustering of (nearly) all nodes...
  EXPECT_LE(stats.unclustered_nodes, n / 200 + 1) << "too many unclustered nodes";
  // ...with cluster sizes within a constant band around D...
  const std::uint64_t D = algo.cluster_target();
  EXPECT_GE(D, 4u);
  EXPECT_LE(stats.max_size, 2 * D) << "a cluster outgrew the resize bound";
  // (the final ClusterResize guarantees the upper bound; stragglers joining
  // in the last pull rounds can undercut D, but the mass must sit in
  // Theta(D) clusters:)
  EXPECT_GE(stats.mean_size, static_cast<double>(D) / 4.0);
  // ...and no node ever handled more than Delta communications in a round.
  EXPECT_LE(report.max_delta(), delta) << "Delta bound violated during construction";
  (void)report;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Cluster3Sweep,
    ::testing::Values(Case{1024, 64, 1}, Case{1024, 128, 2}, Case{4096, 64, 1},
                      Case{4096, 256, 1}, Case{4096, 256, 2}, Case{16384, 128, 1},
                      Case{16384, 512, 1}, Case{65536, 256, 1}, Case{65536, 1024, 1}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_d" + std::to_string(info.param.delta) +
             "_s" + std::to_string(info.param.seed);
    });

TEST(Cluster3, RoundComplexityScalesAsLogLog) {
  // Theorem 18: O(log log n) rounds to build the clustering, with one
  // constant across the range.
  for (std::uint32_t n : {4096u, 65536u, 262144u}) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 3;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster3 algo(engine, /*delta=*/256);
    const auto report = algo.run();
    EXPECT_LE(report.rounds, 30.0 * loglog2d(n)) << "n=" << n;
  }
}

TEST(Cluster3, MessagesStayLinear) {
  // Theorem 18: O(n) messages.
  for (std::uint32_t n : {4096u, 65536u, 262144u}) {
    sim::NetworkOptions o;
    o.n = n;
    o.seed = 5;
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster3 algo(engine, /*delta=*/256);
    const auto report = algo.run();
    EXPECT_LT(report.payload_messages_per_node(), 30.0) << "n=" << n;
  }
}

TEST(Cluster3, LargerDeltaMeansLargerClusters) {
  sim::NetworkOptions o;
  o.n = 16384;
  o.seed = 7;
  double prev_mean = 0;
  for (std::uint64_t delta : {64ull, 256ull, 1024ull}) {
    sim::Network net(o);
    sim::Engine engine(net);
    Cluster3 algo(engine, delta);
    (void)algo.run();
    const auto stats = algo.driver().clustering().stats();
    EXPECT_GT(stats.mean_size, prev_mean) << "delta=" << delta;
    prev_mean = stats.mean_size;
  }
}

TEST(Cluster3, ReportsCleanPhaseBreakdown) {
  sim::NetworkOptions o;
  o.n = 4096;
  o.seed = 11;
  sim::Network net(o);
  sim::Engine engine(net);
  Cluster3 algo(engine, 128);
  const auto report = algo.run();
  std::uint64_t sum = 0;
  for (const auto& p : report.phases) sum += p.rounds;
  EXPECT_EQ(sum, report.rounds);
  ASSERT_GE(report.phases.size(), 5u);
  EXPECT_EQ(report.phases.front().name, "grow");
  EXPECT_EQ(report.phases.back().name, "pull_resize");
}

TEST(Cluster3, HonestUnderKnowledgeEnforcement) {
  sim::NetworkOptions o;
  o.n = 2048;
  o.seed = 13;
  o.track_knowledge = true;
  sim::Network net(o);
  sim::Engine engine(net);
  cluster::DriverOptions d;
  d.validate = true;
  Cluster3 algo(engine, 64, Cluster3Options{}, d);
  EXPECT_NO_THROW((void)algo.run());
}

}  // namespace
}  // namespace gossip::core
