// Tests for leader election (core/leader_election.hpp) - the reduction the
// paper invokes in the Theorem 15 proof.
#include "core/leader_election.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "sim/fault.hpp"

namespace gossip::core {
namespace {

sim::NetworkOptions opts(std::uint32_t n, std::uint64_t seed = 1) {
  sim::NetworkOptions o;
  o.n = n;
  o.seed = seed;
  return o;
}

struct Case {
  std::uint32_t n;
  std::uint64_t seed;
};

class LeaderElectionSweep : public ::testing::TestWithParam<Case> {};

TEST_P(LeaderElectionSweep, Unanimous) {
  const auto [n, seed] = GetParam();
  sim::Network net(opts(n, seed));
  const auto result = elect_leader(net);
  EXPECT_TRUE(result.unanimous) << result.agreeing << "/" << net.alive_count();
  EXPECT_TRUE(result.leader.is_node());
  EXPECT_EQ(net.id_of(result.leader_index), result.leader);
  EXPECT_TRUE(result.report.all_informed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeaderElectionSweep,
                         ::testing::Values(Case{256, 1}, Case{1024, 1}, Case{1024, 2},
                                           Case{4096, 1}, Case{16384, 1}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(LeaderElection, RoundsAreLogLogShaped) {
  for (std::uint32_t n : {1024u, 65536u}) {
    sim::Network net(opts(n, 3));
    const auto result = elect_leader(net);
    ASSERT_TRUE(result.unanimous);
    EXPECT_LE(result.report.rounds, 30.0 * loglog2d(n)) << "n=" << n;
  }
}

TEST(LeaderElection, SurvivesFailures) {
  sim::Network net(opts(4096, 5));
  Rng adversary(123);
  for (std::uint32_t v :
       sim::choose_failures(net, 409, sim::FaultStrategy::kRandomSubset, adversary)) {
    net.fail(v);
  }
  const auto result = elect_leader(net);
  // All but o(F) survivors agree on one surviving node (Theorem 19 carried
  // over to the election task).
  EXPECT_TRUE(net.alive(result.leader_index));
  EXPECT_GT(static_cast<double>(result.agreeing),
            0.98 * static_cast<double>(net.alive_count()));
}

TEST(LeaderElection, AllNodesFailedThrows) {
  sim::Network net(opts(4));
  net.fail(0);
  net.fail(1);
  net.fail(2);
  net.fail(3);
  EXPECT_THROW((void)elect_leader(net), ContractViolation);
}

TEST(LeaderElection, DeterministicInSeed) {
  sim::Network a(opts(1024, 11)), b(opts(1024, 11));
  EXPECT_EQ(elect_leader(a).leader, elect_leader(b).leader);
}

}  // namespace
}  // namespace gossip::core
